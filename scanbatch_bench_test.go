package vitex

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// Batch-size sweep over the prefix-overlap workload (the queryset_100_overlap
// bench workload): one standing set, the scanner's event-batch size varied
// via SetScanBatch. The hypotheses/scanner-bandwidth experiment reads these
// numbers to pick DefaultEventBatch; -1 is the per-event fallback arm.
//
// Run with:
//
//	go test -bench BenchmarkScanBatchOverlap -benchtime 2s -run xxx .
func BenchmarkScanBatchOverlap(b *testing.B) {
	doc := datagen.Portal{Articles: 400, Seed: 1}.String()
	sources := datagen.OverlapQueries(100, 0.9, 0, 0, 42)
	qs, err := NewQuerySet(sources...)
	if err != nil {
		b.Fatal(err)
	}
	events := int64(0)
	for _, bs := range []int{-1, 16, 32, 64, 128, 256, 512} {
		name := "batch=" + strconv.Itoa(bs)
		b.Run(name, func(b *testing.B) {
			qs.SetScanBatch(bs)
			defer qs.SetScanBatch(0)
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := qs.Stream(strings.NewReader(doc), Options{CountOnly: true},
					func(SetResult) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				events = stats[0].Events
			}
			if events > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
			}
		})
	}
}

// BenchmarkScanBatchTicker is the same sweep over the sparse ticker standing
// set (the queryset_100 bench workload): markup-dense events, routed
// dispatch with 5 machines woken per event.
func BenchmarkScanBatchTicker(b *testing.B) {
	doc := datagen.Ticker{Trades: 20000, Seed: 1}.String()
	sources := datagen.SparseTickerQueries(10, 90)
	qs, err := NewQuerySet(sources...)
	if err != nil {
		b.Fatal(err)
	}
	events := int64(0)
	for _, bs := range []int{-1, 16, 32, 64, 128, 256, 512} {
		name := "batch=" + strconv.Itoa(bs)
		b.Run(name, func(b *testing.B) {
			qs.SetScanBatch(bs)
			defer qs.SetScanBatch(0)
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := qs.Stream(strings.NewReader(doc), Options{CountOnly: true},
					func(SetResult) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				events = stats[0].Events
			}
			if events > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
			}
		})
	}
}
