// Package client is the Go client for vitexd, the streaming XPath
// subscription server (see internal/server for the broker and wire
// protocol). It covers the whole lifecycle: register and replace standing
// subscriptions on named channels, publish documents, and consume the
// NDJSON result stream incrementally.
//
// Quick start:
//
//	cl := client.New("http://localhost:8344")
//	sub, _ := cl.Subscribe(ctx, "news", "//story[@section='tech']/headline/text()")
//	stream, _ := cl.Results(ctx, "news", sub.ID)
//	go func() {
//		for {
//			d, err := stream.Next()
//			if err != nil { return }
//			if d.Type == server.DeliveryResult { fmt.Println(d.Value) }
//		}
//	}()
//	cl.Publish(ctx, "news", strings.NewReader(feedXML))
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/server"
)

// Client talks to one vitexd instance. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8344").
// The underlying http.Client has no timeout: result streams are long-lived.
// Use NewWithHTTPClient to customize transport behavior.
func New(base string) *Client {
	return NewWithHTTPClient(base, &http.Client{})
}

// NewWithHTTPClient builds a client using the given http.Client. Do not set
// hc.Timeout if you consume result streams — it would sever them.
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx answer decoded from the server's structured error
// body.
type APIError struct {
	Status int
	server.ErrorResponse
}

func (e *APIError) Error() string {
	return fmt.Sprintf("vitexd: HTTP %d: %s", e.Status, e.ErrorResponse.Error)
}

// decodeError consumes a non-2xx response body.
func decodeError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(body, &apiErr.ErrorResponse); err != nil || apiErr.ErrorResponse.Error == "" {
		apiErr.ErrorResponse.Error = strings.TrimSpace(string(body))
		if apiErr.ErrorResponse.Error == "" {
			apiErr.ErrorResponse.Error = resp.Status
		}
	}
	return apiErr
}

// subsPath builds the escaped subscription-collection path for a channel;
// names with path metacharacters round-trip safely.
func subsPath(channel string) string {
	return "/channels/" + url.PathEscape(channel) + "/subscriptions"
}

// do runs one request and decodes a JSON answer into out (unless nil).
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Subscribe registers an XPath query on the channel (created on first use)
// and returns its subscription id.
func (c *Client) Subscribe(ctx context.Context, channel, query string) (*server.SubscribeResponse, error) {
	var out server.SubscribeResponse
	err := c.do(ctx, http.MethodPost, subsPath(channel), strings.NewReader(query), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Replace swaps the subscription's query in place; the id and any attached
// result stream survive.
func (c *Client) Replace(ctx context.Context, channel, id, query string) (*server.SubscribeResponse, error) {
	var out server.SubscribeResponse
	err := c.do(ctx, http.MethodPut, subsPath(channel)+"/"+url.PathEscape(id), strings.NewReader(query), &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Unsubscribe removes the subscription; its result stream ends with an
// "end" delivery.
func (c *Client) Unsubscribe(ctx context.Context, channel, id string) error {
	return c.do(ctx, http.MethodDelete, subsPath(channel)+"/"+url.PathEscape(id), nil, nil)
}

// Publish ingests one XML document synchronously: it returns after the
// document was evaluated against every standing subscription (Results and
// Events report the outcome). Malformed documents return an *APIError whose
// Offset locates the syntax error; subscribers receive a gap marker for the
// same DocSeq.
func (c *Client) Publish(ctx context.Context, channel string, doc io.Reader) (*server.PublishResponse, error) {
	var out server.PublishResponse
	err := c.do(ctx, http.MethodPost, "/channels/"+url.PathEscape(channel)+"/documents", doc, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// PublishAsync enqueues one XML document and returns as soon as it is
// accepted into the channel's ingest queue.
func (c *Client) PublishAsync(ctx context.Context, channel string, doc io.Reader) (*server.PublishResponse, error) {
	var out server.PublishResponse
	err := c.do(ctx, http.MethodPost, "/channels/"+url.PathEscape(channel)+"/documents?async=1", doc, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteChannel removes a channel: queued documents drain, every
// subscription stream ends, and the name becomes available again.
func (c *Client) DeleteChannel(ctx context.Context, channel string) error {
	return c.do(ctx, http.MethodDelete, "/channels/"+url.PathEscape(channel), nil, nil)
}

// Metrics fetches the broker's counters.
func (c *Client) Metrics(ctx context.Context) (*server.MetricsResponse, error) {
	var out server.MetricsResponse
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the broker's counters in Prometheus text exposition
// format (the same data as Metrics, plus full histogram buckets).
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics?format=prometheus", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// TracesResponse is the GET /debug/traces answer: the most recent finished
// stage traces, newest first. Enabled is false when the server runs without
// -trace-sample.
type TracesResponse struct {
	Enabled bool         `json:"enabled"`
	Emitted int64        `json:"emitted"`
	Traces  []obs.Record `json:"traces"`
}

// Traces fetches the server's buffered stage-trace records.
func (c *Client) Traces(ctx context.Context) (*TracesResponse, error) {
	var out TracesResponse
	if err := c.do(ctx, http.MethodGet, "/debug/traces", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ResumeToken is a durable stream position: every document before Cursor
// was fully received, plus the first Seen result deliveries of document
// Cursor. A token taken from a severed stream (see ErrStreamInterrupted)
// hands Resume everything it needs to continue without duplicates or loss —
// provided the server is durable and the cursor is still within WAL
// retention.
type ResumeToken struct {
	Channel string
	SubID   string
	Cursor  int64
	Seen    int64
}

// ErrStreamInterrupted reports a result stream severed before its "end"
// delivery — a crashed or restarted server, a dropped connection. Token
// carries the exact position reached, so the consumer can reconnect with
// Resume and continue where the break happened.
type ErrStreamInterrupted struct {
	Token ResumeToken
	Err   error
}

func (e *ErrStreamInterrupted) Error() string {
	return fmt.Sprintf("vitexd: result stream interrupted at cursor %d (+%d seen): %v",
		e.Token.Cursor, e.Token.Seen, e.Err)
}

func (e *ErrStreamInterrupted) Unwrap() error { return e.Err }

// seenAll is the Seen sentinel meaning "skip every remaining delivery of
// document Cursor on replay". A gap marker set it: the dropped results are
// acknowledged lost, so a resume must not replay the document they belonged
// to (that would duplicate the results received before the gap).
const seenAll = int64(1) << 62

// Results attaches to the subscription's live result stream. At most one
// consumer may be attached at a time (a second attach gets HTTP 409).
// Cancel ctx to detach; the subscription and its buffer survive for a
// reconnect.
func (c *Client) Results(ctx context.Context, channel, id string) (*ResultStream, error) {
	return c.attach(ctx, channel, id, "", 0, 0)
}

// ResultsFrom attaches with a replay: the server re-evaluates retained
// documents from cursor onward (skipping the first seen results of document
// cursor) before handing off to the live stream. cursor 0 replays
// everything the channel's log retains — a late joiner's full catch-up.
// Requires a durable server (HTTP 400 otherwise).
func (c *Client) ResultsFrom(ctx context.Context, channel, id string, cursor, seen int64) (*ResultStream, error) {
	return c.attach(ctx, channel, id,
		"?from="+strconv.FormatInt(cursor, 10)+"&seen="+strconv.FormatInt(seen, 10),
		cursor, seen)
}

// Resume reattaches a severed stream at the position an ErrStreamInterrupted
// token captured.
func (c *Client) Resume(ctx context.Context, t ResumeToken) (*ResultStream, error) {
	return c.ResultsFrom(ctx, t.Channel, t.SubID, t.Cursor, t.Seen)
}

// attach opens the NDJSON stream. cursor/seen seed the position tracker: a
// resumed stream that severs again before any delivery must report the
// position it resumed FROM, not zero — otherwise the second resume would
// replay (and duplicate) what arrived before the first sever.
func (c *Client) attach(ctx context.Context, channel, id, query string, cursor, seen int64) (*ResultStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+subsPath(channel)+"/"+url.PathEscape(id)+"/results"+query, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	// NDJSON is a stream of concatenated JSON values; json.Decoder consumes
	// it incrementally with no line-length ceiling (result values carry
	// whole serialized XML fragments, as large as a published document).
	return &ResultStream{
		body:    resp.Body,
		dec:     json.NewDecoder(resp.Body),
		channel: channel,
		id:      id,
		cursor:  cursor,
		seen:    seen,
	}, nil
}

// ResultStream iterates a subscription's NDJSON deliveries and tracks the
// stream position, so an interruption at any point yields a resume token.
type ResultStream struct {
	body    io.ReadCloser
	dec     *json.Decoder
	channel string
	id      string
	cursor  int64
	seen    int64
	ended   bool
}

// Token snapshots the current stream position as a resume token.
func (s *ResultStream) Token() ResumeToken {
	return ResumeToken{Channel: s.channel, SubID: s.id, Cursor: s.cursor, Seen: s.seen}
}

// Next returns the next delivery. After an "end" delivery (which is
// returned to the caller), Next returns io.EOF. A stream severed before its
// end delivery returns *ErrStreamInterrupted carrying the resume token for
// the exact position reached.
func (s *ResultStream) Next() (*server.Delivery, error) {
	if s.ended {
		return nil, io.EOF
	}
	var d server.Delivery
	if err := s.dec.Decode(&d); err != nil {
		s.ended = true
		return nil, &ErrStreamInterrupted{Token: s.Token(), Err: err}
	}
	switch d.Type {
	case server.DeliveryEnd:
		s.ended = true
	case server.DeliveryResult:
		if d.DocSeq != s.cursor {
			s.cursor, s.seen = d.DocSeq, 0
		}
		s.seen++
	case server.DeliveryGap:
		// The gap's span is lost (drops) or unavailable (retention,
		// corruption); either way those deliveries will not come again.
		// Advance past the span's last document and poison its remainder, so
		// a resume neither replays what arrived before the gap nor re-loses
		// the same span. (A drop gap can instead be healed deliberately:
		// resume from its FromCursor.)
		if end := max(d.DocSeq, d.ToCursor); end >= s.cursor {
			s.cursor, s.seen = end, seenAll
		}
	}
	return &d, nil
}

// Close severs the stream (the server keeps the subscription).
func (s *ResultStream) Close() error { return s.body.Close() }
