package vitex

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
)

// unionOracle evaluates via the DOM engine's union merge.
func unionOracle(t *testing.T, doc, query string) []string {
	t.Helper()
	d := dom.MustBuildString(doc)
	nodes := dom.EvalString(d, query)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Serialize())
	}
	return out
}

func assertUnion(t *testing.T, doc, query string) {
	t.Helper()
	want := unionOracle(t, doc, query)
	q := MustCompile(query)
	got, err := q.EvaluateString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s over %q:\n got %q\nwant %q", query, doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s over %q: result %d = %q, want %q", query, doc, i, got[i], want[i])
		}
	}
}

func TestUnionBasic(t *testing.T) {
	doc := "<r><a>1</a><b>2</b><c>3</c></r>"
	assertUnion(t, doc, "//a | //b")
	assertUnion(t, doc, "//b | //a") // document order regardless of branch order
	assertUnion(t, doc, "//a | //b | //c")
	assertUnion(t, doc, "//a | //z")
	assertUnion(t, doc, "//z | //y")
}

func TestUnionDeduplicates(t *testing.T) {
	// Both branches select the same node: it must appear once.
	doc := "<r><a><b/></a></r>"
	assertUnion(t, doc, "//b | //a/b")
	assertUnion(t, doc, "//a | //a")
	q := MustCompile("//b | //a/b")
	n := 0
	_, err := q.Stream(strings.NewReader(doc), Options{}, func(Result) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("unordered union emitted %d times", n)
	}
}

func TestUnionMixedKinds(t *testing.T) {
	doc := `<r><a id="1">x</a><b id="2">y</b></r>`
	assertUnion(t, doc, "//a/@id | //b/@id")
	assertUnion(t, doc, "//a/text() | //b/text()")
	assertUnion(t, doc, "//a | //b/@id")
	// Attribute and element of the same element: element orders first.
	assertUnion(t, doc, "//a/@id | //a")
}

func TestUnionAttrsOfSameElement(t *testing.T) {
	doc := `<r><u x="1" y="2"/></r>`
	assertUnion(t, doc, "//u/@x | //u/@y")
	assertUnion(t, doc, "//u/@y | //u/@x") // attr document order preserved
}

func TestUnionWithPredicates(t *testing.T) {
	doc := "<r><p><q>5</q><m/></p><p><q>9</q></p></r>"
	assertUnion(t, doc, "//p[m]/q | //p[q>8]/q")
	assertUnion(t, doc, "//p[m] | //p[q=9]")
}

func TestUnionIntrospection(t *testing.T) {
	q := MustCompile("//a[b] | //c")
	if q.Size() != 3 {
		t.Fatalf("Size = %d", q.Size())
	}
	if q.String() != "//a[b] | //c" {
		t.Fatalf("String = %q", q.String())
	}
	if !strings.Contains(q.MachineDescription(), "|\n") {
		t.Fatalf("MachineDescription:\n%s", q.MachineDescription())
	}
}

func TestUnionCount(t *testing.T) {
	q := MustCompile("//a | //b")
	n, err := q.Count(strings.NewReader("<r><a/><b/><a/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Count = %d", n)
	}
}

func TestUnionStatsMerged(t *testing.T) {
	q := MustCompile("//a | //b")
	stats, err := q.Stream(strings.NewReader("<r><a/><b/></r>"), Options{CountOnly: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushes != 2 || stats.Events == 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestUnionInQuerySet(t *testing.T) {
	qs, err := NewQuerySet("//a | //b", "//c")
	if err != nil {
		t.Fatal(err)
	}
	doc := "<r><a/><b/><c/><a/></r>"
	counts, err := qs.Counts(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Ordered union inside a set.
	var values []string
	_, err = qs.Stream(strings.NewReader("<r><b>2</b><a>1</a></r>"), Options{Ordered: true}, func(sr SetResult) error {
		if sr.QueryIndex == 0 {
			values = append(values, sr.Value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 || values[0] != "<b>2</b>" || values[1] != "<a>1</a>" {
		t.Fatalf("ordered union in set: %q", values)
	}
}

// Randomized union equivalence against the DOM oracle.
func TestUnionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for i := 0; i < trials; i++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		q1 := datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
		q2 := datagen.RandomQuery(rng, datagen.DefaultRandomTree, false)
		assertUnion(t, doc, q1+" | "+q2)
	}
}

func TestUnionParseErrors(t *testing.T) {
	for _, src := range []string{"//a |", "| //a", "//a | [b]", "//a[b | c]"} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}
