// Benchmarks regenerating the ViteX paper's quantitative claims, one per
// experiment in DESIGN.md §3 (run `go test -bench=. -benchmem`), plus the
// ablations of DESIGN.md §5. cmd/vitexbench runs the same experiments at
// paper scale with formatted report tables; these benches provide the
// ns/op / B/op view over smaller, benchmark-friendly corpora.
package vitex

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// proteinDoc caches a 4MiB protein corpus across benchmarks.
var proteinDoc = func() string {
	return datagen.Protein{TargetBytes: 4 << 20, Seed: 1}.String()
}()

// BenchmarkE1ParseOnly measures the SAX-parsing share of E1 (the paper's
// 4.43s of 6.02s): a pure scan with a no-op handler.
func BenchmarkE1ParseOnly(b *testing.B) {
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	b.SetBytes(int64(len(proteinDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := xmlscan.NewScanner(strings.NewReader(proteinDoc)).Run(nop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1ProteinQuery measures the full E1 pipeline:
// //ProteinEntry[reference]/@id through parse + TwigM.
func BenchmarkE1ProteinQuery(b *testing.B) {
	prog := twigm.MustCompile(datagen.PaperProteinQuery)
	b.SetBytes(int64(len(proteinDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run := prog.Start(twigm.Options{})
		if err := xmlscan.NewScanner(strings.NewReader(proteinDoc)).Run(run); err != nil {
			b.Fatal(err)
		}
		if run.Count() == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkE2Memory is E2's allocation view: B/op must stay flat across
// input sizes (compare the E2Memory/1MB and /4MB lines), the benchmark form
// of "memory stable at 1MB".
func BenchmarkE2Memory(b *testing.B) {
	prog := twigm.MustCompile(datagen.PaperProteinQuery)
	for _, mb := range []int{1, 2, 4} {
		doc := datagen.Protein{TargetBytes: int64(mb) << 20, Seed: 1}.String()
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: true})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
				peak := run.Stats().PeakStackEntries
				if peak > 4 {
					b.Fatalf("peak entries %d on shallow data", peak)
				}
			}
		})
	}
}

// BenchmarkE3DataScaling sweeps input size at fixed query: ns/op must scale
// linearly with bytes (throughput column constant).
func BenchmarkE3DataScaling(b *testing.B) {
	prog := twigm.MustCompile(datagen.PaperProteinQuery)
	for _, kb := range []int{256, 512, 1024, 2048} {
		doc := datagen.Protein{TargetBytes: int64(kb) << 10, Seed: 1}.String()
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: true})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4QueryScaling sweeps query size over fixed recursive data:
// polynomial (near-linear) growth expected, versus the exponential
// pattern-match space.
func BenchmarkE4QueryScaling(b *testing.B) {
	doc := datagen.Book{SectionDepth: 12, TableDepth: 4, Repeat: 50, AuthorEvery: 1, PositionEvery: 1}.String()
	for _, k := range []int{1, 2, 4, 8} {
		src := strings.Repeat("//section", k) + "//cell"
		prog := twigm.MustCompile(src)
		b.Run(fmt.Sprintf("chain%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: true})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5NaiveVsTwigM is the central contrast of the paper's
// motivation: explicit match enumeration vs compact encoding on recursive
// chains. Compare naive/depth16 with twigm/depth16.
func BenchmarkE5NaiveVsTwigM(b *testing.B) {
	src := datagen.ChainQuery(3)
	q := xpath.MustParse(src)
	prog, err := twigm.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := naive.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{8, 12, 16} {
		doc := datagen.RecursiveChain(depth)
		b.Run(fmt.Sprintf("naive/depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := eng.Start(naive.Options{})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("twigm/depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: true})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6PaperExample runs the figure-1 worked example end to end
// (parse + machine + serialization).
func BenchmarkE6PaperExample(b *testing.B) {
	prog := twigm.MustCompile(datagen.PaperQuery)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, _, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(datagen.PaperFigure1)), twigm.Options{})
		if err != nil || len(results) != 1 {
			b.Fatalf("results=%v err=%v", results, err)
		}
	}
}

// BenchmarkE7BuildLinear measures TwigM construction cost per query size
// (claim 2: linear build).
func BenchmarkE7BuildLinear(b *testing.B) {
	for _, size := range []int{4, 16, 64} {
		var sb strings.Builder
		sb.WriteString("//n0")
		for i := 1; i < size; i++ {
			fmt.Fprintf(&sb, "//n%d", i)
		}
		q := xpath.MustParse(sb.String())
		b.Run(fmt.Sprintf("size%d", q.Size()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := twigm.Compile(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Latency measures the ticker workload end to end, the substrate
// of the incremental-delivery experiment.
func BenchmarkE8Latency(b *testing.B) {
	doc := datagen.Ticker{Trades: 5000, Seed: 1}.String()
	prog := twigm.MustCompile("//trade[symbol='ACME']/price")
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run := prog.Start(twigm.Options{})
		if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationEager compares eager satisfaction propagation (default;
// enables incremental output) against pop-time-only propagation.
func BenchmarkAblationEager(b *testing.B) {
	doc := datagen.Book{SectionDepth: 8, TableDepth: 4, Repeat: 100, AuthorEvery: 2, PositionEvery: 2}.String()
	prog := twigm.MustCompile(datagen.PaperQuery)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"eager", false}, {"popTime", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: true, DisableEagerPropagation: mode.disable})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrune compares push-time pruning of dead entries
// (attribute predicates known at push) against always-push.
func BenchmarkAblationPrune(b *testing.B) {
	// A corpus where most entries fail the attribute predicate.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sb, `<item kind="k%d"><sub><val>%d</val></sub></item>`, i%10, i)
	}
	sb.WriteString("</r>")
	doc := sb.String()
	prog := twigm.MustCompile(`//item[@kind='k3']//val`)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"prune", false}, {"noPrune", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: true, DisablePrune: mode.disable})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScannerVsEncodingXML compares the two SAX front-ends; the choice
// dominates E1's absolute numbers.
func BenchmarkScannerVsEncodingXML(b *testing.B) {
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	b.Run("xmlscan", func(b *testing.B) {
		b.SetBytes(int64(len(proteinDoc)))
		for i := 0; i < b.N; i++ {
			if err := xmlscan.NewScanner(strings.NewReader(proteinDoc)).Run(nop); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encodingxml", func(b *testing.B) {
		b.SetBytes(int64(len(proteinDoc)))
		for i := 0; i < b.N; i++ {
			if err := sax.NewStdDriver(strings.NewReader(proteinDoc)).Run(nop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuerySetSharedScan measures the multi-query extension: N queries
// over one scan versus N separate scans.
func BenchmarkQuerySetSharedScan(b *testing.B) {
	doc := datagen.Ticker{Trades: 2000, Seed: 1}.String()
	sources := []string{
		"//trade[symbol='ACME']/price",
		"//trade[symbol='GLOBEX']/price",
		"//trade[price>150]/@seq",
		"//trade/volume",
	}
	b.Run("shared", func(b *testing.B) {
		qs, err := NewQuerySet(sources...)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := qs.Counts(strings.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separate", func(b *testing.B) {
		queries := make([]*Query, len(sources))
		for i, src := range sources {
			queries[i] = MustCompile(src)
		}
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := q.Count(strings.NewReader(doc)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkQuerySetSparse contrasts the engine's routed dispatch against the
// seed's broadcast fan-out on 100 standing queries of which ~90 match
// nothing in the document. The broadcast arm reproduces the pre-engine
// QuerySet path exactly: one machine per query, every event delivered to
// every machine through sax.Fanout, a fresh non-interning scanner per
// document.
func BenchmarkQuerySetSparse(b *testing.B) {
	doc := datagen.Ticker{Trades: 2000, Seed: 1}.String()
	sources := datagen.SparseTickerQueries(10, 90)
	b.Run("routed", func(b *testing.B) {
		qs, err := NewQuerySet(sources...)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := qs.Counts(strings.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("broadcast", func(b *testing.B) {
		progs := make([]*twigm.Program, len(sources))
		for i, src := range sources {
			progs[i] = twigm.MustCompile(src)
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			handlers := make(sax.Fanout, len(progs))
			for j, p := range progs {
				handlers[j] = p.Start(twigm.Options{CountOnly: true})
			}
			if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(handlers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuerySetParallel contrasts serial routed dispatch against the
// sharded multi-core mode on the sparse 100-query standing set (the
// workload whose results must be byte-identical between the two). The
// speedup scales with GOMAXPROCS: on a single-core host the parallel arm
// only measures the pipeline overhead.
func BenchmarkQuerySetParallel(b *testing.B) {
	doc := datagen.Ticker{Trades: 2000, Seed: 1}.String()
	sources := datagen.SparseTickerQueries(10, 90)
	qs, err := NewQuerySet(sources...)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts Options) {
		// Warm the session pool so the steady state is measured.
		if _, err := qs.Stream(strings.NewReader(doc), opts, nil); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qs.Stream(strings.NewReader(doc), opts, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, Options{CountOnly: true})
	})
	b.Run(fmt.Sprintf("parallel%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		run(b, Options{CountOnly: true, Parallel: -1})
	})
}

// BenchmarkQuerySetChurn measures subscription churn on a live 100-query
// standing set: the incremental arm mutates the set in place (Add one
// pre-compiled query, then Remove it — two epoch publications, one machine
// compilation), while the recompile arm reproduces the pre-epoch behaviour
// of a mutation: rebuild the whole shared engine from the 101 parsed
// queries. The incremental path must be at least 10x cheaper at this size
// (it is typically two orders of magnitude; TestChurnCheaperThanRecompile
// asserts the floor).
func BenchmarkQuerySetChurn(b *testing.B) {
	sources := datagen.SparseTickerQueries(10, 90)
	extra := MustCompile("//trade[symbol='CHURNX']/price")
	b.Run("incrementalAdd", func(b *testing.B) {
		qs, err := NewQuerySet(sources...)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx, err := qs.Add(extra)
			if err != nil {
				b.Fatal(err)
			}
			if err := qs.Remove(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullRecompile", func(b *testing.B) {
		parsed := make([]*xpath.Query, 0, len(sources)+1)
		for _, src := range append(append([]string(nil), sources...), extra.Source()) {
			qs, err := xpath.ParseUnion(src)
			if err != nil {
				b.Fatal(err)
			}
			parsed = append(parsed, qs...)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.New(parsed...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuerySetRepeatedStream measures steady-state allocation of a
// long-lived QuerySet serving a stream of documents (the subscription
// scenario). The reused arm exercises the engine's pooled sessions — reset
// machines, warm stacks, reusable scanner; the perDocument arm rebuilds
// evaluation state for every document the way the seed did.
func BenchmarkQuerySetRepeatedStream(b *testing.B) {
	doc := datagen.Ticker{Trades: 500, Seed: 1}.String()
	sources := []string{
		"//trade[symbol='ACME']/price",
		"//trade[symbol='GLOBEX']/price",
		"//trade[price>150]/@seq",
		"//trade/volume",
		"//trade/price | //trade/volume",
	}
	b.Run("reused", func(b *testing.B) {
		qs, err := NewQuerySet(sources...)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the session pool so the steady state is measured.
		if _, err := qs.Counts(strings.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qs.Counts(strings.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perDocument", func(b *testing.B) {
		queries := make([][]*twigm.Program, len(sources))
		for i, src := range sources {
			branches, err := xpath.ParseUnion(src)
			if err != nil {
				b.Fatal(err)
			}
			for _, branch := range branches {
				prog, err := twigm.Compile(branch)
				if err != nil {
					b.Fatal(err)
				}
				queries[i] = append(queries[i], prog)
			}
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var handlers sax.Fanout
			for _, progs := range queries {
				for _, p := range progs {
					handlers = append(handlers, p.Start(twigm.Options{CountOnly: true}))
				}
			}
			if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(handlers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDOMBaseline measures the non-streaming baseline (build the whole
// tree, then evaluate) for the motivation's contrast: correct but
// memory-proportional-to-document.
func BenchmarkDOMBaseline(b *testing.B) {
	q := xpath.MustParse(datagen.PaperProteinQuery)
	b.SetBytes(int64(len(proteinDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := dom.Build(xmlscan.NewScanner(strings.NewReader(proteinDoc)))
		if err != nil {
			b.Fatal(err)
		}
		if n := len(dom.Eval(d, q)); n == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkXPathParse measures query compilation front-to-back.
func BenchmarkXPathParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.Parse(datagen.PaperQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentSerialization measures result recording (element
// fragments vs count-only).
func BenchmarkFragmentSerialization(b *testing.B) {
	doc := datagen.Book{SectionDepth: 4, TableDepth: 4, Repeat: 200, AuthorEvery: 1, PositionEvery: 1}.String()
	prog := twigm.MustCompile("//table[position]")
	for _, mode := range []struct {
		name      string
		countOnly bool
	}{{"serialize", false}, {"countOnly", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := prog.Start(twigm.Options{CountOnly: mode.countOnly})
				if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
