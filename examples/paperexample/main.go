// Paperexample replays the worked example of the ViteX paper (ICDE 2005):
// the figure-1 document against //section[author]//table[position]//cell.
//
// The paper's walkthrough: when <cell> opens on line 8 there are 9 pattern
// matches of the spine //section//table//cell (3 sections × 3 tables), and
// none of their predicate obligations are decided yet. The matches through
// table₇ and table₆ die when those tables close without a <position>; the
// match ⟨section₂, table₅, cell₈⟩ survives (position on line 11, author on
// line 15) and qualifies cell₈ as the unique solution. TwigM encodes all of
// this in three stacks without materializing a single match; the naive
// baseline materializes every one — this program shows both.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/internal/naive"
	"repro/internal/xmlscan"
	"repro/internal/xpath"

	vitex "repro"
)

func main() {
	fmt.Println("figure 1 document:")
	fmt.Println(datagen.PaperFigure1)
	fmt.Println()

	q := vitex.MustCompile(datagen.PaperQuery)
	fmt.Printf("query: %s (|Q| = %d)\n\n", q, q.Size())
	fmt.Println("TwigM machine (figure 3; '-' child edge, '=' descendant edge, '*' output):")
	fmt.Print(q.MachineDescription())
	fmt.Println()

	results, err := q.EvaluateString(datagen.PaperFigure1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TwigM solutions: %q\n", results)

	// The naive baseline on the same input: count the pattern matches it
	// stores to get the paper's "9 ways to match" concrete.
	eng, err := naive.Compile(xpath.MustParse("//section//table//cell"))
	if err != nil {
		log.Fatal(err)
	}
	_, stats, err := naive.Collect(eng, xmlscan.NewScanner(strings.NewReader(datagen.PaperFigure1)), naive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive baseline on //section//table//cell: %d pattern matches materialized (peak %d live)\n",
		stats.MatchesCreated, stats.PeakMatches)
}
