// Quickstart: compile a query, evaluate it over an in-memory document, and
// stream results from a reader — the three-call tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	vitex "repro"
)

const doc = `
<library>
  <book year="2005">
    <title>Streaming XPath Processing</title>
    <author>Chen</author>
    <author>Davidson</author>
    <price>30</price>
  </book>
  <book year="1999">
    <title>XML Path Language</title>
    <author>Clark</author>
    <price>25</price>
  </book>
  <journal year="2005">
    <title>ICDE Proceedings</title>
  </journal>
</library>`

func main() {
	// 1. One-liner evaluation: compile and collect values.
	q := vitex.MustCompile("//book[author]/title")
	titles, err := q.EvaluateString(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("titles of authored books:")
	for _, t := range titles {
		fmt.Println(" ", t)
	}

	// 2. Predicates with value comparisons, attribute outputs.
	years := vitex.MustCompile("//book[price<28]/@year")
	cheap, err := years.EvaluateString(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("years of books under 28:", cheap)

	// 3. Streaming: results arrive as soon as they are proven, with
	//    event-level latency accounting.
	stream := vitex.MustCompile("//*[title]/title/text()")
	stats, err := stream.Stream(strings.NewReader(doc), vitex.Options{}, func(r vitex.Result) error {
		fmt.Printf("streamed %q (proven at event %d)\n", r.Value, r.ConfirmedAt)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d events with %d stack pushes\n", stats.Events, stats.Pushes)

	// 4. The compiled machine is inspectable (the paper's figure-3 view).
	fmt.Println("TwigM machine for //book[author]/title:")
	fmt.Print(q.MachineDescription())
}
