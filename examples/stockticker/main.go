// Stockticker demonstrates the paper's first motivating application (§1):
// querying a live stock-market XML stream with incremental result delivery.
// The stream is produced in one goroutine through an io.Pipe and consumed by
// the TwigM machine in another; matching prices print the moment their
// predicates are proven, while the "exchange" is still emitting trades —
// requirement 2 of the paper ("incrementally produce and distribute query
// results to end users before the data is completely received").
//
// Usage: stockticker [-symbol ACME] [-trades 2000] [-above 0]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"strings"

	"repro/internal/datagen"

	vitex "repro"
)

func main() {
	symbol := flag.String("symbol", "ACME", "symbol to watch")
	trades := flag.Int("trades", 2000, "number of trades in the stream")
	above := flag.Float64("above", 0, "only report prices above this value")
	flag.Parse()

	src := fmt.Sprintf("//trade[symbol='%s']/price", *symbol)
	if *above > 0 {
		src = fmt.Sprintf("//trade[symbol='%s' and price>%g]/price", *symbol, *above)
	}
	q, err := vitex.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("watching:", src)

	// The producer goroutine plays the exchange, dribbling the document
	// through a pipe in small chunks.
	pr, pw := io.Pipe()
	go func() {
		doc := datagen.Ticker{Trades: *trades, Seed: 42}.String()
		r := strings.NewReader(doc)
		buf := make([]byte, 512)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				if _, werr := pw.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				pw.CloseWithError(nil)
				return
			}
		}
	}()

	matches := 0
	stats, err := q.Stream(pr, vitex.Options{}, func(r vitex.Result) error {
		matches++
		if matches <= 12 || matches%50 == 0 {
			fmt.Printf("  %s trade #%d: %s (proven at stream event %d)\n", *symbol, matches, r.Value, r.ConfirmedAt)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d matching trades out of %d; %d stream events, peak %d machine entries\n",
		matches, *trades, stats.Events, stats.PeakStackEntries)
}
