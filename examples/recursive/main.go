// Recursive demonstrates the paper's core motivation (§1): on recursive
// data, the number of pattern matches is exponential in the query size, so
// an engine that stores matches explicitly blows up while TwigM's compact
// encoding stays polynomial. The program runs both engines on nested-<a>
// chains of growing depth against //a//a//a//b and prints the contrast —
// the live version of experiment E5.
//
// Usage: recursive [-maxdepth 26] [-limit 2000000]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/naive"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

func main() {
	maxDepth := flag.Int("maxdepth", 26, "largest recursion depth to try")
	limit := flag.Int("limit", 2_000_000, "naive engine match limit")
	flag.Parse()

	src := datagen.ChainQuery(3) // //a//a//a//b
	q := xpath.MustParse(src)
	prog, err := twigm.Compile(q)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := naive.Compile(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s over <a><a>…<b/>…</a></a> chains\n\n", src)
	fmt.Printf("%6s  %15s  %12s  %14s  %12s\n", "depth", "naive matches", "naive time", "twigm entries", "twigm time")
	for depth := 4; depth <= *maxDepth; depth += 2 {
		doc := datagen.RecursiveChain(depth)

		nrun := eng.Start(naive.Options{MaxMatches: *limit})
		nt := time.Now()
		nerr := xmlscan.NewScanner(strings.NewReader(doc)).Run(nrun)
		nel := time.Since(nt)
		nstats := nrun.Stats()

		trun := prog.Start(twigm.Options{CountOnly: true})
		tt := time.Now()
		if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(trun); err != nil {
			log.Fatal(err)
		}
		tel := time.Since(tt)
		tstats := trun.Stats()

		naiveMatches := fmt.Sprint(nstats.PeakMatches)
		naiveTime := nel.Round(time.Microsecond).String()
		if errors.Is(nerr, naive.ErrMatchLimit) {
			naiveMatches = fmt.Sprintf(">%d", *limit)
			naiveTime = "gave up"
		} else if nerr != nil {
			log.Fatal(nerr)
		}
		fmt.Printf("%6d  %15s  %12s  %14d  %12s\n",
			depth, naiveMatches, naiveTime, tstats.PeakStackEntries, tel.Round(time.Microsecond))
	}
	fmt.Println("\nTwigM state grows linearly with depth; the naive engine's explicitly")
	fmt.Println("stored pattern matches grow combinatorially — the paper's exponential gap.")
}
