// Protein reproduces the paper's headline measurement (§2 claim 5) at a
// configurable scale: //ProteinEntry[reference]/@id over a PIR-shaped
// protein corpus, reporting total time, SAX-parse share and peak engine
// memory — the numbers behind "6.02 seconds (including 4.43 seconds for SAX
// parsing)" and "memory requirement … stable at 1MB" on the 75MB dataset.
//
// Usage: protein [-mb 75]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/sax"
	"repro/internal/xmlscan"

	vitex "repro"
)

func main() {
	mb := flag.Int("mb", 8, "corpus size in MiB (paper scale: 75)")
	flag.Parse()

	path := filepath.Join(os.TempDir(), fmt.Sprintf("vitex-example-protein-%dMB.xml", *mb))
	if _, err := os.Stat(path); err != nil {
		fmt.Printf("generating %dMiB protein corpus...\n", *mb)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := (datagen.Protein{TargetBytes: int64(*mb) << 20, Seed: 1}).WriteTo(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	st, _ := os.Stat(path)
	fmt.Printf("corpus: %s (%s)\n", path, metrics.Bytes(uint64(st.Size())))

	// Phase 1: SAX parsing alone (the paper's 4.43s share).
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	t := metrics.StartTimer()
	events := 0
	err = xmlscan.NewScanner(f).Run(sax.HandlerFunc(func(*sax.Event) error { events++; return nil }))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	parse := t.Elapsed()
	fmt.Printf("SAX parse only:  %v (%d events, %s)\n", parse, events, metrics.Throughput(st.Size(), parse))

	// Phase 2: the full query pipeline with heap sampling.
	q := vitex.MustCompile(datagen.PaperProteinQuery)
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	count := 0
	t = metrics.StartTimer()
	stats, err := q.Stream(f, vitex.Options{CountOnly: true}, func(vitex.Result) error {
		count++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	total := t.Elapsed()
	fmt.Printf("parse + TwigM:   %v (%s), %d ids found\n", total, metrics.Throughput(st.Size(), total), count)
	fmt.Printf("parse share:     %.0f%% (paper: 74%%)\n", float64(parse)/float64(total)*100)
	fmt.Printf("peak machine state: %d stack entries, %s buffered\n",
		stats.PeakStackEntries, metrics.Bytes(uint64(stats.PeakBufferedBytes)))
}
