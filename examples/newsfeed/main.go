// Newsfeed demonstrates the "electronic personalized newspapers" motivation
// of the paper's introduction with the QuerySet API: many standing
// subscriptions evaluated over a single sequential scan of one feed. Each
// subscriber registers an XPath query; the feed is parsed once and every
// TwigM machine advances on the same event stream — the multi-query
// deployment a stream system actually runs.
package main

import (
	"fmt"
	"log"
	"strings"

	vitex "repro"
)

const feed = `
<feed>
  <story id="1" section="tech">
    <headline>Streaming engines reach polynomial time</headline>
    <byline><author>Chen</author></byline>
    <tags><tag>xml</tag><tag>databases</tag></tags>
    <priority>2</priority>
  </story>
  <story id="2" section="sports">
    <headline>Local team wins again</headline>
    <tags><tag>football</tag></tags>
    <priority>5</priority>
  </story>
  <story id="3" section="tech">
    <headline>New protein dataset released</headline>
    <byline><author>Davidson</author><author>Zheng</author></byline>
    <tags><tag>biology</tag><tag>databases</tag></tags>
    <priority>1</priority>
  </story>
  <story id="4" section="finance">
    <headline>Markets steady</headline>
    <priority>4</priority>
  </story>
</feed>`

func main() {
	subscribers := []struct {
		name  string
		query string
	}{
		{"alice (tech headlines)", "//story[@section='tech']/headline/text()"},
		{"bob (database stories by Chen)", "//story[tags/tag='databases' and byline/author='Chen']/@id"},
		{"carol (anything urgent)", "//story[priority<=2]/headline/text()"},
		{"dave (bylined stories)", "//story[byline]/@id"},
	}

	sources := make([]string, len(subscribers))
	for i, s := range subscribers {
		sources[i] = s.query
	}
	qs, err := vitex.NewQuerySet(sources...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d subscriptions, one scan of the feed:\n\n", qs.Len())
	// Parallel: -1 shards the machines over GOMAXPROCS workers; results
	// and their order are byte-identical to a serial run, and this
	// callback still executes sequentially on this goroutine.
	stats, err := qs.Stream(strings.NewReader(feed), vitex.Options{Parallel: -1}, func(r vitex.SetResult) error {
		fmt.Printf("  -> %-32s %s\n", subscribers[r.QueryIndex].name, r.Value)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfeed parsed once: %d events drove %d machines (%d total stack pushes)\n",
		stats[0].Events, qs.Len(), sumPushes(stats))
}

func sumPushes(stats []vitex.Stats) int64 {
	var n int64
	for _, s := range stats {
		n += s.Pushes
	}
	return n
}
