// Newsfeed demonstrates the "electronic personalized newspapers" motivation
// of the paper's introduction, end to end over the wire: it boots a live
// vitexd broker on loopback, registers each subscriber's standing XPath
// query over HTTP, publishes the feed once, and streams every subscriber's
// matches back as NDJSON — the publish/subscribe deployment the paper
// motivates, running the same shared-scan engine the library exposes (the
// feed is parsed once per channel, however many subscriptions stand).
//
// The wire protocol in play (see README "Serving"):
//
//	POST /channels/news/subscriptions            XPath text -> {"id": "s1"}
//	GET  /channels/news/subscriptions/s1/results NDJSON deliveries
//	POST /channels/news/documents                the feed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/internal/server"
)

const feed = `
<feed>
  <story id="1" section="tech">
    <headline>Streaming engines reach polynomial time</headline>
    <byline><author>Chen</author></byline>
    <tags><tag>xml</tag><tag>databases</tag></tags>
    <priority>2</priority>
  </story>
  <story id="2" section="sports">
    <headline>Local team wins again</headline>
    <tags><tag>football</tag></tags>
    <priority>5</priority>
  </story>
  <story id="3" section="tech">
    <headline>New protein dataset released</headline>
    <byline><author>Davidson</author><author>Zheng</author></byline>
    <tags><tag>biology</tag><tag>databases</tag></tags>
    <priority>1</priority>
  </story>
  <story id="4" section="finance">
    <headline>Markets steady</headline>
    <priority>4</priority>
  </story>
</feed>`

func main() {
	// A live vitexd: broker + HTTP API on a loopback port. In production
	// this is `vitexd -addr :8344` in its own process; the wire protocol is
	// identical.
	broker := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.Handler(broker)}
	go srv.Serve(ln)
	fmt.Printf("vitexd serving on %s\n\n", ln.Addr())

	cl := client.New("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	subscribers := []struct {
		name  string
		query string
	}{
		{"alice (tech headlines)", "//story[@section='tech']/headline/text()"},
		{"bob (database stories by Chen)", "//story[tags/tag='databases' and byline/author='Chen']/@id"},
		{"carol (anything urgent)", "//story[priority<=2]/headline/text()"},
		{"dave (bylined stories)", "//story[byline]/@id"},
	}

	// Register every subscription over the wire and attach its NDJSON
	// result stream; each consumer prints deliveries as they arrive.
	var wg sync.WaitGroup
	for _, s := range subscribers {
		resp, err := cl.Subscribe(ctx, "news", s.query)
		if err != nil {
			log.Fatal(err)
		}
		stream, err := cl.Results(ctx, "news", resp.ID)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			defer stream.Close()
			for {
				d, err := stream.Next()
				if err != nil {
					return
				}
				switch d.Type {
				case server.DeliveryResult:
					fmt.Printf("  -> %-32s %s\n", name, d.Value)
				case server.DeliveryEnd:
					return
				}
			}
		}(s.name)
	}

	fmt.Printf("%d subscriptions on channel \"news\", publishing the feed once:\n\n", len(subscribers))
	pub, err := cl.Publish(ctx, "news", strings.NewReader(feed))
	if err != nil {
		log.Fatal(err)
	}

	// Graceful drain: every proven result is delivered, every stream ends
	// with an explicit end marker, then the daemon exits.
	if err := broker.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	srv.Shutdown(ctx)

	fmt.Printf("\nfeed parsed once: %d events drove %d subscriptions, %d matches delivered over the wire\n",
		pub.Events, len(subscribers), pub.Results)
}
