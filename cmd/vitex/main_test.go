package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// execCLI runs the CLI with a document on stdin and returns stdout.
func execCLI(t *testing.T, stdin string, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), err
}

func TestCLIPaperExample(t *testing.T) {
	out, _, err := execCLI(t, datagen.PaperFigure1, "-q", datagen.PaperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "<cell> A </cell>" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLICount(t *testing.T) {
	out, _, err := execCLI(t, "<r><a/><a/><a/></r>", "-q", "//a", "-count")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "3" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIEngines(t *testing.T) {
	doc := datagen.PaperFigure1
	var outs []string
	for _, engine := range []string{"twigm", "naive", "dom"} {
		out, _, err := execCLI(t, doc, "-q", "//table[position]//cell", "-engine", engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("engines disagree: %q", outs)
	}
}

func TestCLIMachine(t *testing.T) {
	out, _, err := execCLI(t, "", "-q", datagen.PaperQuery, "-machine")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"=section", "-author", "=cell *"} {
		if !strings.Contains(out, want) {
			t.Fatalf("machine output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIStats(t *testing.T) {
	_, stderr, err := execCLI(t, "<r><a/></r>", "-q", "//a", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "events=") || !strings.Contains(stderr, "pushes=") {
		t.Fatalf("stats = %q", stderr)
	}
	_, stderr, err = execCLI(t, "<r><a/></r>", "-q", "//a", "-engine", "naive", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "peakMatches=") {
		t.Fatalf("naive stats = %q", stderr)
	}
}

func TestCLIOrderedAndStd(t *testing.T) {
	out, _, err := execCLI(t, "<r><a>1</a><a>2</a></r>", "-q", "//a", "-ordered", "-std")
	if err != nil {
		t.Fatal(err)
	}
	if out != "<a>1</a>\n<a>2</a>\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIFileInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte("<r><a>hi</a></r>"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := execCLI(t, "", "-q", "//a/text()", path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "hi" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // missing -q
		{"-q", "bad query ["},               // parse error
		{"-q", "//a", "-engine", "quantum"}, // unknown engine
		{"-q", "//a[b or c]", "-engine", "naive"}, // naive can't do 'or'
	}
	for _, args := range cases {
		if _, _, err := execCLI(t, "<a/>", args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
	// Malformed input.
	if _, _, err := execCLI(t, "<a><b></a>", "-q", "//a"); err == nil {
		t.Error("malformed input: expected error")
	}
	// Missing file.
	if _, _, err := execCLI(t, "", "-q", "//a", "/does/not/exist.xml"); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestCLIDOMCount(t *testing.T) {
	out, _, err := execCLI(t, "<r><a/><a/></r>", "-q", "//a", "-engine", "dom", "-count", "-std")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "2" {
		t.Fatalf("out = %q", out)
	}
}
