// Command vitex runs an XPath query over an XML file or stdin, streaming
// results as they are proven — the demo binary of the ViteX system.
//
// Usage:
//
//	vitex -q QUERY [flags] [file.xml]
//
// With no file, the document is read from stdin, so it composes with any
// stream source:
//
//	generate-feed | vitex -q "//trade[symbol='ACME']/price"
//
// Flags:
//
//	-q string   the XPath query (required)
//	-engine     twigm (default) | naive | dom — engine selection; naive and
//	            dom are the paper's baselines
//	-count      print only the number of solutions
//	-ordered    deliver results in document order (twigm only; naive and
//	            dom always order results)
//	-stats      print evaluation statistics to stderr
//	-machine    print the TwigM machine tree (figure-3 view) and exit
//	-std        use encoding/xml instead of the custom scanner
//	-trace      log every TwigM machine transition to stderr (demo view)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dom"
	"repro/internal/naive"
	"repro/internal/sax"
	"repro/internal/xmlscan"
	"repro/internal/xpath"

	vitex "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vitex:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vitex", flag.ContinueOnError)
	fs.SetOutput(stderr)
	query := fs.String("q", "", "XPath query (required)")
	engine := fs.String("engine", "twigm", "engine: twigm | naive | dom")
	countOnly := fs.Bool("count", false, "print only the solution count")
	ordered := fs.Bool("ordered", false, "deliver results in document order")
	stats := fs.Bool("stats", false, "print evaluation statistics to stderr")
	machine := fs.Bool("machine", false, "print the TwigM machine tree and exit")
	std := fs.Bool("std", false, "use encoding/xml instead of the custom scanner")
	traceFlag := fs.Bool("trace", false, "log every TwigM machine transition to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		fs.Usage()
		return fmt.Errorf("-q is required")
	}

	if *machine {
		q, err := vitex.Compile(*query)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, q.MachineDescription())
		return nil
	}

	input := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	}

	switch *engine {
	case "twigm":
		var trace io.Writer
		if *traceFlag {
			trace = stderr
		}
		return runTwigM(*query, input, stdout, stderr, *countOnly, *ordered, *std, *stats, trace)
	case "naive":
		return runNaive(*query, input, stdout, stderr, *countOnly, *stats)
	case "dom":
		return runDOM(*query, input, stdout, *countOnly, *std)
	default:
		return fmt.Errorf("unknown engine %q (want twigm, naive or dom)", *engine)
	}
}

func runTwigM(query string, input io.Reader, stdout, stderr io.Writer, countOnly, ordered, std, wantStats bool, trace io.Writer) error {
	q, err := vitex.Compile(query)
	if err != nil {
		return err
	}
	n := int64(0)
	emit := func(r vitex.Result) error {
		n++
		if !countOnly {
			fmt.Fprintln(stdout, r.Value)
		}
		return nil
	}
	st, err := q.Stream(input, vitex.Options{Ordered: ordered, CountOnly: countOnly, UseStdParser: std, Trace: trace}, emit)
	if err != nil {
		return err
	}
	if countOnly {
		fmt.Fprintln(stdout, n)
	}
	if wantStats {
		fmt.Fprintf(stderr, "events=%d pushes=%d flagProps=%d candidates=%d emitted=%d dropped=%d peakEntries=%d peakBufferedBytes=%d maxDepth=%d\n",
			st.Events, st.Pushes, st.FlagProps, st.CandidatesCreated, st.CandidatesEmitted, st.CandidatesDropped,
			st.PeakStackEntries, st.PeakBufferedBytes, st.MaxDepth)
	}
	return nil
}

func runNaive(query string, input io.Reader, stdout, stderr io.Writer, countOnly, wantStats bool) error {
	parsed, err := xpath.Parse(query)
	if err != nil {
		return err
	}
	eng, err := naive.Compile(parsed)
	if err != nil {
		return err
	}
	results, st, err := naive.Collect(eng, xmlscan.NewScanner(input), naive.Options{})
	if err != nil {
		return err
	}
	if countOnly {
		fmt.Fprintln(stdout, len(results))
	} else {
		for _, r := range results {
			fmt.Fprintln(stdout, r.Value)
		}
	}
	if wantStats {
		fmt.Fprintf(stderr, "events=%d matchesCreated=%d peakMatches=%d solutions=%d\n",
			st.Events, st.MatchesCreated, st.PeakMatches, st.Solutions)
	}
	return nil
}

func runDOM(query string, input io.Reader, stdout io.Writer, countOnly, std bool) error {
	parsed, err := xpath.Parse(query)
	if err != nil {
		return err
	}
	var drv sax.Driver
	if std {
		drv = sax.NewStdDriver(input)
	} else {
		drv = xmlscan.NewScanner(input)
	}
	d, err := dom.Build(drv)
	if err != nil {
		return err
	}
	nodes := dom.Eval(d, parsed)
	if countOnly {
		fmt.Fprintln(stdout, len(nodes))
		return nil
	}
	for _, n := range nodes {
		fmt.Fprintln(stdout, n.Serialize())
	}
	return nil
}
