// Command vitexlint is the repository's static-analysis gate: a multichecker
// carrying the four repo-specific analyzers (cowsafety, resetcomplete,
// hotalloc, metricsync) that machine-check the invariants the engine's
// correctness story rests on. See docs/invariants.md for the annotation
// vocabulary.
//
// It runs two ways:
//
//	vitexlint ./...            # standalone, loads packages via go list
//	go vet -vettool=$(pwd)/vitexlint ./...   # as a vet tool (used in CI)
//
// The vet-tool mode speaks cmd/go's unitchecker protocol: -V=full for the
// build cache key, -flags for flag discovery, and an invocation per package
// with a vet.cfg JSON file argument.
//
// Both modes check production code only: _test.go files are excluded (the
// standalone loader reads go list's GoFiles; the vet-tool mode filters test
// files out of the package variants cmd/go feeds it). The invariants are
// statements about the engine's runtime behavior — tests allocate, mutate
// and lock freely.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/cowsafety"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/metricsync"
	"repro/internal/lint/resetcomplete"
)

// analyzers is the suite, in deterministic report order.
var analyzers = []*lint.Analyzer{
	cowsafety.Analyzer,
	hotalloc.Analyzer,
	metricsync.Analyzer,
	resetcomplete.Analyzer,
}

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags; cmd/go requires valid JSON here.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitcheck(args[0]))
		}
	}
	os.Exit(standalone(args))
}

// printVersion implements -V=full. cmd/go derives the vet cache key from
// this entire line, so it must change whenever the binary does: embed a hash
// of our own executable.
func printVersion() {
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = hex.EncodeToString(h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("vitexlint version 1.0.0-%s\n", sum)
}

// standalone loads the given package patterns (default ./...) from the
// current directory and runs the suite, printing findings to stderr.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vitexlint: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := runSuite(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vitexlint: %v\n", err)
			return 1
		}
		found += len(diags)
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

// A located diagnostic, print-ready and sortable.
type finding struct {
	file     string
	line     int
	col      int
	analyzer string
	msg      string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.file, f.line, f.col, f.analyzer, f.msg)
}

// runSuite applies every analyzer to one loaded package and returns the
// findings in file/position order.
func runSuite(pkg *lint.Package) ([]finding, error) {
	var out []finding
	pass := &lint.Pass{
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}
	for _, a := range analyzers {
		pass.Analyzer = a
		name := a.Name
		pass.Report = func(d lint.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, finding{file: pos.Filename, line: pos.Line, col: pos.Column, analyzer: name, msg: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		if out[i].line != out[j].line {
			return out[i].line < out[j].line
		}
		return out[i].col < out[j].col
	})
	return out, nil
}
