package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON config cmd/go writes for each vet invocation
// (see $GOROOT/src/cmd/go/internal/work/exec.go, type vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string

	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	Standard    map[string]bool

	PackageVetx map[string]string // canonical path -> vetx file (facts; unused)
	VetxOnly    bool              // only write vetx, no diagnostics wanted
	VetxOutput  string            // write facts here

	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite on one package described by a cmd/go vet.cfg
// file, printing diagnostics to stderr. Exit codes follow the unitchecker
// convention: 0 clean, 1 tool failure, 2 diagnostics.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vitexlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vitexlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go reads VetxOutput back for its cache even when no analyzer
	// exports facts; write it first so every exit path below is cacheable.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("vitexlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "vitexlint: %v\n", err)
			return 1
		}
	}
	// Dependency-only invocations exist to propagate analyzer facts; this
	// suite exports none, so they are no-ops (this also skips the entire
	// standard library when vetting with -vettool).
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	// The invariants target production code only; go vet also feeds test
	// package variants, whose _test.go files are out of scope (matching
	// standalone mode, which loads go list's GoFiles without tests).
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !isTestFile(name) {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "vitexlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := lint.NewImporter(fset, exportMap(&cfg))
	tpkg, info, err := lint.TypeCheck(cfg.ImportPath, fset, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vitexlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := runSuite(&lint.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vitexlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isTestFile reports whether a Go file name (absolute or not) is a test file.
func isTestFile(name string) bool {
	return strings.HasSuffix(filepath.Base(name), "_test.go")
}

// exportMap flattens the cfg's two-level import resolution (import path ->
// canonical path -> export file) into the single map the importer wants.
func exportMap(cfg *vetConfig) map[string]string {
	exports := make(map[string]string, len(cfg.PackageFile))
	for canonical, file := range cfg.PackageFile {
		exports[canonical] = file
	}
	for path, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = file
		}
	}
	return exports
}
