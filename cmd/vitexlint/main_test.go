package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the vitexlint binary into a temp dir once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vitexlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vitexlint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestSuiteCleanStandalone is the zero-suppressions acceptance gate: the
// whole repository passes the suite in standalone mode.
func TestSuiteCleanStandalone(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("vitexlint ./... failed: %v\n%s", err, out)
	}
}

// TestSuiteCleanAsVetTool runs the same gate through cmd/go's vet -vettool
// protocol, the way CI invokes it.
func TestSuiteCleanAsVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("go vet over the whole repository in -short mode")
	}
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestSuiteReportsViolations proves the gate actually gates: a scratch module
// with one violation per analyzer fails with each analyzer's diagnostic.
func TestSuiteReportsViolations(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.24\n")
	write("scratch.go", `package scratch

import "sync"

// Doc is copy-on-write.
//
//vitex:cow
type Doc struct{ n int }

// Mutate writes outside any cowmut function.
func Mutate(d *Doc) { d.n++ }

// Buf is pooled.
//
//vitex:pooled
type Buf struct {
	data []byte
	pos  int
}

// Reset misses pos.
func (b *Buf) Reset() { b.data = b.data[:0] }

// Hot allocates.
//
//vitex:hotpath
func Hot() map[string]int { return map[string]int{} }

// Stats has an unannotated plain counter.
//
//vitex:counters
type Stats struct {
	mu   sync.Mutex
	hits int64
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("vitexlint passed a module with violations:\n%s", out)
	}
	for _, want := range []string{"cowsafety", "resetcomplete", "hotalloc", "metricsync"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %s diagnostic:\n%s", want, out)
		}
	}
}
