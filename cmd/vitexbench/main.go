// Command vitexbench regenerates the quantitative claims of the ViteX paper
// (experiments E1-E8; see DESIGN.md §3 and EXPERIMENTS.md). At the default
// scale it reproduces the paper's setting — a 75MB protein corpus — which
// takes a few seconds per experiment plus one-time corpus generation; use
// -mb to scale down.
//
// It also maintains the repository's machine-readable performance trajectory:
// `vitexbench -exp bench` runs the engine workloads (single query, and routed
// QuerySet evaluation at 1/10/100 standing queries) and writes one
// BENCH_<workload>.json per workload — events/sec, ns/event, allocs/op, peak
// stack entries — so later engine changes can diff against committed numbers.
//
// Usage:
//
//	vitexbench [-exp e1,e2,...,bench|all] [-mb 75] [-seed 1] [-dir cache-dir]
//	           [-benchdir .] [-trades 20000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vitexbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vitexbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "comma-separated experiments (e1..e9, bench, bench-smoke) or 'all'")
	mb := fs.Int("mb", 75, "protein corpus size in MiB (paper: 75)")
	seed := fs.Int64("seed", 1, "generator seed")
	dir := fs.String("dir", "", "corpus cache directory (default: OS temp dir)")
	benchDir := fs.String("benchdir", ".", "directory for BENCH_*.json files (-exp bench)")
	trades := fs.Int("trades", 20000, "ticker feed size for -exp bench")
	overlap := fs.Float64("overlap", 0.9, "fraction of queries sharing a prefix in the queryset_*_overlap/1000/10000 workloads")
	baseline := fs.String("baseline", "", "directory with committed BENCH_*.json records; compare queryset_100 ns/event and fail on a >20% regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{ProteinMB: *mb, Seed: *seed, Dir: *dir, Out: os.Stderr}

	want := map[string]bool{}
	if *exp == "all" {
		for i := 1; i <= 9; i++ {
			want[fmt.Sprintf("e%d", i)] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.ToLower(strings.TrimSpace(e))] = true
		}
	}

	// Memory-scaling sizes for E2/E3: quarter points up to the full size.
	sizes := []int{*mb / 8, *mb / 4, *mb / 2, *mb}
	var cleaned []int
	for _, s := range sizes {
		if s >= 1 {
			cleaned = append(cleaned, s)
		}
	}
	if len(cleaned) == 0 {
		cleaned = []int{1}
	}

	section := func(table string) {
		fmt.Fprintln(stdout, table)
	}

	if want["e1"] {
		res, err := cfg.RunE1()
		if err != nil {
			return fmt.Errorf("E1: %w", err)
		}
		section(res.Table)
	}
	if want["e2"] {
		res, err := cfg.RunE2(cleaned)
		if err != nil {
			return fmt.Errorf("E2: %w", err)
		}
		section(res.Table)
	}
	if want["e3"] {
		res, err := cfg.RunE3(cleaned)
		if err != nil {
			return fmt.Errorf("E3: %w", err)
		}
		section(res.Table)
	}
	if want["e4"] {
		res, err := cfg.RunE4(10, 200)
		if err != nil {
			return fmt.Errorf("E4: %w", err)
		}
		section(res.Table)
	}
	if want["e5"] {
		res, err := cfg.RunE5([]int{6, 10, 14, 18, 22, 26}, 5_000_000)
		if err != nil {
			return fmt.Errorf("E5: %w", err)
		}
		section(res.Table)
		resb, err := cfg.RunE5b(20, 7, 5_000_000)
		if err != nil {
			return fmt.Errorf("E5b: %w", err)
		}
		section(resb.Table)
	}
	if want["e6"] {
		res, err := cfg.RunE6()
		if err != nil {
			return fmt.Errorf("E6: %w", err)
		}
		fmt.Fprintln(stdout, "TwigM machine (figure 3):")
		fmt.Fprint(stdout, res.Machine)
		section(res.Table)
	}
	if want["e7"] {
		res, err := cfg.RunE7([]int{1, 9, 17, 33, 63}, 5000)
		if err != nil {
			return fmt.Errorf("E7: %w", err)
		}
		section(res.Table)
	}
	if want["e8"] {
		res, err := cfg.RunE8(100000)
		if err != nil {
			return fmt.Errorf("E8: %w", err)
		}
		section(res.Table)
	}
	if want["e9"] {
		res, err := cfg.RunE9(100000)
		if err != nil {
			return fmt.Errorf("E9: %w", err)
		}
		section(res.Table)
	}
	if want["bench"] || want["bench-smoke"] {
		smoke := !want["bench"]
		if err := benchWorkloads(*benchDir, *trades, *overlap, smoke, stdout); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		// The pure-scan workload runs in smoke too: the CI bench guard
		// compares its ticker MB/s against the committed baseline.
		if err := scannerThroughput(*benchDir, *trades, smoke, stdout); err != nil {
			return fmt.Errorf("bench: scanner_throughput: %w", err)
		}
		if !smoke {
			if err := serverThroughput(*benchDir, *trades, stdout); err != nil {
				return fmt.Errorf("bench: server_throughput: %w", err)
			}
		}
		// The recovery workload runs in smoke too: the CI bench guard
		// compares its replay rate against the committed baseline.
		if err := serverRecovery(*benchDir, stdout); err != nil {
			return fmt.Errorf("bench: server_recovery: %w", err)
		}
		if *baseline != "" {
			if err := checkBaseline(*benchDir, *baseline, stdout); err != nil {
				return err
			}
		}
	}
	return nil
}
