package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/internal/datagen"
	"repro/internal/server"
)

// ServerScaleRecord is one standing-set size of the server_throughput
// workload: end-to-end performance of the full wire path — HTTP ingest,
// bounded queue, shared-scan evaluation, NDJSON delivery to an attached
// consumer per subscription — over loopback.
type ServerScaleRecord struct {
	Queries    int     `json:"queries"`
	Docs       int     `json:"docs"`
	DocsPerSec float64 `json:"docs_per_sec"`
	// ResultsPerSec counts deliveries consumed from the wire, not just
	// evaluated.
	ResultsPerSec float64 `json:"results_per_sec"`
	Results       int64   `json:"results"`
	NsPerDoc      float64 `json:"ns_per_doc"`
}

// ServerBenchRecord is the BENCH_server_throughput.json payload.
type ServerBenchRecord struct {
	Name        string              `json:"name"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	NumCPU      int                 `json:"num_cpu"`
	GoVersion   string              `json:"go_version,omitempty"`
	CorpusBytes int                 `json:"corpus_bytes"`
	Policy      string              `json:"policy"`
	Scales      []ServerScaleRecord `json:"scales"`
}

// serverThroughput measures end-to-end docs/sec through a live vitexd
// broker over loopback at 1 and 100 standing queries, and writes
// BENCH_server_throughput.json. Numbers are comparable against the
// queryset_1/queryset_100 library workloads: the delta is the full serving
// overhead (HTTP framing, queueing, ring hand-off, JSON encoding).
func serverThroughput(dir string, trades int, out io.Writer) error {
	doc := datagen.Ticker{Trades: trades, Seed: 1}.String()
	rec := &ServerBenchRecord{
		Name:        "server_throughput",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		CorpusBytes: len(doc),
		Policy:      server.PolicyBlock.String(),
	}
	for _, queries := range []int{1, 100} {
		scale, err := measureServerScale(doc, queries)
		if err != nil {
			return fmt.Errorf("scale %d: %w", queries, err)
		}
		rec.Scales = append(rec.Scales, *scale)
		fmt.Fprintf(out, "%-24s %8.1f docs/s %12.0f results/s  (%d queries, %d docs)\n",
			"server_throughput", scale.DocsPerSec, scale.ResultsPerSec, queries, scale.Docs)
	}
	path := filepath.Join(dir, "BENCH_server_throughput.json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "%-24s -> %s\n", "server_throughput", path)
	return nil
}

func measureServerScale(doc string, queries int) (*ServerScaleRecord, error) {
	b := server.New(server.Config{RingSize: 1 << 14, Policy: server.PolicyBlock})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: server.Handler(b)}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.Shutdown(ctx)
		srv.Shutdown(ctx)
	}()

	cl := client.New("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	matching := (queries + 9) / 10
	sources := datagen.SparseTickerQueries(matching, queries-matching)
	var consumed int64
	var consumers sync.WaitGroup
	var mu sync.Mutex
	for _, q := range sources {
		resp, err := cl.Subscribe(ctx, "bench", q)
		if err != nil {
			return nil, err
		}
		stream, err := cl.Results(ctx, "bench", resp.ID)
		if err != nil {
			return nil, err
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			defer stream.Close()
			var n int64
			for {
				d, err := stream.Next()
				if err != nil || d.Type == server.DeliveryEnd {
					mu.Lock()
					consumed += n
					mu.Unlock()
					return
				}
				if d.Type == server.DeliveryResult {
					n++
				}
			}
		}()
	}

	publishOne := func() (int64, error) {
		resp, err := cl.Publish(ctx, "bench", strings.NewReader(doc))
		if err != nil {
			return 0, err
		}
		return resp.Results, nil
	}
	// Warm up the pooled sessions. The warm-up doc's deliveries reach the
	// consumers too (they attached at subscribe time); remember its match
	// count so the consumed total can be corrected to the measured window.
	warmupResults, err := publishOne()
	if err != nil {
		return nil, err
	}
	const minBenchTime = 2 * time.Second
	start := time.Now()
	docs := 0
	for time.Since(start) < minBenchTime {
		if _, err := publishOne(); err != nil {
			return nil, err
		}
		docs++
	}
	elapsed := time.Since(start)

	// End the streams so consumer counts settle, then collect them.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := b.Shutdown(sctx); err != nil {
		return nil, err
	}
	consumers.Wait()
	// Block policy + drain: every evaluated delivery was consumed, so the
	// warm-up's share subtracts exactly.
	consumed -= warmupResults

	nsPerDoc := float64(elapsed.Nanoseconds()) / float64(docs)
	return &ServerScaleRecord{
		Queries:       queries,
		Docs:          docs,
		DocsPerSec:    float64(docs) / elapsed.Seconds(),
		ResultsPerSec: float64(consumed) / elapsed.Seconds(),
		Results:       consumed,
		NsPerDoc:      nsPerDoc,
	}, nil
}
