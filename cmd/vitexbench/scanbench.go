package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/sax"
	"repro/internal/xmlscan"
)

// ScannerCorpusRecord is one corpus of the scanner_throughput workload: the
// front-end scanner alone (no standing queries, a null handler), measured in
// MB/s over the corpus bytes. Batched and per-event delivery are both
// recorded — their ratio is the cost of per-event interface dispatch, the
// A/B the scanner-bandwidth experiment tracks.
type ScannerCorpusRecord struct {
	Corpus      string `json:"corpus"`
	CorpusBytes int    `json:"corpus_bytes"`
	Events      int64  `json:"events"`
	// BytesPerEvent is the markup density lever: text-heavy corpora scan at
	// memory-bandwidth-bound MB/s, markup-dense ones at tag-parse-bound.
	BytesPerEvent float64 `json:"bytes_per_event"`
	// Batched delivery (sax.BatchHandler, the engine's default path).
	MBPerSec   float64 `json:"corpus_mb_per_sec"`
	NsPerEvent float64 `json:"ns_per_event"`
	// Per-event delivery (HandleEvent), the pre-batching contract.
	PerEventMBPerSec   float64 `json:"per_event_corpus_mb_per_sec"`
	PerEventNsPerEvent float64 `json:"per_event_ns_per_event"`
}

// ScannerBenchRecord is the BENCH_scanner_throughput.json payload.
type ScannerBenchRecord struct {
	Name       string                `json:"name"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"num_cpu"`
	GoVersion  string                `json:"go_version,omitempty"`
	Corpora    []ScannerCorpusRecord `json:"corpora"`
}

// scanSink counts events and otherwise discards them: the null handler that
// makes a Run measure pure scan cost. It implements both delivery contracts
// so one scanner can be driven in either mode via SetEventBatch.
type scanSink struct {
	events int64
}

func (c *scanSink) HandleEvent(ev *sax.Event) error { c.events++; return nil }

func (c *scanSink) HandleBatch(evs []sax.Event) error {
	c.events += int64(len(evs))
	return nil
}

// scannerCorpora builds the corpus set: the four engine-workload document
// families plus a synthetic text-heavy document (kilobyte text runs, sparse
// markup) that isolates the bulk-skip path. smoke keeps the two the CI guard
// compares.
func scannerCorpora(trades int, smoke bool) []struct{ name, doc string } {
	corpora := []struct{ name, doc string }{
		{"ticker", datagen.Ticker{Trades: trades, Seed: 1}.String()},
		{"text_heavy", textHeavyDoc(256, 4096)},
	}
	if smoke {
		return corpora
	}
	return append(corpora, []struct{ name, doc string }{
		{"portal", datagen.Portal{Articles: 400, Seed: 1}.String()},
		{"book", datagen.Book{SectionDepth: 4, TableDepth: 4, Repeat: 300, AuthorEvery: 2, PositionEvery: 3}.String()},
		{"protein", datagen.Protein{TargetBytes: 8 << 20, Seed: 1}.String()},
	}...)
}

// textHeavyDoc builds paras paragraphs of width bytes of plain ASCII text
// each — the best case for word-at-a-time content skipping, and the shape of
// the paper's protein corpus pushed to its limit (~99% character data).
func textHeavyDoc(paras, width int) string {
	var sb strings.Builder
	sb.Grow(paras*(width+16) + 16)
	sb.WriteString("<doc>\n")
	const unit = "the quick brown fox jumps over a lazy dog. "
	line := strings.Repeat(unit, width/len(unit)+1)[:width]
	for i := 0; i < paras; i++ {
		sb.WriteString("<p>")
		sb.WriteString(line)
		sb.WriteString("</p>\n")
	}
	sb.WriteString("</doc>\n")
	return sb.String()
}

// scannerThroughput measures the front-end scanner alone over the corpus set
// and writes BENCH_scanner_throughput.json. The engine workloads bound how
// much evaluation can cost on top; this workload bounds how fast any
// evaluation can possibly go.
func scannerThroughput(dir string, trades int, smoke bool, out io.Writer) error {
	rec := &ScannerBenchRecord{
		Name:       "scanner_throughput",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	for _, c := range scannerCorpora(trades, smoke) {
		cr, err := measureScanner(c.name, c.doc)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		rec.Corpora = append(rec.Corpora, *cr)
		fmt.Fprintf(out, "scanner_throughput %-12s %8.1f MB/s batched %8.1f MB/s per-event  (%5.1f b/event, %.1f ns/event)\n",
			c.name, cr.MBPerSec, cr.PerEventMBPerSec, cr.BytesPerEvent, cr.NsPerEvent)
	}
	path := filepath.Join(dir, "BENCH_scanner_throughput.json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "%-24s -> %s\n", "scanner_throughput", path)
	return nil
}

func measureScanner(name, doc string) (*ScannerCorpusRecord, error) {
	s := xmlscan.NewScanner(strings.NewReader(doc))
	run := func(batch int) (nsPerOp float64, events int64, err error) {
		const minBenchTime = 400 * time.Millisecond
		sink := &scanSink{}
		scan := func() error {
			s.Reset(strings.NewReader(doc))
			s.SetEventBatch(batch)
			return s.Run(sink)
		}
		if err := scan(); err != nil { // warm-up
			return 0, 0, err
		}
		events = sink.events
		sink.events = 0
		start := time.Now()
		iters := 0
		for time.Since(start) < minBenchTime {
			if err := scan(); err != nil {
				return 0, 0, err
			}
			iters++
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), events, nil
	}
	batched, events, err := run(xmlscan.DefaultEventBatch)
	if err != nil {
		return nil, err
	}
	perEvent, _, err := run(0)
	if err != nil {
		return nil, err
	}
	return &ScannerCorpusRecord{
		Corpus:             name,
		CorpusBytes:        len(doc),
		Events:             events,
		BytesPerEvent:      float64(len(doc)) / float64(events),
		MBPerSec:           float64(len(doc)) / (batched / 1e9) / 1e6,
		NsPerEvent:         batched / float64(events),
		PerEventMBPerSec:   float64(len(doc)) / (perEvent / 1e9) / 1e6,
		PerEventNsPerEvent: perEvent / float64(events),
	}, nil
}
