package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchE6AndE7(t *testing.T) {
	// E6/E7 need no corpus: fast enough for the unit suite.
	var out bytes.Buffer
	if err := run([]string{"-exp", "e6,e7", "-mb", "1", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"E6: paper worked example", "<cell> A </cell>", "E7: TwigM build time", "R²="} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestBenchE1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 1MiB corpus")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "e1", "-mb", "1", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SAX parse only") {
		t.Fatalf("report:\n%s", out.String())
	}
}

func TestBenchUnknownExpIgnored(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e99", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %s", out.String())
	}
}
