package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchE6AndE7(t *testing.T) {
	// E6/E7 need no corpus: fast enough for the unit suite.
	var out bytes.Buffer
	if err := run([]string{"-exp", "e6,e7", "-mb", "1", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"E6: paper worked example", "<cell> A </cell>", "E7: TwigM build time", "R²="} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestBenchE1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 1MiB corpus")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "e1", "-mb", "1", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SAX parse only") {
		t.Fatalf("report:\n%s", out.String())
	}
}

func TestBenchJSONWorkloads(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	// Tiny feed so each measured iteration is fast.
	if err := run([]string{"-exp", "bench", "-benchdir", dir, "-trades", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"single_query", "queryset_1", "queryset_10", "queryset_100"} {
		data, err := os.ReadFile(filepath.Join(dir, "BENCH_"+name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var rec BenchRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Name != name || rec.Events <= 0 || rec.EventsPerSec <= 0 || rec.NsPerEvent <= 0 {
			t.Fatalf("%s: implausible record %+v", name, rec)
		}
	}
	if !strings.Contains(out.String(), "queryset_100") {
		t.Fatalf("missing summary line:\n%s", out.String())
	}
	// The durability workload writes its own record shape.
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_server_recovery.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec RecoveryBenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "server_recovery" || len(rec.Scales) == 0 {
		t.Fatalf("implausible recovery record %+v", rec)
	}
	for _, s := range rec.Scales {
		if s.Docs <= 0 || s.WALBytes <= 0 || s.RecoverMs <= 0 || s.ReplayDocsPerSec <= 0 {
			t.Fatalf("implausible recovery scale %+v", s)
		}
	}
}

func TestBenchUnknownExpIgnored(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e99", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %s", out.String())
	}
}
