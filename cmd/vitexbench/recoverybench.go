package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/client"
	"repro/internal/datagen"
	"repro/internal/server"
)

// RecoveryScaleRecord is one WAL-size point of the server_recovery workload:
// how long a cold vitexd takes to recover a durable channel of that size
// (manifest load + WAL tail scan), and how fast a subscriber's full replay —
// re-evaluation of every logged document plus NDJSON delivery over loopback —
// drains afterwards.
type RecoveryScaleRecord struct {
	Docs        int   `json:"docs"`
	WALBytes    int64 `json:"wal_bytes"`
	WALSegments int   `json:"wal_segments"`
	// RecoverMs is server.Open on the populated data directory: channel
	// manifests, standing queries, and the WAL tail scan that re-establishes
	// the durable cursor.
	RecoverMs float64 `json:"recover_ms"`
	// Replay throughput: a cursor-0 resume re-evaluates the whole retained
	// log through the live QuerySet and streams the deliveries to the
	// consumer.
	ReplayResults       int64   `json:"replay_results"`
	ReplayDocsPerSec    float64 `json:"replay_docs_per_sec"`
	ReplayResultsPerSec float64 `json:"replay_results_per_sec"`
}

// RecoveryBenchRecord is the BENCH_server_recovery.json payload.
type RecoveryBenchRecord struct {
	Name       string                `json:"name"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"num_cpu"`
	GoVersion  string                `json:"go_version,omitempty"`
	DocBytes   int                   `json:"doc_bytes"`
	Query      string                `json:"query"`
	Scales     []RecoveryScaleRecord `json:"scales"`
}

// serverRecovery measures crash-recovery cost against WAL size and writes
// BENCH_server_recovery.json: for each scale it populates a durable channel,
// discards the broker, times a cold server.Open on the data directory, and
// then times a full from-zero replay into an attached consumer. Runs in both
// the full bench and the bench-smoke configuration (the CI regression guard
// compares the replay rate), so the scales must stay identical across the
// two.
func serverRecovery(dir string, out io.Writer) error {
	doc := datagen.Ticker{Trades: 50, Seed: 1}.String()
	const query = "//trade[symbol='ACME']/price"
	rec := &RecoveryBenchRecord{
		Name:       "server_recovery",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		DocBytes:   len(doc),
		Query:      query,
	}
	for _, docs := range []int{128, 512, 2048} {
		scale, err := measureRecovery(doc, query, docs)
		if err != nil {
			return fmt.Errorf("scale %d: %w", docs, err)
		}
		rec.Scales = append(rec.Scales, *scale)
		fmt.Fprintf(out, "%-24s %8.1f ms recover %10.0f docs/s replay  (%d docs, %d WAL bytes)\n",
			"server_recovery", scale.RecoverMs, scale.ReplayDocsPerSec, docs, scale.WALBytes)
	}
	path := filepath.Join(dir, "BENCH_server_recovery.json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "%-24s -> %s\n", "server_recovery", path)
	return nil
}

// serveBroker exposes a broker over loopback and returns its base URL and a
// teardown that shuts both down.
func serveBroker(b *server.Broker) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: server.Handler(b)}
	go srv.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := b.Shutdown(ctx); err != nil {
			return err
		}
		return srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func measureRecovery(doc, query string, docs int) (*RecoveryScaleRecord, error) {
	dataDir, err := os.MkdirTemp("", "vitexbench-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dataDir)
	cfg := server.Config{
		DataDir:  dataDir,
		RingSize: 1 << 14,
		Policy:   server.PolicyBlock,
		// Retention sized so the whole run stays replayable: the workload
		// measures full-log replay, not retention trimming.
		WALSegmentBytes:   16 << 20,
		WALRetainSegments: 64,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Populate: one standing subscription, then the document burst into the
	// WAL. The subscription must exist before the crash so the replay below
	// exercises the recovered standing query, as a real resume would.
	b1, err := server.Open(cfg)
	if err != nil {
		return nil, err
	}
	base, stop1, err := serveBroker(b1)
	if err != nil {
		return nil, err
	}
	cl := client.New(base)
	sub, err := cl.Subscribe(ctx, "recovery", query)
	if err != nil {
		return nil, err
	}
	// A live consumer drains during the populate burst — under the block
	// policy an unattended ring would wedge the publisher once the burst
	// outgrows it.
	live, err := cl.Results(ctx, "recovery", sub.ID)
	if err != nil {
		return nil, err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			if _, err := live.Next(); err != nil {
				return
			}
		}
	}()
	var perDoc int64
	for i := 0; i < docs; i++ {
		pub, err := cl.Publish(ctx, "recovery", strings.NewReader(doc))
		if err != nil {
			return nil, err
		}
		perDoc = pub.Results
	}
	live.Close()
	<-drained
	if perDoc == 0 {
		return nil, fmt.Errorf("workload document has no %s matches; replay would be vacuous", query)
	}
	if err := stop1(); err != nil {
		return nil, err
	}

	// The recovery under measurement: a cold open of the populated data
	// directory.
	start := time.Now()
	b2, err := server.Open(cfg)
	if err != nil {
		return nil, fmt.Errorf("recovering: %w", err)
	}
	recoverMs := float64(time.Since(start).Microseconds()) / 1e3
	if got := b2.Recovered()["recovery"]; got != int64(docs) {
		b2.Shutdown(ctx)
		return nil, fmt.Errorf("recovered cursor %d, want %d", got, docs)
	}
	base2, stop2, err := serveBroker(b2)
	if err != nil {
		return nil, err
	}
	defer stop2()
	cl2 := client.New(base2)

	// The replay under measurement: a from-zero resume drains every logged
	// document's deliveries before going live.
	stream, err := cl2.ResultsFrom(ctx, "recovery", sub.ID, 0, 0)
	if err != nil {
		return nil, err
	}
	defer stream.Close()
	want := int64(docs) * perDoc
	replayStart := time.Now()
	var results int64
	for results < want {
		d, err := stream.Next()
		if err != nil {
			return nil, fmt.Errorf("replay after %d deliveries: %w", results, err)
		}
		switch d.Type {
		case server.DeliveryResult:
			results++
		case server.DeliveryGap:
			return nil, fmt.Errorf("replay gap: %+v", d)
		case server.DeliveryEnd:
			return nil, fmt.Errorf("replay ended after %d deliveries, want %d", results, want)
		}
	}
	replay := time.Since(replayStart)

	m, err := cl2.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	return &RecoveryScaleRecord{
		Docs:                docs,
		WALBytes:            m.Totals.WALBytes,
		WALSegments:         m.Totals.WALSegments,
		RecoverMs:           recoverMs,
		ReplayResults:       results,
		ReplayDocsPerSec:    float64(docs) / replay.Seconds(),
		ReplayResultsPerSec: float64(results) / replay.Seconds(),
	}, nil
}
