package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	vitex "repro"
	"repro/internal/datagen"
	"repro/internal/engine"
)

// BenchRecord is one machine-readable benchmark result. The files seed the
// repository's performance trajectory: later engine work reruns the same
// workloads and compares against the committed numbers (the CI bench guard
// automates that for queryset_100, see checkBaseline).
type BenchRecord struct {
	Name    string `json:"name"`
	Queries int    `json:"queries"`
	// Workers is the sharded-evaluation worker count (0 = serial on the
	// calling goroutine).
	Workers    int `json:"workers,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU and GoVersion pin the host the record was measured on, so a
	// baseline comparison can spot a hardware or toolchain mismatch before
	// blaming the code.
	NumCPU       int     `json:"num_cpu"`
	GoVersion    string  `json:"go_version,omitempty"`
	CorpusBytes  int     `json:"corpus_bytes"`
	Events       int64   `json:"events"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	// CorpusMBPerSec is corpus bytes over wall time per op — the same
	// bandwidth unit the scanner_throughput workload reports, so engine
	// records and pure-scan records compare on one axis.
	CorpusMBPerSec float64 `json:"corpus_mb_per_sec"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	PeakStack      int     `json:"peak_stack_entries"`
	Results        int64   `json:"results_per_op"`

	// Prefix-overlap workloads: the generator's overlap fraction, whether
	// prefix sharing was enabled, and the dispatch/trie-sharing statistics
	// of the run — shared trie size, residual (anchored) machines, and the
	// per-event wake/push rates routed dispatch is judged by.
	Overlap            float64 `json:"overlap,omitempty"`
	SharingDisabled    bool    `json:"sharing_disabled,omitempty"`
	TrieNodes          int     `json:"trie_nodes,omitempty"`
	AnchoredMachines   int     `json:"anchored_machines,omitempty"`
	WokenPerEvent      float64 `json:"machines_woken_per_event"`
	TriePushesPerEvent float64 `json:"trie_pushes_per_event"`

	// Hot-path attribution (engine.HotStats, sampled in a separate pass
	// after the timed loop so the clock reads never touch the measured
	// numbers): how the serial per-event cost splits across scan+routing,
	// the shared prefix trie, and residual-machine dispatch.
	ScanNsPerEvent    float64 `json:"scan_ns_per_event,omitempty"`
	TrieNsPerEvent    float64 `json:"trie_ns_per_event,omitempty"`
	MachineNsPerEvent float64 `json:"machine_ns_per_event,omitempty"`
}

// benchWorkloads runs the engine benchmark suite — the original ticker
// workloads (single query, routed QuerySet at 1/10/100 standing queries,
// churn) plus the prefix-overlap workloads at 100/1000/10000 standing
// queries over the Portal corpus — and writes one BENCH_<name>.json per
// workload into dir. With smoke=true only queryset_100 and queryset_1000
// run (the CI bench-smoke configuration).
func benchWorkloads(dir string, trades int, overlap float64, smoke bool, out io.Writer) error {
	doc := datagen.Ticker{Trades: trades, Seed: 1}.String()

	single := vitex.MustCompile("//trade[symbol='ACME']/price")
	sparse := datagen.SparseTickerQueries(10, 90)
	churnQuery := vitex.MustCompile("//trade[symbol='ACME']/volume")

	// The overlap corpus and subscription generator (see datagen.Portal):
	// structural traffic concentrates on the shared prefixes, leaves
	// diverge per query.
	portalDoc := datagen.Portal{Articles: 400, Seed: 1}.String()

	type workload struct {
		name    string
		queries int
		workers int
		overlap float64
		noshare bool
		doc     string
		metrics func() engine.Metrics
		// hotstats toggles the QuerySet's hot-path sampling for the
		// post-measure attribution pass (nil when the workload has no set
		// or runs sharded, where the serial attribution would read zero).
		hotstats func(every int)
		run      func() (events int64, peak int, results int64, err error)
	}
	setRunnerOpts := func(qs *vitex.QuerySet, doc string, opts vitex.Options) func() (int64, int, int64, error) {
		return func() (int64, int, int64, error) {
			var results int64
			stats, err := qs.Stream(strings.NewReader(doc), opts,
				func(vitex.SetResult) error { results++; return nil })
			if err != nil {
				return 0, 0, 0, err
			}
			peak := 0
			for _, s := range stats {
				peak += s.PeakStackEntries
			}
			return stats[0].Events, peak, results, nil
		}
	}
	setRunner := func(qs *vitex.QuerySet, doc string) func() (int64, int, int64, error) {
		return setRunnerOpts(qs, doc, vitex.Options{CountOnly: true})
	}
	overlapWorkload := func(name string, n int, noshare bool) (workload, error) {
		sources := datagen.OverlapQueries(n, overlap, 0, 0, 42)
		qs, err := vitex.NewQuerySetConfigured(vitex.SetConfig{DisablePrefixSharing: noshare}, sources...)
		if err != nil {
			return workload{}, fmt.Errorf("%s: %w", name, err)
		}
		return workload{
			name: name, queries: n, overlap: overlap, noshare: noshare,
			doc: portalDoc, metrics: qs.Metrics, hotstats: qs.EnableHotStats,
			run: setRunner(qs, portalDoc),
		}, nil
	}

	var workloads []workload
	qs100, err := vitex.NewQuerySet(sparse...)
	if err != nil {
		return err
	}
	workloads = append(workloads, workload{
		name: "queryset_100", queries: 100, doc: doc,
		metrics: qs100.Metrics, hotstats: qs100.EnableHotStats,
		run: setRunner(qs100, doc),
	})
	w1000, err := overlapWorkload("queryset_1000", 1000, false)
	if err != nil {
		return err
	}
	workloads = append(workloads, w1000)

	if !smoke {
		qs1, err := vitex.NewQuerySet(sparse[:1]...)
		if err != nil {
			return err
		}
		qs10, err := vitex.NewQuerySet(sparse[:10]...)
		if err != nil {
			return err
		}
		parWorkers := runtime.GOMAXPROCS(0)
		pre := []workload{
			{name: "single_query", queries: 1, doc: doc, run: func() (int64, int, int64, error) {
				var results int64
				stats, err := single.Stream(strings.NewReader(doc), vitex.Options{CountOnly: true},
					func(vitex.Result) error { results++; return nil })
				return stats.Events, stats.PeakStackEntries, results, err
			}},
			{name: "queryset_1", queries: 1, doc: doc, metrics: qs1.Metrics, run: setRunner(qs1, doc)},
			{name: "queryset_10", queries: 10, doc: doc, metrics: qs10.Metrics, run: setRunner(qs10, doc)},
		}
		workloads = append(pre, workloads...)
		// The sharded multi-core mode over the same 100-query standing
		// set; compare events_per_sec against queryset_100 for the
		// parallel speedup on this host (1.0x on a single-core host,
		// where sharding falls back to the serial path).
		workloads = append(workloads, workload{
			name: "queryset_100_parallel", queries: 100, workers: parWorkers, doc: doc,
			metrics: qs100.Metrics,
			run:     setRunnerOpts(qs100, doc, vitex.Options{CountOnly: true, Parallel: parWorkers}),
		})
		// Live subscription churn: each op adds one standing query to the
		// 100-query set, serves a document with the grown set, and removes
		// the query again. Compare ns_per_event against queryset_100: the
		// gap is the whole cost of continuous churn on a serving set
		// (incremental compile + trie graft/prune + epoch publication +
		// session resync).
		workloads = append(workloads, workload{
			name: "queryset_churn", queries: 100, doc: doc, metrics: qs100.Metrics,
			run: func() (int64, int, int64, error) {
				idx, err := qs100.Add(churnQuery)
				if err != nil {
					return 0, 0, 0, err
				}
				events, peak, results, err := setRunner(qs100, doc)()
				if rerr := qs100.Remove(idx); rerr != nil && err == nil {
					err = rerr
				}
				return events, peak, results, err
			},
		})
		// Prefix-overlap pair at 100 queries: identical subscriptions with
		// sharing on and off — the ratio of their ns_per_event is the
		// prefix-sharing speedup on overlapping workloads.
		for _, spec := range []struct {
			name    string
			noshare bool
		}{{"queryset_100_overlap", false}, {"queryset_100_overlap_noshare", true}} {
			w, err := overlapWorkload(spec.name, 100, spec.noshare)
			if err != nil {
				return err
			}
			workloads = append(workloads, w)
		}
		w10000, err := overlapWorkload("queryset_10000", 10000, false)
		if err != nil {
			return err
		}
		workloads = append(workloads, w10000)
	}

	for _, w := range workloads {
		rec, err := measure(w.name, w.queries, w.workers, len(w.doc), w.metrics, w.run)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		rec.Overlap = w.overlap
		rec.SharingDisabled = w.noshare
		if w.hotstats != nil {
			// Attribution runs AFTER the timed loop: hot-stats sampling adds
			// clock pairs to the routed hot path, so it must never be live
			// while ns_per_event is being measured.
			w.hotstats(1)
			m0 := w.metrics()
			for i := 0; i < 3; i++ {
				if _, _, _, err := w.run(); err != nil {
					return fmt.Errorf("%s: attribution pass: %w", w.name, err)
				}
			}
			m1 := w.metrics()
			w.hotstats(0)
			if de := m1.Hot.Events - m0.Hot.Events; de > 0 {
				rec.ScanNsPerEvent = float64(m1.Hot.ScanNs-m0.Hot.ScanNs) / float64(de)
				rec.TrieNsPerEvent = float64(m1.Hot.TrieNs-m0.Hot.TrieNs) / float64(de)
				rec.MachineNsPerEvent = float64(m1.Hot.MachineNs-m0.Hot.MachineNs) / float64(de)
			}
		}
		path := filepath.Join(dir, "BENCH_"+w.name+".json")
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-28s %8.1f ns/event %12.0f events/s %8.1f allocs/op %6.2f woken/event  -> %s\n",
			w.name, rec.NsPerEvent, rec.EventsPerSec, rec.AllocsPerOp, rec.WokenPerEvent, path)
	}
	return nil
}

// measure times fn until at least minBenchTime has elapsed (after one
// warm-up run), tracking allocations with runtime.MemStats and dispatch
// statistics with the engine's cumulative metrics (when metricsOf is
// non-nil).
func measure(name string, queries, workers, corpusBytes int, metricsOf func() engine.Metrics, fn func() (int64, int, int64, error)) (*BenchRecord, error) {
	const minBenchTime = 500 * time.Millisecond
	events, peak, results, err := fn() // warm-up; also yields workload facts
	if err != nil {
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var m0 engine.Metrics
	if metricsOf != nil {
		m0 = metricsOf()
	}
	start := time.Now()
	iters := 0
	for time.Since(start) < minBenchTime {
		if _, _, _, err := fn(); err != nil {
			return nil, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	rec := &BenchRecord{
		Name:           name,
		Queries:        queries,
		Workers:        workers,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		GoVersion:      runtime.Version(),
		CorpusBytes:    corpusBytes,
		Events:         events,
		Iterations:     iters,
		NsPerOp:        nsPerOp,
		NsPerEvent:     nsPerOp / float64(events),
		EventsPerSec:   float64(events) / (nsPerOp / 1e9),
		CorpusMBPerSec: float64(corpusBytes) / (nsPerOp / 1e9) / 1e6,
		AllocsPerOp:    float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:     float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		PeakStack:      peak,
		Results:        results,
	}
	if metricsOf != nil {
		m1 := metricsOf()
		rec.TrieNodes = m1.TrieNodes
		rec.AnchoredMachines = m1.AnchoredMachines
		if de := m1.Events - m0.Events; de > 0 {
			rec.WokenPerEvent = float64(m1.Deliveries-m0.Deliveries) / float64(de)
			rec.TriePushesPerEvent = float64(m1.TriePushes-m0.TriePushes) / float64(de)
		}
	}
	return rec, nil
}

// checkBaseline is the benchstat-style regression guard: it compares the
// just-measured queryset_100 ns/event and the server_recovery replay rate
// against the committed baseline records in baselineDir and fails on a
// regression beyond the threshold. Run it on the same class of hardware the
// baseline was recorded on.
func checkBaseline(dir, baselineDir string, out io.Writer) error {
	const workload = "queryset_100"
	const threshold = 1.20
	read := func(d string) (*BenchRecord, error) {
		data, err := os.ReadFile(filepath.Join(d, "BENCH_"+workload+".json"))
		if err != nil {
			return nil, err
		}
		var rec BenchRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, err
		}
		return &rec, nil
	}
	base, err := read(baselineDir)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := read(dir)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	ratio := cur.NsPerEvent / base.NsPerEvent
	fmt.Fprintf(out, "bench guard: %s %.1f ns/event vs baseline %.1f (%.2fx, threshold %.2fx)\n",
		workload, cur.NsPerEvent, base.NsPerEvent, ratio, threshold)
	if ratio > threshold {
		return fmt.Errorf("bench guard: %s regressed %.2fx over the committed baseline (%.1f vs %.1f ns/event)",
			workload, ratio, cur.NsPerEvent, base.NsPerEvent)
	}
	if err := checkRecoveryBaseline(dir, baselineDir, threshold, out); err != nil {
		return err
	}
	return checkScannerBaseline(dir, baselineDir, threshold, out)
}

// checkScannerBaseline guards the front-end scanner's bandwidth: the batched
// ticker corpus MB/s of the scanner_throughput workload must not fall below
// 1/threshold of the committed baseline. The ticker corpus is the guard
// metric because it is the markup-dense extreme — tag-parse bound, the
// first place a scanner hot-path regression shows. A missing baseline record
// is skipped (the workload is newer than some checkouts), a missing current
// record is an error — the run was supposed to produce it.
func checkScannerBaseline(dir, baselineDir string, threshold float64, out io.Writer) error {
	const corpus = "ticker"
	read := func(d string) (float64, error) {
		data, err := os.ReadFile(filepath.Join(d, "BENCH_scanner_throughput.json"))
		if err != nil {
			return 0, err
		}
		var rec ScannerBenchRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return 0, err
		}
		for _, c := range rec.Corpora {
			if c.Corpus == corpus {
				return c.MBPerSec, nil
			}
		}
		return 0, fmt.Errorf("record in %s has no %s corpus", d, corpus)
	}
	base, err := read(baselineDir)
	if os.IsNotExist(err) {
		fmt.Fprintln(out, "bench guard: no committed BENCH_scanner_throughput.json baseline; skipping")
		return nil
	}
	if err != nil {
		return fmt.Errorf("scanner baseline: %w", err)
	}
	cur, err := read(dir)
	if err != nil {
		return fmt.Errorf("scanner current: %w", err)
	}
	ratio := base / cur
	fmt.Fprintf(out, "bench guard: scanner_throughput %s %.0f MB/s vs baseline %.0f (%.2fx, threshold %.2fx)\n",
		corpus, cur, base, ratio, threshold)
	if ratio > threshold {
		return fmt.Errorf("bench guard: scanner_throughput %s regressed %.2fx under the committed baseline (%.0f vs %.0f MB/s)",
			corpus, ratio, cur, base)
	}
	return nil
}

// checkRecoveryBaseline guards the durability path: the replay throughput of
// the largest server_recovery scale must not fall below 1/threshold of the
// committed baseline. A missing baseline record is skipped (the workload is
// newer than some checkouts), a missing current record is an error — the run
// was supposed to produce it.
func checkRecoveryBaseline(dir, baselineDir string, threshold float64, out io.Writer) error {
	read := func(d string) (*RecoveryBenchRecord, error) {
		data, err := os.ReadFile(filepath.Join(d, "BENCH_server_recovery.json"))
		if err != nil {
			return nil, err
		}
		var rec RecoveryBenchRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, err
		}
		if len(rec.Scales) == 0 {
			return nil, fmt.Errorf("record in %s has no scales", d)
		}
		return &rec, nil
	}
	base, err := read(baselineDir)
	if os.IsNotExist(err) {
		fmt.Fprintln(out, "bench guard: no committed BENCH_server_recovery.json baseline; skipping")
		return nil
	}
	if err != nil {
		return fmt.Errorf("recovery baseline: %w", err)
	}
	cur, err := read(dir)
	if err != nil {
		return fmt.Errorf("recovery current: %w", err)
	}
	baseRate := base.Scales[len(base.Scales)-1].ReplayDocsPerSec
	curRate := cur.Scales[len(cur.Scales)-1].ReplayDocsPerSec
	ratio := baseRate / curRate
	fmt.Fprintf(out, "bench guard: server_recovery replay %.0f docs/s vs baseline %.0f (%.2fx, threshold %.2fx)\n",
		curRate, baseRate, ratio, threshold)
	if ratio > threshold {
		return fmt.Errorf("bench guard: server_recovery replay regressed %.2fx under the committed baseline (%.0f vs %.0f docs/s)",
			ratio, curRate, baseRate)
	}
	return nil
}
