package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	vitex "repro"
	"repro/internal/datagen"
)

// BenchRecord is one machine-readable benchmark result. The files seed the
// repository's performance trajectory: later engine work reruns the same
// workloads and compares against the committed numbers.
type BenchRecord struct {
	Name    string `json:"name"`
	Queries int    `json:"queries"`
	// Workers is the sharded-evaluation worker count (0 = serial on the
	// calling goroutine).
	Workers      int     `json:"workers,omitempty"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	CorpusBytes  int     `json:"corpus_bytes"`
	Events       int64   `json:"events"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	PeakStack    int     `json:"peak_stack_entries"`
	Results      int64   `json:"results_per_op"`
}

// benchWorkloads runs the engine benchmark suite — one single-query stream
// plus routed QuerySet evaluations at 1, 10 and 100 standing queries over a
// ticker feed (the paper's subscription scenario) — and writes one
// BENCH_<name>.json per workload into dir.
func benchWorkloads(dir string, trades int, out io.Writer) error {
	doc := datagen.Ticker{Trades: trades, Seed: 1}.String()

	single := vitex.MustCompile("//trade[symbol='ACME']/price")
	sparse := datagen.SparseTickerQueries(10, 90)
	churnQuery := vitex.MustCompile("//trade[symbol='ACME']/volume")

	type workload struct {
		name    string
		queries int
		workers int
		run     func() (events int64, peak int, results int64, err error)
	}
	mkSet := func(sources []string) (*vitex.QuerySet, error) {
		return vitex.NewQuerySet(sources...)
	}
	setRunnerOpts := func(qs *vitex.QuerySet, opts vitex.Options) func() (int64, int, int64, error) {
		return func() (int64, int, int64, error) {
			var results int64
			stats, err := qs.Stream(strings.NewReader(doc), opts,
				func(vitex.SetResult) error { results++; return nil })
			if err != nil {
				return 0, 0, 0, err
			}
			peak := 0
			for _, s := range stats {
				peak += s.PeakStackEntries
			}
			return stats[0].Events, peak, results, nil
		}
	}
	setRunner := func(qs *vitex.QuerySet) func() (int64, int, int64, error) {
		return setRunnerOpts(qs, vitex.Options{CountOnly: true})
	}

	qs1, err := mkSet(sparse[:1])
	if err != nil {
		return err
	}
	qs10, err := mkSet(sparse[:10])
	if err != nil {
		return err
	}
	qs100, err := mkSet(sparse)
	if err != nil {
		return err
	}
	parWorkers := runtime.GOMAXPROCS(0)
	workloads := []workload{
		{"single_query", 1, 0, func() (int64, int, int64, error) {
			var results int64
			stats, err := single.Stream(strings.NewReader(doc), vitex.Options{CountOnly: true},
				func(vitex.Result) error { results++; return nil })
			return stats.Events, stats.PeakStackEntries, results, err
		}},
		{"queryset_1", 1, 0, setRunner(qs1)},
		{"queryset_10", 10, 0, setRunner(qs10)},
		{"queryset_100", 100, 0, setRunner(qs100)},
		// The sharded multi-core mode over the same 100-query standing
		// set; compare events_per_sec against queryset_100 for the
		// parallel speedup on this host (1.0x on a single-core host,
		// where sharding falls back to the serial path).
		{"queryset_100_parallel", 100, parWorkers,
			setRunnerOpts(qs100, vitex.Options{CountOnly: true, Parallel: parWorkers})},
		// Live subscription churn: each op adds one standing query to the
		// 100-query set, serves a document with the grown set, and removes
		// the query again. Compare ns_per_event against queryset_100: the
		// gap is the whole cost of continuous churn on a serving set
		// (incremental compile + epoch publication + session resync).
		{"queryset_churn", 100, 0, func() (int64, int, int64, error) {
			idx, err := qs100.Add(churnQuery)
			if err != nil {
				return 0, 0, 0, err
			}
			events, peak, results, err := setRunner(qs100)()
			if rerr := qs100.Remove(idx); rerr != nil && err == nil {
				err = rerr
			}
			return events, peak, results, err
		}},
	}

	for _, w := range workloads {
		rec, err := measure(w.name, w.queries, w.workers, len(doc), w.run)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		path := filepath.Join(dir, "BENCH_"+w.name+".json")
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-14s %8.1f ns/event %12.0f events/s %8.1f allocs/op  -> %s\n",
			w.name, rec.NsPerEvent, rec.EventsPerSec, rec.AllocsPerOp, path)
	}
	return nil
}

// measure times fn until at least minBenchTime has elapsed (after one
// warm-up run), tracking allocations with runtime.MemStats.
func measure(name string, queries, workers, corpusBytes int, fn func() (int64, int, int64, error)) (*BenchRecord, error) {
	const minBenchTime = 500 * time.Millisecond
	events, peak, results, err := fn() // warm-up; also yields workload facts
	if err != nil {
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for time.Since(start) < minBenchTime {
		if _, _, _, err := fn(); err != nil {
			return nil, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	return &BenchRecord{
		Name:         name,
		Queries:      queries,
		Workers:      workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		CorpusBytes:  corpusBytes,
		Events:       events,
		Iterations:   iters,
		NsPerOp:      nsPerOp,
		NsPerEvent:   nsPerOp / float64(events),
		EventsPerSec: float64(events) / (nsPerOp / 1e9),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		PeakStack:    peak,
		Results:      results,
	}, nil
}
