// Command vitexload drives a running vitexd with the paper's subscription
// workload: it registers N standing XPath queries on one channel, attaches
// a result consumer to every subscription, publishes a stream of generated
// ticker documents from P concurrent publishers, and reports end-to-end
// throughput — documents/sec through the full wire path (HTTP ingest,
// shared-scan evaluation, per-subscription NDJSON delivery).
//
// Usage:
//
//	vitexload [-addr http://127.0.0.1:8344] [-channel load] [-queries 100]
//	          [-docs 50] [-trades 2000] [-publishers 2] [-unsubscribe]
//
// Exit status is non-zero when any request fails or when a channel that
// should have matched delivers nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/datagen"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vitexload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vitexload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8344", "vitexd base URL")
	channelName := fs.String("channel", "load", "channel to drive")
	queries := fs.Int("queries", 100, "standing subscriptions to register (10%% match the feed)")
	docs := fs.Int("docs", 50, "documents to publish")
	trades := fs.Int("trades", 2000, "trades per generated document")
	publishers := fs.Int("publishers", 2, "concurrent synchronous publishers")
	unsubscribe := fs.Bool("unsubscribe", true, "unsubscribe everything when done")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cl := client.New(*addr)

	// The sparse mix of the engine benchmarks: 10% of the standing set
	// matches ticker vocabulary, the rest is dead weight the routed
	// dispatch must not pay for.
	matching := (*queries + 9) / 10
	sources := datagen.SparseTickerQueries(matching, *queries-matching)

	ids := make([]string, 0, len(sources))
	for _, q := range sources {
		resp, err := cl.Subscribe(ctx, *channelName, q)
		if err != nil {
			return fmt.Errorf("subscribe %q: %w", q, err)
		}
		ids = append(ids, resp.ID)
	}
	fmt.Fprintf(stdout, "registered %d subscriptions on %q\n", len(ids), *channelName)

	// Client-observed publish-to-delivery latency: publishers record when
	// each document's POST began (keyed by the DocSeq the response assigns),
	// consumers stamp every result delivery on receipt, and the two sides
	// join after the run — measuring the full wire path as a client sees it,
	// independent of the server's own histograms.
	var latMu sync.Mutex
	sendAt := make(map[int64]time.Time)
	type receipt struct {
		seq int64
		at  time.Time
	}
	var receipts []receipt

	// One consumer per subscription, counting deliveries until its stream
	// ends or the run context is canceled. An interrupted stream (server
	// restart, dropped connection) resumes from the typed error's token —
	// against a durable server the consumer continues without loss.
	var results, gaps, reconnects atomic.Int64
	var consumers sync.WaitGroup
	streamCtx, stopStreams := context.WithCancel(ctx)
	defer stopStreams()
	for _, id := range ids {
		stream, err := cl.Results(streamCtx, *channelName, id)
		if err != nil {
			return fmt.Errorf("attach %s: %w", id, err)
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				d, err := stream.Next()
				var interrupted *client.ErrStreamInterrupted
				if errors.As(err, &interrupted) && streamCtx.Err() == nil {
					stream.Close()
					if stream, err = cl.Resume(streamCtx, interrupted.Token); err != nil {
						return // not durable, or the server stayed gone
					}
					reconnects.Add(1)
					continue
				}
				if err != nil {
					stream.Close()
					return
				}
				switch d.Type {
				case server.DeliveryResult:
					results.Add(1)
					latMu.Lock()
					receipts = append(receipts, receipt{seq: d.DocSeq, at: time.Now()})
					latMu.Unlock()
				case server.DeliveryGap:
					gaps.Add(1)
				case server.DeliveryEnd:
					stream.Close()
					return
				}
			}
		}()
	}

	// Publish: P goroutines, synchronous posts (each completes evaluation),
	// distinct seeds so documents differ.
	var published, matched atomic.Int64
	var firstErr error
	var errOnce sync.Once
	var pubs sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < *docs; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	for p := 0; p < *publishers; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := range next {
				doc := datagen.Ticker{Trades: *trades, Seed: int64(i + 1)}.String()
				sent := time.Now()
				resp, err := cl.Publish(ctx, *channelName, strings.NewReader(doc))
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("publish doc %d: %w", i, err) })
					cancel()
					return
				}
				latMu.Lock()
				sendAt[resp.DocSeq] = sent
				latMu.Unlock()
				published.Add(1)
				matched.Add(resp.Results)
			}
		}()
	}
	pubs.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	// Give consumers a moment to drain what the final publishes buffered,
	// then detach.
	deadline := time.Now().Add(10 * time.Second)
	for results.Load() < matched.Load() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stopStreams()
	consumers.Wait()

	if *unsubscribe {
		for _, id := range ids {
			if err := cl.Unsubscribe(context.Background(), *channelName, id); err != nil && !errors.Is(err, context.Canceled) {
				return fmt.Errorf("unsubscribe %s: %w", id, err)
			}
		}
	}

	docsPerSec := float64(published.Load()) / elapsed.Seconds()
	fmt.Fprintf(stdout, "published %d docs (%d trades each) in %.2fs: %.1f docs/sec end-to-end\n",
		published.Load(), *trades, elapsed.Seconds(), docsPerSec)
	policy := "unknown"
	if m, err := cl.Metrics(context.Background()); err == nil {
		policy = m.Config.Policy
	}
	fmt.Fprintf(stdout, "matches: %d evaluated, %d delivered to consumers; policy=%s gaps=%d reconnects=%d\n",
		matched.Load(), results.Load(), policy, gaps.Load(), reconnects.Load())
	latMu.Lock()
	lats := make([]time.Duration, 0, len(receipts))
	for _, r := range receipts {
		if sent, ok := sendAt[r.seq]; ok {
			lats = append(lats, r.at.Sub(sent))
		}
	}
	latMu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Fprintf(stdout, "publish-to-delivery (client-observed, %d samples): p50=%s p95=%s p99=%s\n",
			len(lats), quantile(lats, 0.50), quantile(lats, 0.95), quantile(lats, 0.99))
	}
	if published.Load() > 0 && matched.Load() == 0 {
		return fmt.Errorf("no matches produced; the matching subscriptions should have fired")
	}
	return nil
}

// quantile reads the q-th quantile of a sorted latency sample (upper value
// at the ceil(q*n) rank, matching the server histograms' estimator bias).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
