package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestLoadAgainstInProcessServer runs the generator against an in-process
// broker and checks it reports end-to-end throughput and matches.
func TestLoadAgainstInProcessServer(t *testing.T) {
	b := server.New(server.Config{RingSize: 8192})
	ts := httptest.NewServer(server.Handler(b))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}()

	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-queries", "20",
		"-docs", "6",
		"-trades", "200",
		"-publishers", "2",
	}, &out)
	if err != nil {
		t.Fatalf("vitexload: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"registered 20 subscriptions", "docs/sec end-to-end", "delivered to consumers"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
