// Command vitexgen generates the XML corpora used by the ViteX experiments:
// the PIR-shaped protein database (the paper's 75MB dataset [2]), recursive
// book/section documents (figure 1 at scale), adversarial recursion chains,
// and stock-ticker streams.
//
// Usage:
//
//	vitexgen -kind protein -mb 75 [-seed N] [-o file.xml]
//	vitexgen -kind book -sections 3 -tables 3 -repeat 1000
//	vitexgen -kind chain -depth 18
//	vitexgen -kind ticker -trades 10000
//	vitexgen -kind figure1
//
// Output goes to stdout unless -o is given.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/datagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vitexgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vitexgen", flag.ContinueOnError)
	kind := fs.String("kind", "", "corpus kind: protein | book | chain | ticker | figure1")
	out := fs.String("o", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "generator seed")
	mb := fs.Int("mb", 75, "protein: target size in MiB")
	sections := fs.Int("sections", 3, "book: section nesting depth")
	tables := fs.Int("tables", 3, "book: table nesting depth")
	repeat := fs.Int("repeat", 1, "book: copies of the nested structure")
	authorEvery := fs.Int("author-every", 1, "book: author in 1 of N copies (0=never)")
	positionEvery := fs.Int("position-every", 1, "book: position in 1 of N copies (0=never)")
	depth := fs.Int("depth", 12, "chain: recursion depth")
	trades := fs.Int("trades", 1000, "ticker: number of trades")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	switch *kind {
	case "protein":
		n, err := datagen.Protein{TargetBytes: int64(*mb) << 20, Seed: *seed}.WriteTo(w)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d bytes\n", n)
		return nil
	case "book":
		_, err := io.WriteString(w, datagen.Book{
			SectionDepth:  *sections,
			TableDepth:    *tables,
			Repeat:        *repeat,
			AuthorEvery:   *authorEvery,
			PositionEvery: *positionEvery,
		}.String())
		return err
	case "chain":
		_, err := io.WriteString(w, datagen.RecursiveChain(*depth))
		return err
	case "ticker":
		_, err := io.WriteString(w, datagen.Ticker{Trades: *trades, Seed: *seed}.String())
		return err
	case "figure1":
		_, err := io.WriteString(w, datagen.PaperFigure1)
		return err
	case "":
		fs.Usage()
		return fmt.Errorf("-kind is required")
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}
