package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sax"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("vitexgen %v: %v", args, err)
	}
	return out.String()
}

func assertWellFormed(t *testing.T, doc string) {
	t.Helper()
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	if err := sax.NewStdDriver(strings.NewReader(doc)).Run(nop); err != nil {
		t.Fatalf("output malformed: %v", err)
	}
}

func TestGenFigure1(t *testing.T) {
	doc := gen(t, "-kind", "figure1")
	assertWellFormed(t, doc)
	if !strings.Contains(doc, "<cell> A </cell>") {
		t.Fatalf("doc: %s", doc)
	}
}

func TestGenBook(t *testing.T) {
	doc := gen(t, "-kind", "book", "-sections", "2", "-tables", "2", "-repeat", "3")
	assertWellFormed(t, doc)
	if strings.Count(doc, "<cell>") != 3 {
		t.Fatalf("cells: %d", strings.Count(doc, "<cell>"))
	}
}

func TestGenChain(t *testing.T) {
	doc := gen(t, "-kind", "chain", "-depth", "4")
	if doc != "<a><a><a><a><b/></a></a></a></a>" {
		t.Fatalf("doc = %q", doc)
	}
}

func TestGenTicker(t *testing.T) {
	doc := gen(t, "-kind", "ticker", "-trades", "5", "-seed", "2")
	assertWellFormed(t, doc)
	if strings.Count(doc, "<trade ") != 5 {
		t.Fatal(doc)
	}
}

func TestGenProteinToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.xml")
	var out bytes.Buffer
	// 1 MiB = smallest unit; writes to file, stdout stays empty.
	if err := run([]string{"-kind", "protein", "-mb", "1", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty: %d bytes", out.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 1<<20 {
		t.Fatalf("file too small: %d", len(data))
	}
	assertWellFormed(t, string(data))
}

func TestGenErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -kind should fail")
	}
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Error("unknown kind should fail")
	}
}
