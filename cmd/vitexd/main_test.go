package main

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// TestEndToEnd boots the daemon on a free port, runs the full lifecycle
// over the wire — subscribe, stream, publish, assert matches — and shuts
// down gracefully (the signal path, minus the signal).
func TestEndToEnd(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "10s"}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	cl := client.New("http://" + addr)
	rctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sub, err := cl.Subscribe(rctx, "news", "//story[@section='tech']/headline/text()")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.Results(rctx, "news", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	feed := `<feed>
	  <story section="tech"><headline>Streaming engines</headline></story>
	  <story section="sports"><headline>Game on</headline></story>
	  <story section="tech"><headline>Protein data</headline></story>
	</feed>`
	pub, err := cl.Publish(rctx, "news", strings.NewReader(feed))
	if err != nil {
		t.Fatal(err)
	}
	if pub.Results != 2 {
		t.Fatalf("publish matched %d, want 2", pub.Results)
	}
	for _, want := range []string{"Streaming engines", "Protein data"} {
		d, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if d.Type != server.DeliveryResult || d.Value != want {
			t.Fatalf("delivery = %+v, want %q", d, want)
		}
	}

	// Graceful shutdown: the attached stream must finish with an end line,
	// and the daemon must exit cleanly.
	stop()
	sawEnd := false
	for !sawEnd {
		d, err := stream.Next()
		if err != nil {
			t.Fatalf("stream severed without end marker during drain: %v", err)
		}
		sawEnd = d.Type == server.DeliveryEnd
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop after drain")
	}
}
