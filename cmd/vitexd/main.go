// Command vitexd is the streaming XPath subscription daemon: the ViteX
// paper's publish/subscribe deployment as a network service. Clients
// register standing XPath subscriptions against named channels, publishers
// POST XML documents, and matches stream back incrementally as NDJSON —
// one live QuerySet per channel, so subscription churn compiles only the
// changed query and every document is parsed exactly once per channel.
//
// Usage:
//
//	vitexd [-addr :8344] [-workers N] [-queue 64] [-ring 256]
//	       [-policy block|drop] [-parallel 0] [-drain 15s]
//	       [-data DIR] [-wal-segment-bytes 8388608] [-wal-retain 8] [-wal-sync]
//	       [-trace-sample N] [-trace-ring 256] [-trace-file PATH]
//	       [-debug-addr HOST:PORT]
//
// Observability (see docs/observability.md): -trace-sample N stage-traces
// every Nth publish end to end (admission, WAL, queue wait, scan/dispatch,
// ring enqueue, deliver wait, wire write); finished traces are served
// newest-first by GET /debug/traces and, with -trace-file, appended as
// NDJSON. GET /metrics answers JSON by default and Prometheus text format
// under content negotiation (Accept: text/plain, or ?format=prometheus).
// -debug-addr starts a second listener with net/http/pprof — CPU and heap
// profiles plus runtime execution traces (/debug/pprof/trace?seconds=5) —
// kept off the service port so profiling exposure is an explicit opt-in.
//
// With -data the broker is durable: every accepted publish is appended to a
// per-channel write-ahead log before evaluation, channel definitions and
// standing subscriptions persist in per-channel manifests, and a restart on
// the same directory recovers them — document cursors continue from the log
// tail, and subscribers resume with `?from=CURSOR&seen=K` on the results
// route (no acknowledged document is lost; torn log tails from a crash are
// rolled back to the last complete record).
//
// The wire protocol (see the repository README, "Serving"):
//
//	POST   /channels/{ch}/subscriptions          XPath text -> {"id": ...}
//	PUT    /channels/{ch}/subscriptions/{id}     XPath text (replace in place)
//	DELETE /channels/{ch}/subscriptions/{id}
//	POST   /channels/{ch}/documents              XML body (?async=1 to queue)
//	GET    /channels/{ch}/subscriptions/{id}/results   NDJSON stream
//	GET    /metrics
//	GET    /healthz
//
// SIGINT/SIGTERM triggers a graceful drain: ingestion stops, queued
// documents finish evaluating, every proven result is delivered, result
// streams end with an "end" line — bounded by -drain, after which
// in-flight evaluations are canceled (subscribers see gap markers).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "vitexd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is canceled, then drains.
// ready (when non-nil) receives the bound address once the server is
// listening — the hook the e2e tests and -addr :0 use.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("vitexd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "max concurrently-evaluating channels (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "per-channel ingest queue depth")
	ring := fs.Int("ring", 256, "per-subscription result buffer size")
	policy := fs.String("policy", "block", "slow-consumer policy: block (back-pressure) or drop (gap markers)")
	parallel := fs.Int("parallel", 0, "within-document sharded evaluation workers (0/1 serial, -1 GOMAXPROCS)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	dataDir := fs.String("data", "", "durable data directory (empty = memory-only, no WAL, no resume)")
	walSegBytes := fs.Int64("wal-segment-bytes", 8<<20, "write-ahead-log segment rotation size")
	walRetain := fs.Int("wal-retain", 8, "write-ahead-log segments retained per channel (bounds replay history)")
	walSync := fs.Bool("wal-sync", false, "fsync the write-ahead log after every publish")
	traceSample := fs.Int("trace-sample", 0, "stage-trace every Nth publish (0 = tracing off)")
	traceRing := fs.Int("trace-ring", 256, "finished stage-trace records kept for GET /debug/traces")
	traceFile := fs.String("trace-file", "", "append finished stage traces to this file as NDJSON")
	debugAddr := fs.String("debug-addr", "", "pprof/execution-trace listener (host:port; empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	var traceSink io.Writer
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening trace file: %w", err)
		}
		defer f.Close()
		traceSink = f
	}

	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		RingSize:          *ring,
		Policy:            pol,
		Parallel:          *parallel,
		DataDir:           *dataDir,
		WALSegmentBytes:   *walSegBytes,
		WALRetainSegments: *walRetain,
		WALSync:           *walSync,
		TraceSample:       *traceSample,
		TraceRing:         *traceRing,
		TraceSink:         traceSink,
	}
	var b *server.Broker
	if *dataDir != "" {
		if b, err = server.Open(cfg); err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		for name, cursor := range b.Recovered() {
			fmt.Fprintf(stdout, "vitexd recovered channel %q at cursor %d\n", name, cursor)
		}
	} else {
		b = server.New(cfg)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.Handler(b)}
	durability := "memory-only"
	if *dataDir != "" {
		durability = "data=" + *dataDir
	}
	fmt.Fprintf(stdout, "vitexd listening on %s (policy=%s workers=%d queue=%d ring=%d parallel=%d %s)\n",
		ln.Addr(), pol, b.Config().Workers, *queue, *ring, *parallel, durability)
	if *traceSample > 0 {
		fmt.Fprintf(stdout, "vitexd tracing 1/%d publishes (ring %d)\n", *traceSample, *traceRing)
	}
	var debugSrv *http.Server
	if *debugAddr != "" {
		// Profiling stays off the service port: exposing pprof is an explicit
		// opt-in, and a scrape-heavy profiler cannot contend with the API
		// listener's accept queue.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go func() { _ = debugSrv.Serve(dln) }()
		fmt.Fprintf(stdout, "vitexd debug listener on %s (pprof, execution trace)\n", dln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "vitexd draining (budget %s)...\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Broker first: admission stops, queues run dry, result streams end —
	// which is what lets the HTTP server's own Shutdown finish promptly.
	if err := b.Shutdown(dctx); err != nil {
		fmt.Fprintf(stdout, "vitexd: drain incomplete: %v\n", err)
	}
	// A fresh budget for the HTTP listener: with the broker drained its
	// handlers finish immediately, but don't let an expired drain context
	// turn the close into a hard connection reset.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	fmt.Fprintln(stdout, "vitexd stopped")
	return nil
}
