package vitex

import (
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/twigm"
	"repro/internal/xpath"
)

func TestQuerySetSingleScan(t *testing.T) {
	qs, err := NewQuerySet(
		"//trade[symbol='ACME']/price",
		"//trade[symbol='GLOBEX']/volume",
		"//trade/@seq",
	)
	if err != nil {
		t.Fatal(err)
	}
	doc := datagen.Ticker{Trades: 200, Seed: 3}.String()
	perQuery := make([]int, qs.Len())
	stats, err := qs.Stream(strings.NewReader(doc), Options{}, func(sr SetResult) error {
		perQuery[sr.QueryIndex]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every query must agree with its individual evaluation.
	for i := 0; i < qs.Len(); i++ {
		solo, err := qs.Query(i).Count(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		if int64(perQuery[i]) != solo {
			t.Fatalf("query %d: set found %d, solo found %d", i, perQuery[i], solo)
		}
	}
	if perQuery[2] != 200 { // every trade has @seq
		t.Fatalf("@seq count = %d", perQuery[2])
	}
	if len(stats) != 3 || stats[0].Events != stats[1].Events {
		t.Fatalf("per-query stats inconsistent: %+v", stats)
	}
}

func TestQuerySetCounts(t *testing.T) {
	qs, err := NewQuerySet("//a", "//b", "//c")
	if err != nil {
		t.Fatal(err)
	}
	counts, err := qs.Counts(strings.NewReader("<r><a/><b/><a/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestQuerySetCompileError(t *testing.T) {
	if _, err := NewQuerySet("//a", "bad["); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestQuerySetAdd(t *testing.T) {
	qs, err := NewQuerySet("//a")
	if err != nil {
		t.Fatal(err)
	}
	i, err := qs.Add(MustCompile("//b"))
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 || qs.Len() != 2 {
		t.Fatalf("index = %d, len = %d", i, qs.Len())
	}
	counts, err := qs.Counts(strings.NewReader("<r><b/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestQuerySetRemove(t *testing.T) {
	qs, err := NewQuerySet("//a", "//b", "//c")
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Remove(1); err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 2 {
		t.Fatalf("len = %d", qs.Len())
	}
	// Indexes shift down: //c is now query 1.
	counts, err := qs.Counts(strings.NewReader("<r><a/><b/><c/><c/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if err := qs.Remove(5); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestQuerySetReplace(t *testing.T) {
	qs, err := NewQuerySet("//a", "//b")
	if err != nil {
		t.Fatal(err)
	}
	// Same branch count: slot reuse path.
	if err := qs.Replace(0, MustCompile("//c")); err != nil {
		t.Fatal(err)
	}
	// Different branch count: remove+add path.
	if err := qs.Replace(1, MustCompile("//a | //b")); err != nil {
		t.Fatal(err)
	}
	counts, err := qs.Counts(strings.NewReader("<r><a/><b/><c/><c/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if qs.Query(0).Source() != "//c" {
		t.Fatalf("query 0 = %q", qs.Query(0).Source())
	}
}

// TestQuerySetAddCompilesOnlyTheNewQuery is the public-API face of the
// incremental-churn guarantee: one Add to a 100-query live set compiles
// exactly the added query's machines, process-wide.
func TestQuerySetAddCompilesOnlyTheNewQuery(t *testing.T) {
	qs, err := NewQuerySet(datagen.SparseTickerQueries(10, 90)...)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile("//trade[symbol='CHURNX']/price | //trade[symbol='CHURNY']/volume")
	global0 := twigm.CompileCount()
	engine0 := qs.Metrics().Compiles
	if _, err := qs.Add(q); err != nil {
		t.Fatal(err)
	}
	if d := twigm.CompileCount() - global0; d != 2 { // one per union branch
		t.Fatalf("Add compiled %d machines process-wide, want 2", d)
	}
	if d := qs.Metrics().Compiles - engine0; d != 2 {
		t.Fatalf("Add compiled %d machines in the set engine, want 2", d)
	}
}

// TestChurnCheaperThanRecompile pins the acceptance floor: an incremental
// Add+Remove pair on a 100-query live set must be at least 10x cheaper than
// one full engine recompile (the pre-epoch cost of any mutation). The real
// ratio is around two orders of magnitude, so the 10x floor has wide margin
// against timer noise; BenchmarkQuerySetChurn gives the precise numbers.
func TestChurnCheaperThanRecompile(t *testing.T) {
	sources := datagen.SparseTickerQueries(10, 90)
	qs, err := NewQuerySet(sources...)
	if err != nil {
		t.Fatal(err)
	}
	extra := MustCompile("//trade[symbol='CHURNX']/price")
	var parsed []*xpath.Query
	for _, src := range append(append([]string(nil), sources...), extra.Source()) {
		qs, err := xpath.ParseUnion(src)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, qs...)
	}
	// Warm up both paths once (symbol maps, allocator) before timing.
	if idx, err := qs.Add(extra); err != nil {
		t.Fatal(err)
	} else if err := qs.Remove(idx); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.New(parsed...); err != nil {
		t.Fatal(err)
	}

	// Wall-clock floors flake when a GC or scheduler stall lands inside the
	// short fast arm, so the fast arm runs enough reps to amortize one
	// stall, per-op averages are compared, and a transiently noisy run gets
	// retried before the test fails.
	const (
		incReps = 200
		recReps = 30
		retries = 3
	)
	for attempt := 1; ; attempt++ {
		start := time.Now()
		for i := 0; i < incReps; i++ {
			idx, err := qs.Add(extra)
			if err != nil {
				t.Fatal(err)
			}
			if err := qs.Remove(idx); err != nil {
				t.Fatal(err)
			}
		}
		incremental := time.Since(start) / incReps

		start = time.Now()
		for i := 0; i < recReps; i++ {
			if _, err := engine.New(parsed...); err != nil {
				t.Fatal(err)
			}
		}
		recompile := time.Since(start) / recReps

		if recompile >= 10*incremental {
			t.Logf("attempt %d: churn %v vs recompile %v per op (%.0fx)",
				attempt, incremental, recompile, float64(recompile)/float64(incremental))
			return
		}
		if attempt == retries {
			t.Fatalf("incremental churn not 10x cheaper after %d attempts: Add+Remove %v vs recompile %v per op",
				retries, incremental, recompile)
		}
	}
}

func TestQuerySetEmitError(t *testing.T) {
	qs, err := NewQuerySet("//a")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	_, err = qs.Stream(strings.NewReader("<r><a/><a/></r>"), Options{}, func(SetResult) error {
		n++
		return &strError{"stop"}
	})
	if err == nil || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestQuerySetOrdered(t *testing.T) {
	qs, err := NewQuerySet("//a[p]/b")
	if err != nil {
		t.Fatal(err)
	}
	doc := "<r><a><b>1</b><b>2</b><p/></a></r>"
	var values []string
	_, err = qs.Stream(strings.NewReader(doc), Options{Ordered: true}, func(sr SetResult) error {
		values = append(values, sr.Value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 || values[0] != "<b>1</b>" || values[1] != "<b>2</b>" {
		t.Fatalf("values = %q", values)
	}
}

func TestQuerySetPaperWorkload(t *testing.T) {
	qs, err := NewQuerySet(
		datagen.PaperQuery,
		"//section//table//cell",
		"//table[position]",
		"//author",
	)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := qs.Counts(strings.NewReader(datagen.PaperFigure1))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}
