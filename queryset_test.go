package vitex

import (
	"strings"
	"testing"

	"repro/internal/datagen"
)

func TestQuerySetSingleScan(t *testing.T) {
	qs, err := NewQuerySet(
		"//trade[symbol='ACME']/price",
		"//trade[symbol='GLOBEX']/volume",
		"//trade/@seq",
	)
	if err != nil {
		t.Fatal(err)
	}
	doc := datagen.Ticker{Trades: 200, Seed: 3}.String()
	perQuery := make([]int, qs.Len())
	stats, err := qs.Stream(strings.NewReader(doc), Options{}, func(sr SetResult) error {
		perQuery[sr.QueryIndex]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every query must agree with its individual evaluation.
	for i := 0; i < qs.Len(); i++ {
		solo, err := qs.Query(i).Count(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		if int64(perQuery[i]) != solo {
			t.Fatalf("query %d: set found %d, solo found %d", i, perQuery[i], solo)
		}
	}
	if perQuery[2] != 200 { // every trade has @seq
		t.Fatalf("@seq count = %d", perQuery[2])
	}
	if len(stats) != 3 || stats[0].Events != stats[1].Events {
		t.Fatalf("per-query stats inconsistent: %+v", stats)
	}
}

func TestQuerySetCounts(t *testing.T) {
	qs, err := NewQuerySet("//a", "//b", "//c")
	if err != nil {
		t.Fatal(err)
	}
	counts, err := qs.Counts(strings.NewReader("<r><a/><b/><a/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestQuerySetCompileError(t *testing.T) {
	if _, err := NewQuerySet("//a", "bad["); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestQuerySetAdd(t *testing.T) {
	qs, err := NewQuerySet("//a")
	if err != nil {
		t.Fatal(err)
	}
	qs.Add(MustCompile("//b"))
	if qs.Len() != 2 {
		t.Fatalf("len = %d", qs.Len())
	}
	counts, err := qs.Counts(strings.NewReader("<r><b/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestQuerySetEmitError(t *testing.T) {
	qs, err := NewQuerySet("//a")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	_, err = qs.Stream(strings.NewReader("<r><a/><a/></r>"), Options{}, func(SetResult) error {
		n++
		return &strError{"stop"}
	})
	if err == nil || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestQuerySetOrdered(t *testing.T) {
	qs, err := NewQuerySet("//a[p]/b")
	if err != nil {
		t.Fatal(err)
	}
	doc := "<r><a><b>1</b><b>2</b><p/></a></r>"
	var values []string
	_, err = qs.Stream(strings.NewReader(doc), Options{Ordered: true}, func(sr SetResult) error {
		values = append(values, sr.Value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 || values[0] != "<b>1</b>" || values[1] != "<b>2</b>" {
		t.Fatalf("values = %q", values)
	}
}

func TestQuerySetPaperWorkload(t *testing.T) {
	qs, err := NewQuerySet(
		datagen.PaperQuery,
		"//section//table//cell",
		"//table[position]",
		"//author",
	)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := qs.Counts(strings.NewReader(datagen.PaperFigure1))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}
