package vitex

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/twigm"
)

// QuerySet evaluates several compiled queries over one XML stream in a
// single sequential scan — the subscription scenario of the paper's
// motivation (stock tickers, personalized newspapers: many standing queries,
// one feed). All machines are linked against one shared symbol table and an
// engine-level routing index maps each event to the machines whose name
// tests mention it, so the per-event cost is proportional to the number of
// interested queries, not the size of the set. Evaluation state is pooled:
// a long-lived QuerySet serving a stream of documents reuses its machines,
// scanner and buffers with near-zero steady-state allocation. With
// Options.Parallel the machines are sharded over worker goroutines and the
// per-shard results merged back into the exact serial emission order, so a
// large standing set saturates every core without changing a single byte of
// output.
//
// The set is live: Add, Remove and Replace mutate it between — and safely
// concurrent with — Stream calls, compiling only the changed query. The
// engine's membership is versioned in immutable snapshots: a Stream call
// evaluates the set as of its start, so a stream racing a Remove still
// delivers the removed query's results, and one racing an Add first sees
// the new query on the next call. Mutations are serialized against each
// other by the set's lock. Query indexes are slice-like: Add appends,
// Remove(i) shifts every index above i down by one, and SetResult.QueryIndex
// refers to the indexing in force when the Stream began.
type QuerySet struct {
	mu      sync.Mutex
	eng     *engine.Engine
	entries []setEntry
	// machQuery maps dense machine index (the engine snapshot's order) ->
	// query index. Rebuilt on every mutation; immutable once published, so
	// Stream can capture it together with the engine snapshot and use both
	// without the lock.
	machQuery []int
}

// setEntry is one standing query: the caller's compiled Query plus the
// set-engine machines (one per union branch) evaluating it.
type setEntry struct {
	q     *Query
	progs []*twigm.Program
}

// SetConfig tunes QuerySet construction.
type SetConfig struct {
	// DisablePrefixSharing compiles every query into a full standalone
	// machine instead of factoring common location-path prefixes into the
	// set's shared trie. Results are byte-identical either way; the knob
	// exists for ablation benchmarks and differential testing.
	DisablePrefixSharing bool
}

// NewQuerySet compiles all sources into a set, factoring common query
// prefixes into a shared trie. It fails on the first query that does not
// compile.
func NewQuerySet(sources ...string) (*QuerySet, error) {
	return NewQuerySetConfigured(SetConfig{}, sources...)
}

// NewQuerySetConfigured is NewQuerySet with explicit configuration.
func NewQuerySetConfigured(cfg SetConfig, sources ...string) (*QuerySet, error) {
	qs := &QuerySet{}
	var err error
	ecfg := engine.Config{DisablePrefixSharing: cfg.DisablePrefixSharing}
	if qs.eng, err = engine.NewConfigured(ecfg); err != nil {
		return nil, err
	}
	for _, src := range sources {
		q, err := Compile(src)
		if err != nil {
			return nil, err
		}
		if _, err := qs.Add(q); err != nil {
			return nil, err
		}
	}
	return qs, nil
}

// Add appends an already-compiled query to the live set and returns its
// query index. Only the new query is compiled into the shared dispatch
// index; the existing machines, routing tables and pooled sessions are
// untouched. Streams already running keep the membership they started with.
func (qs *QuerySet) Add(q *Query) (int, error) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	progs, err := qs.addMachinesLocked(q)
	if err != nil {
		return 0, err
	}
	qi := len(qs.entries)
	qs.entries = append(qs.entries, setEntry{q: q, progs: progs})
	// Added machines take fresh slots at the end of the dense order; the
	// published view is copy-on-write (in-flight Streams hold the old one).
	mq := make([]int, len(qs.machQuery), len(qs.machQuery)+len(progs))
	copy(mq, qs.machQuery)
	for range progs {
		mq = append(mq, qi)
	}
	qs.machQuery = mq
	return qi, nil
}

// addMachinesLocked compiles q's branches into the set engine, rolling back
// on partial failure.
func (qs *QuerySet) addMachinesLocked(q *Query) ([]*twigm.Program, error) {
	progs := make([]*twigm.Program, 0, len(q.progs))
	for _, bp := range q.progs {
		p, err := qs.eng.Add(bp.Query())
		if err != nil {
			for _, added := range progs {
				_ = qs.eng.Remove(added)
			}
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// Remove deletes query i from the live set. Queries after i shift down one
// index (slice semantics). The removed machines are tombstoned — not
// recompiled around — and their routing-table slots are reclaimed by a
// compaction pass once tombstones accumulate. Streams already running still
// deliver the removed query's results; later streams do not.
func (qs *QuerySet) Remove(i int) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if i < 0 || i >= len(qs.entries) {
		return fmt.Errorf("vitex: Remove(%d) on a set of %d queries", i, len(qs.entries))
	}
	for _, p := range qs.entries[i].progs {
		if err := qs.eng.Remove(p); err != nil {
			return err
		}
	}
	qs.entries = append(qs.entries[:i], qs.entries[i+1:]...)
	// Drop the removed machines from the dense view and shift the query
	// indexes above i down by one (slice semantics), copy-on-write.
	mq := make([]int, 0, len(qs.machQuery))
	for _, qi := range qs.machQuery {
		if qi == i {
			continue
		}
		if qi > i {
			qi--
		}
		mq = append(mq, qi)
	}
	qs.machQuery = mq
	return nil
}

// Replace swaps query i for q, keeping index i. Only q is compiled; when the
// branch counts match, the new machines reuse the old machines' dispatch
// slots, so the set's machine ordering is unchanged.
func (qs *QuerySet) Replace(i int, q *Query) error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if i < 0 || i >= len(qs.entries) {
		return fmt.Errorf("vitex: Replace(%d) on a set of %d queries", i, len(qs.entries))
	}
	old := qs.entries[i]
	if len(q.progs) == len(old.progs) {
		progs := make([]*twigm.Program, len(q.progs))
		for b, bp := range q.progs {
			p, err := qs.eng.Replace(old.progs[b], bp.Query())
			if err != nil {
				// Branches already swapped stay swapped; surface the error.
				// (Compilation of an already-compiled query only fails on
				// resource exhaustion; there is no clean unwind.)
				return err
			}
			progs[b] = p
			old.progs[b] = p
		}
		// Slots (and so dense positions) are reused: the view is unchanged.
		qs.entries[i] = setEntry{q: q, progs: progs}
		return nil
	}
	progs, err := qs.addMachinesLocked(q)
	if err != nil {
		return err
	}
	qs.entries[i] = setEntry{q: q, progs: progs}
	// Remove the old machines after installing the new entry, then rebuild
	// the view unconditionally: even if a Remove fails (an engine-invariant
	// break — the set added these machines itself), the published view must
	// match the engine snapshot so later Streams fail loudly here, not with
	// an out-of-range panic on an unrelated call.
	var firstErr error
	for _, p := range old.progs {
		if err := qs.eng.Remove(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	qs.rebuildViewLocked()
	return firstErr
}

// rebuildViewLocked recomputes the dense-machine -> query mapping against
// the engine's current snapshot. O(machines) bookkeeping, no compilation.
func (qs *QuerySet) rebuildViewLocked() {
	owner := make(map[*twigm.Program]int, len(qs.entries))
	for qi := range qs.entries {
		for _, p := range qs.entries[qi].progs {
			owner[p] = qi
		}
	}
	progs := qs.eng.Snapshot().Programs()
	machQuery := make([]int, len(progs))
	for d, p := range progs {
		machQuery[d] = owner[p]
	}
	qs.machQuery = machQuery
}

// QuerySetView pins one membership snapshot of a live QuerySet: every Stream
// call on the view evaluates exactly the queries (and query indexing) that
// were in force when View was called, however the set churns afterwards. A
// serving layer that keeps per-subscription state alongside the set captures
// a view and its own bookkeeping under one lock, so a subscription added or
// removed concurrently with an in-flight document can never shift the
// QueryIndex a result is tagged with. Views are cheap (one atomic load plus
// two word copies) and safe for concurrent use.
type QuerySetView struct {
	snap      engine.Snapshot
	machQuery []int
	nq        int
}

// View captures the set's current membership as an immutable view. Views
// are values; capturing one allocates nothing.
func (qs *QuerySet) View() QuerySetView {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return QuerySetView{snap: qs.eng.Snapshot(), machQuery: qs.machQuery, nq: len(qs.entries)}
}

// Len returns the number of queries in the view.
func (v QuerySetView) Len() int { return v.nq }

// Len returns the number of queries in the set.
func (qs *QuerySet) Len() int {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return len(qs.entries)
}

// Query returns the i-th query of the set.
func (qs *QuerySet) Query(i int) *Query {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.entries[i].q
}

// SetResult tags a Result with the index of the query that produced it.
type SetResult struct {
	// QueryIndex identifies the query (position in NewQuerySet/Add order,
	// as of the Stream call's start).
	QueryIndex int
	Result
}

// Stream evaluates every query in the set over one scan of r. emit receives
// each solution tagged with its query index, in per-query confirmation
// order (or per-query document order with Options.Ordered). It returns
// per-query statistics; scan-level counters (Events, Elements, MaxDepth)
// describe the one shared scan and are identical across queries.
func (qs *QuerySet) Stream(r io.Reader, opts Options, emit func(SetResult) error) ([]Stats, error) {
	return qs.View().Stream(r, opts, emit)
}

// Stream evaluates the view's pinned membership over one scan of r; see
// QuerySet.Stream for the emission and statistics contract.
func (v QuerySetView) Stream(r io.Reader, opts Options, emit func(SetResult) error) ([]Stats, error) {
	snap, machQuery, nq := v.snap, v.machQuery, v.nq
	// Union branches within one query share a dedup set; ordered union
	// results are buffered and flushed in document order at end of scan
	// with their Seq renumbered densely per query (branch-local Seqs are
	// incomparable).
	branches := make([]int, nq)
	for _, qi := range machQuery {
		branches[qi]++
	}
	seen := make([]map[int64]bool, nq)
	var held []SetResult
	topts := make([]twigm.Options, snap.Len())
	for j := range topts {
		qi := machQuery[j]
		union := branches[qi] > 1
		topts[j] = twigm.Options{
			Ordered:   opts.Ordered && !union,
			CountOnly: opts.CountOnly,
			Trace:     opts.Trace,
		}
		if emit == nil {
			continue
		}
		if union && seen[qi] == nil {
			seen[qi] = make(map[int64]bool)
		}
		topts[j].Emit = func(tr twigm.Result) error {
			if union {
				if seen[qi][tr.NodeOffset] {
					return nil
				}
				seen[qi][tr.NodeOffset] = true
				if opts.Ordered {
					held = append(held, SetResult{QueryIndex: qi, Result: Result(tr)})
					return nil
				}
			}
			return emit(SetResult{QueryIndex: qi, Result: Result(tr)})
		}
	}
	mstats, err := streamEngine(snap, r, opts, topts)
	stats := make([]Stats, nq)
	perQuery := make([][]twigm.Stats, nq)
	for d := range mstats {
		qi := machQuery[d]
		perQuery[qi] = append(perQuery[qi], mstats[d])
	}
	for qi := range stats {
		stats[qi] = engine.MergeStats(perQuery[qi])
	}
	if err != nil {
		return stats, err
	}
	if len(held) > 0 && emit != nil {
		sort.Slice(held, func(a, b int) bool {
			if held[a].QueryIndex != held[b].QueryIndex {
				return held[a].QueryIndex < held[b].QueryIndex
			}
			return held[a].NodeOffset < held[b].NodeOffset
		})
		seq, curQuery := int64(0), -1
		for i := range held {
			if held[i].QueryIndex != curQuery {
				curQuery, seq = held[i].QueryIndex, 0
			}
			held[i].Seq = seq
			seq++
			if err := emit(held[i]); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// Counts evaluates the whole set counting solutions per query, without
// serializing fragments. The returned slice has one entry per query of the
// membership the underlying Stream evaluated — sized from that stream's own
// snapshot, so a mutation racing the call cannot put an emission out of
// range.
func (qs *QuerySet) Counts(r io.Reader) ([]int64, error) {
	var counts []int64
	grow := func(n int) {
		for len(counts) < n {
			counts = append(counts, 0)
		}
	}
	stats, err := qs.Stream(r, Options{CountOnly: true}, func(sr SetResult) error {
		grow(sr.QueryIndex + 1)
		counts[sr.QueryIndex]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	grow(len(stats))
	return counts, nil
}

// Metrics returns the set engine's churn accounting: compile counts,
// epoch/compaction numbers and slot occupancy. See engine.Metrics.
func (qs *QuerySet) Metrics() engine.Metrics {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.eng.Metrics()
}

// EnableHotStats samples every every-th serial Stream with timed routing,
// attributing wall clock across scan/trie/machine stages; see
// engine.Engine.EnableHotStats. The attribution accumulates in
// Metrics().Hot.
func (qs *QuerySet) EnableHotStats(every int) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	qs.eng.EnableHotStats(every)
}

// EvalHistogram returns the full bucket data behind Metrics().Eval: the
// distribution of per-stream evaluation cost in ns per scan event.
func (qs *QuerySet) EvalHistogram() obs.Snapshot {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.eng.EvalHistogram()
}

// SetScanBatch tunes how many scanner events subsequent Stream calls deliver
// to the evaluation session per batch (the built-in scanner only; the
// UseStdParser path is always per-event). n > 0 sets the batch size, n == 0
// restores the default, n < 0 disables batching so events are delivered one
// at a time — the configurations performance experiments sweep. See
// engine.Engine.SetScanBatch.
func (qs *QuerySet) SetScanBatch(n int) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	qs.eng.SetScanBatch(n)
}
