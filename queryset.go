package vitex

import (
	"io"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/twigm"
	"repro/internal/xpath"
)

// QuerySet evaluates several compiled queries over one XML stream in a
// single sequential scan — the subscription scenario of the paper's
// motivation (stock tickers, personalized newspapers: many standing queries,
// one feed). All machines are linked against one shared symbol table and an
// engine-level routing index maps each event to the machines whose name
// tests mention it, so the per-event cost is proportional to the number of
// interested queries, not the size of the set. Evaluation state is pooled:
// a long-lived QuerySet serving a stream of documents reuses its machines,
// scanner and buffers with near-zero steady-state allocation. With
// Options.Parallel the machines are sharded over worker goroutines and the
// per-shard results merged back into the exact serial emission order, so a
// large standing set saturates every core without changing a single byte of
// output.
//
// A QuerySet is safe for concurrent Stream calls; Add must not race with
// them.
type QuerySet struct {
	mu      sync.Mutex
	queries []*Query
	eng     *engine.Engine
	// machQuery maps engine machine index -> query index (union queries
	// contribute one machine per branch); branches counts machines per
	// query.
	machQuery []int
	branches  []int
}

// NewQuerySet compiles all sources into a set. It fails on the first
// query that does not compile.
func NewQuerySet(sources ...string) (*QuerySet, error) {
	qs := &QuerySet{}
	for _, src := range sources {
		q, err := Compile(src)
		if err != nil {
			return nil, err
		}
		qs.queries = append(qs.queries, q)
	}
	return qs, nil
}

// Add appends an already-compiled query. The shared dispatch index is
// relinked on the next Stream.
func (qs *QuerySet) Add(q *Query) {
	qs.mu.Lock()
	qs.queries = append(qs.queries, q)
	qs.eng = nil
	qs.mu.Unlock()
}

// Len returns the number of queries in the set.
func (qs *QuerySet) Len() int {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return len(qs.queries)
}

// Query returns the i-th query of the set.
func (qs *QuerySet) Query(i int) *Query {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.queries[i]
}

// engine returns the set-wide engine, relinking every query's branches
// against one fresh symbol table when the set changed. Recompilation is
// linear in total query size (paper claim 2), so this is cheap relative to
// any stream evaluation.
func (qs *QuerySet) engineLocked() (*engine.Engine, []int, []int, error) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.eng == nil {
		var parsed []*xpath.Query
		machQuery := make([]int, 0, len(qs.queries))
		branches := make([]int, len(qs.queries))
		for i, q := range qs.queries {
			for _, p := range q.progs {
				parsed = append(parsed, p.Query())
				machQuery = append(machQuery, i)
			}
			branches[i] = len(q.progs)
		}
		eng, err := engine.New(parsed...)
		if err != nil {
			return nil, nil, nil, err
		}
		qs.eng = eng
		qs.machQuery = machQuery
		qs.branches = branches
	}
	return qs.eng, qs.machQuery, qs.branches, nil
}

// SetResult tags a Result with the index of the query that produced it.
type SetResult struct {
	// QueryIndex identifies the query (position in NewQuerySet /Add
	// order).
	QueryIndex int
	Result
}

// Stream evaluates every query in the set over one scan of r. emit receives
// each solution tagged with its query index, in per-query confirmation
// order (or per-query document order with Options.Ordered). It returns
// per-query statistics; scan-level counters (Events, Elements, MaxDepth)
// describe the one shared scan and are identical across queries.
func (qs *QuerySet) Stream(r io.Reader, opts Options, emit func(SetResult) error) ([]Stats, error) {
	eng, machQuery, branches, err := qs.engineLocked()
	if err != nil {
		return nil, err
	}
	nq := len(branches)
	// Union branches within one query share a dedup set; ordered union
	// results are buffered and flushed in document order at end of scan
	// with their Seq renumbered densely per query (branch-local Seqs are
	// incomparable).
	seen := make([]map[int64]bool, nq)
	var held []SetResult
	topts := make([]twigm.Options, eng.Len())
	for j := range topts {
		qi := machQuery[j]
		union := branches[qi] > 1
		topts[j] = twigm.Options{
			Ordered:   opts.Ordered && !union,
			CountOnly: opts.CountOnly,
			Trace:     opts.Trace,
		}
		if emit == nil {
			continue
		}
		if union && seen[qi] == nil {
			seen[qi] = make(map[int64]bool)
		}
		topts[j].Emit = func(tr twigm.Result) error {
			if union {
				if seen[qi][tr.NodeOffset] {
					return nil
				}
				seen[qi][tr.NodeOffset] = true
				if opts.Ordered {
					held = append(held, SetResult{QueryIndex: qi, Result: Result(tr)})
					return nil
				}
			}
			return emit(SetResult{QueryIndex: qi, Result: Result(tr)})
		}
	}
	mstats, err := streamEngine(eng, r, opts, topts)
	stats := make([]Stats, nq)
	next := 0
	for qi := range stats {
		stats[qi] = engine.MergeStats(mstats[next : next+branches[qi]])
		next += branches[qi]
	}
	if err != nil {
		return stats, err
	}
	if len(held) > 0 && emit != nil {
		sort.Slice(held, func(a, b int) bool {
			if held[a].QueryIndex != held[b].QueryIndex {
				return held[a].QueryIndex < held[b].QueryIndex
			}
			return held[a].NodeOffset < held[b].NodeOffset
		})
		seq, curQuery := int64(0), -1
		for i := range held {
			if held[i].QueryIndex != curQuery {
				curQuery, seq = held[i].QueryIndex, 0
			}
			held[i].Seq = seq
			seq++
			if err := emit(held[i]); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// Counts evaluates the whole set counting solutions per query, without
// serializing fragments.
func (qs *QuerySet) Counts(r io.Reader) ([]int64, error) {
	counts := make([]int64, qs.Len())
	_, err := qs.Stream(r, Options{CountOnly: true}, func(sr SetResult) error {
		counts[sr.QueryIndex]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}
