package vitex

import (
	"io"
	"sort"

	"repro/internal/sax"
	"repro/internal/twigm"
)

// QuerySet evaluates several compiled queries over one XML stream in a
// single sequential scan — the subscription scenario of the paper's
// motivation (stock tickers, personalized newspapers: many standing queries,
// one feed). Each query runs its own TwigM machine; the scan is shared, so
// the cost is one parse plus the per-query machine work instead of one full
// pass per query.
type QuerySet struct {
	queries []*Query
}

// NewQuerySet compiles all sources into a set. It fails on the first
// query that does not compile.
func NewQuerySet(sources ...string) (*QuerySet, error) {
	qs := &QuerySet{}
	for _, src := range sources {
		q, err := Compile(src)
		if err != nil {
			return nil, err
		}
		qs.queries = append(qs.queries, q)
	}
	return qs, nil
}

// Add appends an already-compiled query.
func (qs *QuerySet) Add(q *Query) { qs.queries = append(qs.queries, q) }

// Len returns the number of queries in the set.
func (qs *QuerySet) Len() int { return len(qs.queries) }

// Query returns the i-th query of the set.
func (qs *QuerySet) Query(i int) *Query { return qs.queries[i] }

// SetResult tags a Result with the index of the query that produced it.
type SetResult struct {
	// QueryIndex identifies the query (position in NewQuerySet /Add
	// order).
	QueryIndex int
	Result
}

// Stream evaluates every query in the set over one scan of r. emit receives
// each solution tagged with its query index, in per-query confirmation
// order (or per-query document order with Options.Ordered). It returns
// per-query statistics.
func (qs *QuerySet) Stream(r io.Reader, opts Options, emit func(SetResult) error) ([]Stats, error) {
	var handlers sax.Fanout
	perQuery := make([][]*twigm.Run, len(qs.queries))
	// Union branches within one query share a dedup set; ordered union
	// results are buffered and flushed in document order at end of scan.
	var held []SetResult
	for i, q := range qs.queries {
		idx := i
		union := len(q.progs) > 1
		var seen map[int64]bool
		if union {
			seen = make(map[int64]bool)
		}
		for _, prog := range q.progs {
			topts := twigm.Options{
				Ordered:   opts.Ordered && !union,
				CountOnly: opts.CountOnly,
				Trace:     opts.Trace,
			}
			if emit != nil {
				topts.Emit = func(tr twigm.Result) error {
					if union {
						if seen[tr.NodeOffset] {
							return nil
						}
						seen[tr.NodeOffset] = true
						if opts.Ordered {
							held = append(held, SetResult{QueryIndex: idx, Result: Result(tr)})
							return nil
						}
					}
					return emit(SetResult{QueryIndex: idx, Result: Result(tr)})
				}
			}
			run := prog.Start(topts)
			perQuery[i] = append(perQuery[i], run)
			handlers = append(handlers, run)
		}
	}
	var drv sax.Driver
	if opts.UseStdParser {
		drv = sax.NewStdDriver(r)
	} else {
		drv = newScanner(r)
	}
	err := drv.Run(handlers)
	stats := make([]Stats, len(qs.queries))
	for i, runs := range perQuery {
		stats[i] = mergeStats(runs)
	}
	if err != nil {
		return stats, err
	}
	if len(held) > 0 && emit != nil {
		sort.Slice(held, func(a, b int) bool {
			if held[a].QueryIndex != held[b].QueryIndex {
				return held[a].QueryIndex < held[b].QueryIndex
			}
			return held[a].NodeOffset < held[b].NodeOffset
		})
		for _, sr := range held {
			if err := emit(sr); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// Counts evaluates the whole set counting solutions per query, without
// serializing fragments.
func (qs *QuerySet) Counts(r io.Reader) ([]int64, error) {
	counts := make([]int64, qs.Len())
	_, err := qs.Stream(r, Options{CountOnly: true}, func(sr SetResult) error {
		counts[sr.QueryIndex]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}
