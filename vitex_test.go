package vitex

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
)

func TestQuickstart(t *testing.T) {
	q := MustCompile(datagen.PaperQuery)
	got, err := q.EvaluateString(datagen.PaperFigure1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "<cell> A </cell>" {
		t.Fatalf("got %q", got)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not a query"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Compile("//a[not(b)]"); err == nil {
		t.Fatal("expected unsupported-function error")
	}
}

func TestStreamCallback(t *testing.T) {
	q := MustCompile("//trade[symbol='ACME']/price")
	doc := datagen.Ticker{Trades: 100, Seed: 1}.String()
	var prices []string
	stats, err := q.Stream(strings.NewReader(doc), Options{}, func(r Result) error {
		prices = append(prices, r.Value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) == 0 {
		t.Fatal("no results")
	}
	if stats.Events == 0 || stats.CandidatesEmitted != int64(len(prices)) {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
}

func TestCount(t *testing.T) {
	q := MustCompile("//ProteinEntry[reference]/@id")
	p := datagen.Protein{TargetBytes: 100 << 10, Seed: 5}
	_, withRef := p.Counts()
	n, err := q.Count(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(withRef) {
		t.Fatalf("Count = %d, generator says %d", n, withRef)
	}
}

func TestEvaluateOrdered(t *testing.T) {
	q := MustCompile("//a[p]/b")
	doc := "<r><a><b>1</b><b>2</b><p/></a></r>"
	results, err := q.Evaluate(strings.NewReader(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Value != "<b>1</b>" || results[1].Value != "<b>2</b>" {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Seq >= results[1].Seq {
		t.Fatal("not in document order")
	}
}

func TestUseStdParser(t *testing.T) {
	q := MustCompile("//a")
	doc := "<r><a>x</a></r>"
	for _, std := range []bool{false, true} {
		got, err := q.Evaluate(strings.NewReader(doc), Options{UseStdParser: std})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Value != "<a>x</a>" {
			t.Fatalf("std=%v: %+v", std, got)
		}
	}
}

func TestConcurrentEvaluations(t *testing.T) {
	q := MustCompile(datagen.PaperQuery)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := q.EvaluateString(datagen.PaperFigure1)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != 1 {
				errs <- &strError{"wrong result count"}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type strError struct{ s string }

func (e *strError) Error() string { return e.s }

func TestQueryIntrospection(t *testing.T) {
	q := MustCompile(datagen.PaperQuery)
	if q.Size() != 5 {
		t.Fatalf("Size = %d", q.Size())
	}
	if q.String() != datagen.PaperQuery {
		t.Fatalf("String = %q", q.String())
	}
	if q.Source() != datagen.PaperQuery {
		t.Fatalf("Source = %q", q.Source())
	}
	if !strings.Contains(q.MachineDescription(), "=cell *") {
		t.Fatalf("MachineDescription:\n%s", q.MachineDescription())
	}
}

func TestMalformedStream(t *testing.T) {
	q := MustCompile("//a")
	if _, err := q.EvaluateString("<a><b></a>"); err == nil {
		t.Fatal("expected syntax error")
	}
}

func TestTraceOption(t *testing.T) {
	q := MustCompile("//a[p]/b")
	var log strings.Builder
	_, err := q.Stream(strings.NewReader("<r><a><b/><p/></a></r>"), Options{Trace: &log}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"push   a", "cand   #0", "match  p", "proven #0", "emit   #0"} {
		if !strings.Contains(log.String(), want) {
			t.Fatalf("trace missing %q:\n%s", want, log.String())
		}
	}
}

func TestEmitErrorStopsStream(t *testing.T) {
	q := MustCompile("//a")
	doc := "<r>" + strings.Repeat("<a/>", 100) + "</r>"
	calls := 0
	_, err := q.Stream(strings.NewReader(doc), Options{}, func(Result) error {
		calls++
		return &strError{"enough"}
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
