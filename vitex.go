// Package vitex is a streaming XPath processing system: a from-scratch Go
// reproduction of ViteX (Chen, Davidson, Zheng — "ViteX: a Streaming XPath
// Processing System", ICDE 2005).
//
// ViteX evaluates XPath queries in the fragment XP{/, //, *, []} — child
// axes, descendant axes, wildcards and predicates — over XML streams in a
// single sequential scan, with time and space polynomial in both data and
// query size. The engine behind it, the TwigM machine, keeps one stack per
// query node and encodes the (worst-case exponential) set of pattern
// matches compactly in per-entry bitsets; query solutions are computed by
// probing this structure lazily, without ever enumerating matches. Results
// are delivered incrementally, as soon as they are proven, long before the
// stream ends.
//
// The package is organized like figure 2 of the paper, with one extra layer
// for the paper's many-standing-queries scenario:
//
//	XPath parser  (internal/xpath)  — query text → query tree
//	TwigM builder (internal/twigm)  — query tree → machine, linear time
//	SAX parser    (internal/xmlscan)— byte stream → events, single pass
//	TwigM machine (internal/twigm)  — events → solutions
//	Query engine  (internal/engine) — routed multi-query dispatch
//
// All machines of a Query (or QuerySet) are compiled against one shared
// symbol table; the scanner stamps each event with its name's integer ID,
// and the engine routes the event only to the machines whose element or
// attribute tests mention that name (wildcard, text and fragment-recording
// subscriptions are tracked separately). The compilation unit is the query
// SET: the purely structural leading steps of every query are factored into
// one shared axis-step trie, evaluated once per event, with each query
// reduced to a residual machine anchored at its trie node — overlapping
// subscriptions like //channel//article/head/… pay for their shared prefix
// once, however many of them are standing. Evaluating N standing queries
// over one feed therefore costs one parse plus work proportional to the
// queries an event actually concerns — not O(N) per event — and grows
// sublinearly in N on overlapping sets. Machine state, scanner
// buffers and dispatch sets are pooled and reused across documents, so a
// long-lived Query or QuerySet streams with near-zero steady-state
// allocation. Options.Parallel shards the machines over N worker goroutines
// fed from one batching scan, with results re-merged into the exact serial
// emission order — large standing sets saturate every core while staying
// byte-identical to a serial run. A QuerySet is live: Add, Remove and
// Replace mutate it between (and safely concurrent with) Stream calls,
// compiling only the changed query — the engine versions its membership in
// immutable epochs and pooled sessions resync incrementally, so
// subscription churn costs O(changed query), not O(standing set).
//
// Quick start:
//
//	q := vitex.MustCompile("//section[author]//table[position]//cell")
//	err := q.Stream(file, vitex.Options{}, func(r vitex.Result) error {
//		fmt.Println(r.Value)
//		return nil
//	})
//
// Supported XPath: abbreviated steps with / and //, name tests, *, @attr,
// text(); predicates combining relative paths, attribute and text()
// existence tests, value comparisons (= != < <= > >=) against string or
// numeric literals, self comparisons [. = 'v'], 'and'/'or', parentheses and
// nesting; top-level unions 'p1 | p2'. Out of scope (rejected at compile
// time): functions (not(), position(), ...), positional predicates,
// path-vs-path comparisons, reverse and named axes.
package vitex

import (
	"context"
	"io"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/twigm"
	"repro/internal/xpath"
)

// Result is one query solution.
type Result struct {
	// Seq numbers solutions in document order of their result nodes.
	Seq int64
	// NodeOffset identifies the result node by its byte position in the
	// input: equal offsets across queries over the same stream mean the
	// same node. Union evaluation deduplicates on it.
	NodeOffset int64
	// Value is the canonical serialization: the XML fragment for element
	// results, the raw value for attribute and text() results. Empty
	// when Options.CountOnly is set.
	Value string
	// ConfirmedAt and DeliveredAt are SAX-event indices recording when
	// the solution was proven and when it was handed to the callback —
	// the incremental-delivery latency of the paper's §1 requirement 2.
	ConfirmedAt int64
	DeliveredAt int64
}

// Stats reports the work a stream evaluation performed; see the fields of
// twigm.Stats for the full accounting. The counters quantify the paper's
// claims: PeakStackEntries and PeakBufferedBytes bound memory (claim 3),
// FlagProps counts compact-encoding work (claim 4).
type Stats = twigm.Stats

// Options configures an evaluation.
type Options struct {
	// Ordered delivers results in document order instead of
	// confirmation order (adds buffering latency).
	Ordered bool
	// CountOnly suppresses fragment serialization; Result.Value is
	// empty. Fastest mode; used for counting and memory experiments.
	CountOnly bool
	// UseStdParser swaps the custom scanner for encoding/xml
	// (cross-checking and parser-share ablations; roughly 5-10x slower
	// on tag-dense input).
	UseStdParser bool
	// Parallel selects sharded multi-core evaluation: 0 or 1 evaluates
	// serially on the calling goroutine, N > 1 spreads the machines over N
	// worker goroutines, and a negative value uses GOMAXPROCS workers.
	// Results, Seq numbers, ConfirmedAt/DeliveredAt clocks and emission
	// order are byte-identical to serial evaluation; Emit callbacks are
	// always invoked sequentially from the calling goroutine. Worth it for
	// large standing query sets; a single machine always runs serially.
	Parallel int
	// Trace, when non-nil, receives a human-readable log of every TwigM
	// transition — stack pushes and pops, flag propagations, candidate
	// lifecycle and emissions. The demonstration view of the system;
	// substantially slower, leave nil in production.
	Trace io.Writer
	// Context, when non-nil, cancels the evaluation: the engine checks it at
	// every scan event (and, in parallel mode, before every emission), so a
	// cancellation — whether from a deadline, a disconnecting network
	// client, or inside the Emit callback itself — aborts the stream
	// promptly mid-document and the evaluation returns ctx.Err(). Nil means
	// no cancellation (context.Background) and costs nothing on the hot
	// path. This is the lever a serving layer uses to tie evaluations to
	// request and shutdown lifecycles.
	Context context.Context
}

// Query is a compiled query: one immutable TwigM program per union branch
// (a single-path query has exactly one), compiled against a shared symbol
// table and wrapped in a routed-dispatch engine. A Query can evaluate any
// number of streams, including concurrently (each evaluation checks private
// machine state out of the engine's session pool, so repeated streaming over
// one Query reuses warmed-up state instead of reallocating it).
type Query struct {
	eng   *engine.Engine
	progs []*twigm.Program
	src   string
}

// Compile parses an XPath query — including unions 'p1 | p2' — and builds
// one TwigM machine per branch, all interned into one symbol table so scan
// events dispatch by integer name ID. Build time is linear in the query
// size. Errors are *xpath.ParseError or *twigm.CompileError values
// describing the offending position or width.
func Compile(src string) (*Query, error) {
	parsed, err := xpath.ParseUnion(src)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(parsed...)
	if err != nil {
		return nil, err
	}
	return &Query{eng: eng, progs: eng.Programs(), src: src}, nil
}

// MustCompile is Compile, panicking on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the canonical form of the query (branches joined by '|').
func (q *Query) String() string {
	parts := make([]string, len(q.progs))
	for i, p := range q.progs {
		parts[i] = p.Query().String()
	}
	return strings.Join(parts, " | ")
}

// Source returns the original query text.
func (q *Query) Source() string { return q.src }

// Size returns the number of query nodes across all branches — the |Q| of
// the paper's complexity bounds.
func (q *Query) Size() int {
	n := 0
	for _, p := range q.progs {
		n += p.NumNodes()
	}
	return n
}

// MachineDescription renders the TwigM machine tree(s) (the figure-3 view):
// one node per line, '-' edges for child axes, '=' for descendant axes, '*'
// marking the output node. Union branches are separated by a '|' line.
func (q *Query) MachineDescription() string {
	parts := make([]string, len(q.progs))
	for i, p := range q.progs {
		parts[i] = p.Describe()
	}
	return strings.Join(parts, "|\n")
}

// Stream evaluates the query over an XML stream, invoking emit for each
// solution as soon as it is proven (or in document order with
// Options.Ordered). It returns evaluation statistics and the first error:
// malformed XML, a failed read, or an error returned by emit (which aborts
// the stream).
//
// Union queries run one machine per branch over the same single scan.
// Results are deduplicated by node (NodeOffset): without Ordered, a node is
// emitted the first time any branch proves it; with Ordered, union results
// are buffered to the end of the stream and emitted in document order
// (single-path queries keep the cheaper streaming re-sequencer).
func (q *Query) Stream(r io.Reader, opts Options, emit func(Result) error) (Stats, error) {
	if len(q.progs) == 1 {
		topts := twigm.Options{
			Ordered:   opts.Ordered,
			CountOnly: opts.CountOnly,
			Trace:     opts.Trace,
		}
		if emit != nil {
			topts.Emit = func(tr twigm.Result) error {
				return emit(Result(tr))
			}
		}
		stats, err := streamEngine(q.eng.Snapshot(), r, opts, []twigm.Options{topts})
		return stats[0], err
	}
	return q.streamUnion(r, opts, emit)
}

// streamEngine dispatches to the serial or parallel engine entry point per
// Options.Parallel, plumbing Options.Context into the engine loop.
func streamEngine(snap engine.Snapshot, r io.Reader, opts Options, topts []twigm.Options) ([]twigm.Stats, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Parallel != 0 && opts.Parallel != 1 {
		return snap.StreamParallelContext(ctx, r, opts.UseStdParser, topts, opts.Parallel)
	}
	return snap.StreamContext(ctx, r, opts.UseStdParser, topts)
}

// streamUnion evaluates one machine per branch over the shared scan
// (routed, like any multi-machine evaluation), deduplicating by node
// identity.
func (q *Query) streamUnion(r io.Reader, opts Options, emit func(Result) error) (Stats, error) {
	seen := make(map[int64]bool)
	var held []Result // Ordered mode: buffer, sort, emit at end
	topts := make([]twigm.Options, len(q.progs))
	for i := range q.progs {
		topts[i] = twigm.Options{
			CountOnly: opts.CountOnly,
			Trace:     opts.Trace,
		}
		topts[i].Emit = func(tr twigm.Result) error {
			if seen[tr.NodeOffset] {
				return nil
			}
			seen[tr.NodeOffset] = true
			if opts.Ordered {
				held = append(held, Result(tr))
				return nil
			}
			if emit != nil {
				return emit(Result(tr))
			}
			return nil
		}
	}
	branchStats, err := streamEngine(q.eng.Snapshot(), r, opts, topts)
	stats := engine.MergeStats(branchStats)
	if err != nil {
		return stats, err
	}
	if opts.Ordered {
		sort.Slice(held, func(i, j int) bool { return held[i].NodeOffset < held[j].NodeOffset })
		for i := range held {
			// Branch-local Seq values are incomparable across branches;
			// renumber in flush (= document) order to match single-path
			// semantics.
			held[i].Seq = int64(i)
			if emit != nil {
				if err := emit(held[i]); err != nil {
					return stats, err
				}
			}
		}
	}
	return stats, nil
}

// Evaluate runs the query over a whole document and returns all solutions
// in document order.
func (q *Query) Evaluate(r io.Reader, opts Options) ([]Result, error) {
	opts.Ordered = true
	var out []Result
	_, err := q.Stream(r, opts, func(res Result) error {
		out = append(out, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvaluateString evaluates over an in-memory document and returns the
// solution values in document order — the one-liner API.
func (q *Query) EvaluateString(doc string) ([]string, error) {
	results, err := q.Evaluate(strings.NewReader(doc), Options{})
	if err != nil {
		return nil, err
	}
	values := make([]string, len(results))
	for i, res := range results {
		values[i] = res.Value
	}
	return values, nil
}

// Count streams the document counting solutions without serializing them.
func (q *Query) Count(r io.Reader) (int64, error) {
	n := int64(0)
	_, err := q.Stream(r, Options{CountOnly: true}, func(Result) error {
		n++
		return nil
	})
	return n, err
}
