// Package vitex is a streaming XPath processing system: a from-scratch Go
// reproduction of ViteX (Chen, Davidson, Zheng — "ViteX: a Streaming XPath
// Processing System", ICDE 2005).
//
// ViteX evaluates XPath queries in the fragment XP{/, //, *, []} — child
// axes, descendant axes, wildcards and predicates — over XML streams in a
// single sequential scan, with time and space polynomial in both data and
// query size. The engine behind it, the TwigM machine, keeps one stack per
// query node and encodes the (worst-case exponential) set of pattern
// matches compactly in per-entry bitsets; query solutions are computed by
// probing this structure lazily, without ever enumerating matches. Results
// are delivered incrementally, as soon as they are proven, long before the
// stream ends.
//
// The package is organized exactly like figure 2 of the paper:
//
//	XPath parser  (internal/xpath)  — query text → query tree
//	TwigM builder (internal/twigm)  — query tree → machine, linear time
//	SAX parser    (internal/xmlscan)— byte stream → events, single pass
//	TwigM machine (internal/twigm)  — events → solutions
//
// Quick start:
//
//	q := vitex.MustCompile("//section[author]//table[position]//cell")
//	err := q.Stream(file, vitex.Options{}, func(r vitex.Result) error {
//		fmt.Println(r.Value)
//		return nil
//	})
//
// Supported XPath: abbreviated steps with / and //, name tests, *, @attr,
// text(); predicates combining relative paths, attribute and text()
// existence tests, value comparisons (= != < <= > >=) against string or
// numeric literals, self comparisons [. = 'v'], 'and'/'or', parentheses and
// nesting. Out of scope (rejected at compile time): functions (not(),
// position(), ...), positional predicates, path-vs-path comparisons,
// reverse and named axes, unions.
package vitex

import (
	"io"
	"sort"
	"strings"

	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// Result is one query solution.
type Result struct {
	// Seq numbers solutions in document order of their result nodes.
	Seq int64
	// NodeOffset identifies the result node by its byte position in the
	// input: equal offsets across queries over the same stream mean the
	// same node. Union evaluation deduplicates on it.
	NodeOffset int64
	// Value is the canonical serialization: the XML fragment for element
	// results, the raw value for attribute and text() results. Empty
	// when Options.CountOnly is set.
	Value string
	// ConfirmedAt and DeliveredAt are SAX-event indices recording when
	// the solution was proven and when it was handed to the callback —
	// the incremental-delivery latency of the paper's §1 requirement 2.
	ConfirmedAt int64
	DeliveredAt int64
}

// Stats reports the work a stream evaluation performed; see the fields of
// twigm.Stats for the full accounting. The counters quantify the paper's
// claims: PeakStackEntries and PeakBufferedBytes bound memory (claim 3),
// FlagProps counts compact-encoding work (claim 4).
type Stats = twigm.Stats

// Options configures an evaluation.
type Options struct {
	// Ordered delivers results in document order instead of
	// confirmation order (adds buffering latency).
	Ordered bool
	// CountOnly suppresses fragment serialization; Result.Value is
	// empty. Fastest mode; used for counting and memory experiments.
	CountOnly bool
	// UseStdParser swaps the custom scanner for encoding/xml
	// (cross-checking and parser-share ablations; roughly 5-10x slower
	// on tag-dense input).
	UseStdParser bool
	// Trace, when non-nil, receives a human-readable log of every TwigM
	// transition — stack pushes and pops, flag propagations, candidate
	// lifecycle and emissions. The demonstration view of the system;
	// substantially slower, leave nil in production.
	Trace io.Writer
}

// Query is a compiled query: one immutable TwigM program per union branch
// (a single-path query has exactly one). A Query can evaluate any number of
// streams, including concurrently (each evaluation carries its own machine
// state).
type Query struct {
	progs []*twigm.Program
	src   string
}

// Compile parses an XPath query — including unions 'p1 | p2' — and builds
// one TwigM machine per branch. Build time is linear in the query size.
// Errors are *xpath.ParseError or *twigm.CompileError values describing the
// offending position or width.
func Compile(src string) (*Query, error) {
	parsed, err := xpath.ParseUnion(src)
	if err != nil {
		return nil, err
	}
	q := &Query{src: src}
	for _, branch := range parsed {
		prog, err := twigm.Compile(branch)
		if err != nil {
			return nil, err
		}
		q.progs = append(q.progs, prog)
	}
	return q, nil
}

// MustCompile is Compile, panicking on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the canonical form of the query (branches joined by '|').
func (q *Query) String() string {
	parts := make([]string, len(q.progs))
	for i, p := range q.progs {
		parts[i] = p.Query().String()
	}
	return strings.Join(parts, " | ")
}

// Source returns the original query text.
func (q *Query) Source() string { return q.src }

// Size returns the number of query nodes across all branches — the |Q| of
// the paper's complexity bounds.
func (q *Query) Size() int {
	n := 0
	for _, p := range q.progs {
		n += p.NumNodes()
	}
	return n
}

// MachineDescription renders the TwigM machine tree(s) (the figure-3 view):
// one node per line, '-' edges for child axes, '=' for descendant axes, '*'
// marking the output node. Union branches are separated by a '|' line.
func (q *Query) MachineDescription() string {
	parts := make([]string, len(q.progs))
	for i, p := range q.progs {
		parts[i] = p.Describe()
	}
	return strings.Join(parts, "|\n")
}

// Stream evaluates the query over an XML stream, invoking emit for each
// solution as soon as it is proven (or in document order with
// Options.Ordered). It returns evaluation statistics and the first error:
// malformed XML, a failed read, or an error returned by emit (which aborts
// the stream).
//
// Union queries run one machine per branch over the same single scan.
// Results are deduplicated by node (NodeOffset): without Ordered, a node is
// emitted the first time any branch proves it; with Ordered, union results
// are buffered to the end of the stream and emitted in document order
// (single-path queries keep the cheaper streaming re-sequencer).
func (q *Query) Stream(r io.Reader, opts Options, emit func(Result) error) (Stats, error) {
	if len(q.progs) == 1 {
		topts := twigm.Options{
			Ordered:   opts.Ordered,
			CountOnly: opts.CountOnly,
			Trace:     opts.Trace,
		}
		if emit != nil {
			topts.Emit = func(tr twigm.Result) error {
				return emit(Result(tr))
			}
		}
		run := q.progs[0].Start(topts)
		if err := q.driver(r, opts).Run(run); err != nil {
			return run.Stats(), err
		}
		return run.Stats(), nil
	}
	return q.streamUnion(r, opts, emit)
}

// streamUnion fans the scan out to one machine per branch, deduplicating by
// node identity.
func (q *Query) streamUnion(r io.Reader, opts Options, emit func(Result) error) (Stats, error) {
	seen := make(map[int64]bool)
	var held []Result // Ordered mode: buffer, sort, emit at end
	handlers := make(sax.Fanout, len(q.progs))
	runs := make([]*twigm.Run, len(q.progs))
	for i, prog := range q.progs {
		topts := twigm.Options{
			CountOnly: opts.CountOnly,
			Trace:     opts.Trace,
		}
		topts.Emit = func(tr twigm.Result) error {
			if seen[tr.NodeOffset] {
				return nil
			}
			seen[tr.NodeOffset] = true
			if opts.Ordered {
				held = append(held, Result(tr))
				return nil
			}
			if emit != nil {
				return emit(Result(tr))
			}
			return nil
		}
		runs[i] = prog.Start(topts)
		handlers[i] = runs[i]
	}
	err := q.driver(r, opts).Run(handlers)
	stats := mergeStats(runs)
	if err != nil {
		return stats, err
	}
	if opts.Ordered {
		sort.Slice(held, func(i, j int) bool { return held[i].NodeOffset < held[j].NodeOffset })
		for _, res := range held {
			if emit != nil {
				if err := emit(res); err != nil {
					return stats, err
				}
			}
		}
	}
	return stats, nil
}

// mergeStats aggregates per-branch statistics: counters sum, peaks take the
// maximum, event counts come from the shared scan.
func mergeStats(runs []*twigm.Run) Stats {
	var out Stats
	for i, run := range runs {
		s := run.Stats()
		if i == 0 {
			out.Events = s.Events
			out.Elements = s.Elements
			out.MaxDepth = s.MaxDepth
		}
		out.Pushes += s.Pushes
		out.Pops += s.Pops
		out.FlagProps += s.FlagProps
		out.CandMoves += s.CandMoves
		out.CandidatesCreated += s.CandidatesCreated
		out.CandidatesEmitted += s.CandidatesEmitted
		out.CandidatesDropped += s.CandidatesDropped
		out.PrunedPushes += s.PrunedPushes
		out.PeakStackEntries += s.PeakStackEntries
		if s.PeakLiveCandidates > out.PeakLiveCandidates {
			out.PeakLiveCandidates = s.PeakLiveCandidates
		}
		out.PeakBufferedBytes += s.PeakBufferedBytes
	}
	return out
}

// Evaluate runs the query over a whole document and returns all solutions
// in document order.
func (q *Query) Evaluate(r io.Reader, opts Options) ([]Result, error) {
	opts.Ordered = true
	var out []Result
	_, err := q.Stream(r, opts, func(res Result) error {
		out = append(out, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvaluateString evaluates over an in-memory document and returns the
// solution values in document order — the one-liner API.
func (q *Query) EvaluateString(doc string) ([]string, error) {
	results, err := q.Evaluate(strings.NewReader(doc), Options{})
	if err != nil {
		return nil, err
	}
	values := make([]string, len(results))
	for i, res := range results {
		values[i] = res.Value
	}
	return values, nil
}

// Count streams the document counting solutions without serializing them.
func (q *Query) Count(r io.Reader) (int64, error) {
	n := int64(0)
	_, err := q.Stream(r, Options{CountOnly: true}, func(Result) error {
		n++
		return nil
	})
	return n, err
}

func (q *Query) driver(r io.Reader, opts Options) sax.Driver {
	if opts.UseStdParser {
		return sax.NewStdDriver(r)
	}
	return newScanner(r)
}

// newScanner isolates the front-end constructor for the facade and
// QuerySet.
func newScanner(r io.Reader) sax.Driver { return xmlscan.NewScanner(r) }
