package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// traceDoc builds a document whose single match sits at the very end: the
// traced delivery's ring push happens in the evaluation's final moments, so
// deliver_wait barely overlaps scan_dispatch and the stage sum should
// reconstruct the trace's own end-to-end latency.
func traceDoc(filler int) string {
	var sb strings.Builder
	sb.WriteString("<feed>")
	for i := 0; i < filler; i++ {
		fmt.Fprintf(&sb, "<trade><symbol>WIDG</symbol><price>%d</price></trade>", i)
	}
	sb.WriteString("<trade><symbol>ACME</symbol><price>42</price></trade></feed>")
	return sb.String()
}

// drainInBackground consumes a result stream until stopped or the stream ends,
// so traced deliveries reach the wire (which is what completes a trace).
func drainInBackground(t *testing.T, cl *client.Client, channel, id string) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stream, err := cl.Results(ctx, channel, id)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer stream.Close()
		for {
			if _, err := stream.Next(); err != nil {
				return
			}
		}
	}()
	return func() { cancel(); <-done }
}

// TestTraceStageAccounting pins the tentpole's core claim: the per-stage
// nanosecond shares of a sampled publish reconstruct the observed
// publish-to-delivery latency. Every publish is traced (sample 1), the one
// match sits at the document's end, and at least one trace's stage sum must
// land within 10% of that trace's own total.
func TestTraceStageAccounting(t *testing.T) {
	cl, b, _ := startServer(t, server.Config{
		DataDir:     t.TempDir(),
		TraceSample: 1,
	})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "traced", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	stop := drainInBackground(t, cl, "traced", sub.ID)
	defer stop()

	const docs = 8
	doc := traceDoc(3000)
	for i := 0; i < docs; i++ {
		if _, err := cl.Publish(ctx, "traced", strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}

	// Traces finish at the consumer's wire write, asynchronously to the
	// publish acknowledgment; wait for all of them.
	deadline := time.Now().Add(10 * time.Second)
	for b.Tracer().Emitted() < docs && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	recs := b.Tracer().Recent()
	if len(recs) < docs {
		t.Fatalf("emitted %d traces, want %d", len(recs), docs)
	}

	wantStages := []string{"admission", "wal_append", "queue_wait", "scan_dispatch", "ring_enqueue", "deliver_wait", "wire_write"}
	bestGap := 1.0
	for _, rec := range recs {
		if rec.Channel != "traced" || rec.DocSeq == 0 {
			t.Fatalf("trace identity = %+v", rec)
		}
		if rec.Deliveries != 1 || rec.Events == 0 {
			t.Fatalf("trace accounting = %+v, want 1 delivery and >0 events", rec)
		}
		for _, s := range wantStages {
			if rec.Stages[s] <= 0 {
				t.Fatalf("trace missing stage %q: %+v", s, rec.Stages)
			}
		}
		if rec.TotalNs <= 0 {
			t.Fatalf("trace total = %d", rec.TotalNs)
		}
		gap := float64(rec.StageSumNs()-rec.TotalNs) / float64(rec.TotalNs)
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			bestGap = gap
		}
	}
	if bestGap > 0.10 {
		t.Fatalf("no trace's stage sum within 10%% of its total (best %.1f%%); records: %+v", bestGap*100, recs)
	}
}

// collectDeliveries publishes docs against a fresh broker and returns every
// result-stream line marshaled back to JSON, in order.
func collectDeliveries(t *testing.T, cfg server.Config, docs []string) ([]string, []server.PublishResponse) {
	t.Helper()
	cl, _, _ := startServer(t, cfg)
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "eq", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.Results(ctx, "eq", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var pubs []server.PublishResponse
	for _, doc := range docs {
		resp, err := cl.Publish(ctx, "eq", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, *resp)
	}
	if err := cl.Unsubscribe(ctx, "eq", sub.ID); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		d, err := stream.Next()
		if err == io.EOF {
			return lines, pubs
		}
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
	}
}

// TestTracedDeliveryEquivalence pins the observability layer's first
// invariant: tracing every publish changes nothing a client can see — the
// delivery stream and the publish responses are byte-identical to an
// untraced broker's.
func TestTracedDeliveryEquivalence(t *testing.T) {
	docs := []string{traceDoc(50), httpFeed, traceDoc(10)}
	plain, plainPubs := collectDeliveries(t, server.Config{}, docs)
	traced, tracedPubs := collectDeliveries(t, server.Config{TraceSample: 1}, docs)
	if len(plain) != len(traced) {
		t.Fatalf("delivery counts differ: untraced %d, traced %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("delivery %d differs:\nuntraced: %s\ntraced:   %s", i, plain[i], traced[i])
		}
	}
	for i := range plainPubs {
		if plainPubs[i] != tracedPubs[i] {
			t.Fatalf("publish response %d differs: %+v vs %+v", i, plainPubs[i], tracedPubs[i])
		}
	}
}

// TestMetricsContentNegotiation pins the /metrics contract: JSON by default
// (with an explicit content type, deterministically encoded), Prometheus
// text format under ?format= or an Accept header that puts text first.
func TestMetricsContentNegotiation(t *testing.T) {
	cl, _, base := startServer(t, server.Config{})
	ctx := context.Background()
	if _, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}

	get := func(path, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// Default and bare-curl shapes stay JSON — the serve-e2e scrape greps
	// the JSON body from an Accept-less request.
	body, ctype := get("/metrics", "")
	if ctype != "application/json; charset=utf-8" {
		t.Fatalf("default content type = %q", ctype)
	}
	if !strings.Contains(body, `"docs_in":`) {
		t.Fatalf("default body not the JSON view: %s", body)
	}
	if again, _ := get("/metrics", "*/*"); again != body {
		t.Fatalf("JSON /metrics not deterministic across identical scrapes:\n%s\n---\n%s", body, again)
	}

	promBody, promType := get("/metrics?format=prometheus", "")
	if promType != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("prometheus content type = %q", promType)
	}
	if !strings.Contains(promBody, "# TYPE vitex_channel_docs_in_total counter") {
		t.Fatalf("prometheus body missing TYPE header:\n%s", promBody)
	}
	if accBody, accType := get("/metrics", "text/plain, application/json;q=0.5"); accType != promType || !strings.Contains(accBody, "vitex_channel_docs_in_total") {
		t.Fatalf("Accept: text/plain did not negotiate prometheus (type %q)", accType)
	}
	if _, jsonType := get("/metrics", "application/json, text/plain"); jsonType != "application/json; charset=utf-8" {
		t.Fatalf("Accept preferring JSON got %q", jsonType)
	}
}

// TestPrometheusExposition publishes traffic through a durable broker and
// checks the scrape: every pre-existing counter family present with the
// right value, histograms with cumulative buckets, sums and counts, WAL
// families only for durable channels.
func TestPrometheusExposition(t *testing.T) {
	cl, _, _ := startServer(t, server.Config{DataDir: t.TempDir(), Policy: server.PolicyBlock})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	stop := drainInBackground(t, cl, "ticker", sub.ID)
	defer stop()
	const docs = 3
	for i := 0; i < docs; i++ {
		if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
			t.Fatal(err)
		}
	}

	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparsable exposition line %q", line)
		}
		series[name] = value
	}

	label := `{channel="ticker"}`
	for name, want := range map[string]string{
		"vitex_broker_channels":                      "1",
		"vitex_channel_subscriptions" + label:        "1",
		"vitex_channel_docs_in_total" + label:        "3",
		"vitex_channel_docs_failed_total" + label:    "0",
		"vitex_channel_results_total" + label:        "6",
		"vitex_channel_gaps_total" + label:           "0",
		"vitex_wal_last_cursor" + label:              "3",
		"vitex_engine_live_queries" + label:          "1",
		"vitex_publish_to_ack_seconds_count" + label: "3",
	} {
		if got := series[name]; got != want {
			t.Fatalf("series %s = %q, want %q\nexposition:\n%s", name, got, want, text)
		}
	}
	for _, name := range []string{
		"vitex_channel_bytes_in_total", "vitex_engine_compiles_total",
		"vitex_engine_events_total", "vitex_engine_deliveries_total",
		"vitex_wal_bytes", "vitex_wal_segments", "vitex_wal_replay_docs_total",
		"vitex_engine_eval_event_seconds_count", "vitex_wal_append_seconds_count",
		"vitex_wal_fsync_seconds_count",
	} {
		if _, ok := series[name+label]; !ok {
			t.Fatalf("series %s%s absent\nexposition:\n%s", name, label, text)
		}
	}

	// Histogram shape: the +Inf bucket equals the count, buckets are
	// cumulative (non-decreasing), and the policy label rides on
	// publish-to-delivery.
	if got := series[`vitex_publish_to_ack_seconds_bucket{channel="ticker",le="+Inf"}`]; got != "3" {
		t.Fatalf("publish_to_ack +Inf bucket = %q, want 3\n%s", got, text)
	}
	prev := int64(0)
	buckets := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `vitex_publish_to_ack_seconds_bucket{channel="ticker"`) {
			continue
		}
		var v int64
		if _, err := fmt.Sscan(line[strings.LastIndex(line, " ")+1:], &v); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q (%d after %d)", line, v, prev)
		}
		prev = v
		buckets++
	}
	if buckets != obs.NumBuckets {
		t.Fatalf("publish_to_ack emitted %d buckets, want the full lattice of %d", buckets, obs.NumBuckets)
	}
	delLabel := `{channel="ticker",policy="block"}`
	if _, ok := series["vitex_publish_to_delivery_seconds_count"+delLabel]; !ok {
		t.Fatalf("publish_to_delivery missing policy-labeled count\n%s", text)
	}

	// The JSON view agrees on the same quantities.
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cm := m.Channels["ticker"]
	if cm.Latency == nil || cm.Latency.PublishToAck.Count != docs {
		t.Fatalf("JSON latency = %+v, want publish_to_ack count %d", cm.Latency, docs)
	}
	if cm.Latency.WALAppend == nil || cm.Latency.WALAppend.Count != docs {
		t.Fatalf("JSON wal_append = %+v, want count %d", cm.Latency.WALAppend, docs)
	}
	if m.Totals.Latency == nil || m.Totals.Latency.PublishToAck.Count != docs {
		t.Fatalf("JSON totals latency = %+v", m.Totals.Latency)
	}
}

// TestDebugTracesEndpoint pins GET /debug/traces: disabled servers answer
// enabled=false with an empty list; enabled servers serve finished records
// newest first through the client helper.
func TestDebugTracesEndpoint(t *testing.T) {
	ctx := context.Background()
	cl, _, _ := startServer(t, server.Config{})
	tr, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Enabled || tr.Emitted != 0 || len(tr.Traces) != 0 {
		t.Fatalf("untraced server /debug/traces = %+v", tr)
	}

	cl2, b2, _ := startServer(t, server.Config{TraceSample: 1})
	sub, err := cl2.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	stop := drainInBackground(t, cl2, "ticker", sub.ID)
	defer stop()
	if _, err := cl2.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b2.Tracer().Emitted() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	tr2, err := cl2.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.Enabled || tr2.Emitted == 0 || len(tr2.Traces) == 0 {
		t.Fatalf("traced server /debug/traces = %+v", tr2)
	}
	if tr2.Traces[0].Channel != "ticker" || tr2.Traces[0].Deliveries != 2 {
		t.Fatalf("trace record = %+v, want channel ticker with 2 deliveries", tr2.Traces[0])
	}
}
