package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// openDurable runs a durable broker (recovered from dir) behind an httptest
// server. Unlike startServer it uses server.Open, so calling it twice on the
// same directory is a simulated restart.
func openDurable(t *testing.T, dir string, cfg server.Config) (*client.Client, *server.Broker) {
	t.Helper()
	cfg.DataDir = dir
	b, err := server.Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	cl, shutdown := serveBroker(t, b)
	t.Cleanup(shutdown)
	return cl, b
}

// serveBroker exposes a broker over HTTP and returns an idempotent shutdown
// for restarting mid-test.
func serveBroker(t *testing.T, b *server.Broker) (*client.Client, func()) {
	t.Helper()
	ts := httptest.NewServer(server.Handler(b))
	var once bool
	return client.New(ts.URL), func() {
		if once {
			return
		}
		once = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Shutdown(ctx)
		ts.Close()
	}
}

// drainResults reads the stream until n result deliveries arrived, returning
// them in order (gap markers are collected separately).
func drainResults(t *testing.T, stream *client.ResultStream, n int) (results, gaps []server.Delivery) {
	t.Helper()
	for len(results) < n {
		d, err := stream.Next()
		if err != nil {
			t.Fatalf("after %d/%d results: %v", len(results), n, err)
		}
		switch d.Type {
		case server.DeliveryResult:
			results = append(results, *d)
		case server.DeliveryGap:
			gaps = append(gaps, *d)
		case server.DeliveryEnd:
			t.Fatalf("stream ended after %d/%d results", len(results), n)
		}
	}
	return results, gaps
}

// TestDurableRecovery: a broker reopened on the same data directory carries
// its channels forward — same subscription ids, document cursors continuing
// where the previous process stopped, and the full retained history
// replayable through a resume attach.
func TestDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{}
	cl, b := openDurable(t, dir, cfg)
	ctx := context.Background()

	sub, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pub, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed))
		if err != nil {
			t.Fatal(err)
		}
		if pub.DocSeq != int64(i+1) {
			t.Fatalf("publish %d got DocSeq %d", i, pub.DocSeq)
		}
	}
	if got := b.Recovered(); len(got) != 0 {
		t.Fatalf("fresh broker claims recovered channels: %v", got)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	b.Shutdown(sctx)
	cancel()

	// "Restart": a new broker on the same directory.
	cl2, b2 := openDurable(t, dir, cfg)
	if got := b2.Recovered(); len(got) != 1 || got["ticker"] != 3 {
		t.Fatalf("Recovered() = %v, want ticker at cursor 3", got)
	}

	// The subscription survived under its original id: a full-history resume
	// replays 2 ACME results per document.
	stream, err := cl2.ResultsFrom(ctx, "ticker", sub.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	results, gaps := drainResults(t, stream, 6)
	if len(gaps) != 0 {
		t.Fatalf("unexpected gaps in full replay: %v", gaps)
	}
	for i, d := range results {
		wantDoc := int64(i/2 + 1)
		wantValue := "<price>10</price>"
		wantSeq := int64(0)
		if i%2 == 1 {
			wantValue, wantSeq = "<price>30</price>", 2
		}
		if d.DocSeq != wantDoc || d.Value != wantValue || d.Seq != wantSeq {
			t.Fatalf("replayed delivery %d = %+v, want doc %d value %q seq %d", i, d, wantDoc, wantValue, wantSeq)
		}
	}

	// Cursors continue across the restart: the next publish is document 4,
	// and its results flow live on the same resumed stream.
	pub, err := cl2.Publish(ctx, "ticker", strings.NewReader(httpFeed))
	if err != nil {
		t.Fatal(err)
	}
	if pub.DocSeq != 4 {
		t.Fatalf("post-restart publish DocSeq = %d, want 4", pub.DocSeq)
	}
	live, _ := drainResults(t, stream, 2)
	if live[0].DocSeq != 4 || live[1].DocSeq != 4 {
		t.Fatalf("live deliveries after replay = %+v, want doc 4", live)
	}

	// Durability shows up in /metrics.
	m, err := cl2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Config.Durable {
		t.Fatal("metrics does not report a durable broker")
	}
	cm := m.Channels["ticker"]
	if cm.WAL == nil || cm.WAL.LastCursor != 4 || cm.WAL.RecoveredCursor != 3 {
		t.Fatalf("WAL metrics = %+v, want last 4 recovered 3", cm.WAL)
	}
	if cm.WAL.ReplayDocs != 3 || cm.WAL.ReplayResults != 6 {
		t.Fatalf("replay counters = %+v, want 3 docs / 6 results", cm.WAL)
	}
	if m.Totals.WALBytes == 0 || m.Totals.WALSegments == 0 {
		t.Fatalf("totals missing WAL accounting: %+v", m.Totals)
	}
}

// TestResumeMidDocument: a consumer severed mid-document resumes from its
// token and receives exactly the deliveries it was missing — the spliced
// stream equals the uninterrupted one.
func TestResumeMidDocument(t *testing.T) {
	dir := t.TempDir()
	cl, _ := openDurable(t, dir, server.Config{})
	ctx := context.Background()

	sub, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.Results(ctx, "ticker", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	// Take the first of document 1's two results, then sever.
	first, _ := drainResults(t, stream, 1)
	token := stream.Token()
	stream.Close()
	if token.Cursor != 1 || token.Seen != 1 {
		t.Fatalf("token = %+v, want cursor 1 seen 1", token)
	}

	// The server releases the attach slot when it observes the severed
	// connection — a moment after Close returns. Retry like a reconnecting
	// client would.
	var resumed *client.ResultStream
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resumed, err = cl.Resume(ctx, token); err == nil {
			break
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 409 || time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer resumed.Close()
	rest, gaps := drainResults(t, resumed, 1)
	if len(gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", gaps)
	}
	if first[0].Value != "<price>10</price>" || rest[0].Value != "<price>30</price>" {
		t.Fatalf("spliced stream = %q then %q, want the two ACME prices in order",
			first[0].Value, rest[0].Value)
	}
	if rest[0].Seq != 2 || rest[0].DocSeq != 1 {
		t.Fatalf("resumed delivery = %+v, want doc 1 seq 2 (identical to live numbering)", rest[0])
	}
}

// TestResumeNotDurable: a memory-only broker refuses resume attaches with a
// structured 400, and a severed stream surfaces the typed interruption.
func TestResumeNotDurable(t *testing.T) {
	cl, _, _ := startServer(t, server.Config{})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.ResultsFrom(ctx, "ticker", sub.ID, 1, 0)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("resume on memory broker: err = %v, want APIError 400", err)
	}

	// Sever a live stream without an end marker (shutdown closes the HTTP
	// server under it): the client reports ErrStreamInterrupted with the
	// position reached.
	stream, err := cl.Results(ctx, "ticker", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	drainResults(t, stream, 3)
	stream.Close() // sever from the client side; Next must report interruption
	for {
		_, err := stream.Next()
		if err == nil {
			continue // buffered deliveries drain first
		}
		var interrupted *client.ErrStreamInterrupted
		if !errors.As(err, &interrupted) {
			t.Fatalf("severed stream err = %v, want ErrStreamInterrupted", err)
		}
		if interrupted.Token.Cursor != 1 || interrupted.Token.Seen != 3 {
			t.Fatalf("interruption token = %+v, want cursor 1 seen 3", interrupted.Token)
		}
		break
	}
}

// TestResumeRetentionGap: resuming from a cursor the log no longer retains
// yields one gap marker naming the unavailable range, then the surviving
// documents.
func TestResumeRetentionGap(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments + minimum retention: publishing enough documents evicts
	// the head of the log.
	cl, b := openDurable(t, dir, server.Config{
		WALSegmentBytes:   256,
		WALRetainSegments: 2,
	})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	const docs = 12
	for i := 0; i < docs; i++ {
		if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
			t.Fatal(err)
		}
	}
	m := b.Metrics()
	oldest := m.Channels["ticker"].WAL.FirstCursor
	if oldest <= 1 {
		t.Fatalf("retention did not advance the oldest cursor (first=%d); segment budget too large?", oldest)
	}

	stream, err := cl.ResultsFrom(ctx, "ticker", sub.ID, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	d, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != server.DeliveryGap || d.Reason != server.GapRetention {
		t.Fatalf("first delivery = %+v, want a retention gap", d)
	}
	if d.FromCursor != 1 || d.ToCursor != oldest-1 {
		t.Fatalf("gap range [%d, %d], want [1, %d]", d.FromCursor, d.ToCursor, oldest-1)
	}
	// Everything still retained replays in full: 2 results per surviving doc.
	want := int(docs-oldest+1) * 2
	results, _ := drainResults(t, stream, want)
	if results[0].DocSeq != oldest || results[len(results)-1].DocSeq != docs {
		t.Fatalf("replayed docs [%d, %d], want [%d, %d]",
			results[0].DocSeq, results[len(results)-1].DocSeq, oldest, docs)
	}
}

// TestDurableSubscriptionChurn: subscription adds, replaces and removes all
// persist — the manifest a restart recovers reflects the final state.
func TestDurableSubscriptionChurn(t *testing.T) {
	dir := t.TempDir()
	cl, b := openDurable(t, dir, server.Config{})
	ctx := context.Background()

	keep, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	gone, err := cl.Subscribe(ctx, "ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Replace(ctx, "ticker", keep.ID, "//trade[symbol='WIDG']/price"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(ctx, "ticker", gone.ID); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	b.Shutdown(sctx)
	cancel()

	cl2, _ := openDurable(t, dir, server.Config{})
	// The kept subscription answers with its replaced query; the removed one
	// is gone.
	stream, err := cl2.Results(ctx, "ticker", keep.ID)
	if err != nil {
		t.Fatalf("recovered subscription did not survive: %v", err)
	}
	defer stream.Close()
	if _, err := cl2.Results(ctx, "ticker", gone.ID); err == nil {
		t.Fatal("unsubscribed subscription resurrected by recovery")
	}
	if _, err := cl2.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	results, _ := drainResults(t, stream, 1)
	if results[0].Value != "<price>20</price>" {
		t.Fatalf("recovered query delivered %q, want the replaced query's match", results[0].Value)
	}
}

// TestDurableChannelDelete: deleting a channel removes its durable state — a
// restart does not resurrect it, and re-creating the name starts a fresh
// cursor space.
func TestDurableChannelDelete(t *testing.T) {
	dir := t.TempDir()
	cl, b := openDurable(t, dir, server.Config{})
	ctx := context.Background()
	if _, err := cl.Subscribe(ctx, "tmp", "//trade/price"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "tmp", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteChannel(ctx, "tmp"); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	b.Shutdown(sctx)
	cancel()

	cl2, b2 := openDurable(t, dir, server.Config{})
	if got := b2.Recovered(); len(got) != 0 {
		t.Fatalf("deleted channel resurrected: %v", got)
	}
	pub, err := cl2.Publish(ctx, "tmp", strings.NewReader(httpFeed))
	if err != nil {
		t.Fatal(err)
	}
	if pub.DocSeq != 1 {
		t.Fatalf("re-created channel starts at DocSeq %d, want 1", pub.DocSeq)
	}
}

// TestDurableOddChannelNames: channel names with path metacharacters and
// length extremes survive the round trip through directory naming.
func TestDurableOddChannelNames(t *testing.T) {
	dir := t.TempDir()
	names := []string{
		"simple",
		"with/slash and space",
		"../../escape attempt",
		strings.Repeat("long", 50),
	}
	cl, b := openDurable(t, dir, server.Config{})
	ctx := context.Background()
	for _, name := range names {
		if _, err := cl.Subscribe(ctx, name, "//trade/price"); err != nil {
			t.Fatalf("subscribe %q: %v", name, err)
		}
		if _, err := cl.Publish(ctx, name, strings.NewReader(httpFeed)); err != nil {
			t.Fatalf("publish %q: %v", name, err)
		}
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	b.Shutdown(sctx)
	cancel()

	_, b2 := openDurable(t, dir, server.Config{})
	rec := b2.Recovered()
	for _, name := range names {
		if rec[name] != 1 {
			t.Fatalf("channel %q recovered at cursor %d, want 1 (all: %v)", name, rec[name], rec)
		}
	}
	if len(rec) != len(names) {
		t.Fatalf("recovered %d channels, want %d: %v", len(rec), len(names), rec)
	}
}

// TestDurablePublishFailedDoc: a document that fails evaluation still
// occupies its cursor in the WAL; replaying over it reproduces the gap
// marker instead of derailing the stream.
func TestDurablePublishFailedDoc(t *testing.T) {
	dir := t.TempDir()
	cl, _ := openDurable(t, dir, server.Config{})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader("<feed><trade><oops")); err == nil {
		t.Fatal("malformed publish succeeded")
	}
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}

	stream, err := cl.ResultsFrom(ctx, "ticker", sub.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var results, gaps []server.Delivery
	for len(results) < 4 {
		d, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch d.Type {
		case server.DeliveryResult:
			results = append(results, *d)
		case server.DeliveryGap:
			gaps = append(gaps, *d)
		}
	}
	if len(gaps) != 1 || gaps[0].DocSeq != 2 || !strings.Contains(gaps[0].Reason, "document aborted") {
		t.Fatalf("replay gaps = %+v, want one aborted-document marker for doc 2", gaps)
	}
	for i, d := range results {
		wantDoc := int64(1)
		if i >= 2 {
			wantDoc = 3
		}
		if d.DocSeq != wantDoc {
			t.Fatalf("result %d on doc %d, want %d", i, d.DocSeq, wantDoc)
		}
	}
}

// TestDurableQueueFullNotLogged exercises the admission ordering: a publish
// rejected for queue room must not consume a cursor, so the WAL never holds
// a record for a rejected document. (Async publishes against a stalled
// 1-deep queue force the rejection.)
func TestDurableQueueFullNotLogged(t *testing.T) {
	dir := t.TempDir()
	cl, b := openDurable(t, dir, server.Config{QueueDepth: 1, RingSize: 1})
	ctx := context.Background()
	if _, err := cl.Subscribe(ctx, "ticker", "//trade/price"); err != nil {
		t.Fatal(err)
	}
	// No attached consumer + block policy: the first doc's evaluation parks
	// on the full ring, the second waits in the queue, further async
	// publishes bounce with 429.
	var accepted int64
	var rejected int
	for i := 0; i < 20; i++ {
		pub, err := cl.PublishAsync(ctx, "ticker", strings.NewReader(httpFeed))
		if err != nil {
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != 429 {
				t.Fatalf("publish %d: %v, want 429", i, err)
			}
			rejected++
			continue
		}
		if pub.DocSeq != accepted+1 {
			t.Fatalf("accepted publish got DocSeq %d, want %d (cursors must not skip)", pub.DocSeq, accepted+1)
		}
		accepted++
	}
	if rejected == 0 {
		t.Skip("queue never filled; timing did not produce rejections")
	}
	m := b.Metrics()
	if got := m.Channels["ticker"].WAL.LastCursor; got != accepted {
		t.Fatalf("WAL last cursor %d, want %d accepted publishes (rejected docs must not be logged)", got, accepted)
	}
}
