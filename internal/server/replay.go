// Cursor replay: how a reconnecting or late-joining subscriber catches up.
//
// A resume token is (channel, cursor, seen): every document at a cursor
// strictly below `cursor` was fully received, plus the first `seen` result
// deliveries of document `cursor` itself (a stream can sever mid-document).
// Replay re-reads the WAL from that position and re-evaluates each document
// through the channel's live QuerySet — the same machines, the same
// evaluation options, the same per-document Seq numbering as the original
// delivery — filtered to the one resuming subscription. Replayed deliveries
// are therefore byte-identical (Value/Seq/NodeOffset, in order) to what an
// uninterrupted consumer received, which the replay-equivalence test pins.
//
// The handoff to the live ring is race-free by construction: the plan
// captures, under the channel lock, the QuerySet view AND the WAL tip (the
// last durable cursor). Every document ≤ tip is on disk (appended before
// evaluation), so replay covers it; every ring delivery ≤ tip is skipped;
// ring deliveries > tip are delivered live. No document can fall between
// the two regimes, and none is delivered by both. During replay the ring is
// bled opportunistically (entries ≤ tip discarded as they surface) so a
// block-policy channel keeps flowing while a consumer catches up.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	vitex "repro"
)

// replayPlan pins one replay: the membership view and subscription index in
// force when the consumer attached, the WAL tip it must read through, and
// the oldest cursor still retained.
type replayPlan struct {
	view   vitex.QuerySetView
	idx    int
	tip    int64
	oldest int64
	wal    *walLog
}

// replayPlan captures the replay boundary for sub under the channel lock.
func (c *channel) replayPlan(sub *subscription) (replayPlan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return replayPlan{}, ErrNotDurable
	}
	idx := c.indexOfLocked(sub)
	if idx < 0 {
		return replayPlan{}, ErrNoSubscription
	}
	return replayPlan{
		view:   c.qs.View(),
		idx:    idx,
		tip:    c.nextDoc,
		oldest: c.wal.oldest(),
		wal:    c.wal,
	}, nil
}

// replay streams the catch-up deliveries for sub: documents in
// [from, plan.tip], skipping the first `seen` results of document `from`,
// each emitted through emit in delivery order. Unreadable spans (retention,
// corruption) become gap markers carrying the skipped cursor range. While
// replaying it bleeds sub's ring of deliveries the replay supersedes
// (DocSeq ≤ tip) and returns the first live delivery it had to hold back,
// if any. emit errors (a gone consumer) abort the replay.
func (c *channel) replay(ctx context.Context, sub *subscription, plan replayPlan, from, seen int64, emit func(Delivery) error) (held *Delivery, err error) {
	if from < 1 {
		from = 1
		seen = 0
	}
	start := from
	if plan.oldest > start {
		// The tail the consumer wants is gone to retention: say exactly
		// which cursors cannot be replayed, then serve what remains.
		if plan.oldest > plan.tip {
			return nil, nil
		}
		if err := emit(Delivery{
			Type:       DeliveryGap,
			DocSeq:     plan.oldest - 1,
			FromCursor: start,
			ToCursor:   plan.oldest - 1,
			Reason:     GapRetention,
		}); err != nil {
			return nil, err
		}
		c.gaps.Add(1)
		start = plan.oldest
		seen = 0
	}
	if start > plan.tip {
		return nil, nil
	}

	opts := vitex.Options{Parallel: c.b.cfg.Parallel, Context: ctx}
	iterErr := plan.wal.iterate(start, plan.tip, func(cursor int64, payload []byte) error {
		if sub.ring.isClosed() {
			return errSubClosed
		}
		skip := int64(0)
		if cursor == from {
			skip = seen
		}
		var emitted int64
		_, evalErr := plan.view.Stream(bytes.NewReader(payload), opts, func(sr vitex.SetResult) error {
			if sr.QueryIndex != plan.idx {
				return nil
			}
			if emitted++; emitted <= skip {
				return nil
			}
			c.replayResults.Add(1)
			if werr := emit(Delivery{
				Type:        DeliveryResult,
				DocSeq:      cursor,
				Seq:         sr.Seq,
				NodeOffset:  sr.NodeOffset,
				Value:       sr.Value,
				ConfirmedAt: sr.ConfirmedAt,
				DeliveredAt: sr.DeliveredAt,
			}); werr != nil {
				return fmt.Errorf("%w: %v", errReplayEmit, werr)
			}
			return nil
		})
		c.replayDocs.Add(1)
		if evalErr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(evalErr, errReplayEmit) {
				return evalErr
			}
			// The document failed evaluation when it was published too (the
			// WAL stores what was accepted, not what parsed); reproduce the
			// live behavior — a gap marker in stream position.
			c.gaps.Add(1)
			return emit(Delivery{Type: DeliveryGap, DocSeq: cursor, Reason: "document aborted: " + evalErr.Error()})
		}
		// Bleed the ring between documents: everything ≤ tip is superseded
		// by this replay; the first live delivery > tip is held for the
		// caller. Keeps block-policy pushers moving while we catch up.
		if held == nil {
			for {
				d, ok := sub.ring.tryNext()
				if !ok {
					break
				}
				if deliveryEnd(d) > plan.tip {
					held = &d
					break
				}
				// Superseded by this replay: it will never reach a wire.
				d.retireTrace()
			}
		}
		return nil
	})
	if iterErr != nil {
		var ce *WALCorruptionError
		switch {
		case errors.As(iterErr, &ce):
			// An unreadable span mid-log: the consumer learns exactly what
			// it cannot have, then continues live. (Only external corruption
			// or a retention race lands here; a torn tail was truncated at
			// recovery.)
			c.gaps.Add(1)
			if err := emit(Delivery{
				Type:       DeliveryGap,
				DocSeq:     plan.tip,
				FromCursor: start,
				ToCursor:   plan.tip,
				Reason:     GapUnreadable,
			}); err != nil {
				return held, err
			}
		case errors.Is(iterErr, errSubClosed):
			return held, nil // ring closed: the live loop ends the stream
		default:
			return held, iterErr
		}
	}
	return held, nil
}

// errReplayEmit wraps a consumer-side write failure so replay can tell it
// apart from a document that failed evaluation.
var errReplayEmit = errors.New("server: replay emit failed")

// deliveryEnd is the last cursor a delivery speaks for: its DocSeq, or the
// end of a gap marker's skipped range.
func deliveryEnd(d Delivery) int64 {
	if d.ToCursor > d.DocSeq {
		return d.ToCursor
	}
	return d.DocSeq
}
