// Prometheus text exposition of the broker's metrics: the same counters as
// the JSON MetricsResponse, flattened into labeled series, plus the full
// bucket data of every latency histogram (the JSON view carries only
// quantile summaries). Served by GET /metrics under content negotiation —
// see handleMetrics.
//
// Series naming: vitex_channel_* (per-channel broker counters),
// vitex_engine_* (the channel's live-QuerySet accounting), vitex_wal_*
// (durability, durable brokers only), and the *_seconds histograms
// vitex_publish_to_ack_seconds{channel}, vitex_publish_to_delivery_seconds
// {channel,policy}, vitex_engine_eval_event_seconds{channel},
// vitex_wal_append_seconds{channel}, vitex_wal_fsync_seconds{channel}.
// Histogram buckets are the obs package's power-of-two nanosecond lattice
// converted to seconds; every bucket is emitted every scrape, so the le
// label set is stable.
package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// promChannel is one channel's scrape snapshot: the JSON counters plus the
// full histogram data the summary stats elide.
type promChannel struct {
	name string
	cm   ChannelMetrics

	ack, deliver, eval  obs.Snapshot
	walAppend, walFsync *obs.Snapshot
}

// writePrometheus renders the exposition. Channels are emitted in sorted
// name order, so the body is deterministic for a given broker state.
func writePrometheus(w io.Writer, b *Broker) {
	b.mu.Lock()
	chans := make([]*channel, 0, len(b.channels))
	for _, c := range b.channels {
		chans = append(chans, c)
	}
	b.mu.Unlock()
	sort.Slice(chans, func(i, j int) bool { return chans[i].name < chans[j].name })

	rows := make([]promChannel, 0, len(chans))
	for _, c := range chans {
		pc := promChannel{
			name:    c.name,
			cm:      c.metrics(),
			ack:     c.pubAck.Snapshot(),
			deliver: c.pubDeliver.Snapshot(),
			eval:    c.qs.EvalHistogram(),
		}
		if c.wal != nil {
			app, fs := c.wal.latency()
			pc.walAppend, pc.walFsync = &app, &fs
		}
		rows = append(rows, pc)
	}

	gauge := func(name, help string, value func(promChannel) (int64, bool)) {
		promFamily(w, name, "gauge", help, rows, value)
	}
	counter := func(name, help string, value func(promChannel) (int64, bool)) {
		promFamily(w, name, "counter", help, rows, value)
	}

	fmt.Fprintf(w, "# HELP vitex_broker_channels Number of live channels.\n# TYPE vitex_broker_channels gauge\nvitex_broker_channels %d\n", len(rows))
	fmt.Fprintf(w, "# HELP vitex_traces_emitted_total Finished stage-trace records.\n# TYPE vitex_traces_emitted_total counter\nvitex_traces_emitted_total %d\n", b.tracer.Emitted())

	gauge("vitex_channel_subscriptions", "Standing subscriptions on the channel.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Subscriptions), true })
	counter("vitex_channel_docs_in_total", "Documents accepted for publication.",
		func(p promChannel) (int64, bool) { return p.cm.DocsIn, true })
	counter("vitex_channel_docs_failed_total", "Accepted documents whose evaluation aborted.",
		func(p promChannel) (int64, bool) { return p.cm.DocsFailed, true })
	counter("vitex_channel_bytes_in_total", "Bytes of accepted documents.",
		func(p promChannel) (int64, bool) { return p.cm.BytesIn, true })
	counter("vitex_channel_results_total", "Result deliveries placed into subscriber rings.",
		func(p promChannel) (int64, bool) { return p.cm.Results, true })
	counter("vitex_channel_gaps_total", "Gap markers delivered to subscribers.",
		func(p promChannel) (int64, bool) { return p.cm.Gaps, true })
	gauge("vitex_channel_queue_depth", "Current ingest-queue depth.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Queued), true })

	gauge("vitex_engine_epoch", "Live QuerySet epoch (membership version).",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.Epoch), true })
	counter("vitex_engine_compiles_total", "Queries compiled into the live set.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Compiles, true })
	counter("vitex_engine_compactions_total", "Slot-table compactions.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Compactions, true })
	counter("vitex_engine_shard_rebalances_total", "Parallel-shard rebalances.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.ShardRebalances, true })
	gauge("vitex_engine_slots", "Machine slots allocated (live + garbage).",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.Slots), true })
	gauge("vitex_engine_live_queries", "Live queries in the set.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.Live), true })
	gauge("vitex_engine_garbage_slots", "Removed slots awaiting compaction.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.Garbage), true })
	gauge("vitex_engine_trie_nodes", "Live shared-prefix-trie nodes.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.TrieNodes), true })
	gauge("vitex_engine_trie_garbage", "Pruned trie node ids awaiting compaction.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.TrieGarbage), true })
	gauge("vitex_engine_anchored_machines", "Machines evaluating as residuals behind the trie.",
		func(p promChannel) (int64, bool) { return int64(p.cm.Engine.AnchoredMachines), true })
	counter("vitex_engine_trie_grafts_total", "Trie graft operations.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.TrieGrafts, true })
	counter("vitex_engine_trie_prunes_total", "Trie prune operations.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.TriePrunes, true })
	counter("vitex_engine_trie_compactions_total", "Trie compactions.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.TrieCompactions, true })
	counter("vitex_engine_events_total", "Scan events routed to the dispatch layer.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Events, true })
	counter("vitex_engine_deliveries_total", "Machine deliveries (engine wake-ups).",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Deliveries, true })
	counter("vitex_engine_trie_pushes_total", "Trie entries pushed by the shared prefix layer.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.TriePushes, true })
	counter("vitex_engine_hot_streams_total", "Streams sampled for hot-path attribution.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Hot.Streams, true })
	counter("vitex_engine_hot_events_total", "Scan events in hot-path-sampled streams.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Hot.Events, true })
	counter("vitex_engine_hot_scan_ns_total", "Sampled nanoseconds attributed to scan and routing.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Hot.ScanNs, true })
	counter("vitex_engine_hot_trie_ns_total", "Sampled nanoseconds attributed to the shared prefix trie.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Hot.TrieNs, true })
	counter("vitex_engine_hot_machine_ns_total", "Sampled nanoseconds attributed to residual machines.",
		func(p promChannel) (int64, bool) { return p.cm.Engine.Hot.MachineNs, true })

	wal := func(name, typ, help string, value func(*WALMetrics) int64) {
		promFamily(w, name, typ, help, rows, func(p promChannel) (int64, bool) {
			if p.cm.WAL == nil {
				return 0, false
			}
			return value(p.cm.WAL), true
		})
	}
	wal("vitex_wal_bytes", "gauge", "Retained write-ahead-log bytes on disk.",
		func(wm *WALMetrics) int64 { return wm.Bytes })
	wal("vitex_wal_segments", "gauge", "Retained write-ahead-log segments.",
		func(wm *WALMetrics) int64 { return int64(wm.Segments) })
	wal("vitex_wal_first_cursor", "gauge", "Oldest replayable document cursor.",
		func(wm *WALMetrics) int64 { return wm.FirstCursor })
	wal("vitex_wal_last_cursor", "gauge", "Newest durable document cursor.",
		func(wm *WALMetrics) int64 { return wm.LastCursor })
	wal("vitex_wal_recovered_cursor", "gauge", "Cursor the channel resumed from at boot.",
		func(wm *WALMetrics) int64 { return wm.RecoveredCursor })
	wal("vitex_wal_replay_docs_total", "counter", "Documents re-evaluated for resuming subscribers.",
		func(wm *WALMetrics) int64 { return wm.ReplayDocs })
	wal("vitex_wal_replay_results_total", "counter", "Result deliveries re-sent for resuming subscribers.",
		func(wm *WALMetrics) int64 { return wm.ReplayResults })

	policy := b.cfg.Policy.String()
	promHistogram(w, "vitex_publish_to_ack_seconds",
		"Publish admission to acknowledgment.", rows,
		func(p promChannel) (string, obs.Snapshot, bool) {
			return promLabel("channel", p.name), p.ack, true
		})
	promHistogram(w, "vitex_publish_to_delivery_seconds",
		"Publish admission to the delivery's wire encode (replays excluded).", rows,
		func(p promChannel) (string, obs.Snapshot, bool) {
			return promLabel("channel", p.name) + "," + promLabel("policy", policy), p.deliver, true
		})
	promHistogram(w, "vitex_engine_eval_event_seconds",
		"Engine evaluation cost per scan event (serial streams).", rows,
		func(p promChannel) (string, obs.Snapshot, bool) {
			return promLabel("channel", p.name), p.eval, true
		})
	promHistogram(w, "vitex_wal_append_seconds",
		"WAL append write time, fsync excluded.", rows,
		func(p promChannel) (string, obs.Snapshot, bool) {
			if p.walAppend == nil {
				return "", obs.Snapshot{}, false
			}
			return promLabel("channel", p.name), *p.walAppend, true
		})
	promHistogram(w, "vitex_wal_fsync_seconds",
		"WAL fsync time (zero-count unless WALSync is on).", rows,
		func(p promChannel) (string, obs.Snapshot, bool) {
			if p.walFsync == nil {
				return "", obs.Snapshot{}, false
			}
			return promLabel("channel", p.name), *p.walFsync, true
		})
}

// promFamily writes one HELP/TYPE header and a channel-labeled series per
// row; value's second return skips rows the family does not apply to
// (memory-only channels for vitex_wal_*). A family with no applicable rows
// is omitted entirely.
func promFamily(w io.Writer, name, typ, help string, rows []promChannel, value func(promChannel) (int64, bool)) {
	wrote := false
	for _, p := range rows {
		v, ok := value(p)
		if !ok {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			wrote = true
		}
		fmt.Fprintf(w, "%s{%s} %d\n", name, promLabel("channel", p.name), v)
	}
}

// promHistogram writes one histogram family: per row, the full cumulative
// bucket lattice (le in seconds, +Inf last), the sum in seconds, and the
// count.
func promHistogram(w io.Writer, name, help string, rows []promChannel, snap func(promChannel) (string, obs.Snapshot, bool)) {
	wrote := false
	for _, p := range rows {
		labels, s, ok := snap(p)
		if !ok {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
			wrote = true
		}
		var cum int64
		for i := 0; i < obs.NumBuckets; i++ {
			cum += s.Buckets[i]
			le := "+Inf"
			if i < obs.NumBuckets-1 {
				le = promSeconds(obs.BucketUpperNs(i))
			}
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		}
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, promSeconds(s.SumNs))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// promLabel renders one escaped label pair.
func promLabel(key, value string) string {
	return key + "=" + strconv.Quote(value)
}

// promSeconds renders a nanosecond quantity as seconds with no precision
// loss beyond float64.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
