// Per-channel write-ahead log: the durability layer under the broker.
//
// Every accepted publish is appended here — length-prefixed, checksummed,
// carrying the document's monotonic cursor (its per-channel arrival number,
// the same value the wire protocol exposes as DocSeq) — BEFORE the document
// is evaluated or its publish acknowledged. That ordering is the whole
// at-least-once story: an acknowledged document is by construction a fully
// written record, so a crash can only tear the unacknowledged tail, and
// recovery (openWAL) rolls a torn or corrupt tail back to the last valid
// record. Subscribers resume by cursor: replay reads records from an offset
// and re-evaluates them through the channel's live QuerySet, which is what
// makes a daemon restart a non-event for a reconnecting consumer.
//
// On-disk layout (per channel directory):
//
//	wal-<first-cursor-hex>.seg   segment files, ascending; the last is active
//
// Segment format:
//
//	8-byte magic "VTXWAL01"
//	records: [8B cursor BE][4B payload len BE][4B CRC32-IEEE][payload]
//
// The CRC covers the cursor and length bytes as well as the payload, so a
// bit flip anywhere in a record is detected, and cursors must increase
// strictly within and across segments, so a misordered or replayed record
// also reads as corruption. Segments rotate at a configured byte size and
// old segments are deleted past a retention count; a replay that asks for a
// cursor older than the oldest retained record gets a structured gap (the
// caller surfaces the skipped cursor range), never silence.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

const (
	walMagic      = "VTXWAL01"
	walHeaderSize = 16 // 8B cursor + 4B length + 4B CRC
	// maxWALRecordBytes bounds a decoded record's payload; anything larger
	// than the HTTP layer can have accepted is corruption, and the bound
	// keeps a flipped length byte from turning recovery into a giant
	// allocation.
	maxWALRecordBytes = maxBodyBytes
)

// WALCorruptionError reports where and why a WAL segment stopped decoding.
// Recovery treats it as the end of the valid prefix (truncating the tail);
// replay surfaces it to the subscriber as a gap marker.
type WALCorruptionError struct {
	// Path is the segment file (empty when decoding a raw byte stream).
	Path string
	// Offset is the byte offset of the first invalid byte span.
	Offset int64
	// Reason says what failed: magic, header, checksum, cursor order, size.
	Reason string
}

func (e *WALCorruptionError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("wal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// errWALStop is the sentinel a walScan callback returns to end iteration
// early without error.
var errWALStop = errors.New("wal: stop iteration")

// walScan decodes one segment's byte stream: magic, then records in strictly
// increasing cursor order, invoking fn for each. prev seeds the cursor
// monotonicity check (0 at the head of a log). It returns the byte length of
// the valid prefix (including the magic), the last valid cursor, and —
// unless the stream ended exactly on a record boundary — a
// *WALCorruptionError describing the tail. fn returning errWALStop ends the
// scan cleanly; any other fn error is returned as-is.
func walScan(r io.Reader, prev int64, fn func(cursor int64, payload []byte) error) (valid int64, last int64, err error) {
	br := r
	last = prev
	var magic [len(walMagic)]byte
	if _, rerr := io.ReadFull(br, magic[:]); rerr != nil {
		return 0, last, &WALCorruptionError{Offset: 0, Reason: "short magic"}
	}
	if string(magic[:]) != walMagic {
		return 0, last, &WALCorruptionError{Offset: 0, Reason: "bad magic"}
	}
	valid = int64(len(walMagic))
	var hdr [walHeaderSize]byte
	var payload []byte
	for {
		if _, rerr := io.ReadFull(br, hdr[:]); rerr != nil {
			if rerr == io.EOF {
				return valid, last, nil // clean end on a record boundary
			}
			return valid, last, &WALCorruptionError{Offset: valid, Reason: "short header"}
		}
		cursor := int64(binary.BigEndian.Uint64(hdr[0:8]))
		length := binary.BigEndian.Uint32(hdr[8:12])
		sum := binary.BigEndian.Uint32(hdr[12:16])
		if cursor <= last {
			return valid, last, &WALCorruptionError{Offset: valid, Reason: fmt.Sprintf("cursor %d not after %d", cursor, last)}
		}
		if int64(length) > maxWALRecordBytes {
			return valid, last, &WALCorruptionError{Offset: valid, Reason: fmt.Sprintf("record length %d exceeds limit", length)}
		}
		if int64(cap(payload)) < int64(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			return valid, last, &WALCorruptionError{Offset: valid, Reason: "short payload"}
		}
		crc := crc32.ChecksumIEEE(hdr[0:12])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != sum {
			return valid, last, &WALCorruptionError{Offset: valid, Reason: "checksum mismatch"}
		}
		if fn != nil {
			if ferr := fn(cursor, payload); ferr != nil {
				if ferr == errWALStop {
					return valid, cursor, nil
				}
				return valid, cursor, ferr
			}
		}
		valid += walHeaderSize + int64(length)
		last = cursor
	}
}

// appendWALRecord encodes one record into buf (reusing its capacity) and
// returns the encoded bytes. A record is written with a single Write call so
// a crash mid-append tears at most the final record, never an earlier one.
func appendWALRecord(buf []byte, cursor int64, payload []byte) []byte {
	need := walHeaderSize + len(payload)
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:walHeaderSize]
	binary.BigEndian.PutUint64(buf[0:8], uint64(cursor))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(buf[0:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(buf[12:16], crc)
	return append(buf, payload...)
}

// walSegment is one immutable segment descriptor: the cursor its first
// record carries (also encoded in its file name) and its path. The active
// segment's growing size lives on walLog, not here.
//
//vitex:cow
type walSegment struct {
	first int64
	path  string
}

// segName renders the canonical segment file name for its first cursor.
func segName(first int64) string {
	return fmt.Sprintf("wal-%016x.seg", uint64(first))
}

// parseSegName inverts segName; ok=false for foreign files.
func parseSegName(name string) (first int64, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return int64(v), true
}

// walLog is one channel's write-ahead log. Appends are serialized by the
// channel (publish admission holds the channel lock), but the log keeps its
// own mutex so metrics snapshots and replay planning are safe from any
// goroutine. Readers never take the lock while doing file IO: they snapshot
// the segment list and read through independent file descriptors, so a slow
// replay cannot stall ingestion.
//
//vitex:counters
type walLog struct {
	dir      string
	segBytes int64 //vitex:plain configured at construction, read-only afterwards
	retain   int   //vitex:plain configured at construction, read-only afterwards
	fsync    bool  //vitex:plain configured at construction, read-only afterwards

	mu         sync.Mutex
	f          *os.File
	segs       []walSegment
	activeSize int64 //vitex:guardedby=mu
	firstAvail int64 //vitex:guardedby=mu oldest retained cursor (0 = log empty)
	last       int64 //vitex:guardedby=mu last durable cursor
	totalBytes int64 //vitex:guardedby=mu
	closed     bool  //vitex:guardedby=mu
	buf        []byte

	// Latency accounting, recorded by every append: the write portion
	// (rotation and retention included, fsync excluded) and the fsync
	// portion (zero-count with fsync off). lastFsyncNs carries the most
	// recent append's fsync cost out to the publish path's stage trace —
	// sound because each channel's publishes are serialized under the
	// channel lock.
	appendHist  obs.Histogram
	fsyncHist   obs.Histogram
	lastFsyncNs int64 //vitex:guardedby=mu
}

// lastFsyncDur returns the fsync portion of the most recent append.
func (w *walLog) lastFsyncDur() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Duration(w.lastFsyncNs)
}

// latency snapshots the append/fsync histograms.
func (w *walLog) latency() (appendNs, fsyncNs obs.Snapshot) {
	return w.appendHist.Snapshot(), w.fsyncHist.Snapshot()
}

// openWAL opens (creating if needed) the channel WAL in dir and recovers its
// state: segments are scanned in order, cursors are validated strictly
// increasing across the whole log, and the first corrupt or torn record
// truncates the log there — the valid prefix survives, later bytes and
// segments are discarded. It returns the recovered log; lastCursor reports
// the recovery point (0 for an empty log). The log is unpublished until it
// returns, so the guarded fields are safe to fill without w.mu.
//
//vitex:locked
func openWAL(dir string, segBytes int64, retain int, fsync bool) (*walLog, error) {
	if segBytes <= 0 {
		segBytes = 8 << 20
	}
	if retain < 2 {
		retain = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &walLog{dir: dir, segBytes: segBytes, retain: retain, fsync: fsync}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, walSegment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	var prev int64
	for i, seg := range segs {
		valid, last, scanErr := w.scanSegment(seg, prev, nil)
		keepTo := i
		switch {
		case scanErr == nil && last > prev:
			prev = last
			keepTo = i + 1
		case scanErr == nil:
			// Structurally fine but empty (rotation crashed between creating
			// the file and the first append): usable only as the tail.
			keepTo = i + 1
		default:
			// Corrupt or torn: keep the valid prefix of this segment, drop
			// everything after it.
			var ce *WALCorruptionError
			if !errors.As(scanErr, &ce) {
				return nil, scanErr
			}
			if valid > int64(len(walMagic)) || ce.Offset > 0 {
				if err := os.Truncate(seg.path, valid); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
				}
				prev = last
				keepTo = i + 1
			} else {
				// Not even a valid magic: the file carries no data; drop it.
				if err := os.Remove(seg.path); err != nil {
					return nil, err
				}
			}
		}
		if keepTo <= i {
			// This segment was dropped; any later segments are beyond the
			// valid prefix too.
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return nil, err
				}
			}
			segs = segs[:i]
			break
		}
		if scanErr != nil {
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return nil, err
				}
			}
			segs = segs[:i+1]
			break
		}
	}

	w.segs = segs
	w.last = prev
	if len(segs) > 0 {
		w.firstAvail = segs[0].first
		active := segs[len(segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		w.activeSize = st.Size()
		var total int64
		for _, s := range segs[:len(segs)-1] {
			if st, err := os.Stat(s.path); err == nil {
				total += st.Size()
			}
		}
		w.totalBytes = total + w.activeSize
	}
	return w, nil
}

// scanSegment runs walScan over one segment file, tagging corruption errors
// with the path.
func (w *walLog) scanSegment(seg walSegment, prev int64, fn func(cursor int64, payload []byte) error) (valid int64, last int64, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, prev, err
	}
	defer f.Close()
	valid, last, err = walScan(bufio.NewReaderSize(f, 64<<10), prev, fn)
	var ce *WALCorruptionError
	if errors.As(err, &ce) && ce.Path == "" {
		ce.Path = seg.path
	}
	return valid, last, err
}

// append makes one record durable. cursor must be strictly greater than
// every cursor already in the log (the channel assigns them monotonically
// under its lock). Rotation and retention run here, before the write, so the
// record lands in a segment with room.
func (w *walLog) append(cursor int64, payload []byte) error {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrShutdown
	}
	if cursor <= w.last {
		return fmt.Errorf("wal: cursor %d not after %d", cursor, w.last)
	}
	if w.f == nil || w.activeSize >= w.segBytes {
		if err := w.rotateLocked(cursor); err != nil {
			return err
		}
	}
	w.buf = appendWALRecord(w.buf, cursor, payload)
	n, err := w.f.Write(w.buf)
	if err != nil {
		// A partial write is a torn tail: the next open truncates it. Do not
		// advance the cursor — the publish is rejected, never acknowledged.
		if n > 0 {
			w.activeSize += int64(n)
			w.totalBytes += int64(n)
		}
		return fmt.Errorf("wal: append cursor %d: %w", cursor, err)
	}
	w.lastFsyncNs = 0
	if w.fsync {
		syncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync cursor %d: %w", cursor, err)
		}
		w.lastFsyncNs = time.Since(syncStart).Nanoseconds()
		w.fsyncHist.ObserveNs(w.lastFsyncNs)
	}
	w.appendHist.ObserveNs(time.Since(start).Nanoseconds() - w.lastFsyncNs)
	w.activeSize += int64(len(w.buf))
	w.totalBytes += int64(len(w.buf))
	w.last = cursor
	if w.firstAvail == 0 {
		w.firstAvail = cursor
	}
	return nil
}

// rotateLocked opens a fresh active segment whose first record will carry
// cursor, and applies retention to the now-sealed segments. Callee of
// append, which holds w.mu.
//
//vitex:locked
func (w *walLog) rotateLocked(cursor int64) error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	seg := walSegment{first: cursor, path: filepath.Join(w.dir, segName(cursor))}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segs = append(w.segs, seg)
	w.activeSize = int64(len(walMagic))
	w.totalBytes += int64(len(walMagic))
	for len(w.segs) > w.retain {
		old := w.segs[0]
		var reclaimed int64
		if st, err := os.Stat(old.path); err == nil {
			reclaimed = st.Size()
		}
		if err := os.Remove(old.path); err != nil {
			return err
		}
		w.segs = append(w.segs[:0], w.segs[1:]...)
		w.totalBytes -= reclaimed
		w.firstAvail = w.segs[0].first
	}
	return nil
}

// close seals the log; appends fail afterwards. Concurrent readers are
// unaffected (they hold their own descriptors).
func (w *walLog) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f != nil {
		err := w.f.Close()
		w.f = nil
		return err
	}
	return nil
}

// walStats is a metrics snapshot of the log.
type walStats struct {
	bytes    int64
	segments int
	first    int64
	last     int64
}

func (w *walLog) stats() walStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return walStats{bytes: w.totalBytes, segments: len(w.segs), first: w.firstAvail, last: w.last}
}

// oldest returns the oldest retained cursor (0 when the log is empty).
func (w *walLog) oldest() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstAvail
}

// iterate replays payloads for cursors in [from, to] in order. It reads
// through fresh descriptors against a snapshot of the segment list, so it
// runs concurrently with appends; because `to` is always a cursor that was
// durable before the call, a torn or in-progress record past `to` is
// unreachable. A segment deleted by retention mid-iteration, or corruption
// before `to`, returns a *WALCorruptionError — the caller renders the
// unreadable span as a gap.
func (w *walLog) iterate(from, to int64, fn func(cursor int64, payload []byte) error) error {
	if from < 1 {
		from = 1
	}
	if to < from {
		return nil
	}
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	w.mu.Unlock()
	// Skip segments that end before `from`: a segment's records are bounded
	// by the next segment's first cursor.
	start := 0
	for i := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			start = i + 1
		}
	}
	prev := from - 1
	done := false
	for _, seg := range segs[start:] {
		if seg.first > to {
			break
		}
		// Records before `from` in the first segment are skipped via the
		// monotonicity seed being below them; walScan requires increasing
		// cursors from `prev`, and earlier records simply aren't passed to
		// fn.
		_, last, err := w.scanSegment(seg, min64(prev, seg.first-1), func(cursor int64, payload []byte) error {
			if cursor < from {
				return nil
			}
			if cursor > to {
				done = true
				return errWALStop
			}
			return fn(cursor, payload)
		})
		if err != nil {
			if os.IsNotExist(err) {
				return &WALCorruptionError{Path: seg.path, Reason: "segment removed by retention"}
			}
			return err
		}
		if done || last >= to {
			return nil
		}
		prev = last
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
