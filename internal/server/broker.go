// Package server is the serving subsystem of the reproduction: a
// multi-tenant streaming subscription broker over the live query engine —
// the publish/subscribe deployment the ViteX paper motivates (ICDE 2005 §1:
// many standing XPath subscriptions, arriving XML streams, matches pushed
// incrementally).
//
// A Broker manages named channels. Each channel owns a live
// vitex.QuerySet: subscribing compiles exactly one query into the shared
// dispatch set (churn is O(changed query), never a recompile of the
// standing set), publishing appends the document to a bounded per-channel
// ingest queue, and matches stream back to each subscriber through a
// bounded ring with an explicit slow-consumer policy — block (back-
// pressure) or drop (gap markers). Channels evaluate documents strictly in
// arrival order; a worker-pool semaphore bounds how many channels evaluate
// at once, layering cross-document parallelism across channels on top of
// the engine's within-document sharding (Options.Parallel).
//
// Every evaluation runs under a context tied to the broker's lifetime and
// — for synchronous publishes — the publisher's request, so a disconnected
// publisher or a shutdown deadline aborts mid-document promptly, the
// publisher gets a structured error, and subscribers get a gap marker
// rather than a silent stall.
//
// The HTTP layer over this API lives in http.go; cmd/vitexd is the daemon.
package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Config sizes a Broker. The zero value gets sensible defaults.
type Config struct {
	// Workers bounds how many channel evaluations run simultaneously
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth is each channel's ingest-queue capacity (default 64).
	// A full queue rejects publishes with ErrQueueFull.
	QueueDepth int
	// RingSize is each subscription's result-buffer capacity (default 256).
	RingSize int
	// Policy is the slow-consumer policy applied when a ring is full
	// (default PolicyBlock).
	Policy Policy
	// Parallel is passed to vitex.Options.Parallel for every evaluation:
	// 0/1 serial, N>1 shards machines over N goroutines, negative uses
	// GOMAXPROCS.
	Parallel int

	// DataDir, when non-empty, makes the broker durable: every accepted
	// publish is appended to a per-channel write-ahead log before it is
	// acknowledged, channel definitions and standing subscriptions persist
	// in per-channel manifests, and Open recovers all of it after a
	// restart. Empty keeps the PR 4 behavior: everything in memory.
	DataDir string
	// WALSegmentBytes rotates a channel's active WAL segment once it
	// exceeds this size (default 8 MiB).
	WALSegmentBytes int64
	// WALRetainSegments bounds how many sealed segments a channel keeps
	// (default 8; minimum 2). Replays older than the oldest retained
	// cursor receive a gap marker carrying the unavailable range.
	WALRetainSegments int
	// WALSync fsyncs after every append. Off by default: the WAL then
	// survives process crashes (the records are in the page cache) but not
	// host power loss.
	WALSync bool

	// TraceSample, when positive, stage-traces every TraceSample-th
	// publish: admission, WAL append/fsync, queue wait, scan+dispatch,
	// ring enqueue, deliver wait and wire write each get a nanosecond
	// share, and the finished records are kept in an in-memory ring
	// (served by GET /debug/traces). 0 disables tracing: the publish path
	// then carries a nil trace whose methods no-op without allocating.
	TraceSample int
	// TraceRing bounds the in-memory buffer of finished trace records
	// (default 256).
	TraceRing int
	// TraceSink, when non-nil, additionally receives every finished trace
	// as one NDJSON line (an operator's file sink).
	TraceSink io.Writer
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.WALSegmentBytes <= 0 {
		cfg.WALSegmentBytes = 8 << 20
	}
	if cfg.WALRetainSegments <= 0 {
		cfg.WALRetainSegments = 8
	}
	return cfg
}

// Broker is the multi-tenant subscription broker. All methods are safe for
// concurrent use.
type Broker struct {
	cfg Config

	mu       sync.Mutex
	channels map[string]*channel
	closed   bool

	// evalCtx bounds every evaluation's lifetime; Shutdown cancels it when
	// the drain deadline passes.
	evalCtx    context.Context
	evalCancel context.CancelFunc

	// sem is the worker pool: one slot per concurrently-evaluating channel.
	sem chan struct{}

	// draining counts channels removed by DeleteChannel whose queues are
	// still running dry; Shutdown waits for them like any other channel.
	draining sync.WaitGroup

	// tracer samples publishes for stage tracing (nil when disabled; a
	// nil tracer hands out nil traces, keeping the path allocation-free).
	tracer *obs.Tracer
}

// Tracer returns the broker's stage-trace sampler (nil when tracing is
// disabled).
func (b *Broker) Tracer() *obs.Tracer { return b.tracer }

// New builds a broker; channels are created on first use. For a durable
// configuration (Config.DataDir set) use Open, which also recovers the
// channels a previous process left behind — New on a durable config starts
// serving without recovery and is almost never what a daemon wants.
func New(cfg Config) *Broker {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Broker{
		cfg:        cfg,
		channels:   make(map[string]*channel),
		evalCtx:    ctx,
		evalCancel: cancel,
		sem:        make(chan struct{}, cfg.Workers),
		tracer:     obs.NewTracer(cfg.TraceSample, cfg.TraceRing, cfg.TraceSink),
	}
}

// Open builds a broker and, when cfg.DataDir is set, recovers every durable
// channel from disk: the manifest rebuilds the channel's standing
// subscriptions (same ids, compiled into a fresh live QuerySet) and the WAL
// tail — rolled back past any torn or corrupt final record — restores the
// document cursor, so publishes resume exactly where the previous process
// stopped acknowledging. Recovery is all-or-nothing per boot: an unreadable
// manifest fails Open rather than silently dropping a channel.
func Open(cfg Config) (*Broker, error) {
	b := New(cfg)
	if b.cfg.DataDir == "" {
		return b, nil
	}
	root := channelsDir(b.cfg.DataDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, manifestName)); os.IsNotExist(err) {
			continue // not a channel directory (nothing durable was written)
		}
		m, err := loadManifest(dir)
		if err != nil {
			return nil, err
		}
		c, err := recoverChannel(b, m)
		if err != nil {
			return nil, err
		}
		b.channels[m.Name] = c
	}
	return b, nil
}

// Recovered reports the channels restored from the data directory at Open,
// with the cursor each resumed from.
func (b *Broker) Recovered() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64)
	for name, c := range b.channels {
		if c.recoveredCursor > 0 {
			out[name] = c.recoveredCursor
		}
	}
	return out
}

// Config returns the broker's effective (defaulted) configuration.
func (b *Broker) Config() Config { return b.cfg }

// channelFor returns the named channel, creating it when create is set.
func (b *Broker) channelFor(name string, create bool) (*channel, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty channel name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.channels[name]
	if c == nil {
		if !create {
			return nil, ErrNoChannel
		}
		// Lookups of existing channels stay valid during shutdown (so
		// attached consumers drain and unsubscribes settle); only new
		// channels — i.e. new work — are refused.
		if b.closed {
			return nil, ErrShutdown
		}
		var err error
		if c, err = newChannel(name, b); err != nil {
			return nil, err
		}
		b.channels[name] = c
	}
	return c, nil
}

// jobContext derives one evaluation's context: the broker's lifetime, plus
// — for synchronous publishes — the publisher's request, so either ends the
// evaluation. The returned cancel must be called once the job is settled
// (it is a no-op release for async jobs).
func (b *Broker) jobContext(req context.Context, wait bool) (context.Context, context.CancelFunc) {
	if !wait || req == nil {
		return b.evalCtx, func() {}
	}
	ctx, cancel := context.WithCancel(b.evalCtx)
	stop := context.AfterFunc(req, cancel)
	return ctx, func() { stop(); cancel() }
}

// Subscribe registers query (XPath text) on the channel, creating the
// channel on first use, and returns the subscription id.
func (b *Broker) Subscribe(channelName, query string) (*SubscribeResponse, error) {
	c, err := b.channelFor(channelName, true)
	if err != nil {
		return nil, err
	}
	sub, err := c.subscribe(query)
	if err != nil {
		return nil, err
	}
	// Respond from the inputs: sub.query is mutable under the channel lock
	// (Replace rewrites it) and must not be re-read here.
	return &SubscribeResponse{Channel: channelName, ID: sub.id, Query: query}, nil
}

// Unsubscribe removes the subscription and ends its result stream.
func (b *Broker) Unsubscribe(channelName, id string) error {
	c, err := b.channelFor(channelName, false)
	if err != nil {
		return err
	}
	return c.unsubscribe(id)
}

// Replace swaps the subscription's query in place (same id, same result
// stream); only the new query is compiled.
func (b *Broker) Replace(channelName, id, query string) (*SubscribeResponse, error) {
	c, err := b.channelFor(channelName, false)
	if err != nil {
		return nil, err
	}
	sub, err := c.replace(id, query)
	if err != nil {
		return nil, err
	}
	return &SubscribeResponse{Channel: channelName, ID: sub.id, Query: query}, nil
}

// Publish ingests a document body into the channel (created on first use).
// wait=true evaluates synchronously and reports the outcome; wait=false
// returns once the document is queued.
func (b *Broker) Publish(ctx context.Context, channelName string, data []byte, wait bool) (*PublishResponse, error) {
	c, err := b.channelFor(channelName, true)
	if err != nil {
		return nil, err
	}
	return c.publish(ctx, data, wait)
}

// DeleteChannel removes a channel entirely: ingestion stops, queued
// documents still evaluate (the drain is asynchronous), every subscription
// stream ends, and the name becomes available for re-creation (doc numbers
// restart). Channels otherwise live for the broker's lifetime — deletion is
// the operator's lever against unbounded channel growth.
func (b *Broker) DeleteChannel(name string) error {
	b.mu.Lock()
	c := b.channels[name]
	if c == nil {
		b.mu.Unlock()
		return ErrNoChannel
	}
	delete(b.channels, name)
	b.draining.Add(1)
	b.mu.Unlock()
	c.closeIngest()
	go func() {
		defer b.draining.Done()
		c.wg.Wait() // queued documents finish before streams end
		c.closeRings()
		// A deleted channel's durable state goes with it: the name becomes
		// available for re-creation with a fresh cursor space.
		if c.wal != nil {
			c.wal.close()
			os.RemoveAll(c.dir)
		}
	}()
	return nil
}

// Subscription returns the channel's subscription by id (nil when absent).
func (b *Broker) subscription(channelName, id string) (*subscription, error) {
	c, err := b.channelFor(channelName, false)
	if err != nil {
		return nil, err
	}
	sub := c.subscriptionByID(id)
	if sub == nil {
		return nil, ErrNoSubscription
	}
	return sub, nil
}

// Metrics snapshots the broker: per-channel counters plus totals.
func (b *Broker) Metrics() *MetricsResponse {
	b.mu.Lock()
	chans := make(map[string]*channel, len(b.channels))
	for name, c := range b.channels {
		chans[name] = c
	}
	b.mu.Unlock()
	m := &MetricsResponse{Channels: make(map[string]ChannelMetrics, len(chans))}
	var ack, deliver obs.Snapshot
	for name, c := range chans {
		cm := c.metrics()
		m.Channels[name] = cm
		m.Totals.DocsIn += cm.DocsIn
		m.Totals.Results += cm.Results
		m.Totals.Gaps += cm.Gaps
		if cm.WAL != nil {
			m.Totals.WALBytes += cm.WAL.Bytes
			m.Totals.WALSegments += cm.WAL.Segments
			m.Totals.ReplayDocs += cm.WAL.ReplayDocs
			m.Totals.ReplayResults += cm.WAL.ReplayResults
		}
		ack.Merge(c.pubAck.Snapshot())
		deliver.Merge(c.pubDeliver.Snapshot())
	}
	if len(chans) > 0 {
		m.Totals.Latency = &LatencyMetrics{
			PublishToAck:      ack.Stats(),
			PublishToDelivery: deliver.Stats(),
		}
	}
	m.Totals.Channels = len(chans)
	m.Config.Workers = b.cfg.Workers
	m.Config.QueueDepth = b.cfg.QueueDepth
	m.Config.RingSize = b.cfg.RingSize
	m.Config.Policy = b.cfg.Policy.String()
	m.Config.Parallel = b.cfg.Parallel
	m.Config.Durable = b.cfg.DataDir != ""
	return m
}

// Shutdown drains the broker gracefully: admission stops (new subscribes
// and publishes fail with ErrShutdown), every channel's queue runs dry —
// delivering all proven results, with block-policy back-pressure honored —
// and then every subscription stream ends. If ctx expires first, in-flight
// evaluations are canceled: publishers see ctx errors, subscribers see gap
// markers, and Shutdown returns ctx.Err() after the (now prompt) drain.
// Shutdown is idempotent.
func (b *Broker) Shutdown(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	chans := make([]*channel, 0, len(b.channels))
	for _, c := range b.channels {
		chans = append(chans, c)
	}
	b.mu.Unlock()

	for _, c := range chans {
		c.closeIngest()
	}
	drained := make(chan struct{})
	go func() {
		for _, c := range chans {
			c.wg.Wait()
		}
		// Channels removed by DeleteChannel drain on their own goroutines;
		// their queued documents get the same graceful treatment.
		b.draining.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		b.evalCancel()
		<-drained
	}
	b.evalCancel()
	for _, c := range chans {
		c.closeRings()
		if c.wal != nil {
			c.wal.close()
		}
	}
	return err
}
