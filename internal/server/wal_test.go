package server

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collectWAL reads every record in [from, to] into a cursor->payload map.
func collectWAL(t *testing.T, w *walLog, from, to int64) map[int64]string {
	t.Helper()
	got := map[int64]string{}
	err := w.iterate(from, to, func(cursor int64, payload []byte) error {
		got[cursor] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("iterate(%d, %d): %v", from, to, err)
	}
	return got
}

// TestWALAppendRecover: records written before a close are all readable after
// a reopen, with the recovery cursor at the last append.
func TestWALAppendRecover(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1<<20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]string{}
	for c := int64(1); c <= 20; c++ {
		payload := fmt.Sprintf("<doc n='%d'/>", c)
		if err := w.append(c, []byte(payload)); err != nil {
			t.Fatalf("append %d: %v", c, err)
		}
		want[c] = payload
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	w2, err := openWAL(dir, 1<<20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	st := w2.stats()
	if st.last != 20 || st.first != 1 {
		t.Fatalf("recovered cursors [%d, %d], want [1, 20]", st.first, st.last)
	}
	got := collectWAL(t, w2, 1, 20)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for c, p := range want {
		if got[c] != p {
			t.Fatalf("cursor %d payload = %q, want %q", c, got[c], p)
		}
	}
	// Appends continue past the recovery point; stale cursors are rejected.
	if err := w2.append(20, []byte("dup")); err == nil {
		t.Fatal("append at recovered cursor succeeded, want monotonicity error")
	}
	if err := w2.append(21, []byte("next")); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTail: a crash mid-record (simulated by chopping bytes off the
// active segment) rolls back to the last complete record on reopen — and the
// torn bytes are physically truncated, so the next append extends a valid
// log.
func TestWALTornTail(t *testing.T) {
	for cut := int64(1); cut <= 20; cut += 4 {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			w, err := openWAL(dir, 1<<20, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			for c := int64(1); c <= 5; c++ {
				if err := w.append(c, []byte(strings.Repeat("x", 40))); err != nil {
					t.Fatal(err)
				}
			}
			w.close()

			seg := filepath.Join(dir, segName(1))
			st, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, st.Size()-cut); err != nil {
				t.Fatal(err)
			}

			w2, err := openWAL(dir, 1<<20, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.close()
			// Cutting up to a whole record (16B header + 40B payload) loses
			// exactly the last record; less loses nothing it shouldn't.
			wantLast := int64(4)
			if cut > walHeaderSize+40 {
				wantLast = 3
			}
			if got := w2.stats().last; got != wantLast {
				t.Fatalf("recovered last = %d, want %d", got, wantLast)
			}
			got := collectWAL(t, w2, 1, wantLast)
			if int64(len(got)) != wantLast {
				t.Fatalf("replayed %d records, want %d", len(got), wantLast)
			}
			if err := w2.append(wantLast+1, []byte("after")); err != nil {
				t.Fatal(err)
			}
			w2.close()
			// The repaired log reopens cleanly end-to-end.
			w3, err := openWAL(dir, 1<<20, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			defer w3.close()
			if got := w3.stats().last; got != wantLast+1 {
				t.Fatalf("after repair+append, last = %d, want %d", got, wantLast+1)
			}
		})
	}
}

// TestWALBitFlip: corrupting one byte inside an early record truncates the
// log at that record; everything before it survives.
func TestWALBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1<<20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(1); c <= 6; c++ {
		if err := w.append(c, []byte(strings.Repeat("y", 32))); err != nil {
			t.Fatal(err)
		}
	}
	w.close()

	// Flip a payload byte of record 4: magic(8) + 3 records of (16+32) + a
	// bit into the fourth record's payload.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := 8 + 3*(walHeaderSize+32) + walHeaderSize + 5
	data[off] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := openWAL(dir, 1<<20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if got := w2.stats().last; got != 3 {
		t.Fatalf("recovered last = %d, want 3 (flip lands in record 4)", got)
	}
}

// TestWALRotationRetention: a small segment budget forces rotation; the
// retention count deletes the oldest segments and the replayable window
// tracks them.
func TestWALRotationRetention(t *testing.T) {
	dir := t.TempDir()
	// ~56B records against a 150B segment budget: a couple of records per
	// segment.
	w, err := openWAL(dir, 150, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	for c := int64(1); c <= 30; c++ {
		if err := w.append(c, []byte(strings.Repeat("z", 40))); err != nil {
			t.Fatal(err)
		}
	}
	st := w.stats()
	if st.segments > 3 {
		t.Fatalf("retention kept %d segments, want <= 3", st.segments)
	}
	if st.first <= 1 {
		t.Fatalf("oldest retained cursor = %d; retention should have advanced it", st.first)
	}
	if st.last != 30 {
		t.Fatalf("last = %d, want 30", st.last)
	}
	// The retained window replays completely and in order.
	var cursors []int64
	err = w.iterate(st.first, st.last, func(cursor int64, payload []byte) error {
		cursors = append(cursors, cursor)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(cursors)) != st.last-st.first+1 {
		t.Fatalf("window replayed %d records, want %d", len(cursors), st.last-st.first+1)
	}
	for i, c := range cursors {
		if c != st.first+int64(i) {
			t.Fatalf("cursors out of order at %d: %v", i, cursors)
		}
	}
	// On-disk segment files match the retained set.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != st.segments {
		t.Fatalf("%d files on disk, stats say %d segments", len(entries), st.segments)
	}
	// Reopen sees the same window.
	w.close()
	w2, err := openWAL(dir, 150, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if st2 := w2.stats(); st2.first != st.first || st2.last != st.last {
		t.Fatalf("reopened window [%d, %d], want [%d, %d]", st2.first, st2.last, st.first, st.last)
	}
}

// TestWALIterateSubrange: iterate honors both bounds, including a `from`
// inside a segment.
func TestWALIterateSubrange(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 200, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	for c := int64(1); c <= 12; c++ {
		if err := w.append(c, []byte(fmt.Sprintf("p%d", c))); err != nil {
			t.Fatal(err)
		}
	}
	got := collectWAL(t, w, 5, 9)
	if len(got) != 5 {
		t.Fatalf("subrange replayed %d records, want 5: %v", len(got), got)
	}
	for c := int64(5); c <= 9; c++ {
		if got[c] != fmt.Sprintf("p%d", c) {
			t.Fatalf("cursor %d = %q", c, got[c])
		}
	}
	if got := collectWAL(t, w, 13, 99); len(got) != 0 {
		t.Fatalf("past-the-end replay returned %v", got)
	}
}

// TestWALEmptySegmentRecovery: a rotation that crashed right after creating
// the new segment (magic only, no records) still recovers — the empty tail
// is reusable.
func TestWALEmptySegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1<<20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(1); c <= 3; c++ {
		if err := w.append(c, []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	if err := os.WriteFile(filepath.Join(dir, segName(4)), []byte(walMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := openWAL(dir, 1<<20, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if got := w2.stats().last; got != 3 {
		t.Fatalf("recovered last = %d, want 3", got)
	}
	if err := w2.append(4, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if got := collectWAL(t, w2, 1, 4); len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
}

// FuzzWALDecode: walScan must never panic on arbitrary bytes, must fail only
// with a structured corruption error, and the valid prefix it reports must
// itself rescan cleanly to the same cursor — the exact contract recovery
// (truncate to the prefix, resume from its last cursor) depends on.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add([]byte("VTXWAL00 not the right magic"))
	one := appendWALRecord(nil, 1, []byte("<doc/>"))
	two := appendWALRecord(nil, 2, []byte("<feed><trade/></feed>"))
	wellFormed := append(append([]byte(walMagic), one...), two...)
	f.Add(wellFormed)
	f.Add(wellFormed[:len(wellFormed)-3]) // torn tail
	flipped := bytes.Clone(wellFormed)
	flipped[len(walMagic)+walHeaderSize+2] ^= 0x01
	f.Add(flipped) // checksum mismatch
	misordered := append(append([]byte(walMagic), two...), one...)
	f.Add(misordered) // cursor regression

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, last, err := walScan(bytes.NewReader(data), 0, func(cursor int64, payload []byte) error {
			return nil
		})
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err != nil {
			var ce *WALCorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("scan error is not a WALCorruptionError: %v", err)
			}
			if ce.Reason == "" {
				t.Fatalf("corruption error without a reason: %v", ce)
			}
		}
		if valid == 0 {
			return // no decodable prefix (bad or missing magic)
		}
		revalid, relast, rerr := walScan(bytes.NewReader(data[:valid]), 0, nil)
		if rerr != nil {
			t.Fatalf("valid prefix does not rescan cleanly: %v", rerr)
		}
		if revalid != valid || relast != last {
			t.Fatalf("prefix rescan = (%d, %d), want (%d, %d)", revalid, relast, valid, last)
		}
	})
}
