// Wire types of the vitexd protocol: the JSON bodies exchanged over the
// broker's HTTP API. The `client` package decodes exactly these structs, so
// the daemon, the Go client, the load generator and the equivalence tests
// can never drift on field names.
//
// The protocol is deliberately plain HTTP + NDJSON — no custom framing —
// so any language with an HTTP client can publish documents and consume
// subscription streams:
//
//	POST   /channels/{ch}/subscriptions          body: XPath text   -> SubscribeResponse
//	PUT    /channels/{ch}/subscriptions/{id}     body: XPath text   -> SubscribeResponse
//	DELETE /channels/{ch}/subscriptions/{id}                        -> 204
//	POST   /channels/{ch}/documents              body: XML document -> PublishResponse
//	GET    /channels/{ch}/subscriptions/{id}/results                -> NDJSON Delivery stream
//	DELETE /channels/{ch}                                           -> 204 (drain + remove)
//	GET    /metrics                                                 -> MetricsResponse
//	GET    /healthz                                                 -> 200 "ok"
package server

import "repro/internal/engine"

// Delivery kinds; see Delivery.Type.
const (
	// DeliveryResult is one query solution for the subscription.
	DeliveryResult = "result"
	// DeliveryGap marks a hole in the result stream: either results were
	// dropped because the consumer fell behind a drop-policy ring (Dropped
	// counts them), or a document's evaluation aborted mid-stream (Reason
	// explains; results of that document may be partial). A subscriber
	// never loses deliveries silently — it loses them across a gap marker.
	DeliveryGap = "gap"
	// DeliveryEnd is the final line of a result stream: the subscription
	// was removed or the broker shut down, and everything buffered has been
	// delivered.
	DeliveryEnd = "end"
)

// Gap reasons.
const (
	GapSlowConsumer = "slow consumer"
)

// Delivery is one NDJSON line of a subscription result stream.
type Delivery struct {
	Type string `json:"type"`
	// DocSeq is the 1-based arrival number of the document (per channel)
	// this delivery belongs to. For a slow-consumer gap it is the document
	// of the last dropped result.
	DocSeq int64 `json:"doc_seq,omitempty"`
	// Seq, NodeOffset, Value, ConfirmedAt and DeliveredAt mirror the
	// library's Result fields for Type "result".
	Seq         int64  `json:"seq"`
	NodeOffset  int64  `json:"node_offset"`
	Value       string `json:"value,omitempty"`
	ConfirmedAt int64  `json:"confirmed_at,omitempty"`
	DeliveredAt int64  `json:"delivered_at,omitempty"`
	// Dropped counts the results coalesced into a gap marker (0 when the
	// gap marks an aborted document rather than a slow consumer).
	Dropped int64 `json:"dropped,omitempty"`
	// Reason explains a gap.
	Reason string `json:"reason,omitempty"`
}

// SubscribeResponse answers subscription creation and replacement.
type SubscribeResponse struct {
	Channel string `json:"channel"`
	ID      string `json:"id"`
	Query   string `json:"query"`
}

// PublishResponse answers document ingestion.
type PublishResponse struct {
	Channel string `json:"channel"`
	DocSeq  int64  `json:"doc_seq"`
	// Queued is true for async publishes: the document was accepted but not
	// yet evaluated, so Results and Events are absent.
	Queued bool `json:"queued,omitempty"`
	// Results counts deliveries actually placed into subscriber rings;
	// Events is the shared scan's event count.
	Results int64 `json:"results"`
	Events  int64 `json:"events"`
}

// ErrorResponse is the body of every non-2xx API answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Offset is the byte offset of a malformed-XML failure in the published
	// document, when known.
	Offset int64 `json:"offset,omitempty"`
	// Position is the byte position of an XPath compile failure in the
	// subscription query, when known.
	Position int `json:"position,omitempty"`
	// DocSeq identifies the document of a failed publish (it consumed an
	// arrival number even though it aborted; subscribers see a gap marker
	// carrying the same number).
	DocSeq int64 `json:"doc_seq,omitempty"`
}

// ChannelMetrics is one channel's slice of the /metrics answer.
type ChannelMetrics struct {
	Subscriptions int   `json:"subscriptions"`
	DocsIn        int64 `json:"docs_in"`
	DocsFailed    int64 `json:"docs_failed"`
	BytesIn       int64 `json:"bytes_in"`
	// Results counts deliveries placed into subscriber rings; Gaps counts
	// gap markers delivered.
	Results int64 `json:"results"`
	Gaps    int64 `json:"gaps"`
	// Queued is the current depth of the channel's ingest queue.
	Queued int `json:"queued"`
	// Engine is the channel's live-QuerySet churn accounting (compiles,
	// epochs, compactions, slot occupancy).
	Engine engine.Metrics `json:"engine"`
}

// MetricsResponse is the /metrics answer: per-channel counters plus broker
// totals and configuration.
type MetricsResponse struct {
	Channels map[string]ChannelMetrics `json:"channels"`
	Totals   struct {
		Channels int   `json:"channels"`
		DocsIn   int64 `json:"docs_in"`
		Results  int64 `json:"results"`
		Gaps     int64 `json:"gaps"`
	} `json:"totals"`
	Config struct {
		Workers    int    `json:"workers"`
		QueueDepth int    `json:"queue_depth"`
		RingSize   int    `json:"ring_size"`
		Policy     string `json:"policy"`
		Parallel   int    `json:"parallel"`
	} `json:"config"`
}
