// Wire types of the vitexd protocol: the JSON bodies exchanged over the
// broker's HTTP API. The `client` package decodes exactly these structs, so
// the daemon, the Go client, the load generator and the equivalence tests
// can never drift on field names.
//
// The protocol is deliberately plain HTTP + NDJSON — no custom framing —
// so any language with an HTTP client can publish documents and consume
// subscription streams:
//
//	POST   /channels/{ch}/subscriptions          body: XPath text   -> SubscribeResponse
//	PUT    /channels/{ch}/subscriptions/{id}     body: XPath text   -> SubscribeResponse
//	DELETE /channels/{ch}/subscriptions/{id}                        -> 204
//	POST   /channels/{ch}/documents              body: XML document -> PublishResponse
//	GET    /channels/{ch}/subscriptions/{id}/results                -> NDJSON Delivery stream
//	DELETE /channels/{ch}                                           -> 204 (drain + remove)
//	GET    /metrics                                                 -> MetricsResponse
//	GET    /healthz                                                 -> 200 "ok"
//
// Resume (durable brokers): the results route accepts `?from=C&seen=K` — a
// resume token. C is a document cursor (the per-channel DocSeq every
// delivery carries), K counts result deliveries already received for
// document C. The server replays documents C..tip from the channel's
// write-ahead log through the live QuerySet — skipping the first K results
// of document C — then hands off to the live stream with no duplicate and
// no missing delivery at the boundary. `from=0` replays everything the log
// retains (a late joiner's full catch-up). Cursors older than retention
// are reported as one gap marker carrying the unavailable range
// [FromCursor, ToCursor].
package server

import (
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Delivery kinds; see Delivery.Type.
const (
	// DeliveryResult is one query solution for the subscription.
	DeliveryResult = "result"
	// DeliveryGap marks a hole in the result stream: either results were
	// dropped because the consumer fell behind a drop-policy ring (Dropped
	// counts them), or a document's evaluation aborted mid-stream (Reason
	// explains; results of that document may be partial). A subscriber
	// never loses deliveries silently — it loses them across a gap marker.
	DeliveryGap = "gap"
	// DeliveryEnd is the final line of a result stream: the subscription
	// was removed or the broker shut down, and everything buffered has been
	// delivered.
	DeliveryEnd = "end"
)

// Gap reasons.
const (
	GapSlowConsumer = "slow consumer"
	// GapRetention marks a replay request older than the oldest retained
	// WAL cursor: documents in [FromCursor, ToCursor] can no longer be
	// replayed.
	GapRetention = "cursor beyond retention"
	// GapUnreadable marks a replay span lost to log corruption or a
	// retention race: documents in [FromCursor, ToCursor] may be missing.
	GapUnreadable = "wal unreadable"
)

// Delivery is one NDJSON line of a subscription result stream.
type Delivery struct {
	Type string `json:"type"`
	// DocSeq is the 1-based arrival number of the document (per channel)
	// this delivery belongs to. For a slow-consumer gap it is the document
	// of the last dropped result.
	DocSeq int64 `json:"doc_seq,omitempty"`
	// Seq, NodeOffset, Value, ConfirmedAt and DeliveredAt mirror the
	// library's Result fields for Type "result".
	Seq         int64  `json:"seq"`
	NodeOffset  int64  `json:"node_offset"`
	Value       string `json:"value,omitempty"`
	ConfirmedAt int64  `json:"confirmed_at,omitempty"`
	DeliveredAt int64  `json:"delivered_at,omitempty"`
	// Dropped counts the results coalesced into a gap marker (0 when the
	// gap marks an aborted document rather than a slow consumer).
	Dropped int64 `json:"dropped,omitempty"`
	// FromCursor/ToCursor bound the document cursors a gap marker spans:
	// results for documents in [FromCursor, ToCursor] may have been lost
	// (slow-consumer drops) or be unavailable (retention, corruption). A
	// consumer heals a drop gap by resuming with from=FromCursor&seen=0.
	FromCursor int64 `json:"from_cursor,omitempty"`
	ToCursor   int64 `json:"to_cursor,omitempty"`
	// Reason explains a gap.
	Reason string `json:"reason,omitempty"`

	// Observability carry, invisible on the wire (unexported, never
	// marshaled): pubAt is the document's publish-admission time (zero for
	// replayed deliveries), feeding the channel's publish-to-delivery
	// histogram at wire-write time; tr/ringAt belong to a sampled stage
	// trace — the trace this delivery holds a reference on, and the
	// trace-relative nanosecond at which the delivery entered the ring.
	pubAt  time.Time
	tr     *obs.Trace
	ringAt int64
}

// retireTrace releases d's stage-trace reference without a wire write — the
// delivery was dropped, skipped as replay-superseded, or discarded by the
// replay ring bleed. Safe on untraced deliveries.
func (d *Delivery) retireTrace() {
	if d.tr != nil {
		d.tr.Unref()
		d.tr = nil
	}
}

// SubscribeResponse answers subscription creation and replacement.
type SubscribeResponse struct {
	Channel string `json:"channel"`
	ID      string `json:"id"`
	Query   string `json:"query"`
}

// PublishResponse answers document ingestion.
type PublishResponse struct {
	Channel string `json:"channel"`
	DocSeq  int64  `json:"doc_seq"`
	// Queued is true for async publishes: the document was accepted but not
	// yet evaluated, so Results and Events are absent.
	Queued bool `json:"queued,omitempty"`
	// Results counts deliveries actually placed into subscriber rings;
	// Events is the shared scan's event count.
	Results int64 `json:"results"`
	Events  int64 `json:"events"`
}

// ErrorResponse is the body of every non-2xx API answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Offset is the byte offset of a malformed-XML failure in the published
	// document, when known.
	Offset int64 `json:"offset,omitempty"`
	// Position is the byte position of an XPath compile failure in the
	// subscription query, when known.
	Position int `json:"position,omitempty"`
	// DocSeq identifies the document of a failed publish (it consumed an
	// arrival number even though it aborted; subscribers see a gap marker
	// carrying the same number).
	DocSeq int64 `json:"doc_seq,omitempty"`
}

// ChannelMetrics is one channel's slice of the /metrics answer.
type ChannelMetrics struct {
	Subscriptions int   `json:"subscriptions"`
	DocsIn        int64 `json:"docs_in"`
	DocsFailed    int64 `json:"docs_failed"`
	BytesIn       int64 `json:"bytes_in"`
	// Results counts deliveries placed into subscriber rings; Gaps counts
	// gap markers delivered.
	Results int64 `json:"results"`
	Gaps    int64 `json:"gaps"`
	// Queued is the current depth of the channel's ingest queue.
	Queued int `json:"queued"`
	// WAL is the channel's durability accounting (nil on a memory-only
	// broker).
	WAL *WALMetrics `json:"wal,omitempty"`
	// Engine is the channel's live-QuerySet churn accounting (compiles,
	// epochs, compactions, slot occupancy).
	Engine engine.Metrics `json:"engine"`
	// Latency summarizes the channel's latency histograms.
	Latency *LatencyMetrics `json:"latency,omitempty"`
}

// LatencyMetrics summarizes a channel's (or the broker's aggregated)
// latency histograms: counts, sums and upper-bound quantile estimates in
// nanoseconds. Full bucket data is exposed in the Prometheus view of
// /metrics (see prom.go for the series names).
type LatencyMetrics struct {
	// PublishToAck: publish admission to acknowledgment (the WAL append
	// included for durable channels; evaluation included for synchronous
	// publishes).
	PublishToAck obs.Stats `json:"publish_to_ack"`
	// PublishToDelivery: publish admission to the delivery's NDJSON
	// encode on a consumer connection. Replayed deliveries are excluded.
	PublishToDelivery obs.Stats `json:"publish_to_delivery"`
	// WALAppend/WALFsync: the write (rotation included, fsync excluded)
	// and fsync portions of WAL appends; nil on memory-only channels, and
	// WALFsync stays zero-count unless Config.WALSync is on.
	WALAppend *obs.Stats `json:"wal_append,omitempty"`
	WALFsync  *obs.Stats `json:"wal_fsync,omitempty"`
}

// WALMetrics is one channel's write-ahead-log slice of the /metrics answer.
type WALMetrics struct {
	// Bytes and Segments size the retained log on disk.
	Bytes    int64 `json:"bytes"`
	Segments int   `json:"segments"`
	// FirstCursor/LastCursor bound the replayable cursor range (0/0 for an
	// empty log).
	FirstCursor int64 `json:"first_cursor"`
	LastCursor  int64 `json:"last_cursor"`
	// RecoveredCursor is the cursor the channel resumed from at boot (0
	// for a channel created by this process).
	RecoveredCursor int64 `json:"recovered_cursor,omitempty"`
	// ReplayDocs/ReplayResults count documents re-evaluated and result
	// deliveries re-sent for resuming or late-joining subscribers.
	ReplayDocs    int64 `json:"replay_docs"`
	ReplayResults int64 `json:"replay_results"`
}

// MetricsResponse is the /metrics answer: per-channel counters plus broker
// totals and configuration.
type MetricsResponse struct {
	Channels map[string]ChannelMetrics `json:"channels"`
	Totals   struct {
		Channels      int   `json:"channels"`
		DocsIn        int64 `json:"docs_in"`
		Results       int64 `json:"results"`
		Gaps          int64 `json:"gaps"`
		WALBytes      int64 `json:"wal_bytes"`
		WALSegments   int   `json:"wal_segments"`
		ReplayDocs    int64 `json:"replay_docs"`
		ReplayResults int64 `json:"replay_results"`
		// Latency aggregates every channel's publish-to-ack and
		// publish-to-delivery histograms (nil when no channel exists).
		Latency *LatencyMetrics `json:"latency,omitempty"`
	} `json:"totals"`
	Config struct {
		Workers    int    `json:"workers"`
		QueueDepth int    `json:"queue_depth"`
		RingSize   int    `json:"ring_size"`
		Policy     string `json:"policy"`
		Parallel   int    `json:"parallel"`
		Durable    bool   `json:"durable"`
	} `json:"config"`
}
