package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	vitex "repro"
	"repro/internal/obs"
)

// Sentinel errors of the broker API; the HTTP layer maps them to statuses.
var (
	// ErrShutdown rejects work submitted after Shutdown began.
	ErrShutdown = errors.New("server: broker shutting down")
	// ErrQueueFull rejects a publish when the channel's bounded ingest
	// queue has no room — the publisher's back-pressure signal (retry, or
	// publish synchronously so completed documents free slots).
	ErrQueueFull = errors.New("server: channel ingest queue full")
	// ErrNoSubscription reports an unknown subscription id.
	ErrNoSubscription = errors.New("server: no such subscription")
	// ErrNoChannel reports an unknown channel name.
	ErrNoChannel = errors.New("server: no such channel")
	// ErrNotDurable rejects a cursor-resume request against a broker that
	// has no data directory (there is no log to replay from).
	ErrNotDurable = errors.New("server: broker is not durable (no data directory); cursor resume unavailable")
)

// channel is one named feed: a live QuerySet holding the standing
// subscriptions, a bounded ingest queue of arriving documents, and the
// per-subscription result rings. Documents are evaluated strictly in
// arrival order by the channel's drainer (one evaluation in flight per
// channel — so each subscription's result stream is ordered by document),
// while the broker's worker-pool semaphore bounds how many channels
// evaluate at once (cross-document parallelism across channels, on top of
// Options.Parallel's within-document sharding).
//
//vitex:counters
type channel struct {
	name string
	b    *Broker

	// dir and wal are the channel's durable state (nil/empty for a
	// memory-only broker): every accepted publish is appended to the WAL —
	// before it is acknowledged or evaluated — and the manifest in dir
	// records the standing subscriptions. See wal.go and manifest.go.
	dir string
	wal *walLog

	// mu guards the membership pair (QuerySet contents <-> subs indexing)
	// and ingest admission. Mutations and the per-document view capture
	// take it; evaluation itself runs outside it.
	mu      sync.Mutex
	qs      *vitex.QuerySet
	subs    []*subscription // parallel to QuerySet query indexes
	byID    map[string]*subscription
	nextSub int64 //vitex:guardedby=mu
	nextDoc int64 //vitex:guardedby=mu
	closed  bool  //vitex:guardedby=mu
	queue   chan *job

	wg sync.WaitGroup // drainLoop

	// recoveredCursor is the WAL recovery point at boot (0 for a fresh
	// channel): cursors at or below it were replayed from disk, not
	// accepted by this process.
	recoveredCursor int64 //vitex:plain set during recovery before the channel is published

	docsIn        atomic.Int64
	docsFailed    atomic.Int64
	bytesIn       atomic.Int64
	delivered     atomic.Int64
	gaps          atomic.Int64
	replayDocs    atomic.Int64
	replayResults atomic.Int64

	// Latency histograms (always on — recording is three atomic adds and
	// the clock reads are per document or per delivery, never per event).
	// pubAck: publish admission to acknowledgment. pubDeliver: publish
	// admission to the delivery's NDJSON encode on a consumer connection
	// (replays excluded; all of this channel's rings share the broker's
	// slow-consumer policy, which labels the series in the Prometheus
	// view). WAL append/fsync histograms live on the walLog.
	pubAck     obs.Histogram
	pubDeliver obs.Histogram
}

// subscription is one standing query of a channel plus its delivery ring.
type subscription struct {
	id    string
	query string // guarded by ch.mu (Replace rewrites it)
	ch    *channel
	ring  *subRing
	// attached enforces the single-consumer contract of the ring.
	attached atomic.Bool
}

// job is one queued document: its payload, its arrival number, and the
// context its evaluation runs under (broker lifetime, plus — for
// synchronous publishes — the publisher's request).
type job struct {
	seq  int64
	data []byte
	ctx  context.Context
	done chan jobResult // nil for async publishes

	// admitted is the publish handler's entry time (latency histograms);
	// enqueued is the ingest-queue send time (the trace's queue_wait
	// stage); tr is the document's sampled stage trace, nil for the
	// overwhelming majority of publishes.
	admitted time.Time
	enqueued time.Time
	tr       *obs.Trace
}

type jobResult struct {
	results int64
	events  int64
	err     error
}

func newChannel(name string, b *Broker) (*channel, error) {
	c, err := buildChannel(name, b)
	if err != nil {
		return nil, err
	}
	if c.wal != nil {
		// A fresh durable channel starts with an empty manifest on disk, so
		// a crash before the first subscription still recovers the channel
		// (and its WAL'd documents).
		if err := saveManifest(c.dir, &channelManifest{Name: name}); err != nil {
			c.wal.close()
			return nil, err
		}
	}
	c.start()
	return c, nil
}

// buildChannel constructs a channel and, for a durable broker, opens its WAL
// (recovering the cursor from the log tail). It does not start the drain
// loop — recovery adds subscriptions first. The channel is unpublished here,
// so the guarded fields are safe to touch without c.mu.
//
//vitex:locked
func buildChannel(name string, b *Broker) (*channel, error) {
	qs, err := vitex.NewQuerySet()
	if err != nil {
		return nil, err
	}
	c := &channel{
		name:  name,
		b:     b,
		qs:    qs,
		byID:  make(map[string]*subscription),
		queue: make(chan *job, b.cfg.QueueDepth),
	}
	if b.cfg.DataDir != "" {
		c.dir = filepath.Join(channelsDir(b.cfg.DataDir), chanDirName(name))
		wal, err := openWAL(c.dir, b.cfg.WALSegmentBytes, b.cfg.WALRetainSegments, b.cfg.WALSync)
		if err != nil {
			return nil, fmt.Errorf("server: channel %q wal: %w", name, err)
		}
		c.wal = wal
		c.nextDoc = wal.stats().last
		c.recoveredCursor = c.nextDoc
	}
	return c, nil
}

// start launches the drain loop; the channel is live afterwards.
func (c *channel) start() {
	c.wg.Add(1)
	go c.drainLoop()
}

// recoverChannel rebuilds a channel from its manifest: the WAL tail gives
// the document cursor, the manifest gives the standing subscriptions, each
// compiled back into the live QuerySet under its original id. The channel
// is unpublished until Open links it, so c.mu is not needed.
//
//vitex:locked
func recoverChannel(b *Broker, m *channelManifest) (*channel, error) {
	c, err := buildChannel(m.Name, b)
	if err != nil {
		return nil, err
	}
	c.nextSub = m.NextSub
	for _, ms := range m.Subscriptions {
		q, err := vitex.Compile(ms.Query)
		if err != nil {
			c.wal.close()
			return nil, fmt.Errorf("server: channel %q: recompiling %q: %w", m.Name, ms.Query, err)
		}
		if _, err := c.qs.Add(q); err != nil {
			c.wal.close()
			return nil, err
		}
		sub := &subscription{
			id:    ms.ID,
			query: ms.Query,
			ch:    c,
			ring:  newSubRing(b.cfg.RingSize, b.cfg.Policy, &c.gaps),
		}
		c.subs = append(c.subs, sub)
		c.byID[sub.id] = sub
	}
	c.start()
	return c, nil
}

// persistLocked rewrites the channel's manifest from the in-memory standing
// state (c.mu held). A no-op for memory-only brokers.
//
//vitex:locked
func (c *channel) persistLocked() error {
	if c.wal == nil {
		return nil
	}
	m := &channelManifest{Name: c.name, NextSub: c.nextSub}
	for _, sub := range c.subs {
		m.Subscriptions = append(m.Subscriptions, manifestSub{ID: sub.id, Query: sub.query})
	}
	return saveManifest(c.dir, m)
}

// subscribe compiles query and adds it to the live set. Compilation happens
// outside the lock; only the QuerySet.Add (which compiles nothing twice —
// the engine interns the already-built machines' symbols incrementally) and
// the bookkeeping pair run under it, so churn never blocks on other
// subscribers' compiles.
func (c *channel) subscribe(query string) (*subscription, error) {
	q, err := vitex.Compile(query)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrShutdown
	}
	if _, err := c.qs.Add(q); err != nil {
		return nil, err
	}
	c.nextSub++
	sub := &subscription{
		id:    fmt.Sprintf("s%d", c.nextSub),
		query: query,
		ch:    c,
		ring:  newSubRing(c.b.cfg.RingSize, c.b.cfg.Policy, &c.gaps),
	}
	c.subs = append(c.subs, sub)
	c.byID[sub.id] = sub
	if err := c.persistLocked(); err != nil {
		// Roll the membership back: a subscription that is not durable must
		// not exist, or a restart would silently forget it.
		c.qs.Remove(len(c.subs) - 1)
		c.subs = c.subs[:len(c.subs)-1]
		delete(c.byID, sub.id)
		c.nextSub--
		return nil, err
	}
	return sub, nil
}

// indexOfLocked returns sub's current query index (c.mu held).
func (c *channel) indexOfLocked(sub *subscription) int {
	for i, s := range c.subs {
		if s == sub {
			return i
		}
	}
	return -1
}

// unsubscribe removes the subscription and closes its ring; an attached
// consumer drains what is buffered and sees end-of-stream. A document
// already evaluating still delivers the removed query's results (it runs
// against the view captured at its start).
func (c *channel) unsubscribe(id string) error {
	c.mu.Lock()
	sub := c.byID[id]
	if sub == nil {
		c.mu.Unlock()
		return ErrNoSubscription
	}
	idx := c.indexOfLocked(sub)
	if err := c.qs.Remove(idx); err != nil {
		c.mu.Unlock()
		return err
	}
	c.subs = append(c.subs[:idx], c.subs[idx+1:]...)
	delete(c.byID, id)
	// Persistence failure is not rolled back here: the in-memory removal
	// already happened and re-adding would reorder the set. The stale
	// manifest entry is rewritten by the next successful mutation; until
	// then a restart resurrects an unconsumed subscription, which is safe.
	perr := c.persistLocked()
	c.mu.Unlock()
	sub.ring.closeRing()
	return perr
}

// replace swaps the subscription's query, keeping its id, ring and any
// attached consumer. Only the new query is compiled.
func (c *channel) replace(id, query string) (*subscription, error) {
	q, err := vitex.Compile(query)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sub := c.byID[id]
	if sub == nil {
		return nil, ErrNoSubscription
	}
	if err := c.qs.Replace(c.indexOfLocked(sub), q); err != nil {
		return nil, err
	}
	sub.query = query
	if err := c.persistLocked(); err != nil {
		return nil, err
	}
	return sub, nil
}

func (c *channel) subscriptionByID(id string) *subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byID[id]
}

// publish admits a document into the bounded ingest queue, assigning its
// arrival number (the channel's WAL cursor). On a durable broker the
// document is appended to the write-ahead log BEFORE the publish is
// acknowledged or the document queued for evaluation: an acknowledged
// document is always a complete, checksummed WAL record, which is the
// invariant the crash-recovery guarantee rests on. wait=true blocks until
// the evaluation completes (or the caller's ctx dies — which also cancels
// the evaluation itself, the publisher-disconnect path) and reports its
// outcome; wait=false returns as soon as the document is durable and
// queued.
func (c *channel) publish(ctx context.Context, data []byte, wait bool) (*PublishResponse, error) {
	jctx, cancel := c.b.jobContext(ctx, wait)
	j := &job{data: data, ctx: jctx, admitted: time.Now()}
	// Sample before the admission lock so the trace's clock covers lock
	// wait; the document number is filled in once assigned, and rejected
	// publishes cancel the trace without emitting.
	j.tr = c.b.tracer.Sample(c.name, 0)
	if wait {
		j.done = make(chan jobResult, 1)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cancel()
		j.tr.Cancel()
		return nil, ErrShutdown
	}
	// Reserve queue room before assigning a cursor: publish is the only
	// sender and every sender holds c.mu, so a free slot observed here
	// cannot be taken by anyone else before the send below.
	if len(c.queue) == cap(c.queue) {
		c.mu.Unlock()
		cancel()
		j.tr.Cancel()
		return nil, ErrQueueFull
	}
	c.nextDoc++
	j.seq = c.nextDoc
	j.tr.SetDocSeq(j.seq)
	var walNs time.Duration
	if c.wal != nil {
		walStart := time.Now()
		if err := c.wal.append(j.seq, data); err != nil {
			// The record is not durable: reject the publish and give the
			// cursor back (a torn partial write is truncated on the next
			// recovery; the cursor was never acknowledged to anyone).
			c.nextDoc--
			c.mu.Unlock()
			cancel()
			j.tr.Cancel()
			return nil, err
		}
		walNs = time.Since(walStart)
		if j.tr != nil {
			fsyncNs := c.wal.lastFsyncDur()
			j.tr.AddStage(obs.StageWALFsync, fsyncNs)
			j.tr.AddStage(obs.StageWALAppend, walNs-fsyncNs)
		}
	}
	j.enqueued = time.Now()
	j.tr.AddStage(obs.StageAdmission, j.enqueued.Sub(j.admitted)-walNs)
	c.queue <- j
	c.mu.Unlock()
	c.docsIn.Add(1)
	c.bytesIn.Add(int64(len(data)))
	if !wait {
		// Async jobs run under the broker's lifetime context alone; cancel
		// here would kill them. jobContext returned a no-op cancel.
		cancel()
		c.pubAck.Observe(time.Since(j.admitted))
		return &PublishResponse{Channel: c.name, DocSeq: j.seq, Queued: true}, nil
	}
	defer cancel()
	select {
	case res := <-j.done:
		c.pubAck.Observe(time.Since(j.admitted))
		if res.err != nil {
			return &PublishResponse{Channel: c.name, DocSeq: j.seq}, &publishError{seq: j.seq, err: res.err}
		}
		return &PublishResponse{Channel: c.name, DocSeq: j.seq, Results: res.results, Events: res.events}, nil
	case <-ctx.Done():
		// cancel() (deferred) aborts the in-flight evaluation; the drainer
		// finishes the cleanup (gap markers) without us.
		return nil, ctx.Err()
	}
}

// publishError tags an evaluation failure with the document number it
// consumed, so the publisher's structured error and the subscribers' gap
// markers name the same document.
type publishError struct {
	seq int64
	err error
}

func (e *publishError) Error() string { return e.err.Error() }
func (e *publishError) Unwrap() error { return e.err }

// closeIngest stops admission and lets the drainer run the queue dry.
func (c *channel) closeIngest() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	close(c.queue)
}

// closeRings ends every subscription's result stream (drain-then-end for
// attached consumers).
func (c *channel) closeRings() {
	c.mu.Lock()
	subs := append([]*subscription(nil), c.subs...)
	c.mu.Unlock()
	for _, sub := range subs {
		sub.ring.closeRing()
	}
}

// drainLoop evaluates queued documents strictly in arrival order. The
// broker's semaphore bounds how many channels evaluate simultaneously.
func (c *channel) drainLoop() {
	defer c.wg.Done()
	for j := range c.queue {
		c.b.sem <- struct{}{}
		res := c.evaluate(j)
		<-c.b.sem
		if j.done != nil {
			j.done <- res
		}
	}
}

// evaluate runs one document against the membership in force at its start.
// The view and the subscription slice are captured under one lock, so a
// result's QueryIndex always resolves to the subscription whose machine
// produced it, however the set churns concurrently.
func (c *channel) evaluate(j *job) jobResult {
	traced := j.tr != nil
	var evalStart time.Time
	var ringNs int64
	var wokenBefore int64
	if traced {
		evalStart = time.Now()
		j.tr.AddStage(obs.StageQueueWait, evalStart.Sub(j.enqueued))
		wokenBefore = c.qs.Metrics().Deliveries
	}
	c.mu.Lock()
	view := c.qs.View()
	subs := append([]*subscription(nil), c.subs...)
	c.mu.Unlock()

	opts := vitex.Options{Parallel: c.b.cfg.Parallel, Context: j.ctx}
	var results int64
	stats, err := view.Stream(bytes.NewReader(j.data), opts, func(sr vitex.SetResult) error {
		sub := subs[sr.QueryIndex]
		d := Delivery{
			Type:        DeliveryResult,
			DocSeq:      j.seq,
			Seq:         sr.Seq,
			NodeOffset:  sr.NodeOffset,
			Value:       sr.Value,
			ConfirmedAt: sr.ConfirmedAt,
			DeliveredAt: sr.DeliveredAt,
			pubAt:       j.admitted,
		}
		var pushStart time.Time
		if traced {
			// The delivery carries a reference on the trace; whoever
			// retires it (wire write, drop, replay supersession) releases.
			j.tr.Ref()
			d.tr = j.tr
			d.ringAt = j.tr.SinceStartNs()
			pushStart = time.Now()
		}
		delivered, perr := sub.ring.push(j.ctx, d)
		if traced {
			ringNs += time.Since(pushStart).Nanoseconds()
			if !delivered {
				// Dropped or closed: the delivery never reaches a wire.
				j.tr.Unref()
			} else {
				j.tr.AddDeliveries(1)
			}
		}
		if errors.Is(perr, errSubClosed) {
			// Unsubscribed mid-document: skip it, keep serving the others.
			return nil
		}
		if delivered {
			results++
			c.delivered.Add(1)
		}
		return perr
	})
	var events int64
	if len(stats) > 0 {
		events = stats[0].Events
	}
	if traced {
		evalNs := time.Since(evalStart).Nanoseconds()
		j.tr.AddStage(obs.StageScanDispatch, time.Duration(evalNs-ringNs))
		j.tr.AddStage(obs.StageRingEnqueue, time.Duration(ringNs))
		j.tr.AddEvents(events)
		j.tr.AddMachinesWoken(c.qs.Metrics().Deliveries - wokenBefore)
		// The publish path's reference: the trace emits once every traced
		// delivery retires (immediately, for a document with none).
		j.tr.MarkEnd()
		j.tr.Unref()
	}
	if err != nil {
		// The publisher gets a structured error; every subscriber of the
		// evaluated view gets a gap marker in stream position — an aborted
		// document must never read as a silent stall (or, worse, as a
		// clean document with fewer matches).
		c.docsFailed.Add(1)
		reason := "document aborted: " + err.Error()
		for _, sub := range subs {
			sub.ring.pushGap(j.ctx, Delivery{Type: DeliveryGap, DocSeq: j.seq, Reason: reason})
		}
		return jobResult{results: results, events: events, err: err}
	}
	return jobResult{results: results, events: events}
}

// metrics snapshots the channel's counters.
func (c *channel) metrics() ChannelMetrics {
	c.mu.Lock()
	nsubs := len(c.subs)
	queued := len(c.queue)
	c.mu.Unlock()
	cm := ChannelMetrics{
		Subscriptions: nsubs,
		DocsIn:        c.docsIn.Load(),
		DocsFailed:    c.docsFailed.Load(),
		BytesIn:       c.bytesIn.Load(),
		Results:       c.delivered.Load(),
		Gaps:          c.gaps.Load(),
		Queued:        queued,
		Engine:        c.qs.Metrics(),
	}
	lat := &LatencyMetrics{
		PublishToAck:      c.pubAck.Snapshot().Stats(),
		PublishToDelivery: c.pubDeliver.Snapshot().Stats(),
	}
	if c.wal != nil {
		app, fs := c.wal.latency()
		appStats, fsStats := app.Stats(), fs.Stats()
		lat.WALAppend, lat.WALFsync = &appStats, &fsStats
	}
	cm.Latency = lat
	if c.wal != nil {
		ws := c.wal.stats()
		cm.WAL = &WALMetrics{
			Bytes:           ws.bytes,
			Segments:        ws.segments,
			FirstCursor:     ws.first,
			LastCursor:      ws.last,
			RecoveredCursor: c.recoveredCursor,
			ReplayDocs:      c.replayDocs.Load(),
			ReplayResults:   c.replayResults.Load(),
		}
	}
	return cm
}
