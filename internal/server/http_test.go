package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// startServer runs a broker behind an httptest server and returns a client
// for it. Shutdown order matters: broker first (ends result streams), then
// the HTTP server (whose Close waits for active handlers).
func startServer(t *testing.T, cfg server.Config) (*client.Client, *server.Broker, string) {
	t.Helper()
	b := server.New(cfg)
	ts := httptest.NewServer(server.Handler(b))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Shutdown(ctx)
		ts.Close()
	})
	return client.New(ts.URL), b, ts.URL
}

const httpFeed = `<feed>
  <trade><symbol>ACME</symbol><price>10</price></trade>
  <trade><symbol>WIDG</symbol><price>20</price></trade>
  <trade><symbol>ACME</symbol><price>30</price></trade>
</feed>`

// TestHTTPLifecycle drives the full wire protocol through the Go client:
// subscribe, stream, publish, replace, unsubscribe, metrics.
func TestHTTPLifecycle(t *testing.T) {
	cl, _, _ := startServer(t, server.Config{})
	ctx := context.Background()

	sub, err := cl.Subscribe(ctx, "ticker", "//trade[symbol='ACME']/price")
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Channel != "ticker" {
		t.Fatalf("subscribe response = %+v", sub)
	}

	stream, err := cl.Results(ctx, "ticker", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	// A second attach is refused while the first is live.
	if _, err := cl.Results(ctx, "ticker", sub.ID); err == nil {
		t.Fatal("second Results attach succeeded, want 409")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 409 {
			t.Fatalf("second attach err = %v, want APIError 409", err)
		}
	}

	pub, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed))
	if err != nil {
		t.Fatal(err)
	}
	if pub.Results != 2 || pub.DocSeq != 1 {
		t.Fatalf("publish = %+v, want 2 results on doc 1", pub)
	}

	// Seq is candidate-creation order with holes for unconfirmed candidates:
	// the WIDG price consumed seq 1 without matching.
	for i, want := range []struct {
		value string
		seq   int64
	}{{"<price>10</price>", 0}, {"<price>30</price>", 2}} {
		d, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if d.Type != server.DeliveryResult || d.Value != want.value || d.DocSeq != 1 || d.Seq != want.seq {
			t.Fatalf("delivery %d = %+v, want value %q seq %d", i, d, want.value, want.seq)
		}
	}

	// Replace in place: same id, new query takes effect on the next doc.
	if _, err := cl.Replace(ctx, "ticker", sub.ID, "//trade[symbol='WIDG']/price"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	d, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != "<price>20</price>" || d.DocSeq != 2 {
		t.Fatalf("post-replace delivery = %+v", d)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cm, okCh := m.Channels["ticker"]
	if !okCh || cm.DocsIn != 2 || cm.Subscriptions != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if cm.Engine.Compiles == 0 {
		t.Fatalf("engine metrics missing: %+v", cm.Engine)
	}

	// Unsubscribe ends the stream with an explicit end marker.
	if err := cl.Unsubscribe(ctx, "ticker", sub.ID); err != nil {
		t.Fatal(err)
	}
	for {
		d, err := stream.Next()
		if err != nil {
			t.Fatalf("stream severed without end marker: %v", err)
		}
		if d.Type == server.DeliveryEnd {
			break
		}
	}
	if _, err := stream.Next(); err != io.EOF {
		t.Fatalf("after end marker: err = %v, want io.EOF", err)
	}
}

// TestHTTPAsyncParam: ?async truthiness — async=0/false still publish
// synchronously (Results populated), async/async=1 queue.
func TestHTTPAsyncParam(t *testing.T) {
	cl, _, base := startServer(t, server.Config{})
	ctx := context.Background()
	if _, err := cl.Subscribe(ctx, "ticker", "//trade/price"); err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{}
	post := func(query string) (int, server.PublishResponse) {
		resp, err := hc.Post(base+"/channels/ticker/documents"+query, "application/xml", strings.NewReader(httpFeed))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out server.PublishResponse
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	for _, q := range []string{"", "?async=0", "?async=false"} {
		status, out := post(q)
		if status != 200 || out.Queued || out.Results != 3 {
			t.Fatalf("publish%s = %d %+v, want synchronous 200 with 3 results", q, status, out)
		}
	}
	for _, q := range []string{"?async", "?async=1", "?async=true"} {
		status, out := post(q)
		if status != 202 || !out.Queued {
			t.Fatalf("publish%s = %d %+v, want 202 queued", q, status, out)
		}
	}
}

// TestHTTPDeleteChannel: deleting a channel drains its queue, ends all its
// streams, and frees the name for re-creation.
func TestHTTPDeleteChannel(t *testing.T) {
	cl, _, _ := startServer(t, server.Config{})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "tmp", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.Results(ctx, "tmp", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := cl.PublishAsync(ctx, "tmp", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteChannel(ctx, "tmp"); err != nil {
		t.Fatal(err)
	}
	// The queued document still evaluated; the stream delivers its results
	// and then ends.
	var results int
	for {
		d, err := stream.Next()
		if err != nil {
			t.Fatalf("stream severed without end after delete: %v", err)
		}
		if d.Type == server.DeliveryResult {
			results++
		}
		if d.Type == server.DeliveryEnd {
			break
		}
	}
	if results != 3 {
		t.Fatalf("drained %d results through channel delete, want 3", results)
	}
	if err := cl.DeleteChannel(ctx, "tmp"); err == nil {
		t.Fatal("second delete succeeded, want 404")
	}
	// The name is free again.
	if _, err := cl.Subscribe(ctx, "tmp", "//trade/price"); err != nil {
		t.Fatalf("re-creating deleted channel: %v", err)
	}
}

// TestHTTPBadQuery: a malformed XPath subscription is rejected with a 400
// carrying the parse position.
func TestHTTPBadQuery(t *testing.T) {
	cl, _, _ := startServer(t, server.Config{})
	_, err := cl.Subscribe(context.Background(), "ticker", "//trade[")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if apiErr.Position == 0 {
		t.Fatalf("parse error lost its position: %+v", apiErr)
	}
}

// TestHTTPMalformedDocument: a malformed publish returns a structured 400
// with the syntax-error offset and the consumed doc number, and the
// subscriber's stream shows a gap marker, not a stall.
func TestHTTPMalformedDocument(t *testing.T) {
	cl, _, _ := startServer(t, server.Config{})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.Results(ctx, "ticker", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	_, err = cl.Publish(ctx, "ticker", strings.NewReader("<feed><trade><price>5</price></trade><oops"))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("publish err = %v, want APIError 400", err)
	}
	if apiErr.Offset == 0 || apiErr.DocSeq != 1 {
		t.Fatalf("structured error incomplete: %+v", apiErr.ErrorResponse)
	}

	// The partial result arrives, then the gap marker for the same doc.
	sawGap := false
	for !sawGap {
		d, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if d.Type == server.DeliveryGap {
			if d.DocSeq != 1 || !strings.Contains(d.Reason, "document aborted") {
				t.Fatalf("gap = %+v", d)
			}
			sawGap = true
		}
	}
}

// TestHTTPShutdownEndsStreams: broker shutdown finishes attached result
// streams with an end marker after delivering what was proven.
func TestHTTPShutdownEndsStreams(t *testing.T) {
	cl, b, _ := startServer(t, server.Config{})
	ctx := context.Background()
	sub, err := cl.Subscribe(ctx, "ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.Results(ctx, "ticker", sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := cl.Publish(ctx, "ticker", strings.NewReader(httpFeed)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var results int
	var end bool
	go func() {
		defer wg.Done()
		for {
			d, err := stream.Next()
			if err != nil {
				return
			}
			if d.Type == server.DeliveryResult {
				results++
			}
			if d.Type == server.DeliveryEnd {
				end = true
				return
			}
		}
	}()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if results != 3 || !end {
		t.Fatalf("drained %d results, end=%v; want 3 results and an end marker", results, end)
	}
}
