// Channel manifests: the durable half of a channel that is not the document
// log. A manifest records the channel's name, its subscription-id allocator
// position, and every standing subscription (id + XPath text), so a
// restarted daemon can rebuild the channel's live QuerySet and hand the same
// subscription ids back to reconnecting consumers. Document cursors are NOT
// in the manifest — they recover from the WAL tail, which is the single
// source of truth for what was accepted.
//
// Manifests are tiny and rewritten whole on every subscription mutation,
// atomically (write temp file, rename into place), so a crash mid-update
// leaves either the old or the new manifest, never a torn one.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

const manifestName = "manifest.json"

// channelManifest is the on-disk record of one channel's standing state.
type channelManifest struct {
	// Name is the channel's wire name (the directory name is an encoding of
	// it; the manifest holds the truth).
	Name string `json:"name"`
	// NextSub is the subscription-id allocator position, persisted so ids
	// never collide across restarts.
	NextSub int64 `json:"next_sub"`
	// Subscriptions lists the standing queries in their QuerySet index
	// order.
	Subscriptions []manifestSub `json:"subscriptions"`
}

type manifestSub struct {
	ID    string `json:"id"`
	Query string `json:"query"`
}

// chanDirName encodes a channel name as a filesystem-safe directory name:
// hex for short names (reversible at a glance), a hash for names that would
// overflow NAME_MAX. Uniqueness is what matters — recovery reads the real
// name from the manifest.
func chanDirName(name string) string {
	enc := hex.EncodeToString([]byte(name))
	if len(enc) <= 128 {
		return "c-" + enc
	}
	sum := sha256.Sum256([]byte(name))
	return "h-" + hex.EncodeToString(sum[:])
}

// channelsDir is the root of all per-channel state under a data directory.
func channelsDir(dataDir string) string { return filepath.Join(dataDir, "channels") }

// saveManifest atomically writes m into dir.
func saveManifest(dir string, m *channelManifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// loadManifest reads dir's manifest.
func loadManifest(dir string) (*channelManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m channelManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: manifest %s: %w", dir, err)
	}
	if m.Name == "" {
		return nil, fmt.Errorf("server: manifest %s: empty channel name", dir)
	}
	return &m, nil
}
