package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// maxBodyBytes bounds subscription queries and published documents; a
// streaming system ingests many documents, not one enormous one.
const maxBodyBytes = 64 << 20

// Handler wires the broker's HTTP API (see wire.go for the route table and
// body types).
func Handler(b *Broker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /channels/{ch}/subscriptions", b.handleSubscribe)
	mux.HandleFunc("PUT /channels/{ch}/subscriptions/{id}", b.handleReplace)
	mux.HandleFunc("DELETE /channels/{ch}/subscriptions/{id}", b.handleUnsubscribe)
	mux.HandleFunc("GET /channels/{ch}/subscriptions/{id}/results", b.handleResults)
	mux.HandleFunc("POST /channels/{ch}/documents", b.handlePublish)
	mux.HandleFunc("DELETE /channels/{ch}", b.handleDeleteChannel)
	mux.HandleFunc("GET /metrics", b.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// writeJSON emits one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError maps broker and compile errors to HTTP statuses and a
// structured ErrorResponse: byte positions for bad XPath, byte offsets for
// malformed XML, the consumed document number for failed publishes.
func writeError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error()}
	status := http.StatusInternalServerError
	var pe *publishError
	if errors.As(err, &pe) {
		resp.DocSeq = pe.seq
	}
	var parseErr *xpath.ParseError
	var synErr *xmlscan.SyntaxError
	switch {
	case errors.As(err, &parseErr):
		status = http.StatusBadRequest
		resp.Position = parseErr.Pos
	case errors.As(err, &synErr):
		status = http.StatusBadRequest
		resp.Offset = synErr.Offset
	case errors.Is(err, ErrNoSubscription), errors.Is(err, ErrNoChannel):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrShutdown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	case pe != nil:
		// An aborted evaluation with an unrecognized cause (an emit-path
		// failure): the document was still rejected.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// readBody slurps a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "reading request body: " + err.Error()})
		return nil, false
	}
	return data, true
}

func (b *Broker) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	query := strings.TrimSpace(string(body))
	if query == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty subscription query"})
		return
	}
	resp, err := b.Subscribe(r.PathValue("ch"), query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (b *Broker) handleReplace(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	query := strings.TrimSpace(string(body))
	if query == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty subscription query"})
		return
	}
	resp, err := b.Replace(r.PathValue("ch"), r.PathValue("id"), query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (b *Broker) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	if err := b.Unsubscribe(r.PathValue("ch"), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (b *Broker) handlePublish(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	wait := !boolParam(r.URL.Query().Get("async"), r.URL.Query().Has("async"))
	resp, err := b.Publish(r.Context(), r.PathValue("ch"), data, wait)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if resp.Queued {
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

// handleResults streams the subscription's deliveries as NDJSON until the
// subscription ends (unsubscribe or shutdown — the stream finishes with an
// "end" line) or the client disconnects. Deliveries that are ready together
// are flushed together.
func (b *Broker) handleResults(w http.ResponseWriter, r *http.Request) {
	sub, err := b.subscription(r.PathValue("ch"), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if !sub.attached.CompareAndSwap(false, true) {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: "subscription already has an attached consumer"})
		return
	}
	defer sub.attached.Store(false)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	_ = rc.Flush() // commit headers so clients see the stream open

	ctx := r.Context()
	for {
		d, ok, err := sub.ring.next(ctx)
		if err != nil {
			return // client gone; the ring stays live for a reconnect
		}
		if !ok {
			_ = enc.Encode(Delivery{Type: DeliveryEnd})
			_ = rc.Flush()
			return
		}
		if encErr := enc.Encode(d); encErr != nil {
			return
		}
		for {
			more, okMore := sub.ring.tryNext()
			if !okMore {
				break
			}
			if encErr := enc.Encode(more); encErr != nil {
				return
			}
		}
		if flushErr := rc.Flush(); flushErr != nil {
			return
		}
	}
}

func (b *Broker) handleDeleteChannel(w http.ResponseWriter, r *http.Request) {
	if err := b.DeleteChannel(r.PathValue("ch")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (b *Broker) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, b.Metrics())
}

// boolParam interprets a query-string flag: absent -> false, bare or
// unparsable -> true (presence is the signal), otherwise its boolean value
// — so ?async=0 and ?async=false select the synchronous path.
func boolParam(value string, present bool) bool {
	if !present {
		return false
	}
	if value == "" {
		return true
	}
	v, err := strconv.ParseBool(value)
	if err != nil {
		return true
	}
	return v
}
