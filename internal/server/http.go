package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// maxBodyBytes bounds subscription queries and published documents; a
// streaming system ingests many documents, not one enormous one.
const maxBodyBytes = 64 << 20

// Handler wires the broker's HTTP API (see wire.go for the route table and
// body types).
func Handler(b *Broker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /channels/{ch}/subscriptions", b.handleSubscribe)
	mux.HandleFunc("PUT /channels/{ch}/subscriptions/{id}", b.handleReplace)
	mux.HandleFunc("DELETE /channels/{ch}/subscriptions/{id}", b.handleUnsubscribe)
	mux.HandleFunc("GET /channels/{ch}/subscriptions/{id}/results", b.handleResults)
	mux.HandleFunc("POST /channels/{ch}/documents", b.handlePublish)
	mux.HandleFunc("DELETE /channels/{ch}", b.handleDeleteChannel)
	mux.HandleFunc("GET /metrics", b.handleMetrics)
	mux.HandleFunc("GET /debug/traces", b.handleTraces)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// writeJSON emits one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError maps broker and compile errors to HTTP statuses and a
// structured ErrorResponse: byte positions for bad XPath, byte offsets for
// malformed XML, the consumed document number for failed publishes.
func writeError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error()}
	status := http.StatusInternalServerError
	var pe *publishError
	if errors.As(err, &pe) {
		resp.DocSeq = pe.seq
	}
	var parseErr *xpath.ParseError
	var synErr *xmlscan.SyntaxError
	switch {
	case errors.As(err, &parseErr):
		status = http.StatusBadRequest
		resp.Position = parseErr.Pos
	case errors.As(err, &synErr):
		status = http.StatusBadRequest
		resp.Offset = synErr.Offset
	case errors.Is(err, ErrNoSubscription), errors.Is(err, ErrNoChannel):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrNotDurable):
		status = http.StatusBadRequest
	case errors.Is(err, ErrShutdown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	case pe != nil:
		// An aborted evaluation with an unrecognized cause (an emit-path
		// failure): the document was still rejected.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// readBody slurps a size-capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "reading request body: " + err.Error()})
		return nil, false
	}
	return data, true
}

func (b *Broker) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	query := strings.TrimSpace(string(body))
	if query == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty subscription query"})
		return
	}
	resp, err := b.Subscribe(r.PathValue("ch"), query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (b *Broker) handleReplace(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	query := strings.TrimSpace(string(body))
	if query == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty subscription query"})
		return
	}
	resp, err := b.Replace(r.PathValue("ch"), r.PathValue("id"), query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (b *Broker) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	if err := b.Unsubscribe(r.PathValue("ch"), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (b *Broker) handlePublish(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	wait := !boolParam(r.URL.Query().Get("async"), r.URL.Query().Has("async"))
	resp, err := b.Publish(r.Context(), r.PathValue("ch"), data, wait)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if resp.Queued {
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

// handleResults streams the subscription's deliveries as NDJSON until the
// subscription ends (unsubscribe or shutdown — the stream finishes with an
// "end" line) or the client disconnects. Deliveries that are ready together
// are flushed together.
//
// With `?from=C&seen=K` (durable brokers) the stream opens with a WAL
// replay: documents C..tip re-evaluated through the live QuerySet, the
// first K results of document C skipped, then a seamless handoff to live
// deliveries — everything the replay covered is filtered out of the ring,
// so the resumed stream carries no duplicate and misses nothing.
func (b *Broker) handleResults(w http.ResponseWriter, r *http.Request) {
	sub, err := b.subscription(r.PathValue("ch"), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	resume := q.Has("from")
	var from, seen int64
	var plan replayPlan
	if resume {
		if from, err = cursorParam(q.Get("from")); err == nil && q.Has("seen") {
			seen, err = cursorParam(q.Get("seen"))
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad resume token: " + err.Error()})
			return
		}
	}
	if !sub.attached.CompareAndSwap(false, true) {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: "subscription already has an attached consumer"})
		return
	}
	defer sub.attached.Store(false)
	if resume {
		// Plan after winning the attach race so no concurrent consumer can
		// drain ring entries out from under the replay boundary.
		if plan, err = sub.ch.replayPlan(sub); err != nil {
			writeError(w, err)
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	_ = rc.Flush() // commit headers so clients see the stream open

	ctx := r.Context()
	var skipTo int64 // ring deliveries wholly at or below this cursor were replayed
	var held *Delivery
	if resume {
		held, err = sub.ch.replay(ctx, sub, plan, from, seen, func(d Delivery) error {
			if encErr := enc.Encode(d); encErr != nil {
				return encErr
			}
			return rc.Flush()
		})
		if err != nil {
			return // consumer gone mid-replay; ring stays live for another try
		}
		skipTo = plan.tip
	}
	deliver := func(d Delivery) (ok bool) {
		if d.DocSeq != 0 && deliveryEnd(d) <= skipTo {
			d.retireTrace()
			return true // superseded by the replay
		}
		if d.tr == nil {
			ok = enc.Encode(d) == nil
			if ok && !d.pubAt.IsZero() {
				sub.ch.pubDeliver.Observe(time.Since(d.pubAt))
			}
			return ok
		}
		// Traced delivery: deliver_wait ran from its ring entry to this
		// dequeue; wire_write covers encode plus an immediate flush (batching
		// it with neighbors would hide the flush cost from the trace).
		d.tr.AddStage(obs.StageDeliverWait, time.Duration(d.tr.SinceStartNs()-d.ringAt))
		wireStart := time.Now()
		ok = enc.Encode(d) == nil
		if ok {
			ok = rc.Flush() == nil
		}
		d.tr.AddStage(obs.StageWireWrite, time.Since(wireStart))
		d.tr.MarkEnd()
		if ok && !d.pubAt.IsZero() {
			sub.ch.pubDeliver.Observe(time.Since(d.pubAt))
		}
		d.retireTrace()
		return ok
	}
	if held != nil {
		if !deliver(*held) {
			return
		}
		if flushErr := rc.Flush(); flushErr != nil {
			return
		}
	}
	for {
		d, ok, err := sub.ring.next(ctx)
		if err != nil {
			return // client gone; the ring stays live for a reconnect
		}
		if !ok {
			_ = enc.Encode(Delivery{Type: DeliveryEnd})
			_ = rc.Flush()
			return
		}
		if !deliver(d) {
			return
		}
		for {
			more, okMore := sub.ring.tryNext()
			if !okMore {
				break
			}
			if !deliver(more) {
				return
			}
		}
		if flushErr := rc.Flush(); flushErr != nil {
			return
		}
	}
}

// cursorParam parses a non-negative cursor-valued query parameter.
func cursorParam(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative cursor %d", v)
	}
	return v, nil
}

func (b *Broker) handleDeleteChannel(w http.ResponseWriter, r *http.Request) {
	if err := b.DeleteChannel(r.PathValue("ch")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleMetrics answers in JSON by default (MetricsResponse; map keys are
// emitted sorted, so the body is deterministic for a given state) and in
// Prometheus text exposition format when asked — either explicitly with
// ?format=prometheus|json, or by Accept negotiation (text/plain or
// application/openmetrics-text ahead of application/json).
func (b *Broker) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prom := false
	switch r.URL.Query().Get("format") {
	case "prometheus":
		prom = true
	case "json", "":
		prom = r.URL.Query().Get("format") == "" && acceptsPrometheus(r.Header.Get("Accept"))
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "unknown format (want json or prometheus)"})
		return
	}
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writePrometheus(w, b)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(b.Metrics())
}

// acceptsPrometheus reports whether the Accept header asks for the text
// exposition format ahead of JSON. First listed wins — enough fidelity for
// scrapers (which send text/plain or openmetrics first) without a full
// q-value parser; bare curl (*/*) and absent headers stay on JSON.
func acceptsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		switch strings.TrimSpace(strings.SplitN(part, ";", 2)[0]) {
		case "text/plain", "application/openmetrics-text":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// handleTraces serves the tracer's in-memory ring of finished stage traces,
// newest first. With sampling off it answers enabled=false and an empty
// list rather than 404, so probers need no config knowledge.
func (b *Broker) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := b.Tracer()
	recs := tr.Recent()
	if recs == nil {
		recs = []obs.Record{}
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool         `json:"enabled"`
		Emitted int64        `json:"emitted"`
		Traces  []obs.Record `json:"traces"`
	}{tr != nil, tr.Emitted(), recs})
}

// boolParam interprets a query-string flag: absent -> false, bare or
// unparsable -> true (presence is the signal), otherwise its boolean value
// — so ?async=0 and ?async=false select the synchronous path.
func boolParam(value string, present bool) bool {
	if !present {
		return false
	}
	if value == "" {
		return true
	}
	v, err := strconv.ParseBool(value)
	if err != nil {
		return true
	}
	return v
}
