package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// feedDoc builds a document with n <trade> entries matching //trade/price.
func feedDoc(n int) []byte {
	var sb strings.Builder
	sb.WriteString("<feed>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<trade><symbol>ACME</symbol><price>%d</price></trade>", i)
	}
	sb.WriteString("</feed>")
	return []byte(sb.String())
}

// drainSub consumes a subscription's ring until end-of-stream, returning
// the deliveries.
func drainSub(t *testing.T, sub *subscription) []Delivery {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []Delivery
	for {
		d, ok, err := sub.ring.next(ctx)
		if err != nil {
			t.Fatalf("drain timed out after %d deliveries", len(out))
		}
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

// TestPublishDeliversMatches: the basic path — subscribe, publish, results
// land in the ring tagged with the document number.
func TestPublishDeliversMatches(t *testing.T) {
	b := New(Config{})
	resp, err := b.Subscribe("ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := b.Publish(context.Background(), "ticker", feedDoc(5), true)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Results != 5 || pub.DocSeq != 1 {
		t.Fatalf("publish = %+v, want 5 results on doc 1", pub)
	}
	sub, err := b.subscription("ticker", resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ds := drainSub(t, sub)
	if len(ds) != 5 {
		t.Fatalf("got %d deliveries, want 5", len(ds))
	}
	for i, d := range ds {
		if d.Type != DeliveryResult || d.DocSeq != 1 || d.Seq != int64(i) {
			t.Fatalf("delivery %d = %+v", i, d)
		}
		if want := fmt.Sprintf("<price>%d</price>", i); d.Value != want {
			t.Fatalf("delivery %d value = %q, want %q", i, d.Value, want)
		}
	}
}

// TestMalformedDocument: the publisher gets a structured error naming the
// consumed document number; every subscriber gets a gap marker for that
// same document — an aborted evaluation must never be a silent stall.
func TestMalformedDocument(t *testing.T) {
	b := New(Config{})
	r1, err := b.Subscribe("ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Subscribe("ticker", "//nothing/here")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(context.Background(), "ticker", feedDoc(3), true); err != nil {
		t.Fatal(err)
	}
	_, err = b.Publish(context.Background(), "ticker",
		[]byte("<feed><trade><price>1</price></trade><broken"), true)
	var pe *publishError
	if !errors.As(err, &pe) {
		t.Fatalf("publish of malformed XML: err = %v, want *publishError", err)
	}
	if pe.seq != 2 {
		t.Fatalf("failed doc seq = %d, want 2", pe.seq)
	}
	// A later well-formed document still evaluates normally.
	if pub, err := b.Publish(context.Background(), "ticker", feedDoc(2), true); err != nil || pub.Results != 2 {
		t.Fatalf("publish after failure = %+v, %v", pub, err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{r1.ID, r2.ID} {
		sub, err := b.subscription("ticker", id)
		if err != nil {
			t.Fatal(err)
		}
		ds := drainSub(t, sub)
		var gaps []Delivery
		for _, d := range ds {
			if d.Type == DeliveryGap {
				gaps = append(gaps, d)
			}
		}
		if len(gaps) != 1 || gaps[0].DocSeq != 2 {
			t.Fatalf("sub %s: gaps = %+v, want one gap for doc 2", id, gaps)
		}
		if !strings.Contains(gaps[0].Reason, "document aborted") {
			t.Fatalf("sub %s: gap reason = %q", id, gaps[0].Reason)
		}
	}
	m := b.Metrics()
	cm := m.Channels["ticker"]
	if cm.DocsFailed != 1 || cm.DocsIn != 3 {
		t.Fatalf("channel metrics = %+v, want 3 docs in / 1 failed", cm)
	}
}

// TestSlowConsumerDrop: with PolicyDrop and a tiny ring, an unread
// subscription loses results across an explicit gap marker counting the
// coalesced losses — and the channel never stalls.
func TestSlowConsumerDrop(t *testing.T) {
	b := New(Config{RingSize: 4, Policy: PolicyDrop})
	resp, err := b.Subscribe("ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	// 20 results into a 4-slot ring with no consumer: 4 buffered, the rest
	// coalesce into one pending gap delivered at end-of-stream.
	pub, err := b.Publish(context.Background(), "ticker", feedDoc(20), true)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Results >= 20 {
		t.Fatalf("publish claims %d deliveries; ring holds 4", pub.Results)
	}
	sub, err := b.subscription("ticker", resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ds := drainSub(t, sub)
	var results, droppedTotal int64
	var sawGap bool
	for _, d := range ds {
		switch d.Type {
		case DeliveryResult:
			results++
		case DeliveryGap:
			sawGap = true
			droppedTotal += d.Dropped
		}
	}
	if !sawGap {
		t.Fatalf("no gap marker in %+v", ds)
	}
	if results+droppedTotal != 20 {
		t.Fatalf("results %d + dropped %d != 20", results, droppedTotal)
	}
}

// TestSlowConsumerBlock: with PolicyBlock a slow consumer loses nothing —
// the evaluation waits for ring space.
func TestSlowConsumerBlock(t *testing.T) {
	b := New(Config{RingSize: 2, Policy: PolicyBlock})
	resp, err := b.Subscribe("ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.subscription("ticker", resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	const matches = 50
	var got []Delivery
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for {
			d, ok, err := sub.ring.next(ctx)
			if err != nil || !ok {
				return
			}
			got = append(got, d)
			time.Sleep(100 * time.Microsecond) // slower than the producer
		}
	}()
	pub, err := b.Publish(context.Background(), "ticker", feedDoc(matches), true)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Results != matches {
		t.Fatalf("publish delivered %d, want %d", pub.Results, matches)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rg.Wait()
	if len(got) != matches {
		t.Fatalf("consumer got %d deliveries, want %d", len(got), matches)
	}
	for i, d := range got {
		if d.Type != DeliveryResult || d.Seq != int64(i) {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}
}

// TestGracefulDrainDeliversEverything: documents queued asynchronously are
// all evaluated and delivered by Shutdown — the drain guarantee.
func TestGracefulDrainDeliversEverything(t *testing.T) {
	b := New(Config{RingSize: 4096})
	resp, err := b.Subscribe("ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	const docs, perDoc = 20, 7
	for i := 0; i < docs; i++ {
		if _, err := b.Publish(context.Background(), "ticker", feedDoc(perDoc), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	sub, err := b.subscription("ticker", resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	ds := drainSub(t, sub)
	if len(ds) != docs*perDoc {
		t.Fatalf("drained %d deliveries, want %d", len(ds), docs*perDoc)
	}
	// Per-document ordering: doc_seq ascending, seq restarting per doc.
	for i, d := range ds {
		wantDoc := int64(i/perDoc + 1)
		wantSeq := int64(i % perDoc)
		if d.DocSeq != wantDoc || d.Seq != wantSeq {
			t.Fatalf("delivery %d = doc %d seq %d, want doc %d seq %d", i, d.DocSeq, d.Seq, wantDoc, wantSeq)
		}
	}
	// Publishing after shutdown fails cleanly.
	if _, err := b.Publish(context.Background(), "ticker", feedDoc(1), true); !errors.Is(err, ErrShutdown) {
		t.Fatalf("publish after shutdown: err = %v, want ErrShutdown", err)
	}
}

// TestShutdownDeadlineCancelsInFlight: a shutdown whose context expires
// force-cancels in-flight evaluations instead of waiting forever on a
// blocked ring.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	b := New(Config{RingSize: 1, Policy: PolicyBlock})
	if _, err := b.Subscribe("ticker", "//trade/price"); err != nil {
		t.Fatal(err)
	}
	// No consumer: the evaluation blocks after the first result.
	if _, err := b.Publish(context.Background(), "ticker", feedDoc(100), false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := b.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v; force-cancel did not unblock the drain", elapsed)
	}
}

// TestConcurrentChurnAndTraffic: subscriptions churn (add, remove, replace)
// from several goroutines while publishers keep documents in flight on two
// channels. Exercised under -race in CI; the invariant checked here is that
// every delivery a surviving subscription received is well-formed and its
// doc numbers are non-decreasing (per-channel evaluation is ordered).
func TestConcurrentChurnAndTraffic(t *testing.T) {
	b := New(Config{RingSize: 4096, Workers: 4})
	channels := []string{"alpha", "beta"}
	queries := []string{
		"//trade/price",
		"//trade[symbol='ACME']/price",
		"//trade/symbol/text()",
		"//feed//price",
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Publishers run under a cancelable context: nothing consumes the
	// churned subscriptions' rings, so once one fills, block-policy
	// back-pressure (correctly) stalls evaluation and with it synchronous
	// publishes — on a fast enough run the test would hang at wg.Wait
	// without the cancel.
	pubCtx, cancelPubs := context.WithCancel(context.Background())
	defer cancelPubs()

	// Publishers: steady documents on both channels.
	for _, ch := range channels {
		wg.Add(1)
		go func(ch string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := b.Publish(pubCtx, ch, feedDoc(3), true)
				if err != nil && !errors.Is(err, ErrShutdown) && !errors.Is(err, ErrQueueFull) &&
					!errors.Is(err, context.Canceled) {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(ch)
	}

	// Churners: subscribe, maybe replace, maybe unsubscribe, repeat.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				ch := channels[rng.Intn(len(channels))]
				resp, err := b.Subscribe(ch, queries[rng.Intn(len(queries))])
				if err != nil {
					if errors.Is(err, ErrShutdown) {
						return
					}
					t.Errorf("subscribe: %v", err)
					return
				}
				if rng.Intn(2) == 0 {
					if _, err := b.Replace(ch, resp.ID, queries[rng.Intn(len(queries))]); err != nil && !errors.Is(err, ErrShutdown) {
						t.Errorf("replace: %v", err)
						return
					}
				}
				if rng.Intn(3) > 0 {
					if err := b.Unsubscribe(ch, resp.ID); err != nil && !errors.Is(err, ErrShutdown) {
						t.Errorf("unsubscribe: %v", err)
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	cancelPubs()
	// Wait for churners and publishers BEFORE shutdown so late subscribes
	// aren't racing it (they'd get ErrShutdown, which is also fine).
	wg.Wait()
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Surviving subscriptions: deliveries well-formed, doc numbers
	// non-decreasing, seq dense per document.
	m := b.Metrics()
	for _, ch := range channels {
		c, err := b.channelFor(ch, false)
		if err != nil {
			t.Fatal(err)
		}
		c.mu.Lock()
		subs := append([]*subscription(nil), c.subs...)
		c.mu.Unlock()
		for _, sub := range subs {
			ds := drainSub(t, sub)
			lastDoc, lastSeq := int64(0), int64(-1)
			for _, d := range ds {
				if d.Type != DeliveryResult {
					continue
				}
				if d.DocSeq < lastDoc {
					t.Fatalf("sub %s: doc %d after doc %d", sub.id, d.DocSeq, lastDoc)
				}
				if d.DocSeq > lastDoc {
					lastDoc, lastSeq = d.DocSeq, -1
				}
				if d.Seq != lastSeq+1 {
					t.Fatalf("sub %s: doc %d seq %d after seq %d", sub.id, d.DocSeq, d.Seq, lastSeq)
				}
				lastSeq = d.Seq
			}
		}
	}
	if m.Totals.DocsIn == 0 {
		t.Fatal("no documents made it through the churn run")
	}
}

// TestShutdownWaitsForDeletedChannelDrain: a graceful Shutdown right after
// DeleteChannel still lets the deleted channel's queued documents evaluate
// and deliver — deletion must not demote them to force-canceled.
func TestShutdownWaitsForDeletedChannelDrain(t *testing.T) {
	b := New(Config{RingSize: 4096})
	resp, err := b.Subscribe("doomed", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.subscription("doomed", resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	const docs, perDoc = 8, 5
	for i := 0; i < docs; i++ {
		if _, err := b.Publish(context.Background(), "doomed", feedDoc(perDoc), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DeleteChannel("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ds := drainSub(t, sub)
	var results int
	for _, d := range ds {
		if d.Type == DeliveryGap {
			t.Fatalf("queued doc aborted across delete+shutdown: %+v", d)
		}
		if d.Type == DeliveryResult {
			results++
		}
	}
	if results != docs*perDoc {
		t.Fatalf("drained %d results, want %d", results, docs*perDoc)
	}
}

// TestUnsubscribeMidFlight: removing a subscription while a document is
// evaluating neither aborts the document nor strands the other
// subscribers.
func TestUnsubscribeMidFlight(t *testing.T) {
	b := New(Config{RingSize: 1, Policy: PolicyBlock})
	victim, err := b.Subscribe("ticker", "//trade/price")
	if err != nil {
		t.Fatal(err)
	}
	keeper, err := b.Subscribe("ticker", "//trade/symbol/text()")
	if err != nil {
		t.Fatal(err)
	}
	// The victim has no consumer and a 1-slot ring: the evaluation blocks
	// on its second result until the unsubscribe closes the ring.
	done := make(chan error, 1)
	go func() {
		_, err := b.Publish(context.Background(), "ticker", feedDoc(10), true)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := b.Unsubscribe("ticker", victim.ID); err != nil {
		t.Fatal(err)
	}
	// The keeper is also blocked (ring of 1); drain it.
	ksub, err := b.subscription("ticker", keeper.ID)
	if err != nil {
		t.Fatal(err)
	}
	var kept int
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for kept < 10 {
		d, ok, nerr := ksub.ring.next(ctx)
		if nerr != nil || !ok {
			t.Fatalf("keeper drain ended early after %d (ok=%v err=%v)", kept, ok, nerr)
		}
		if d.Type == DeliveryResult {
			kept++
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("publish aborted by mid-flight unsubscribe: %v", err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
