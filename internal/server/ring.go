package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Policy selects what a channel's evaluation worker does when a
// subscription's result ring is full — the slow-consumer policy.
type Policy int

const (
	// PolicyBlock applies back-pressure: the evaluation (and therefore the
	// whole channel's ingest queue) waits until the consumer frees ring
	// space. Nothing is ever lost, at the price of one slow subscriber
	// throttling the channel. Cancellation of the document's context (a
	// disconnected publisher, broker shutdown past its drain deadline)
	// unblocks the wait.
	PolicyBlock Policy = iota
	// PolicyDrop sheds load: the incoming delivery is discarded and the
	// consumer receives a gap marker — counting the coalesced losses — in
	// its place as soon as the ring has space again. The channel never
	// stalls on a slow subscriber.
	PolicyDrop
)

// ParsePolicy maps the wire/flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "block":
		return PolicyBlock, nil
	case "drop":
		return PolicyDrop, nil
	}
	return 0, fmt.Errorf("server: unknown slow-consumer policy %q (want block or drop)", s)
}

func (p Policy) String() string {
	if p == PolicyDrop {
		return "drop"
	}
	return "block"
}

// errSubClosed reports a push to a subscription whose ring was closed by
// Unsubscribe or broker shutdown. It never aborts a document evaluation —
// the worker skips the dead subscription and keeps serving the others.
var errSubClosed = errors.New("server: subscription closed")

// subRing is the bounded delivery buffer between a channel's evaluation
// worker and one subscription's (possibly absent, possibly slow) consumer.
// The buffer is a Go channel so full-ring waits compose with context
// cancellation and subscription close in one select.
//
// Concurrency contract: exactly one goroutine pushes at a time (a channel
// evaluates one document at a time, in arrival order), at most one consumer
// reads (the HTTP layer enforces single attachment), and close may come
// from anywhere. The mutex-free fields are owned by the pusher; the drop
// accounting is atomic because the consumer's end-of-stream drain reads it.
//
//vitex:counters
type subRing struct {
	ch       chan Delivery
	closedCh chan struct{}
	policy   Policy //vitex:plain set at construction, read-only afterwards

	closed atomic.Bool
	// dropped/dropFrom/dropSeq accumulate a pending slow-consumer gap:
	// results discarded since the last delivered marker, and the document
	// cursor range [dropFrom, dropSeq] the losses span — the range a
	// consumer needs to heal the gap by WAL replay. Written by the pusher;
	// drained by the consumer only after close.
	dropped  atomic.Int64
	dropFrom atomic.Int64
	dropSeq  atomic.Int64
	// gaps counts gap markers actually delivered (channel-level metric).
	gaps *atomic.Int64
}

func newSubRing(size int, policy Policy, gaps *atomic.Int64) *subRing {
	if size < 1 {
		size = 1
	}
	return &subRing{
		ch:       make(chan Delivery, size),
		closedCh: make(chan struct{}),
		policy:   policy,
		gaps:     gaps,
	}
}

// pendingGap renders the accumulated slow-consumer losses as a marker
// carrying the cursor range they span, so a consumer can resume from
// FromCursor to heal the hole from the channel's WAL.
func (r *subRing) pendingGap() Delivery {
	return Delivery{
		Type:       DeliveryGap,
		DocSeq:     r.dropSeq.Load(),
		Dropped:    r.dropped.Load(),
		FromCursor: r.dropFrom.Load(),
		ToCursor:   r.dropSeq.Load(),
		Reason:     GapSlowConsumer,
	}
}

// clearPending resets the accumulated-loss accounting after a pending gap
// marker made it into the buffer.
func (r *subRing) clearPending() {
	r.dropped.Store(0)
	r.dropFrom.Store(0)
}

// isClosed reports whether the subscription ended (unsubscribe/shutdown).
func (r *subRing) isClosed() bool { return r.closed.Load() }

// place is the one point deliveries enter the buffer (non-blocking); it
// keeps the gap metric honest.
func (r *subRing) place(d Delivery) bool {
	select {
	case r.ch <- d:
		if d.Type == DeliveryGap && r.gaps != nil {
			r.gaps.Add(1)
		}
		return true
	default:
		return false
	}
}

// push delivers d, honoring the slow-consumer policy. delivered reports
// whether d itself was buffered — false when PolicyDrop folded it into a
// pending gap marker. err is errSubClosed when the subscription is gone, or
// ctx.Err() when a blocked push was canceled. A pending gap marker is
// always flushed into the buffer before anything newer, so consumers
// observe losses in stream position.
func (r *subRing) push(ctx context.Context, d Delivery) (delivered bool, err error) {
	for r.dropped.Load() > 0 {
		if r.closed.Load() {
			return false, errSubClosed
		}
		if r.place(r.pendingGap()) {
			r.clearPending()
			break
		}
		if r.policy == PolicyDrop {
			r.drop(d)
			return false, nil
		}
		if err := r.send(ctx, r.pendingGap()); err != nil {
			return false, err
		}
		r.clearPending()
	}
	if r.closed.Load() {
		return false, errSubClosed
	}
	if r.place(d) {
		return true, nil
	}
	if r.policy == PolicyDrop {
		r.drop(d)
		return false, nil
	}
	if err := r.send(ctx, d); err != nil {
		return false, err
	}
	return true, nil
}

// pushGap best-effort delivers an aborted-document gap marker. It blocks
// like a normal delivery while the document's context is alive; when the
// context is already dead (cancellation was the abort cause) the marker is
// folded into the pending-gap accounting instead, so the loss stays visible
// on the stream even if its specific reason is coalesced away.
func (r *subRing) pushGap(ctx context.Context, d Delivery) {
	if _, err := r.push(ctx, d); err != nil && !errors.Is(err, errSubClosed) {
		r.drop(d)
	}
}

// drop folds d into the pending gap, widening its cursor range.
func (r *subRing) drop(d Delivery) {
	r.dropped.Add(1)
	if d.DocSeq > 0 {
		r.dropFrom.CompareAndSwap(0, d.DocSeq)
		r.dropSeq.Store(d.DocSeq)
	}
}

// send is the blocking (PolicyBlock) delivery: it waits for ring space, and
// composes the wait with subscription close and context cancellation. The
// race between a winning send and a concurrent close is benign — the ring's
// channel is never closed, and consumers drain buffered deliveries after
// observing close.
func (r *subRing) send(ctx context.Context, d Delivery) error {
	select {
	case r.ch <- d:
		if d.Type == DeliveryGap && r.gaps != nil {
			r.gaps.Add(1)
		}
		return nil
	case <-r.closedCh:
		return errSubClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeRing marks the subscription dead and wakes blocked pushers and the
// consumer. Buffered deliveries remain readable; the consumer drains them,
// then any pending gap, then sees end-of-stream.
func (r *subRing) closeRing() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.closedCh)
	}
}

// next blocks for the subscription's next delivery. ok=false means the
// subscription closed and everything buffered (including a final pending
// gap marker) has been delivered. err is non-nil only for ctx cancellation
// (the consumer going away, not the subscription).
func (r *subRing) next(ctx context.Context) (d Delivery, ok bool, err error) {
	// Buffered deliveries win over close: a closed ring drains fully.
	select {
	case d = <-r.ch:
		return d, true, nil
	default:
	}
	select {
	case d = <-r.ch:
		return d, true, nil
	case <-r.closedCh:
		select {
		case d = <-r.ch:
			return d, true, nil
		default:
		}
		if r.dropped.Load() > 0 {
			d = r.pendingGap()
			r.clearPending()
			if r.gaps != nil {
				r.gaps.Add(1)
			}
			return d, true, nil
		}
		return Delivery{}, false, nil
	case <-ctx.Done():
		return Delivery{}, false, ctx.Err()
	}
}

// tryNext returns an immediately-available delivery, if any. The HTTP layer
// uses it to batch NDJSON flushes: drain what is ready, then flush once.
func (r *subRing) tryNext() (Delivery, bool) {
	select {
	case d := <-r.ch:
		return d, true
	default:
		return Delivery{}, false
	}
}
