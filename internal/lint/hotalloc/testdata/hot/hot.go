// Package hot is a hotalloc fixture modeled on the scanner/machine inner
// loops.
package hot

import "fmt"

type event struct {
	name  string
	depth int
}

type machine struct {
	stack    []event
	interned map[string]int32
	sink     func(event) error
	err      error
}

type handler interface {
	handle(ev *event) error
}

// step is the per-event hot path: every allocating construct in it must be
// flagged.
//
//vitex:hotpath
func (m *machine) step(ev *event, h handler) {
	bad := map[string]int{} // want `map literal allocates`
	list := []int{1, 2}     // want `slice literal allocates`
	ptr := &event{}         // want `heap-allocated composite literal`
	fn := func() int {      // want `closure literal allocates`
		return 1
	}
	buf := make([]byte, 64) // want `make allocates`
	pe := new(event)        // want `new allocates`
	go m.flush()            // want `go statement allocates`
	fmt.Println(ev.name)    // want `fmt\.Println call allocates` `passing string as interface parameter boxes it`
	s := string(buf)        // want `to string conversion allocates`
	b := []byte(ev.name)    // want `string to \[\]byte/\[\]rune conversion allocates`
	r := string(rune(65))   // want `integer to string conversion allocates`
	m.box(*ev)              // want `passing hot\.event as interface parameter boxes it`
	_ = any(ev.depth)       // want `conversion to interface boxes int`
	_, _, _, _, _, _, _, _ = bad, list, ptr, fn, pe, s, b, r
}

// scan is a clean hot path: struct composites, append, map-index reads via
// string(b), comparisons, and pointer arguments allocate nothing.
//
//vitex:hotpath
func (m *machine) scan(name []byte, depth int, h handler) error {
	ev := event{name: "", depth: depth}
	m.stack = append(m.stack, ev)
	if id, ok := m.interned[string(name)]; ok {
		ev.depth = int(id)
	}
	if string(name) == "root" {
		ev.depth = 0
	}
	if h != nil {
		if err := h.handle(&ev); err != nil {
			return err
		}
	}
	return m.err
}

// flush is not marked: the same constructs are fine here.
func (m *machine) flush() {
	t := map[string]int{}
	_ = t
	fmt.Println("cold path")
}

func (m *machine) box(v any) { m.err = nil; _ = v }
