// Package hotalloc keeps the per-event hot paths allocation-free. The
// steady-state benchmark result this reproduction defends (a fixed ~210
// allocations per document at 100 queries, all front-loaded in session
// setup) only holds while the code running per XML event never allocates;
// one fmt call or escaping closure in the scanner inner loop turns into
// millions of allocations per gigabyte of input.
//
// Functions marked //vitex:hotpath may not contain:
//
//   - map- or slice-typed composite literals, or &T{...} of any type
//   - function literals (closures)
//   - make or new of any type, or go statements
//   - string <-> []byte/[]rune conversions, or integer -> string
//     conversions, EXCEPT string(b) used directly as a map index or
//     compared with == / !=, which the compiler optimizes to not allocate
//   - calls to the fmt package
//   - interface boxing at call sites: passing a concrete non-pointer-shaped
//     value (struct, string, slice, int, ...) as an interface parameter
//
// Value-struct and array composite literals, append, and numeric
// conversions stay legal: they do not allocate. Cold paths called FROM a
// hot function (error constructors, arena refills) are simply left
// unmarked — the annotation is a per-function contract, and reviewers
// decide where the hot region ends.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the hotalloc analysis.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "reports allocating constructs inside //vitex:hotpath functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	m := pass.Markers()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil || !m.Has(obj, "hotpath") {
				continue
			}
			w := &walker{pass: pass}
			ast.Walk(w, fd.Body)
		}
	}
	return nil
}

// walker visits a hot function body keeping a parent stack, so conversions
// can see the expression they feed into.
type walker struct {
	pass  *lint.Pass
	stack []ast.Node
}

func (w *walker) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		w.stack = w.stack[:len(w.stack)-1]
		return nil
	}
	if !w.check(n) {
		// Returning nil prunes the subtree; ast.Walk then skips the
		// matching Visit(nil), so nothing is pushed here.
		return nil
	}
	w.stack = append(w.stack, n)
	return w
}

func (w *walker) parent() ast.Node {
	if len(w.stack) == 0 {
		return nil
	}
	return w.stack[len(w.stack)-1]
}

// check reports allocating constructs at n and returns whether the walk
// should descend into n's children.
func (w *walker) check(n ast.Node) bool {
	switch e := n.(type) {
	case *ast.FuncLit:
		w.pass.Reportf(e.Pos(), "closure literal allocates in //vitex:hotpath function")
		return false
	case *ast.GoStmt:
		w.pass.Reportf(e.Pos(), "go statement allocates in //vitex:hotpath function")
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := e.X.(*ast.CompositeLit); ok {
				w.pass.Reportf(cl.Pos(), "heap-allocated composite literal (&%s{...}) in //vitex:hotpath function", typeName(w.pass, cl))
				return false
			}
		}
	case *ast.CompositeLit:
		switch w.pass.Info.TypeOf(e).Underlying().(type) {
		case *types.Map:
			w.pass.Reportf(e.Pos(), "map literal allocates in //vitex:hotpath function")
			return false
		case *types.Slice:
			w.pass.Reportf(e.Pos(), "slice literal allocates in //vitex:hotpath function")
			return false
		}
	case *ast.CallExpr:
		return w.checkCall(e)
	}
	return true
}

func (w *walker) checkCall(call *ast.CallExpr) bool {
	info := w.pass.Info
	switch fun := peel(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make allocates in //vitex:hotpath function")
			case "new":
				w.pass.Reportf(call.Pos(), "new allocates in //vitex:hotpath function")
			}
			return true
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				w.pass.Reportf(call.Pos(), "fmt.%s call allocates in //vitex:hotpath function", fun.Sel.Name)
				// Fall through: its arguments may additionally box.
			}
		}
	}

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		w.checkConversion(call, tv.Type)
		return true
	}

	w.checkBoxing(call)
	return true
}

// checkConversion flags string<->bytes/runes and integer->string
// conversions, honoring the map-index and string-comparison exemptions.
func (w *walker) checkConversion(call *ast.CallExpr, dst types.Type) {
	src := w.pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	switch {
	case isString(du) && isByteOrRuneSlice(su):
		if w.conversionExempt(call) {
			return
		}
		w.pass.Reportf(call.Pos(), "[]byte/[]rune to string conversion allocates in //vitex:hotpath function")
	case isByteOrRuneSlice(du) && isString(su):
		w.pass.Reportf(call.Pos(), "string to []byte/[]rune conversion allocates in //vitex:hotpath function")
	case isString(du) && isInteger(su):
		w.pass.Reportf(call.Pos(), "integer to string conversion allocates in //vitex:hotpath function")
	default:
		// Conversion to an interface type boxes the operand.
		if types.IsInterface(du) && !types.IsInterface(su) && !pointerShaped(su) {
			w.pass.Reportf(call.Pos(), "conversion to interface boxes %s in //vitex:hotpath function", src)
		}
	}
}

// conversionExempt reports whether the string(b) conversion feeds a context
// the compiler optimizes without allocating: a map index read or an
// equality comparison.
func (w *walker) conversionExempt(call *ast.CallExpr) bool {
	switch p := w.parent().(type) {
	case *ast.IndexExpr:
		if p.Index != call {
			return false
		}
		_, isMap := w.pass.Info.TypeOf(p.X).Underlying().(*types.Map)
		return isMap
	case *ast.BinaryExpr:
		return p.Op == token.EQL || p.Op == token.NEQ
	}
	return false
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters.
func (w *walker) checkBoxing(call *ast.CallExpr) {
	info := w.pass.Info
	ft := info.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed as-is, nothing boxes
			}
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isTP := at.(*types.TypeParam); isTP || pointerShaped(at.Underlying()) {
			continue
		}
		w.pass.Reportf(arg.Pos(), "passing %s as interface parameter boxes it in //vitex:hotpath function", at)
	}
}

func typeName(pass *lint.Pass, cl *ast.CompositeLit) string {
	if t := pass.Info.TypeOf(cl); t != nil {
		if tn, _ := lint.NamedStruct(t); tn != nil {
			return tn.Name()
		}
		return t.String()
	}
	return "T"
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInteger(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of underlying type u fit in one
// pointer word, so converting them to an interface does not allocate.
func pointerShaped(u types.Type) bool {
	switch b := u.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func peel(expr ast.Expr) ast.Expr {
	for {
		p, ok := expr.(*ast.ParenExpr)
		if !ok {
			return expr
		}
		expr = p.X
	}
}
