// Package pool is a resetcomplete fixture modeled on the engine's pooled
// session types.
package pool

import (
	"sync"
	"sync/atomic"
)

var sessions = sync.Pool{}

// session is auto-detected as pooled via the Get type assertion below.
// Its reset forgets the handler field: the next stream Got from the pool
// would deliver to the previous stream's consumer.
type session struct {
	id      int
	events  int
	runs    []*run
	handler func() error
	abort   atomic.Bool
	scratch []byte //vitex:keep reused append arena, length reset via runs loop
}

type run struct {
	count int
	live  bool
}

func (r *run) reset() {
	r.count = 0
	r.live = false
}

func (s *session) reset() { // want `session\.reset does not reset field handler`
	s.id = 0
	s.events = 0
	for _, r := range s.runs {
		r.reset()
	}
	s.abort.Store(false)
}

func get() *session {
	s, _ := sessions.Get().(*session)
	return s
}

// worker is marked pooled and resets everything: no reports.
//
//vitex:pooled
type worker struct {
	in    chan int
	done  bool
	stats [4]int64
	sub   run
}

func (w *worker) Reset() {
	w.in = nil
	w.done = false
	w.clearStats()
	w.sub.reset()
}

func (w *worker) clearStats() {
	for i := range w.stats {
		w.stats[i] = 0
	}
}

// batch zeroes the whole receiver, covering every field at once.
//
//vitex:pooled
type batch struct {
	buf  []byte
	next *batch
}

func (b *batch) Reset() {
	*b = batch{}
}

// orphan is pooled but has no Reset at all.
//
//vitex:pooled
type orphan struct { // want `pooled type orphan has no Reset method`
	leak int
}
