// Package resetcomplete kills the stale-pooled-field bug class: a type that
// goes back into a sync.Pool (or the engine's session pools) must have a
// Reset method that assigns or clears every field, or the next Get observes
// state from an unrelated stream. The analyzer diffs the struct's field set
// against the set of fields Reset demonstrably touches.
//
// Pooled types are those marked //vitex:pooled plus any struct pulled out of
// a sync.Pool via a Get type assertion in the package. A field counts as
// reset when the Reset method (or any same-receiver method it calls,
// transitively) assigns it, ++/--s it, ranges over it, calls Store on it, or
// calls a method whose name contains "reset" or "clear" on it (directly or
// on an indexed element). Assigning the whole receiver (*r = T{}) covers
// every field. Fields that deliberately survive pooling — retained arenas,
// interning caches, monotonic clocks — opt out with //vitex:keep and a
// justification.
package resetcomplete

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the resetcomplete analysis.
var Analyzer = &lint.Analyzer{
	Name: "resetcomplete",
	Doc:  "reports pooled types whose Reset method leaves fields carrying a previous stream's state",
	Run:  run,
}

func run(pass *lint.Pass) error {
	m := pass.Markers()
	pooled := make(map[*types.TypeName]bool)

	// Marked types.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok && m.Has(obj, "pooled") {
					pooled[obj] = true
				}
			}
		}
	}

	// Types pulled out of a sync.Pool: pool.Get().(*T).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil {
				return true
			}
			call, ok := ta.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Get" || !lint.IsNamed(pass.Info.TypeOf(sel.X), "sync", "Pool") {
				return true
			}
			if tn, st := lint.NamedStruct(pass.Info.TypeOf(ta.Type)); tn != nil && st != nil && tn.Pkg() == pass.Pkg {
				pooled[tn] = true
			}
			return true
		})
	}

	methods := indexMethods(pass)
	for tn := range pooled {
		checkType(pass, m, methods, tn)
	}
	return nil
}

// indexMethods maps every named type in the package to its declared methods.
func indexMethods(pass *lint.Pass) map[*types.TypeName]map[string]*ast.FuncDecl {
	idx := make(map[*types.TypeName]map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tn, _ := lint.NamedStruct(pass.Info.TypeOf(fd.Recv.List[0].Type))
			if tn == nil {
				continue
			}
			if idx[tn] == nil {
				idx[tn] = make(map[string]*ast.FuncDecl)
			}
			idx[tn][fd.Name.Name] = fd
		}
	}
	return idx
}

func checkType(pass *lint.Pass, m *lint.Markers, methods map[*types.TypeName]map[string]*ast.FuncDecl, tn *types.TypeName) {
	_, st := lint.NamedStruct(tn.Type())
	if st == nil {
		return
	}
	var reset *ast.FuncDecl
	for _, name := range []string{"Reset", "reset"} {
		if fd := methods[tn][name]; fd != nil {
			reset = fd
			break
		}
	}
	if reset == nil {
		pass.Reportf(tn.Pos(), "pooled type %s has no Reset method", tn.Name())
		return
	}

	c := &coverage{pass: pass, methods: methods[tn], covered: make(map[string]bool), seen: make(map[*ast.FuncDecl]bool)}
	c.method(reset)
	if c.all {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if c.covered[f.Name()] || m.Has(f, "keep") {
			continue
		}
		pass.Reportf(reset.Name.Pos(), "%s.%s does not reset field %s (pooled type; mark //vitex:keep to opt out)", tn.Name(), reset.Name.Name, f.Name())
	}
}

// coverage accumulates the set of receiver fields a Reset method touches,
// following calls to sibling methods on the same receiver.
type coverage struct {
	pass    *lint.Pass
	methods map[string]*ast.FuncDecl
	covered map[string]bool
	seen    map[*ast.FuncDecl]bool
	all     bool
}

func (c *coverage) method(fd *ast.FuncDecl) {
	if c.seen[fd] || fd.Body == nil {
		return
	}
	c.seen[fd] = true
	recv := receiverObj(c.pass, fd)
	if recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if star, ok := lhs.(*ast.StarExpr); ok && c.isRecv(recv, star.X) {
					c.all = true
					continue
				}
				if f := c.fieldOnRecv(recv, lhs); f != "" {
					c.covered[f] = true
				}
			}
		case *ast.IncDecStmt:
			if f := c.fieldOnRecv(recv, s.X); f != "" {
				c.covered[f] = true
			}
		case *ast.RangeStmt:
			if f := c.fieldOnRecv(recv, s.X); f != "" {
				c.covered[f] = true
			}
		case *ast.CallExpr:
			sel, ok := s.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// r.sibling(...): union the sibling's coverage.
			if c.isRecv(recv, sel.X) {
				if next := c.methods[sel.Sel.Name]; next != nil {
					c.method(next)
				}
				return true
			}
			// r.f.Reset(...), r.f.Store(...), r.f[i].clear(...), ...
			if !resetLike(sel.Sel.Name) {
				return true
			}
			if f := c.fieldOnRecv(recv, sel.X); f != "" {
				c.covered[f] = true
			}
		}
		return true
	})
}

// fieldOnRecv returns the field name when expr is recv.f, recv.f[i], or a
// parenthesization thereof; deeper selections (recv.f.g) do not count as
// resetting f.
func (c *coverage) fieldOnRecv(recv types.Object, expr ast.Expr) string {
	expr = peel(expr)
	if ix, ok := expr.(*ast.IndexExpr); ok {
		expr = peel(ix.X)
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || !c.isRecv(recv, sel.X) {
		return ""
	}
	if f := lint.SelectedField(c.pass.Info, sel); f != nil {
		return f.Name()
	}
	return ""
}

func (c *coverage) isRecv(recv types.Object, expr ast.Expr) bool {
	id, ok := peel(expr).(*ast.Ident)
	return ok && c.pass.Info.Uses[id] == recv
}

func peel(expr ast.Expr) ast.Expr {
	for {
		p, ok := expr.(*ast.ParenExpr)
		if !ok {
			return expr
		}
		expr = p.X
	}
}

func receiverObj(pass *lint.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Info.Defs[fd.Recv.List[0].Names[0]]
}

func resetLike(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "reset") || strings.Contains(l, "clear") || name == "Store"
}
