package resetcomplete_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/resetcomplete"
)

func TestResetComplete(t *testing.T) {
	linttest.Run(t, resetcomplete.Analyzer, "testdata/pool")
}
