// Package linttest runs a lint.Analyzer over a fixture directory and checks
// its diagnostics against // want "regexp" expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture directory holds one package of ordinary Go files (kept under
// testdata/ so the go tool never builds them). A line that should be flagged
// carries a trailing comment:
//
//	e.seq++ // want `write to field`
//
// Multiple expectations on one line are written as successive quoted
// regexps: // want "first" "second". Every diagnostic must match an
// expectation on its line and every expectation must be matched, or the test
// fails.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads the fixture package in dir, applies a, and diffs the
// diagnostics against the fixture's // want expectations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				imports[path] = true
			}
		}
	}

	var importPaths []string
	for p := range imports {
		importPaths = append(importPaths, p)
	}
	sort.Strings(importPaths)
	exports, err := lint.ExportData(dir, importPaths)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	tpkg, info, err := lint.TypeCheck(files[0].Name.Name, fset, files, lint.NewImporter(fset, exports), "")
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}

	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      tpkg,
		Info:     info,
		Report:   func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, pos.Column, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				i := strings.Index(c.Text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRE.FindAllString(c.Text[i+len("want "):], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
