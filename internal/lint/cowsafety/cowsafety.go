// Package cowsafety enforces the copy-on-write discipline of the epoch
// engine: once a struct marked //vitex:cow is published (an epoch swapped
// into the engine's atomic pointer, a Trie shared by live runs), it must
// never be written again — readers hold snapshots with no locks, so any
// in-place write is a data race. Mutation is only legal inside the small,
// audited set of builder/clone functions marked //vitex:cowmut, which by
// convention operate on private copies before publication.
//
// The analyzer reports every assignment, compound assignment, or ++/--
// whose target is (or passes through) a field of a //vitex:cow struct when
// the enclosing function is not marked //vitex:cowmut. Constructing a fresh
// value with a composite literal is always allowed. The check is
// single-package: every cow type in this repository has only unexported
// fields, so cross-package writes are compile errors already.
package cowsafety

import (
	"go/ast"
	"go/token"

	"repro/internal/lint"
)

// Analyzer is the cowsafety analysis.
var Analyzer = &lint.Analyzer{
	Name: "cowsafety",
	Doc:  "reports writes to fields of //vitex:cow structs outside //vitex:cowmut functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	m := pass.Markers()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil && m.Has(obj, "cowmut") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					if s.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range s.Lhs {
						checkWrite(pass, m, lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, m, s.X)
				}
				return true
			})
		}
	}
	return nil
}

// checkWrite walks the written expression toward its base, reporting the
// first selection of a field belonging to a //vitex:cow struct. Walking the
// whole path catches indirect writes such as ep.progs[slot] = nil and
// t.nodes[id].refs++, both of which mutate cow-owned state.
func checkWrite(pass *lint.Pass, m *lint.Markers, expr ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if fld := lint.SelectedField(pass.Info, e); fld != nil {
				owner, _ := lint.NamedStruct(pass.Info.TypeOf(e.X))
				if owner != nil && m.Has(owner, "cow") {
					pass.Reportf(e.Sel.Pos(), "write to field %s.%s of copy-on-write type outside a //vitex:cowmut function", owner.Name(), fld.Name())
					return
				}
			}
			expr = e.X
		default:
			return
		}
	}
}
