package cowsafety_test

import (
	"testing"

	"repro/internal/lint/cowsafety"
	"repro/internal/lint/linttest"
)

func TestCowSafety(t *testing.T) {
	linttest.Run(t, cowsafety.Analyzer, "testdata/cow")
}
