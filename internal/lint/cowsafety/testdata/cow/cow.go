// Package cow is a cowsafety fixture modeled on the engine's epoch type:
// a published copy-on-write snapshot that only annotated builders may touch.
package cow

// epoch is the published snapshot.
//
//vitex:cow
type epoch struct {
	seq   uint64
	progs []*prog
	subs  [][]int32
	tr    *trie
}

// trie is a shared structure reachable from published epochs.
//
//vitex:cow
type trie struct {
	nodes []node
	live  int
}

// node elements are mutated in place by trie builders, so the element type
// itself is copy-on-write.
//
//vitex:cow
type node struct {
	refs int32
}

type prog struct{ id int }

// plain is an ordinary mutable struct; writes to it are never reported.
type plain struct {
	count int
	tab   []int
}

// clone is an audited builder: it may mutate the private copy it returns.
//
//vitex:cowmut
func (e *epoch) clone() *epoch {
	next := &epoch{seq: e.seq + 1}
	next.progs = append(next.progs, e.progs...)
	next.subs = make([][]int32, len(e.subs))
	return next
}

// subscribe is an audited mutator.
//
//vitex:cowmut
func (e *epoch) subscribe(p *prog, slot int) {
	e.progs[slot] = p
	e.seq++
}

// graft mutates the trie through element pointers; legal because annotated.
//
//vitex:cowmut
func graft(t *trie, id int) {
	t.nodes[id].refs++
	t.live++
}

// leakWrite mutates a published epoch outside any builder: every write path
// must be flagged, including writes through index expressions.
func leakWrite(e *epoch, p *prog) {
	e.seq = 9            // want `write to field epoch\.seq of copy-on-write type`
	e.progs[0] = p       // want `write to field epoch\.progs of copy-on-write type`
	e.seq++              // want `write to field epoch\.seq of copy-on-write type`
	e.subs[1] = nil      // want `write to field epoch\.subs of copy-on-write type`
	e.tr.nodes[2].refs-- // want `write to field node\.refs of copy-on-write type`
	e.tr.live += 1       // want `write to field trie\.live of copy-on-write type`
}

// okReads only reads published state and builds fresh values; no reports.
func okReads(e *epoch, pl *plain) *epoch {
	pl.count++
	pl.tab = append(pl.tab, e.tr.live)
	if len(e.progs) > 0 {
		pl.count = e.progs[0].id
	}
	local := &epoch{seq: e.seq}
	return local
}
