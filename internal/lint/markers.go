package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MarkerPrefix introduces an annotation comment. Annotations use Go's
// directive-comment syntax (no space after //), so godoc hides them:
//
//	//vitex:cow
//	//vitex:guardedby=mu
//	//vitex:keep arena block is recycled deliberately
//
// The first token after the colon is the marker name; an optional =value
// runs to the first whitespace; everything after a space is free-text
// justification, which the analyzers ignore but humans should write.
const MarkerPrefix = "//vitex:"

// A Marker is one parsed //vitex: annotation.
type Marker struct {
	Name  string
	Value string
}

// Markers indexes the //vitex: annotations of a package by the declared
// object (type, func, or struct field) they document.
type Markers struct {
	byObj map[types.Object][]Marker
}

// Has reports whether obj carries the named marker.
func (m *Markers) Has(obj types.Object, name string) bool {
	_, ok := m.Value(obj, name)
	return ok
}

// Value returns the =value of the named marker on obj, and whether the
// marker is present at all.
func (m *Markers) Value(obj types.Object, name string) (string, bool) {
	if m == nil || obj == nil {
		return "", false
	}
	for _, mk := range m.byObj[obj] {
		if mk.Name == name {
			return mk.Value, true
		}
	}
	return "", false
}

// CollectMarkers parses the //vitex: annotations of the given files,
// binding each to the type, function, or struct field whose doc (or trailing
// line comment) carries it.
func CollectMarkers(files []*ast.File, info *types.Info) *Markers {
	m := &Markers{byObj: make(map[types.Object][]Marker)}
	add := func(obj types.Object, groups ...*ast.CommentGroup) {
		if obj == nil {
			return
		}
		for _, g := range groups {
			m.byObj[obj] = append(m.byObj[obj], parseGroup(g)...)
		}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				add(info.Defs[d.Name], d.Doc)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					add(info.Defs[ts.Name], doc, ts.Comment)
					st, ok := ts.Type.(*ast.StructType)
					if !ok || st.Fields == nil {
						continue
					}
					for _, fld := range st.Fields.List {
						for _, nm := range fld.Names {
							add(info.Defs[nm], fld.Doc, fld.Comment)
						}
					}
				}
			}
		}
	}
	return m
}

func parseGroup(g *ast.CommentGroup) []Marker {
	if g == nil {
		return nil
	}
	var out []Marker
	for _, c := range g.List {
		rest, ok := strings.CutPrefix(c.Text, MarkerPrefix)
		if !ok {
			continue
		}
		// Strip free-text justification after the first space.
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			rest = rest[:i]
		}
		name, value, _ := strings.Cut(rest, "=")
		if name != "" {
			out = append(out, Marker{Name: name, Value: value})
		}
	}
	return out
}
