// Package lint is a small, dependency-free analysis framework in the shape
// of golang.org/x/tools/go/analysis, carrying the four vitexlint analyzers
// that machine-check this repository's core invariants (copy-on-write
// epochs, pool hygiene, allocation-free hot paths, counter synchronization).
//
// The build environment for this repository has no module proxy access, so
// the real x/tools framework cannot be vendored; this package mirrors its
// Analyzer/Pass/Diagnostic surface closely enough that the analyzers are a
// mechanical import-swap away from running under the upstream driver.
// Analyzers are single-package by design: every invariant they check binds a
// //vitex: annotation to declarations in the same package, and the guarded
// state is unexported, so cross-package violations are already compile
// errors.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer with a single type-checked package and a sink
// for its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)

	markers *Markers
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Markers returns the //vitex: annotations of the package, collected lazily
// and shared by all analyzers running over the same Pass data.
func (p *Pass) Markers() *Markers {
	if p.markers == nil {
		p.markers = CollectMarkers(p.Files, p.Info)
	}
	return p.markers
}

// NamedStruct peels pointers and aliases from t and, when the result is a
// named struct type, returns its TypeName and underlying struct.
func NamedStruct(t types.Type) (*types.TypeName, *types.Struct) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(u)
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named.Obj(), st
}

// IsNamed reports whether t (after peeling one level of pointer) is the
// named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// SelectedField resolves a selector expression to the struct field it
// selects, or nil when it selects a method, package member, or nothing.
func SelectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
