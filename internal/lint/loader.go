package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// LoadPackages loads the packages matching patterns (relative to dir),
// type-checking them from source against their dependencies' export data.
// It shells out to `go list -export -deps -json`, which resolves entirely
// from the local build cache — no network, no module proxy.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// ExportData resolves import paths to export-data files by shelling out to
// `go list -export -deps -json` in dir. Used by the fixture harness, whose
// packages live outside the module's package graph.
func ExportData(dir string, importPaths []string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter returns a gc-export-data importer backed by the given
// import-path → export-file map.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// TypeCheck parses nothing; it type-checks already-parsed files as package
// pkgPath using imp, returning the checked package and filled Info.
func TypeCheck(pkgPath string, fset *token.FileSet, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: langVersion(goVersion),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// langVersion trims a toolchain version like "go1.24.5" to the language
// version "go1.24" accepted by types.Config.GoVersion.
func langVersion(v string) string {
	if v == "" {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tpkg, info, err := TypeCheck(p.ImportPath, fset, files, imp, "")
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
	}
	return &Package{PkgPath: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
