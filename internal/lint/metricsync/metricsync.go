// Package metricsync keeps the engine's observability counters honest under
// concurrency: every counter read by Metrics() races with live streams and
// churn unless it is an atomic or consistently guarded by a lock. A struct
// marked //vitex:counters promises that each of its integer- or bool-kinded
// fields is one of:
//
//   - a sync/atomic type (atomic.Int64, atomic.Bool, ...), or a pointer to
//     one — always safe;
//   - marked //vitex:guardedby=<mutexField> — then every syntactic access
//     to the field must occur in a function that calls <mutexField>.Lock()
//     or .RLock() (on any receiver), or is itself marked //vitex:locked
//     (callee of a locked region);
//   - marked //vitex:plain with a justification — immutable configuration
//     set before the struct is shared.
//
// Anything else is reported at the field declaration. The guarded-access
// check is syntactic and per-function: it proves the author thought about
// the lock, not that the lock is held on every path — the -race CI job
// covers the dynamic half.
package metricsync

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the metricsync analysis.
var Analyzer = &lint.Analyzer{
	Name: "metricsync",
	Doc:  "reports counter fields of //vitex:counters structs that are neither atomic nor lock-guarded",
	Run:  run,
}

func run(pass *lint.Pass) error {
	m := pass.Markers()
	// guarded maps each //vitex:guardedby field to its mutex field name.
	guarded := make(map[*types.Var]string)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || !m.Has(obj, "counters") {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, nm := range fld.Names {
						fobj, ok := pass.Info.Defs[nm].(*types.Var)
						if !ok {
							continue
						}
						checkField(pass, m, obj, fobj, guarded)
					}
				}
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAccesses(pass, m, fd, guarded)
		}
	}
	return nil
}

func checkField(pass *lint.Pass, m *lint.Markers, owner *types.TypeName, f *types.Var, guarded map[*types.Var]string) {
	if isAtomic(f.Type()) || !isCounterKind(f.Type()) || m.Has(f, "plain") {
		return
	}
	if mu, ok := m.Value(f, "guardedby"); ok && mu != "" {
		guarded[f] = mu
		return
	}
	pass.Reportf(f.Pos(), "counter field %s.%s must be atomic, //vitex:guardedby=<mutex>, or //vitex:plain", owner.Name(), f.Name())
}

// checkAccesses reports selections of guarded fields from functions that
// neither lock the guarding mutex nor are marked //vitex:locked.
func checkAccesses(pass *lint.Pass, m *lint.Markers, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	if obj := pass.Info.Defs[fd.Name]; obj != nil && m.Has(obj, "locked") {
		return
	}
	locks := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
			locks[muSel.Sel.Name] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := lint.SelectedField(pass.Info, sel)
		if f == nil {
			return true
		}
		mu, ok := guarded[f]
		if !ok || locks[mu] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "access to %s (//vitex:guardedby=%s) in a function that does not lock %s and is not //vitex:locked", f.Name(), mu, mu)
		return true
	})
}

func isAtomic(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isCounterKind reports whether t is integer- or bool-kinded after peeling
// named types: the shapes a counter or flag field can take.
func isCounterKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Info()&types.IsInteger != 0 || b.Info()&types.IsBoolean != 0)
}
