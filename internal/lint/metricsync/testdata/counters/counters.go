// Package counters is a metricsync fixture modeled on the engine's and the
// server channel's metrics structs.
package counters

import (
	"sync"
	"sync/atomic"
)

// stats mixes every legal counter shape with one unsynchronized field.
//
//vitex:counters
type stats struct {
	mu        sync.Mutex
	events    atomic.Int64
	started   atomic.Bool
	gaps      *atomic.Int64
	nextSeq   int64 //vitex:guardedby=mu
	attached  bool  //vitex:guardedby=mu
	shards    int   //vitex:plain set once at construction
	racy      int64 // want `counter field stats\.racy must be atomic`
	name      string
	callbacks []func()
}

// bump locks the guarding mutex before touching guarded fields: clean.
func (s *stats) bump() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	s.attached = true
	return s.nextSeq
}

// snapshotLocked is a callee of a locked region.
//
//vitex:locked
func (s *stats) snapshotLocked() (int64, bool) {
	return s.nextSeq, s.attached
}

// leak reads a guarded field without the lock: both accesses are reports.
func (s *stats) leak() int64 {
	if s.attached { // want `access to attached \(//vitex:guardedby=mu\)`
		return 0
	}
	return s.nextSeq // want `access to nextSeq \(//vitex:guardedby=mu\)`
}

// reader uses RLock, which counts as holding the guard.
type guarded struct {
	mu sync.RWMutex
}

func (s *stats) reader(g *guarded) int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

func (s *stats) atomics() int64 {
	s.events.Add(1)
	s.started.Store(true)
	if s.gaps != nil {
		return s.gaps.Load()
	}
	return s.events.Load()
}
