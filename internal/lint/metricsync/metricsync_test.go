package metricsync_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/metricsync"
)

func TestMetricSync(t *testing.T) {
	linttest.Run(t, metricsync.Analyzer, "testdata/counters")
}
