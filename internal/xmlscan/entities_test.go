package xmlscan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sax"
)

func textOf(t *testing.T, doc string) (string, error) {
	t.Helper()
	var text strings.Builder
	err := NewScanner(strings.NewReader(doc)).Run(sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.Text {
			text.WriteString(ev.Text)
		}
		return nil
	}))
	return text.String(), err
}

func TestInternalEntityBasic(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY greet "hello">]><a>&greet; world</a>`
	got, err := textOf(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestInternalEntityInAttribute(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY v "x&amp;y">]><a k="&v;"/>`
	var attr string
	err := NewScanner(strings.NewReader(doc)).Run(sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.StartElement {
			attr, _ = sax.GetAttr(ev.Attrs, "k")
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if attr != "x&y" {
		t.Fatalf("attr = %q", attr)
	}
}

func TestNestedEntities(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY inner "core"><!ENTITY outer "[&inner;]">]><a>&outer;</a>`
	got, err := textOf(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "[core]" {
		t.Fatalf("got %q", got)
	}
}

func TestEntityWithCharRefs(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY e "A&#66;&#x43;">]><a>&e;</a>`
	got, err := textOf(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "ABC" {
		t.Fatalf("got %q", got)
	}
}

func TestFirstDeclarationBinds(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY e "first"><!ENTITY e "second">]><a>&e;</a>`
	got, err := textOf(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "first" {
		t.Fatalf("got %q", got)
	}
}

func TestEntityMarkupRejected(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY e "<b/>">]><a>&e;</a>`
	_, err := textOf(t, doc)
	if err == nil || !strings.Contains(err.Error(), "markup") {
		t.Fatalf("err = %v", err)
	}
}

func TestBillionLaughsBlocked(t *testing.T) {
	// The classic exponential expansion: must fail fast with a typed
	// error, not consume gigabytes.
	var dtd strings.Builder
	dtd.WriteString(`<!DOCTYPE a [<!ENTITY l0 "ha">`)
	for i := 1; i <= 12; i++ {
		fmt.Fprintf(&dtd, `<!ENTITY l%d "&l%d;&l%d;&l%d;&l%d;&l%d;&l%d;&l%d;&l%d;&l%d;&l%d;">`,
			i, i-1, i-1, i-1, i-1, i-1, i-1, i-1, i-1, i-1, i-1)
	}
	dtd.WriteString(`]><a>&l12;</a>`)
	_, err := textOf(t, dtd.String())
	if err == nil {
		t.Fatal("billion laughs must be rejected")
	}
	if !strings.Contains(err.Error(), "expands beyond") && !strings.Contains(err.Error(), "nested more than") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecursiveEntityBlocked(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY e "&e;">]><a>&e;</a>`
	_, err := textOf(t, doc)
	if err == nil || !strings.Contains(err.Error(), "nested more than") {
		t.Fatalf("err = %v", err)
	}
}

func TestExternalEntitySkipped(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY ext SYSTEM "http://evil.example/x">]><a>&ext;</a>`
	_, err := textOf(t, doc)
	if err == nil || !strings.Contains(err.Error(), "unknown entity") {
		t.Fatalf("external entity must stay unresolved: %v", err)
	}
}

func TestParameterEntitySkipped(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY % pe "ignored"><!ENTITY real "ok">]><a>&real;</a>`
	got, err := textOf(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "ok" {
		t.Fatalf("got %q", got)
	}
}

func TestOtherDeclarationsStillSkipped(t *testing.T) {
	doc := `<!DOCTYPE a [
		<!ELEMENT a (#PCDATA)>
		<!ATTLIST a k CDATA #IMPLIED>
		<!ENTITY e "v">
		<!NOTATION n SYSTEM "x">
	]><a>&e;</a>`
	got, err := textOf(t, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "v" {
		t.Fatalf("got %q", got)
	}
}

func TestUnknownEntityStillFails(t *testing.T) {
	doc := `<!DOCTYPE a [<!ENTITY e "v">]><a>&nope;</a>`
	if _, err := textOf(t, doc); err == nil {
		t.Fatal("unknown entity must fail")
	}
}
