package xmlscan

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sax"
)

type nullSink struct{ n int64 }

func (c *nullSink) HandleEvent(ev *sax.Event) error { c.n++; return nil }
func (c *nullSink) HandleBatch(evs []sax.Event) error {
	c.n += int64(len(evs))
	return nil
}

func BenchmarkPureScanTicker(b *testing.B) {
	doc := datagen.Ticker{Trades: 20000, Seed: 1}.String()
	s := NewScanner(strings.NewReader(doc))
	sink := &nullSink{}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(strings.NewReader(doc))
		if err := s.Run(sink); err != nil {
			b.Fatal(err)
		}
	}
}
