package xmlscan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sax"
)

// These tests are deterministic fuzzers: they mutate well-formed documents
// and feed the wreckage to the scanner. The contract under test is "typed
// error or clean parse — never a panic, never an infinite loop".

func scanNoPanic(t *testing.T, doc string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("scanner panicked on %q: %v", doc, r)
		}
	}()
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	_ = NewScanner(strings.NewReader(doc)).Run(nop) // error or nil both fine
}

func TestMutatedDocumentsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := []string{
		datagen.PaperFigure1,
		`<a x="1"><b>text &amp; more</b><!--c--><![CDATA[raw]]><c/></a>`,
		`<?xml version="1.0"?><!DOCTYPE a [<!ENTITY e "x">]><a>&lt;</a>`,
	}
	mutations := 0
	for _, doc := range base {
		for i := 0; i < 500; i++ {
			b := []byte(doc)
			switch rng.Intn(4) {
			case 0: // flip a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			case 1: // delete a span
				at := rng.Intn(len(b))
				n := 1 + rng.Intn(10)
				if at+n > len(b) {
					n = len(b) - at
				}
				b = append(b[:at], b[at+n:]...)
			case 2: // duplicate a span
				at := rng.Intn(len(b))
				n := 1 + rng.Intn(10)
				if at+n > len(b) {
					n = len(b) - at
				}
				b = append(b[:at+n], b[at:]...)
			case 3: // truncate
				b = b[:rng.Intn(len(b))]
			}
			scanNoPanic(t, string(b))
			mutations++
		}
	}
	if mutations != 1500 {
		t.Fatalf("ran %d mutations", mutations)
	}
}

func TestRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		for j := range b {
			// Bias toward markup characters to reach deep scanner states.
			switch rng.Intn(4) {
			case 0:
				b[j] = "<>&;!?/='\"[]"[rng.Intn(12)]
			default:
				b[j] = byte(rng.Intn(128))
			}
		}
		scanNoPanic(t, string(b))
	}
}

// TestMutatedThroughFullPipeline pushes mutations through scanner + TwigM:
// errors must propagate, results must never be garbage on clean parses.
func TestMutatedThroughFullPipeline(t *testing.T) {
	// Import cycle avoidance: the pipeline variant lives in
	// internal/integration; here we just assert the scanner+DOM contract
	// that a clean parse yields balanced events.
	rng := rand.New(rand.NewSource(3))
	doc := datagen.PaperFigure1
	for i := 0; i < 300; i++ {
		b := []byte(doc)
		b[rng.Intn(len(b))] = byte(rng.Intn(256))
		depth := 0
		balanced := true
		h := sax.HandlerFunc(func(ev *sax.Event) error {
			switch ev.Kind {
			case sax.StartElement:
				if ev.Depth != depth+1 {
					balanced = false
				}
				depth++
			case sax.EndElement:
				if ev.Depth != depth {
					balanced = false
				}
				depth--
			}
			return nil
		})
		err := NewScanner(strings.NewReader(string(b))).Run(h)
		if err == nil && (!balanced || depth != 0) {
			t.Fatalf("clean parse with unbalanced events on %q", string(b))
		}
	}
}
