package xmlscan

import (
	"io"

	"repro/internal/sax"
)

// Puller is the pull-oriented view of the scanner: instead of pushing
// events into a sax.Handler, callers ask for the next event — the shape of
// encoding/xml's Token API. Internally it drives the same single-pass
// scanner one token at a time and queues the events each token produces
// (a self-closing tag yields two).
//
// Events returned by Next are valid until the following Next call: the
// Puller copies attribute slices out of the scanner's reuse buffer but
// recycles its own queue slots.
type Puller struct {
	s     *Scanner
	queue []sax.Event
	head  int
	done  bool
	err   error
}

// NewPuller returns a pull-based scanner over r.
func NewPuller(r io.Reader) *Puller {
	p := &Puller{s: NewScanner(r)}
	p.s.started = true // the Puller owns the run protocol
	p.queue = append(p.queue, sax.Event{Kind: sax.StartDocument})
	return p
}

// enqueue implements sax.Handler over the Puller's queue.
func (p *Puller) enqueue(ev *sax.Event) error {
	e := *ev
	if len(e.Attrs) > 0 {
		e.Attrs = append([]sax.Attr(nil), e.Attrs...)
	}
	p.queue = append(p.queue, e)
	return nil
}

// Next returns the next event, or io.EOF after EndDocument has been
// delivered. Malformed input returns a *SyntaxError (sticky).
func (p *Puller) Next() (*sax.Event, error) {
	if p.err != nil {
		return nil, p.err
	}
	for p.head >= len(p.queue) {
		p.queue = p.queue[:0]
		p.head = 0
		if p.done {
			p.err = io.EOF
			return nil, p.err
		}
		h := sax.HandlerFunc(p.enqueue)
		stepDone, err := p.s.step(h)
		if err != nil {
			p.err = err
			return nil, err
		}
		if stepDone {
			// Mirror Run's end-of-input validation.
			if len(p.s.stack) > 0 {
				p.err = p.s.syntaxf(p.s.off, "unexpected EOF: %d element(s) still open, innermost <%s>",
					len(p.s.stack), p.s.stack[len(p.s.stack)-1].name)
				return nil, p.err
			}
			if !p.s.seenRoot {
				p.err = p.s.syntaxf(p.s.off, "document has no root element")
				return nil, p.err
			}
			if rerr := p.s.pendingErr(); rerr != nil {
				p.err = rerr
				return nil, p.err
			}
			p.queue = append(p.queue, sax.Event{Kind: sax.EndDocument, Offset: p.s.off})
			p.done = true
		}
	}
	ev := &p.queue[p.head]
	p.head++
	return ev, nil
}
