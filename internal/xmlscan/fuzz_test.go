package xmlscan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sax"
)

// FuzzScannerVsStdXML is the native fuzz target differencing the custom
// scanner against encoding/xml: on any input, either both front-ends reject,
// or both accept and produce identical event streams (kind, names, depths,
// text, attributes, offsets). Run the long campaign locally with
//
//	go test -fuzz=FuzzScannerVsStdXML -fuzztime=10m ./internal/xmlscan
//
// CI runs a short smoke (~30s). The seed corpus is the edge-case document
// set of the permanent parser-differential harness.
//
// Two documented differences are outside the oracle's scope (see README
// "XML conformance"):
//
//   - DOCTYPE declarations: the scanner parses internal subsets (collecting
//     <!ENTITY ...> declarations for expansion and validating what it
//     implements), while encoding/xml skips every directive unparsed and
//     has no hook to learn declared entities — both acceptance and entity
//     expansion legitimately differ. Gated on the "<!DOCTYPE"/"<!ENTITY"
//     byte patterns.
//   - Documented strictness: the scanner enforces well-formedness rules
//     encoding/xml skips (today: duplicate attributes, XML 1.0 §3.1
//     uniqueness). A scanner rejection for one of those reasons counts as
//     agreement even when encoding/xml accepts.
func FuzzScannerVsStdXML(f *testing.F) {
	for _, doc := range fuzzSeedDocs() {
		f.Add(doc)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		compareFrontEnds(t, doc)
	})
}

// fuzzSeedDocs is the seed corpus: the edge-case documents the differential
// harness pinned plus shapes that have historically diverged between
// parsers.
func fuzzSeedDocs() []string {
	deep := strings.Repeat("<a k='1'>", 40) + "x" + strings.Repeat("</a>", 40)
	return []string{
		`<r><a>x</a><b>y</b></r>`,
		`<r xmlns:p='u'><p:a>x</p:a><a>y</a></r>`,
		`<r xmlns:p='u'><a p:k='1' k='2'>x</a></r>`,
		`<r xmlns='u'><a>x</a><a>y</a></r>`,
		`<r xmlns:p='u'><p:a><b xmlns:q='v'><q:c>z</q:c></b></p:a></r>`,
		"\xEF\xBB\xBF<r><a>1</a><a>2</a></r>",
		"\xEF\xBB\xBF<?xml version=\"1.0\"?><r><a>1</a></r>",
		`<r><a>one<![CDATA[ & two <raw> ]]>three</a></r>`,
		`<r><a k="x&amp;y&#65;&quot;" j='&lt;&gt;'>v</a></r>`,
		`<r><a>one<!-- c -->two</a></r>`,
		`<r><a>one<?pi data?>two</a></r>`,
		`<r><a k='1'/><a></a><a/></r>`,
		"<r>" + deep + "</r>",
		`<?xml version="1.0" encoding="UTF-8"?><r><a>x</a></r>`,
		"<r>\n  <a>x</a>\n  <a>\ty\r\n</a>\n</r>",
		"<r>\r\n<a k='v\r\nw\rz'>one\r\ntwo\rthree</a>\r</r>",
		"<r><a><![CDATA[a\r\nb\rc]]>\r\nd</a></r>",
		"<r><a k='x&#13;y'>p&#13;q</a></r>",
		`<!DOCTYPE r><r><a>x</a></r>`,
		`<r><a>&#x10FFFF;&#xA0;</a></r>`,
		`<r><!-- -- --><a/></r>`,
		`<r><a>]]></a></r>`,
		"<r><élément>x</élément></r>",
		`<r health="100%"><a/></r>`,
		// Seam shapes: with the 16-byte-buffer self-consistency config every
		// one of these straddles refill boundaries mid-token — long names,
		// attribute values, CDATA/comment terminators and entity references
		// split across windows, the cases the speculative fast paths must
		// bail out of byte-identically.
		"<rrrrrrrrrrrrrrrrrrrrrrrr><aaaaaaaaaaaaaaaaaaa>x</aaaaaaaaaaaaaaaaaaa></rrrrrrrrrrrrrrrrrrrrrrrr>",
		`<r averyveryverylongattrname="a long value that spans several windows easily">x</r>`,
		`<r a="padpadpadpad&amp;padpadpadpad" b='second attribute value'>x</r>`,
		"<r><a>" + strings.Repeat("t", 13) + "<![CDATA[" + strings.Repeat("c", 13) + "]]>" + strings.Repeat("u", 13) + "</a></r>",
		"<r><a>before<!--" + strings.Repeat("-x", 9) + "-->after</a></r>",
		"<r><a>" + strings.Repeat("pad ", 4) + "&#x1F600;" + strings.Repeat(" pad", 4) + "</a></r>",
		"<r><a>] ]] ]]&gt; " + strings.Repeat("]x", 9) + "</a></r>",
		"<r><a   k  =  'spaced equals'   j='2'  >x</a  ></r>",
		"<r>" + strings.Repeat("<a/>", 9) + strings.Repeat("\n", 17) + "</r>",
		"<r><a>text<?pi " + strings.Repeat("d", 21) + "?>more</a></r>",
	}
}

// compareFrontEnds runs both parsers over doc and reports any divergence
// inside the oracle's scope. It also holds the scanner to self-consistency
// across its delivery and windowing configurations: batched and per-event
// delivery, default and tiny read buffers, must produce identical event
// streams and identical diagnostics. The tiny buffer (16 bytes) forces
// refill seams inside nearly every token, driving the speculative fast
// paths (fastStartTag, the end-tag compare, borrowed text runs) through
// their bail-to-general-path branches on every input.
func compareFrontEnds(t *testing.T, doc string) {
	t.Helper()
	custom, cerr := traceFuzzEvents(NewScanner(strings.NewReader(doc)))
	for _, cfg := range []struct {
		name    string
		batch   int
		bufSize int
	}{
		{"batch_default", DefaultEventBatch, 0},
		{"batch3_buf16", 3, 16},
		{"perevent_buf16", 0, 16},
	} {
		got, gerr := traceScannerEvents(doc, cfg.batch, cfg.bufSize)
		if (gerr == nil) != (cerr == nil) || (gerr != nil && gerr.Error() != cerr.Error()) {
			t.Fatalf("scanner config %s diverges on error:\ndefault: %v\n%s: %v\ndoc: %q",
				cfg.name, cerr, cfg.name, gerr, doc)
		}
		if gerr != nil {
			continue
		}
		if len(got) != len(custom) {
			t.Fatalf("scanner config %s event count diverges: %d vs %d\ndoc: %q", cfg.name, len(got), len(custom), doc)
		}
		for i := range got {
			if got[i] != custom[i] {
				t.Fatalf("scanner config %s event %d diverges:\ndefault: %s\n%s: %s\ndoc: %q",
					cfg.name, i, custom[i], cfg.name, got[i], doc)
			}
		}
	}
	if strings.Contains(doc, "<!DOCTYPE") || strings.Contains(doc, "<!ENTITY") {
		// The scanner parses DOCTYPE internals (entity declarations
		// included); encoding/xml skips them unparsed. Out of oracle
		// scope (the self-consistency checks above still ran).
		return
	}
	std, serr := traceFuzzEvents(sax.NewStdDriver(strings.NewReader(doc)))
	if cerr != nil && serr != nil {
		return // both reject: agreement
	}
	if cerr != nil && serr == nil && strings.Contains(cerr.Error(), "duplicate attribute") {
		return // documented strictness: encoding/xml skips the uniqueness check
	}
	if (cerr == nil) != (serr == nil) {
		t.Fatalf("acceptance diverges:\nxmlscan err:      %v\nencoding/xml err: %v\ndoc: %q", cerr, serr, doc)
	}
	if len(custom) != len(std) {
		t.Fatalf("event counts diverge: xmlscan %d, encoding/xml %d\nxmlscan:      %q\nencoding/xml: %q\ndoc: %q",
			len(custom), len(std), custom, std, doc)
	}
	for i := range custom {
		if custom[i] != std[i] {
			t.Fatalf("event %d diverges:\nxmlscan:      %s\nencoding/xml: %s\ndoc: %q", i, custom[i], std[i], doc)
		}
	}
}

// renderFuzzEvent renders one event into a comparable line: kind,
// full/prefix/local names, depth, text, offset, and each attribute's name
// and value. The rendering copies every string, so it is safe for batched
// events whose strings die when HandleBatch returns.
func renderFuzzEvent(ev *sax.Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v|%s|%s|%s|d%d|%q|@%d", ev.Kind, ev.Name, ev.Prefix, ev.Local, ev.Depth, ev.Text, ev.Offset)
	for i := range ev.Attrs {
		a := &ev.Attrs[i]
		fmt.Fprintf(&sb, "|%s/%s/%s=%q", a.Name, a.Prefix, a.Local, a.Value)
	}
	return sb.String()
}

// traceFuzzEvents renders a driver's per-event stream into comparable lines.
func traceFuzzEvents(d sax.Driver) ([]string, error) {
	var out []string
	err := d.Run(sax.HandlerFunc(func(ev *sax.Event) error {
		out = append(out, renderFuzzEvent(ev))
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// batchTracer renders events from either delivery contract; the scanner
// picks batched delivery when the batch limit is positive.
type batchTracer struct {
	out []string
}

func (b *batchTracer) HandleEvent(ev *sax.Event) error {
	b.out = append(b.out, renderFuzzEvent(ev))
	return nil
}

func (b *batchTracer) HandleBatch(evs []sax.Event) error {
	for i := range evs {
		b.out = append(b.out, renderFuzzEvent(&evs[i]))
	}
	return nil
}

// traceScannerEvents runs the scanner over doc in a specific configuration:
// batch is the event-batch size (0 = per-event delivery), bufSize a read
// buffer size override (0 = default). In-package access to the buffer is
// what lets the harness force refill seams inside tokens of ordinary test
// documents.
func traceScannerEvents(doc string, batch, bufSize int) ([]string, error) {
	s := NewScanner(strings.NewReader(doc))
	if bufSize > 0 {
		s.buf = make([]byte, bufSize)
	}
	s.SetEventBatch(batch)
	tr := &batchTracer{}
	if err := s.Run(tr); err != nil {
		return nil, err
	}
	return tr.out, nil
}

// TestFuzzSeedCorpusAgrees pins the seed corpus as a deterministic
// regression test: every seed must pass the fuzz property in plain `go
// test` runs too.
func TestFuzzSeedCorpusAgrees(t *testing.T) {
	for i, doc := range fuzzSeedDocs() {
		i, doc := i, doc
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			compareFrontEnds(t, doc)
		})
	}
}
