package xmlscan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sax"
)

// FuzzScannerVsStdXML is the native fuzz target differencing the custom
// scanner against encoding/xml: on any input, either both front-ends reject,
// or both accept and produce identical event streams (kind, names, depths,
// text, attributes, offsets). Run the long campaign locally with
//
//	go test -fuzz=FuzzScannerVsStdXML -fuzztime=10m ./internal/xmlscan
//
// CI runs a short smoke (~30s). The seed corpus is the edge-case document
// set of the permanent parser-differential harness.
//
// Two documented differences are outside the oracle's scope (see README
// "XML conformance"):
//
//   - DOCTYPE declarations: the scanner parses internal subsets (collecting
//     <!ENTITY ...> declarations for expansion and validating what it
//     implements), while encoding/xml skips every directive unparsed and
//     has no hook to learn declared entities — both acceptance and entity
//     expansion legitimately differ. Gated on the "<!DOCTYPE"/"<!ENTITY"
//     byte patterns.
//   - Documented strictness: the scanner enforces well-formedness rules
//     encoding/xml skips (today: duplicate attributes, XML 1.0 §3.1
//     uniqueness). A scanner rejection for one of those reasons counts as
//     agreement even when encoding/xml accepts.
func FuzzScannerVsStdXML(f *testing.F) {
	for _, doc := range fuzzSeedDocs() {
		f.Add(doc)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		compareFrontEnds(t, doc)
	})
}

// fuzzSeedDocs is the seed corpus: the edge-case documents the differential
// harness pinned plus shapes that have historically diverged between
// parsers.
func fuzzSeedDocs() []string {
	deep := strings.Repeat("<a k='1'>", 40) + "x" + strings.Repeat("</a>", 40)
	return []string{
		`<r><a>x</a><b>y</b></r>`,
		`<r xmlns:p='u'><p:a>x</p:a><a>y</a></r>`,
		`<r xmlns:p='u'><a p:k='1' k='2'>x</a></r>`,
		`<r xmlns='u'><a>x</a><a>y</a></r>`,
		`<r xmlns:p='u'><p:a><b xmlns:q='v'><q:c>z</q:c></b></p:a></r>`,
		"\xEF\xBB\xBF<r><a>1</a><a>2</a></r>",
		"\xEF\xBB\xBF<?xml version=\"1.0\"?><r><a>1</a></r>",
		`<r><a>one<![CDATA[ & two <raw> ]]>three</a></r>`,
		`<r><a k="x&amp;y&#65;&quot;" j='&lt;&gt;'>v</a></r>`,
		`<r><a>one<!-- c -->two</a></r>`,
		`<r><a>one<?pi data?>two</a></r>`,
		`<r><a k='1'/><a></a><a/></r>`,
		"<r>" + deep + "</r>",
		`<?xml version="1.0" encoding="UTF-8"?><r><a>x</a></r>`,
		"<r>\n  <a>x</a>\n  <a>\ty\r\n</a>\n</r>",
		"<r>\r\n<a k='v\r\nw\rz'>one\r\ntwo\rthree</a>\r</r>",
		"<r><a><![CDATA[a\r\nb\rc]]>\r\nd</a></r>",
		"<r><a k='x&#13;y'>p&#13;q</a></r>",
		`<!DOCTYPE r><r><a>x</a></r>`,
		`<r><a>&#x10FFFF;&#xA0;</a></r>`,
		`<r><!-- -- --><a/></r>`,
		`<r><a>]]></a></r>`,
		"<r><élément>x</élément></r>",
		`<r health="100%"><a/></r>`,
	}
}

// compareFrontEnds runs both parsers over doc and reports any divergence
// inside the oracle's scope.
func compareFrontEnds(t *testing.T, doc string) {
	t.Helper()
	if strings.Contains(doc, "<!DOCTYPE") || strings.Contains(doc, "<!ENTITY") {
		// The scanner parses DOCTYPE internals (entity declarations
		// included); encoding/xml skips them unparsed. Out of oracle
		// scope.
		return
	}
	custom, cerr := traceFuzzEvents(NewScanner(strings.NewReader(doc)))
	std, serr := traceFuzzEvents(sax.NewStdDriver(strings.NewReader(doc)))
	if cerr != nil && serr != nil {
		return // both reject: agreement
	}
	if cerr != nil && serr == nil && strings.Contains(cerr.Error(), "duplicate attribute") {
		return // documented strictness: encoding/xml skips the uniqueness check
	}
	if (cerr == nil) != (serr == nil) {
		t.Fatalf("acceptance diverges:\nxmlscan err:      %v\nencoding/xml err: %v\ndoc: %q", cerr, serr, doc)
	}
	if len(custom) != len(std) {
		t.Fatalf("event counts diverge: xmlscan %d, encoding/xml %d\nxmlscan:      %q\nencoding/xml: %q\ndoc: %q",
			len(custom), len(std), custom, std, doc)
	}
	for i := range custom {
		if custom[i] != std[i] {
			t.Fatalf("event %d diverges:\nxmlscan:      %s\nencoding/xml: %s\ndoc: %q", i, custom[i], std[i], doc)
		}
	}
}

// traceFuzzEvents renders a driver's event stream into comparable lines:
// kind, full/prefix/local names, depth, text, offset, and each attribute's
// name and value.
func traceFuzzEvents(d sax.Driver) ([]string, error) {
	var out []string
	err := d.Run(sax.HandlerFunc(func(ev *sax.Event) error {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%v|%s|%s|%s|d%d|%q|@%d", ev.Kind, ev.Name, ev.Prefix, ev.Local, ev.Depth, ev.Text, ev.Offset)
		for i := range ev.Attrs {
			a := &ev.Attrs[i]
			fmt.Fprintf(&sb, "|%s/%s/%s=%q", a.Name, a.Prefix, a.Local, a.Value)
		}
		out = append(out, sb.String())
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TestFuzzSeedCorpusAgrees pins the seed corpus as a deterministic
// regression test: every seed must pass the fuzz property in plain `go
// test` runs too.
func TestFuzzSeedCorpusAgrees(t *testing.T) {
	for i, doc := range fuzzSeedDocs() {
		i, doc := i, doc
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			compareFrontEnds(t, doc)
		})
	}
}
