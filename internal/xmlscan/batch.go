// Batched event delivery (sax.BatchHandler): instead of one HandleEvent
// interface call per event, the scanner accumulates events in a pooled array
// and hands the handler up to batchLimit of them per call. Character data
// and attribute values of batched events are not interned: they are
// unsafe.String views over a scanner-owned byte arena, valid only until
// HandleBatch returns (the sax.BatchHandler contract), after which the batch,
// its attribute backing array and the arena are truncated wholesale for
// reuse — the zero-copy window the events "borrow" from. Element names stay
// interned, stable strings: the routed engine dispatches on them across
// documents.
package xmlscan

import (
	"unsafe"

	"repro/internal/sax"
)

// DefaultEventBatch is the number of events delivered per HandleBatch call
// when batching is active. Sized so a batch (events + attrs + character
// data) stays within a typical L1 data cache: the handler re-reads the
// events the scanner just wrote.
const DefaultEventBatch = 128

// SetEventBatch overrides the batch size used when Run is given a
// sax.BatchHandler. n <= 0 disables batching: the scanner then falls back to
// per-event delivery (HandleEvent) with interned, stable strings even for a
// handler that implements sax.BatchHandler — the configuration A/B
// benchmarks and the batch-vs-per-event equivalence tests run.
func (s *Scanner) SetEventBatch(n int) {
	if n < 0 {
		n = 0
	}
	s.batchLimit = n
}

// arenaString copies b into the batch character-data arena and returns a
// string view of the copy without a string header allocation. The view stays
// valid until the arena is truncated at the next batch flush — growth is
// safe: append may move the arena, but views into the old backing keep it
// alive. Only called in batch mode.
//
//vitex:hotpath
func (s *Scanner) arenaString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	st := len(s.arena)
	s.arena = append(s.arena, b...)
	a := s.arena[st:]
	return unsafe.String(&a[0], len(a))
}

// batchSlot extends the batch by one event and returns the slot for the
// emitter to fill in place — the batch array is sized to batchLimit at Run
// setup and flushed before it fills, so the extension never reallocates and
// events are written exactly once. The slot still holds a previous batch's
// event; callers must store every field.
//
//vitex:hotpath
func (s *Scanner) batchSlot() *sax.Event {
	n := len(s.batch)
	s.batch = s.batch[:n+1]
	return &s.batch[n]
}

// batchQueued finishes queueing the event just written into a batch slot: an
// attribute slice still aliasing the scanner's per-tag scratch (which the
// next tag overwrites; the batch outlives it) is re-homed into the
// batch-owned backing array, and a full batch flushes inline. fastStartTag
// accumulates attributes in the backing array directly — its events arrive
// as the array's tail, detected by pointer identity, and are left in place.
//
//vitex:hotpath
func (s *Scanner) batchQueued(ev *sax.Event) error {
	if n := len(ev.Attrs); n > 0 {
		if bn := len(s.batchAttrs); bn < n || &ev.Attrs[0] != &s.batchAttrs[bn-n] {
			st := bn
			s.batchAttrs = append(s.batchAttrs, ev.Attrs...)
			ev.Attrs = s.batchAttrs[st:len(s.batchAttrs):len(s.batchAttrs)]
		}
	}
	if len(s.batch) >= s.batchLimit {
		return s.flushBatch()
	}
	return nil
}

// flushBatch delivers the queued events and recycles the arenas. After the
// handler returns, every Text/Attr.Value string handed out in this batch is
// dead per the sax.BatchHandler contract.
func (s *Scanner) flushBatch() error {
	if len(s.batch) == 0 {
		return nil
	}
	err := s.bh.HandleBatch(s.batch)
	s.batch = s.batch[:0]
	s.batchAttrs = s.batchAttrs[:0]
	s.arena = s.arena[:0]
	return err
}
