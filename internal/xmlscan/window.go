// Bulk content scanning: the scanner's fast paths classify whole buffered
// windows at once instead of dispatching per byte. A 256-entry class table
// drives short runs; windows of 8+ bytes go word-at-a-time (SWAR — "SIMD
// within a register"), so clean content costs one load, a couple of ALU ops
// and a branch per 8 bytes. "Clean" is context-dependent but always implies
// the byte is a valid XML Char as ASCII: the clean prefix a scan returns
// needs no further character validation, which is what lets the scanner fuse
// validation into the skip loop and drop the separate validateChars pass on
// runs without references.
package xmlscan

import "encoding/binary"

// Byte classes. Every byte that at least one content context must stop at
// gets a bit; a byte whose class intersects the context's stop mask ends the
// clean run and is resolved by the caller's slow path.
const (
	ccLT   = 1 << 0 // '<'
	ccAmp  = 1 << 1 // '&'
	ccCR   = 1 << 2 // '\r' (line-ending normalization)
	ccRB   = 1 << 3 // ']' (literal "]]>" detection)
	ccQuot = 1 << 4 // '"'
	ccApos = 1 << 5 // '\''
	ccHigh = 1 << 6 // >= 0x80: multi-byte UTF-8, needs rune validation
	ccBad  = 1 << 7 // control bytes the XML Char production forbids
)

// Per-context stop masks. The quote class of the active delimiter is OR'd
// into attrStop at runtime (the other quote is ordinary content).
const (
	textStop  = ccLT | ccAmp | ccCR | ccRB | ccHigh | ccBad
	cdataStop = ccCR | ccRB | ccHigh | ccBad
	attrStop  = ccLT | ccAmp | ccCR | ccHigh | ccBad
)

var contentClass [256]uint8

// nameByteTab mirrors isNameByte as a table so name scans classify with one
// load per byte.
var nameByteTab [256]bool

func init() {
	for c := 0; c < 0x20; c++ {
		if c != '\t' && c != '\n' && c != '\r' {
			contentClass[c] = ccBad
		}
	}
	contentClass['\r'] = ccCR
	contentClass['<'] = ccLT
	contentClass['&'] = ccAmp
	contentClass[']'] = ccRB
	contentClass['"'] = ccQuot
	contentClass['\''] = ccApos
	for c := 0x80; c < 0x100; c++ {
		contentClass[c] = ccHigh
	}
	for c := 0; c < 256; c++ {
		nameByteTab[c] = isNameByte(byte(c))
	}
}

// SWAR constants: swarOnes*c replicates byte c into every lane; a lane's
// high bit in ((v-swarOnes) &^ v) & swarHighs is set iff that lane of v is
// zero, the classic zero-byte detector.
const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// dirtyText reports whether any of the 8 bytes in x stops a character-data
// scan: '<' '&' ']' (stop bytes), anything below 0x20 (either a '\r' to
// normalize or an illegal control — '\t'/'\n' also land here and are
// re-cleared by the table loop), or anything >= 0x80 (UTF-8 lead or
// continuation byte, validated rune-at-a-time).
//
//vitex:hotpath
func dirtyText(x uint64) bool {
	lt := x ^ (swarOnes * '<')
	amp := x ^ (swarOnes * '&')
	rb := x ^ (swarOnes * ']')
	m := (lt-swarOnes)&^lt | (amp-swarOnes)&^amp | (rb-swarOnes)&^rb | (x-swarOnes*0x20)&^x | x
	return m&swarHighs != 0
}

// dirtyCDATA is dirtyText minus '<' and '&', which are ordinary content
// inside a CDATA section.
//
//vitex:hotpath
func dirtyCDATA(x uint64) bool {
	rb := x ^ (swarOnes * ']')
	m := (rb-swarOnes)&^rb | (x-swarOnes*0x20)&^x | x
	return m&swarHighs != 0
}

// dirtyAttr is the attribute-value variant: qpat is swarOnes*quote for the
// active delimiter; ']' is ordinary content here.
//
//vitex:hotpath
func dirtyAttr(x, qpat uint64) bool {
	lt := x ^ (swarOnes * '<')
	amp := x ^ (swarOnes * '&')
	qv := x ^ qpat
	m := (lt-swarOnes)&^lt | (amp-swarOnes)&^amp | (qv-swarOnes)&^qv | (x-swarOnes*0x20)&^x | x
	return m&swarHighs != 0
}

// cleanText returns the length of the longest prefix of w that is plain,
// already-valid character data — no markup, no references, no line endings
// to normalize, no bytes needing rune-level validation. Words that are dirty
// only because of '\t'/'\n' are cleared by the table loop and the word scan
// resumes, so pretty-printed documents stay on the bulk path.
//
//vitex:hotpath
func cleanText(w []byte) int {
	// Byte-wise head: markup-dense streams see runs of a few bytes before
	// the next '<', and w extends to the window end — resolve the first
	// word's worth with the table before paying any word-scan setup.
	head := len(w)
	if head > 8 {
		head = 8
	}
	i := 0
	for i < head {
		if contentClass[w[i]]&textStop != 0 {
			return i
		}
		i++
	}
	if i == len(w) {
		return i
	}
	for {
		for len(w)-i >= 8 {
			if dirtyText(binary.LittleEndian.Uint64(w[i:])) {
				break
			}
			i += 8
		}
		n := i + 8
		if n > len(w) {
			n = len(w)
		}
		j := i
		for j < n && contentClass[w[j]]&textStop == 0 {
			j++
		}
		if j < n || n == len(w) {
			return j
		}
		i = n
	}
}

// cleanCDATA is cleanText for CDATA content: only ']' and the
// normalization/validation classes stop the run.
//
//vitex:hotpath
func cleanCDATA(w []byte) int {
	i := 0
	for {
		for len(w)-i >= 8 {
			if dirtyCDATA(binary.LittleEndian.Uint64(w[i:])) {
				break
			}
			i += 8
		}
		n := i + 8
		if n > len(w) {
			n = len(w)
		}
		j := i
		for j < n && contentClass[w[j]]&cdataStop == 0 {
			j++
		}
		if j < n || n == len(w) {
			return j
		}
		i = n
	}
}

// cleanAttrValue is the attribute-value scan: qc is the class bit and qpat
// the SWAR pattern of the active quote delimiter.
//
//vitex:hotpath
func cleanAttrValue(w []byte, qc uint8, qpat uint64) int {
	i := 0
	stop := attrStop | qc
	for {
		for len(w)-i >= 8 {
			if dirtyAttr(binary.LittleEndian.Uint64(w[i:]), qpat) {
				break
			}
			i += 8
		}
		n := i + 8
		if n > len(w) {
			n = len(w)
		}
		j := i
		for j < n && contentClass[w[j]]&stop == 0 {
			j++
		}
		if j < n || n == len(w) {
			return j
		}
		i = n
	}
}
