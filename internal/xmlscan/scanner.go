// Package xmlscan is a from-scratch streaming XML scanner: the "XML SAX
// parser" substrate of the ViteX architecture (ICDE 2005, figure 2). It reads
// an XML byte stream from an io.Reader in a single forward pass and emits
// sax.Event values — no DOM, no lookahead beyond the current token, memory
// bounded by the largest single token (tag or coalesced text run).
//
// Supported XML surface: elements, attributes (single or double quoted),
// self-closing tags, character data, CDATA sections, comments, processing
// instructions, XML declarations, DOCTYPE declarations (including bracketed
// internal subsets, which are skipped), and entity references — the five
// predefined entities plus decimal and hexadecimal character references.
// Unsupported (rejected or ignored, see scan tests): external DTD entity
// expansion and namespace processing; ViteX matches lexical QNames.
//
// The scanner enforces the well-formedness properties the downstream TwigM
// machine relies on: tags balance, exactly one root element, and no character
// data outside the root other than whitespace.
package xmlscan

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"repro/internal/sax"
)

// Scanner streams sax events from an io.Reader. Create with NewScanner (or
// NewScannerWith to resolve names against a shared symbol table); a Scanner
// handles one document at a time and is not safe for concurrent use, but can
// be reused across documents with Reset, keeping its buffers and its name
// intern cache warm.
//
//vitex:pooled
type Scanner struct {
	r      io.Reader
	buf    []byte //vitex:keep warmed read buffer, contents invalidated by the pos/end reset
	pos    int    // next unread byte in buf
	end    int    // valid bytes in buf
	off    int64  // byte offset of buf[pos] in the input
	err    error  // sticky read error (io.EOF when input exhausted)
	depth  int
	stack  []symEntry // open elements, for balance checking and end-tag fast path
	text   []byte     // pending character-data run (reusable)
	textAt int64      // offset of the first byte of the pending text run
	// textBorrow is the zero-copy form of a pending text run: a slice of the
	// read buffer itself, used when a run is one clean stretch that starts
	// and ends inside the current window (the dominant shape). Anything that
	// would invalidate the alias — the window moving (fill), more content
	// joining the run (references, CDATA merges) — first copies it into
	// text via materializeText. Invariant: textBorrow != nil implies
	// len(text) == 0.
	textBorrow []byte
	// textNeedsCheck marks the pending run as containing expanded reference
	// text, the one content source the fused scan loops do not validate
	// inline; flushText then runs the full validateChars pass over the run.
	textNeedsCheck bool
	valBuf         []byte //vitex:keep attribute-value scratch, truncated before each use
	// textCache interns short, recurring character-data runs (indentation
	// whitespace, enumerated values) so they cost no allocation after the
	// first occurrence. Bounded: past maxTextCacheEntries new strings are
	// no longer added (lookups still hit).
	textCache map[string]string //vitex:keep cross-document text intern cache by design
	// event is reused across emissions to avoid per-event allocation.
	event sax.Event //vitex:keep scratch fully overwritten by emit before every delivery
	attrs []sax.Attr
	// textInterest/attrInterest are the handler's optional interest
	// refinements, captured once per Run; non-nil lets the scanner skip
	// materializing character data and attribute values nobody will read.
	textInterest sax.TextInterest
	attrInterest sax.AttrInterest
	// seenRoot records that the root element has closed.
	seenRoot bool
	started  bool
	// bomChecked records that the leading byte-order mark, if any, has
	// been handled (UTF-8 BOM skipped, UTF-16/32 BOMs rejected).
	bomChecked bool
	// syms resolves names to shared symbol IDs (nil: events carry
	// sax.SymNone). interned caches the resolution per distinct name for
	// the scanner's lifetime (bounded by maxNameCacheEntries), so each
	// name costs one string allocation and one table lookup per scanner —
	// not per occurrence; nameBuf is the scratch the name bytes are
	// collected into before the cache lookup.
	syms     *sax.Symbols        //vitex:keep shared symbol table identity, fixed at construction
	interned map[string]symEntry //vitex:keep cross-document name cache; Reset drops stale entries itself
	// nameSlots is the direct-mapped front of the name cache: a fixed
	// power-of-2 table indexed by a hash computed over the name bytes,
	// answering the overwhelmingly common case (a feed's recurring
	// vocabulary) without the hashed map lookup. Misses and collisions fall
	// through to the interned map, which stays the ground truth.
	nameSlots []nameSlot //vitex:keep cross-document cache front; Reset invalidates with interned
	nameBuf   []byte     //vitex:keep name scratch, truncated before each use
	// symsLen is the symbol-table length observed at the last Reset, the
	// staleness check for cached SymUnknown resolutions (see Reset).
	symsLen int
	// entities holds general entities declared in the DOCTYPE internal
	// subset (<!ENTITY name "value">). Values are raw replacement text;
	// they are expanded recursively at reference sites with depth and
	// size guards (see expandEntity).
	entities map[string]string
	// ---- batched delivery (see batch.go) ----
	// bh is the batch handler of the current Run (nil: per-event mode);
	// batch/batchAttrs/arena are the pooled arrays one batch of events
	// borrows from, truncated wholesale at each flush.
	bh         sax.BatchHandler
	batch      []sax.Event //vitex:keep warmed batch array, truncated at each flush
	batchAttrs []sax.Attr  //vitex:keep warmed attr backing array, truncated at each flush
	arena      []byte      //vitex:keep warmed character-data arena, truncated at each flush
	batchLimit int         //vitex:keep construction-time batching knob (SetEventBatch)
}

// symEntry is one intern-cache slot: the canonical string for a name, its
// prefix/local split, and the symbol ID of the LOCAL part (sax.SymNone
// without a table, sax.SymUnknown for locals the table does not contain and
// for namespace-declaration attribute names).
type symEntry struct {
	name   string
	prefix string
	local  string
	id     int32
}

// nameSlot is one direct-mapped name-cache entry; hash disambiguates the
// slot's occupant (the full byte comparison against e.name decides).
type nameSlot struct {
	hash uint32
	e    symEntry
}

// nameSlotCount sizes the direct-mapped name cache. Real feeds have tens of
// distinct names; 512 slots make collisions rare while the table (~32KB)
// stays resident for a pooled scanner.
const nameSlotCount = 512

// Entity-expansion guards: nesting depth and total expanded size, the
// classic defenses against exponential-entity inputs ("billion laughs").
const (
	maxEntityDepth  = 16
	maxEntityExpand = 1 << 20
)

// Text-intern bounds: only short runs are worth caching, and the cache must
// not grow without bound on high-cardinality data (e.g. distinct numbers).
const (
	maxTextInternLen    = 32
	maxTextCacheEntries = 4096
)

// maxNameCacheEntries bounds the name intern cache the same way: a
// long-lived scanner fed attacker-controlled or generated tag names must
// not grow without bound. Past the cap, lookups still hit; new names are
// resolved uncached.
const maxNameCacheEntries = 1 << 16

// DefaultBufferSize is the initial read buffer size. The buffer grows only
// when a single token exceeds it.
const DefaultBufferSize = 64 << 10

// NewScanner returns a Scanner reading from r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{
		r:          r,
		buf:        make([]byte, DefaultBufferSize),
		interned:   make(map[string]symEntry),
		batchLimit: DefaultEventBatch,
	}
}

// NewScannerWith returns a Scanner that resolves element and attribute names
// against syms: events carry the table's ID for interned names and
// sax.SymUnknown for names the table does not know. The table is only read,
// never grown, so any number of scanners may share one. The table may grow
// underneath the scanner (live query sets intern new names on Add); Reset
// notices the growth and drops cached not-found resolutions, so names that
// became known resolve correctly on the next document.
func NewScannerWith(r io.Reader, syms *sax.Symbols) *Scanner {
	s := NewScanner(r)
	s.syms = syms
	return s
}

// Reset prepares the Scanner for a new document read from r, retaining the
// read buffer, the attribute scratch and the name intern cache (names repeat
// across documents of a feed; re-resolving them would be wasted work). If
// the shared symbol table grew since the last Reset, cached SymUnknown
// resolutions are dropped: a name unknown then may be a standing query's
// subscription now. Positive resolutions stay — IDs are append-only, a name
// once interned never changes its ID.
func (s *Scanner) Reset(r io.Reader) {
	if s.syms != nil {
		if n := s.syms.Len(); n != s.symsLen {
			s.symsLen = n
			for name, e := range s.interned {
				if e.id == sax.SymUnknown {
					delete(s.interned, name)
				}
			}
			// The direct-mapped front may hold the dropped resolutions;
			// clearing it wholesale is cheaper than probing (it refills
			// from the map on the next document).
			for i := range s.nameSlots {
				s.nameSlots[i] = nameSlot{}
			}
		}
	}
	s.r = r
	s.pos, s.end = 0, 0
	s.off = 0
	s.err = nil
	s.depth = 0
	s.stack = s.stack[:0]
	s.text = s.text[:0]
	s.textBorrow = nil
	s.textAt = 0
	s.textNeedsCheck = false
	s.attrs = s.attrs[:0]
	// Drop the interest refinements and batch handler captured from the
	// previous Run's handler: a pooled Scanner must not pin the session it
	// last served.
	s.textInterest = nil
	s.attrInterest = nil
	s.bh = nil
	s.batch = s.batch[:0]
	s.batchAttrs = s.batchAttrs[:0]
	s.arena = s.arena[:0]
	s.seenRoot = false
	s.started = false
	s.bomChecked = false
	s.entities = nil
}

// intern resolves a name's canonical string, QName split and symbol ID
// through the per-scanner cache (bounded; retained across Reset so recurring
// feed vocabulary costs one allocation and one table lookup per scanner, not
// per occurrence). The map lookup on string(b) does not allocate. The symbol
// ID is that of the local name — name tests match locals — except for
// namespace-declaration attribute names, which get sax.SymUnknown so they
// never route.
//
//vitex:hotpath
func (s *Scanner) intern(b []byte) symEntry {
	if e, ok := s.interned[string(b)]; ok {
		return e
	}
	return s.internMiss(b)
}

// internMiss is the cold half of intern: it materializes and caches the
// entry for a name seen for the first time (once per distinct name per
// scanner lifetime, so its string allocation stays off the steady state).
func (s *Scanner) internMiss(b []byte) symEntry {
	name := string(b)
	prefix, local := sax.SplitName(name)
	e := symEntry{name: name, prefix: prefix, local: local, id: sax.SymNone}
	if s.syms != nil {
		if sax.IsNamespaceDecl(name) {
			e.id = sax.SymUnknown
		} else {
			e.id = s.syms.ID(local)
		}
	}
	if len(s.interned) < maxNameCacheEntries {
		s.interned[name] = e
	}
	return e
}

// internText materializes a character-data run as a string, deduplicating
// short recurring runs through the bounded cache. Handlers may retain the
// result: the backing of an interned string is never recycled.
func (s *Scanner) internText(b []byte) string {
	if len(b) > maxTextInternLen {
		return string(b)
	}
	if v, ok := s.textCache[string(b)]; ok {
		return v
	}
	v := string(b)
	if s.textCache == nil {
		s.textCache = make(map[string]string)
	}
	if len(s.textCache) < maxTextCacheEntries {
		s.textCache[v] = v
	}
	return v
}

// SyntaxError describes a malformed-XML failure with its byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlscan: syntax error at byte %d: %s", e.Offset, e.Msg)
}

func (s *Scanner) syntaxf(off int64, format string, args ...any) error {
	return &SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// Outlined error constructors for the scan fast paths: passing scalar
// arguments to syntaxf's variadic boxes them into interfaces at the call
// site, an allocation paid even on the non-error path in some inlining
// states. Building these errors in cold helpers keeps the hot scan
// functions allocation-free (hotalloc proves it).

func (s *Scanner) errBadNameStart(c byte) error {
	return s.syntaxf(s.off, "invalid name start character %q", c)
}

func (s *Scanner) errInvalidName(start int64, b []byte) error {
	return s.syntaxf(start, "invalid XML name %q", b)
}

func (s *Scanner) errEOFInTag(start int64, name string) error {
	return s.syntaxf(start, "unexpected EOF in tag <%s>", name)
}

func (s *Scanner) errDupAttr(start int64, attr, elem string) error {
	return s.syntaxf(start, "duplicate attribute %q in <%s>", attr, elem)
}

func (s *Scanner) errUnquotedAttr(q byte) error {
	return s.syntaxf(s.off-1, "attribute value must be quoted, found %q", q)
}

func (s *Scanner) errUnmatchedEnd(start int64, name string) error {
	return s.syntaxf(start, "unmatched end tag </%s>", name)
}

func (s *Scanner) errMismatchedEnd(start int64, name, open string) error {
	return s.syntaxf(start, "mismatched end tag: </%s> closes <%s>", name, open)
}

func (s *Scanner) errIllegalChar(at int64, r rune) error {
	return s.syntaxf(at, "illegal character code %U", r)
}

// Run implements sax.Driver: it parses the whole document, delivering events
// to h, and returns the first handler or syntax error. A handler that
// implements sax.BatchHandler gets the batched fast path: events arrive in
// arrays of up to SetEventBatch per call, with character data and attribute
// values backed by recycled arenas instead of interned strings (the
// TextInterest/AttrInterest refinements are ignored — batch content is
// allocation-free either way).
func (s *Scanner) Run(h sax.Handler) error {
	if s.started {
		return fmt.Errorf("xmlscan: Scanner already ran; call Reset before reuse")
	}
	s.started = true
	if bh, ok := h.(sax.BatchHandler); ok && s.batchLimit > 0 {
		s.bh = bh
		if cap(s.batch) < s.batchLimit {
			// batchSlot extends without reallocating; size the array once
			// per limit change.
			s.batch = make([]sax.Event, 0, s.batchLimit)
		}
	} else {
		s.textInterest, _ = h.(sax.TextInterest)
		s.attrInterest, _ = h.(sax.AttrInterest)
	}
	err := s.run(h)
	if s.bh != nil {
		// Deliver everything scanned before the failure point — per-event
		// mode has already delivered those events by the time a later
		// syntax error surfaces, and a handler error among them would have
		// aborted the parse first, so it takes precedence.
		if ferr := s.flushBatch(); ferr != nil {
			err = ferr
		}
		s.bh = nil
	}
	return err
}

func (s *Scanner) run(h sax.Handler) error {
	if err := s.emit(h, sax.StartDocument, "", 0, "", nil, 0); err != nil {
		return err
	}
	for {
		done, err := s.step(h)
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	if len(s.stack) > 0 {
		return s.syntaxf(s.off, "unexpected EOF: %d element(s) still open, innermost <%s>", len(s.stack), s.stack[len(s.stack)-1].name)
	}
	if !s.seenRoot {
		return s.syntaxf(s.off, "document has no root element")
	}
	return s.emit(h, sax.EndDocument, "", 0, "", nil, s.off)
}

// skipBOM handles a leading byte-order mark: a UTF-8 BOM (ubiquitous in
// real-world feeds) is consumed — byte offsets keep counting it, so node
// offsets stay positions in the raw input — while UTF-16/32 BOMs are
// rejected with a clear unsupported-encoding error instead of the tag-soup
// syntax error the bytes would otherwise produce.
func (s *Scanner) skipBOM() error {
	s.bomChecked = true
	for s.end-s.pos < 4 && s.fill() {
	}
	skip, unsupported := sax.ClassifyBOM(s.buf[s.pos:s.end])
	if unsupported != "" {
		return s.syntaxf(0, "unsupported encoding: %s byte order mark (only UTF-8 input is supported)", unsupported)
	}
	s.advance(skip)
	return nil
}

// step consumes one token (tag, comment, PI, text run boundary). It returns
// done=true at clean EOF.
//
//vitex:hotpath
func (s *Scanner) step(h sax.Handler) (bool, error) {
	if !s.bomChecked {
		if err := s.skipBOM(); err != nil {
			return false, err
		}
	}
	c, ok := s.peek()
	if !ok {
		if err := s.flushText(h); err != nil {
			return false, err
		}
		return true, s.pendingErr()
	}
	if c != '<' {
		return false, s.scanText()
	}
	// A markup token. Pending text is flushed by every branch except
	// CDATA: in the XPath data model a CDATA section continues the
	// surrounding text node, while comments and processing instructions
	// are nodes of their own and therefore split text runs.
	start := s.off
	if s.end-s.pos >= 2 {
		// In-window dispatch on the byte after '<' — one bounds check, no
		// second peek — for the two tokens that dominate every stream.
		switch c2 := s.buf[s.pos+1]; c2 {
		case '?', '!':
			// Cold tokens: fall to the general dispatch below.
		case '/':
			if err := s.flushText(h); err != nil {
				return false, err
			}
			s.advance(2)
			return false, s.scanEndTag(h, start)
		default:
			if err := s.flushText(h); err != nil {
				return false, err
			}
			s.advance(1)
			return false, s.scanStartTag(h, start)
		}
	}
	s.advance(1)
	c, ok = s.peek()
	if !ok {
		return false, s.syntaxf(start, "unexpected EOF after '<'")
	}
	switch c {
	case '?':
		if err := s.flushText(h); err != nil {
			return false, err
		}
		return false, s.scanPI(start)
	case '!':
		return false, s.scanBang(h, start)
	case '/':
		if err := s.flushText(h); err != nil {
			return false, err
		}
		s.advance(1)
		return false, s.scanEndTag(h, start)
	default:
		if err := s.flushText(h); err != nil {
			return false, err
		}
		return false, s.scanStartTag(h, start)
	}
}

// ---- byte-level helpers ----

// fill reads more input. Returns false when no byte is available.
func (s *Scanner) fill() bool {
	if s.err != nil {
		return false
	}
	// The window is about to move; a borrowed text run aliasing it must be
	// copied out first (fill is the only place the window moves).
	s.materializeText()
	if s.pos > 0 {
		// Slide the unread tail to the front to make room.
		copy(s.buf, s.buf[s.pos:s.end])
		s.end -= s.pos
		s.pos = 0
	}
	if s.end == len(s.buf) {
		// Token larger than the buffer: grow.
		nb := make([]byte, len(s.buf)*2)
		copy(nb, s.buf[:s.end])
		s.buf = nb
	}
	n, err := s.r.Read(s.buf[s.end:])
	s.end += n
	if err != nil {
		s.err = err
	}
	return n > 0
}

func (s *Scanner) pendingErr() error {
	if s.err != nil && s.err != io.EOF {
		return s.err
	}
	return nil
}

//vitex:hotpath
func (s *Scanner) peek() (byte, bool) {
	for s.pos == s.end {
		if !s.fill() {
			return 0, false
		}
	}
	return s.buf[s.pos], true
}

// hasPrefix reports whether the unread input begins with lit, consuming
// nothing. Used on cold paths (markup-declaration dispatch) only.
func (s *Scanner) hasPrefix(lit string) bool {
	for s.end-s.pos < len(lit) {
		if !s.fill() {
			return false
		}
	}
	for i := 0; i < len(lit); i++ {
		if s.buf[s.pos+i] != lit[i] {
			return false
		}
	}
	return true
}

//vitex:hotpath
func (s *Scanner) advance(n int) {
	s.pos += n
	s.off += int64(n)
}

// readByte consumes and returns the next byte.
//
//vitex:hotpath
func (s *Scanner) readByte() (byte, bool) {
	c, ok := s.peek()
	if ok {
		s.advance(1)
	}
	return c, ok
}

// skipSpace consumes XML whitespace.
//
//vitex:hotpath
func (s *Scanner) skipSpace() {
	for {
		c, ok := s.peek()
		if !ok || !isSpace(c) {
			return
		}
		s.advance(1)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// isNameStart / isNameByte approximate the XML Name grammar. Multi-byte
// UTF-8 sequences are accepted wholesale (any byte >= 0x80), which admits
// all non-ASCII name characters; the fine-grained Unicode classes of the XML
// spec are not enforced — lexical matching downstream makes this harmless.
func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// readNameBytes scans an XML Name and returns its bytes. When the whole name
// sits inside the buffered window — the overwhelmingly common case — the
// returned slice borrows directly from the read buffer, zero-copy: it stays
// valid until the next fill, so callers must consume it (intern lookup,
// comparison) before reading further input. Only a name cut by a refill seam
// is accumulated in the scratch buffer.
//
//vitex:hotpath
func (s *Scanner) readNameBytes() ([]byte, error) {
	c, ok := s.peek()
	if !ok {
		return nil, s.syntaxf(s.off, "unexpected EOF, expected name")
	}
	if !isNameStart(c) {
		return nil, s.errBadNameStart(c)
	}
	start := s.pos
	i := s.pos + 1
	for i < s.end && nameByteTab[s.buf[i]] {
		i++
	}
	if i < s.end {
		b := s.buf[start:i]
		s.advance(i - start)
		return b, nil
	}
	// The window ended mid-name: switch to the scratch buffer and continue
	// across refills.
	s.nameBuf = append(s.nameBuf[:0], s.buf[start:i]...)
	s.advance(i - start)
	for {
		c, ok := s.peek()
		if !ok || !nameByteTab[c] {
			break
		}
		s.nameBuf = append(s.nameBuf, c)
		s.advance(1)
	}
	return s.nameBuf, nil
}

// readName scans an XML Name, returning its interned string.
//
//vitex:hotpath
func (s *Scanner) readName() (string, error) {
	e, err := s.readNameID()
	return e.name, err
}

// readNameID scans an XML Name, returning its interned cache entry
// (canonical string, prefix/local split, local-name symbol ID). The byte
// scan decides where the name ends; rune-level validation (the XML name
// tables, invalid UTF-8, the one-colon QName rule) decides whether it is
// legal — the same split encoding/xml uses, so the front-ends agree on every
// name. Degenerate single-colon names (":", "a:", ":a") are accepted
// unsplit (see sax.SplitName).
//
//vitex:hotpath
func (s *Scanner) readNameID() (symEntry, error) {
	start := s.off
	b, err := s.readNameBytes()
	if err != nil {
		return symEntry{}, err
	}
	return s.resolveName(b, start)
}

// nameHash mixes a name's length with its first, middle and last bytes — no
// per-byte loop, so the scan loops that feed it stay pure table lookups. A
// collision only costs a slot miss (resolveNameMiss rechecks against the
// intern map, the ground truth), never correctness.
//
//vitex:hotpath
func nameHash(b []byte) uint32 {
	n := len(b)
	h := uint32(n)<<24 ^ uint32(b[0])<<16 ^ uint32(b[n-1])<<8 ^ uint32(b[n>>1])
	return h*2654435761 ^ h>>13
}

// resolveName validates and interns scanned name bytes (cache hits skip
// validation: a cached name was validated when first interned). The hit path
// is a direct-mapped probe on nameHash — names are a few bytes, already in
// cache, so the hash costs less than the map's hashed lookup it replaces.
//
//vitex:hotpath
func (s *Scanner) resolveName(b []byte, start int64) (symEntry, error) {
	h := nameHash(b)
	if len(s.nameSlots) == nameSlotCount {
		if sl := &s.nameSlots[h&(nameSlotCount-1)]; sl.hash == h && sl.e.name == string(b) {
			return sl.e, nil
		}
	}
	return s.resolveNameMiss(b, h, start)
}

// resolveNameMiss is the cold half of resolveName: the map lookup, the
// validation and interning of first-sighted names, and the slot install.
func (s *Scanner) resolveNameMiss(b []byte, h uint32, start int64) (symEntry, error) {
	e, ok := s.interned[string(b)]
	if !ok {
		colons := 0
		for _, c := range b {
			if c == ':' {
				colons++
			}
		}
		if colons > 1 || !isXMLName(b) {
			return symEntry{}, s.errInvalidName(start, b)
		}
		e = s.intern(b)
	}
	if s.nameSlots == nil {
		s.nameSlots = make([]nameSlot, nameSlotCount)
	}
	s.nameSlots[h&(nameSlotCount-1)] = nameSlot{hash: h, e: e}
	return e, nil
}

// expect consumes the literal lit or fails.
func (s *Scanner) expect(lit string) error {
	for i := 0; i < len(lit); i++ {
		c, ok := s.readByte()
		if !ok {
			return s.syntaxf(s.off, "unexpected EOF, expected %q", lit)
		}
		if c != lit[i] {
			return s.syntaxf(s.off-1, "expected %q, found %q", lit, c)
		}
	}
	return nil
}

// ---- token scanners ----

// scanText accumulates character data up to the next '<'. Clean stretches —
// no markup, references, line endings to normalize, or bytes needing rune
// validation — are appended in bulk (cleanText, word-at-a-time) with
// character validation fused into the scan; only the special bytes fall to
// the per-byte cases below. Entity and character references are resolved
// inline; CDATA sections are merged by the caller loop (scanBang appends to
// s.text). Literal line endings are normalized per XML 1.0 §2.11 ("\r\n" and
// lone "\r" become "\n"); character references like &#13; are exempt,
// matching encoding/xml.
//
//vitex:hotpath
func (s *Scanner) scanText() error {
	s.materializeText()
	if len(s.text) == 0 {
		s.textAt = s.off
		// Borrowed fast path: a run that is one clean stretch starting and
		// ending inside the current window is recorded as a slice of the
		// read buffer itself — no copy into the accumulation buffer. The
		// alias holds because nothing moves the window between here and the
		// flush at the next markup token (fill materializes it if a refill
		// intervenes after all, e.g. for a comment probing past the '<').
		w := s.buf[s.pos:s.end]
		if n := cleanText(w); n < len(w) && w[n] == '<' {
			s.textBorrow = w[:n:n]
			s.advance(n)
			return nil
		}
	}
	for {
		if s.pos == s.end && !s.fill() {
			return nil // EOF ends the run; step flushes and reports pending errors
		}
		if n := cleanText(s.buf[s.pos:s.end]); n > 0 {
			s.text = append(s.text, s.buf[s.pos:s.pos+n]...)
			s.advance(n)
			if s.pos == s.end {
				continue
			}
		}
		switch c := s.buf[s.pos]; contentClass[c] {
		case ccLT:
			return nil
		case ccAmp:
			r, err := s.scanReference()
			if err != nil {
				return err
			}
			s.text = append(s.text, r...)
			// Expanded reference text is the one content source the fused
			// scan does not validate; flushText runs the full pass.
			s.textNeedsCheck = true
		case ccCR:
			s.advance(1)
			if n, ok := s.peek(); ok && n == '\n' {
				s.advance(1)
			}
			s.text = append(s.text, '\n')
		case ccRB:
			if err := s.scanTextBrackets(); err != nil {
				return err
			}
		case ccHigh:
			if err := s.appendRuneTo(&s.text, s.textAt); err != nil {
				return err
			}
		default: // ccBad: a control byte the XML Char production forbids
			return s.errIllegalChar(s.textAt, rune(c))
		}
	}
}

// scanTextBrackets consumes a run of literal ']' bytes and rejects a
// directly following '>' when the run could close a CDATA section: "]]>"
// must not appear literally in character data (XML 1.0 §2.4; encoding/xml
// rejects it too). Escaped forms (&#93;&#93;&gt;) and runs split by markup
// are fine — references reset the run by construction, since scanText
// re-enters the clean scan after appending them.
//
//vitex:hotpath
func (s *Scanner) scanTextBrackets() error {
	k := 0
	for {
		c, ok := s.peek()
		if !ok || c != ']' {
			if k >= 2 && ok && c == '>' {
				return s.syntaxf(s.off, "unescaped ]]> not in CDATA section")
			}
			return nil
		}
		s.text = append(s.text, ']')
		s.advance(1)
		k++
	}
}

// appendRuneTo validates one multi-byte UTF-8 sequence — refilling so
// sequences split across a read boundary decode whole — and appends its
// bytes to dst. at is the offset character errors are reported against (the
// run start, matching the batch validateChars pass).
//
//vitex:hotpath
func (s *Scanner) appendRuneTo(dst *[]byte, at int64) error {
	for s.end-s.pos < utf8.UTFMax && s.fill() {
	}
	r, size := utf8.DecodeRune(s.buf[s.pos:s.end])
	if r == utf8.RuneError && size == 1 {
		return s.syntaxf(at, "invalid UTF-8")
	}
	if !inCharacterRange(r) {
		return s.errIllegalChar(at, r)
	}
	*dst = append(*dst, s.buf[s.pos:s.pos+size]...)
	s.advance(size)
	return nil
}

// scanReference parses an entity or character reference starting at '&'.
func (s *Scanner) scanReference() (string, error) {
	start := s.off
	s.advance(1) // consume '&'
	c, ok := s.peek()
	if !ok {
		return "", s.syntaxf(start, "unexpected EOF in entity reference")
	}
	if c == '#' {
		s.advance(1)
		base := 10
		c, ok = s.peek()
		// Only lowercase 'x' marks a hex reference (XML 1.0 §4.1; "&#X"
		// is rejected, as encoding/xml rejects it).
		if ok && c == 'x' {
			base = 16
			s.advance(1)
		}
		var n rune
		digits := 0
		for {
			c, ok = s.peek()
			if !ok {
				return "", s.syntaxf(start, "unexpected EOF in character reference")
			}
			if c == ';' {
				s.advance(1)
				break
			}
			var d int
			switch {
			case c >= '0' && c <= '9':
				d = int(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = int(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = int(c-'A') + 10
			default:
				return "", s.syntaxf(s.off, "invalid digit %q in character reference", c)
			}
			s.advance(1)
			n = n*rune(base) + rune(d)
			digits++
			if n > 0x10FFFF {
				return "", s.syntaxf(start, "character reference out of range")
			}
		}
		if digits == 0 {
			return "", s.syntaxf(start, "empty character reference")
		}
		return string(n), nil
	}
	name, err := s.readName()
	if err != nil {
		return "", err
	}
	if err := s.expect(";"); err != nil {
		return "", err
	}
	switch name {
	case "amp":
		return "&", nil
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	if repl, ok := s.entities[name]; ok {
		expanded, err := s.expandEntity(start, name, repl, 0, 0)
		if err != nil {
			return "", err
		}
		return expanded, nil
	}
	return "", s.syntaxf(start, "unknown entity &%s; (external entities are not supported)", name)
}

// expandEntity resolves an internal-subset entity's replacement text:
// nested character and general entity references expand recursively;
// markup-bearing replacement text ('<') is rejected — entities here are
// character data, not document structure (documented limitation).
func (s *Scanner) expandEntity(off int64, name, repl string, depth, budget int) (string, error) {
	if depth >= maxEntityDepth {
		return "", s.syntaxf(off, "entity &%s; nested more than %d levels", name, maxEntityDepth)
	}
	var b strings.Builder
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		switch c {
		case '<':
			return "", s.syntaxf(off, "entity &%s; contains markup, which is not supported", name)
		case '&':
			end := strings.IndexByte(repl[i:], ';')
			if end < 0 {
				return "", s.syntaxf(off, "unterminated reference inside entity &%s;", name)
			}
			ref := repl[i+1 : i+end]
			i += end
			sub, err := s.resolveInnerRef(off, name, ref, depth)
			if err != nil {
				return "", err
			}
			b.WriteString(sub)
		default:
			b.WriteByte(c)
		}
		if budget+b.Len() > maxEntityExpand {
			return "", s.syntaxf(off, "entity &%s; expands beyond %d bytes", name, maxEntityExpand)
		}
	}
	return b.String(), nil
}

func (s *Scanner) resolveInnerRef(off int64, outer, ref string, depth int) (string, error) {
	if strings.HasPrefix(ref, "#") {
		n, err := parseCharRef(ref[1:])
		if err != nil {
			return "", s.syntaxf(off, "bad character reference &%s; inside entity &%s;", ref, outer)
		}
		return string(n), nil
	}
	switch ref {
	case "amp":
		return "&", nil
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	repl, ok := s.entities[ref]
	if !ok {
		return "", s.syntaxf(off, "unknown entity &%s; inside entity &%s;", ref, outer)
	}
	return s.expandEntity(off, ref, repl, depth+1, 0)
}

// parseCharRef parses the digits of a character reference (after '#').
func parseCharRef(digits string) (rune, error) {
	base := 10
	if len(digits) > 0 && (digits[0] == 'x' || digits[0] == 'X') {
		base = 16
		digits = digits[1:]
	}
	if digits == "" {
		return 0, fmt.Errorf("empty character reference")
	}
	var n rune
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid digit %q", c)
		}
		n = n*rune(base) + rune(d)
		if n > 0x10FFFF {
			return 0, fmt.Errorf("out of range")
		}
	}
	return n, nil
}

// flushText emits a pending Text event, if any. Whitespace-only text outside
// the root element is dropped; non-whitespace there is a syntax error.
// validateChars checks a character-data run (text, CDATA, attribute value —
// after entity expansion and line-ending normalization) for well-formed
// UTF-8 and the XML Char production, exactly as encoding/xml does. Comments,
// processing instructions and skipped directives are not validated — neither
// front-end looks inside them.
//
//vitex:hotpath
func (s *Scanner) validateChars(b []byte, at int64) error {
	for i := 0; i < len(b); {
		c := b[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 || c == '\t' || c == '\n' || c == '\r' {
				i++
				continue
			}
			return s.errIllegalChar(at, rune(c))
		}
		r, size := utf8.DecodeRune(b[i:])
		if r == utf8.RuneError && size == 1 {
			return s.syntaxf(at, "invalid UTF-8")
		}
		if !inCharacterRange(r) {
			return s.errIllegalChar(at, r)
		}
		i += size
	}
	return nil
}

// materializeText copies a borrowed text run into the accumulation buffer.
// Called before anything can invalidate the alias: the window moving (fill),
// or more content joining the run (references, CDATA merges).
//
//vitex:hotpath
func (s *Scanner) materializeText() {
	if s.textBorrow == nil {
		return
	}
	s.text = append(s.text, s.textBorrow...)
	s.textBorrow = nil
}

//vitex:hotpath
func (s *Scanner) flushText(h sax.Handler) error {
	if b := s.textBorrow; b != nil {
		// Borrowed run: clean by construction (no expanded references, no
		// bytes needing validation), aliasing the read buffer only until the
		// copy below (arena or intern) or the interest-gated drop.
		s.textBorrow = nil
		if s.depth == 0 {
			if !isAllSpace(b) {
				return s.syntaxf(s.textAt, "character data outside root element")
			}
			return nil
		}
		if s.bh != nil {
			return s.emit(h, sax.Text, "", s.depth+1, s.arenaString(b), nil, s.textAt)
		}
		if s.textInterest != nil && !s.textInterest.WantsTextEvent() {
			return s.emit(h, sax.Text, "", s.depth+1, "", nil, s.textAt)
		}
		return s.emit(h, sax.Text, "", s.depth+1, s.internText(b), nil, s.textAt)
	}
	if len(s.text) == 0 {
		return nil
	}
	if s.textNeedsCheck {
		// The run contains expanded reference text, which the fused scan
		// loops do not validate; everything else was validated as it was
		// appended.
		if err := s.validateChars(s.text, s.textAt); err != nil {
			return err
		}
		s.textNeedsCheck = false
	}
	if s.depth == 0 {
		// Character data outside the root element: only whitespace is
		// tolerated, and no event is emitted either way.
		if !isAllSpace(s.text) {
			return s.syntaxf(s.textAt, "character data outside root element")
		}
		s.text = s.text[:0]
		return nil
	}
	if s.bh != nil {
		// Batched delivery: an arena-backed view, no interning, no
		// interest gating (see sax.BatchHandler).
		t := s.arenaString(s.text)
		s.text = s.text[:0]
		return s.emit(h, sax.Text, "", s.depth+1, t, nil, s.textAt)
	}
	if s.textInterest != nil && !s.textInterest.WantsTextEvent() {
		// No consumer will read this run's content (sax.TextInterest):
		// deliver the event with an empty string — the dominant
		// steady-state allocation of value-free query workloads is the
		// text materialization this skips.
		s.text = s.text[:0]
		return s.emit(h, sax.Text, "", s.depth+1, "", nil, s.textAt)
	}
	t := s.internText(s.text)
	s.text = s.text[:0]
	return s.emit(h, sax.Text, "", s.depth+1, t, nil, s.textAt)
}

func isAllSpace(b []byte) bool {
	for _, c := range b {
		if !isSpace(c) {
			return false
		}
	}
	return true
}

// fastStartTag is the speculative in-window start-tag parser: it scans the
// tag with local indices and no per-byte cursor updates, handling the
// dominant shapes — a name, optionally attributes with clean quoted values,
// then '>' or '/>'. It consumes nothing until the whole tag has parsed, so
// on ANY complication (window seam mid-tag, entity or line ending or
// non-ASCII byte in a value, malformed syntax) it returns done=false and the
// general scanStartTag path rescans from the same position, producing the
// byte-identical event or diagnostic. Returning done=true means the tag was
// fully consumed and emitted (or a post-parse error — invalid name,
// duplicate attribute, handler failure — was raised exactly as the general
// path would raise it).
//
//vitex:hotpath
func (s *Scanner) fastStartTag(h sax.Handler, start int64) (bool, error) {
	buf, i, end := s.buf, s.pos, s.end
	if i >= end || !isNameStart(buf[i]) {
		return false, nil
	}
	nst := i
	i++
	for i < end && nameByteTab[buf[i]] {
		i++
	}
	if i >= end {
		return false, nil // the name may continue past the window
	}
	name, err := s.resolveFast(buf[nst:i], nameHash(buf[nst:i]), start+1)
	if err != nil {
		return true, err
	}
	// Attributes accumulate straight into the destination their delivery
	// mode needs: the batch-owned backing array (batch mode — batchQueued
	// sees the event's slice already homed and skips its copy) or the
	// per-tag scratch (per-event mode). att0 marks where this tag's
	// attributes start; on a bail to the general path any entries already
	// appended in batch mode are dead weight until the next flush truncates
	// them, which is harmless.
	var attrs []sax.Attr
	att0 := 0
	if s.bh != nil {
		attrs = s.batchAttrs
		att0 = len(attrs)
	} else {
		attrs = s.attrs[:0]
	}
	selfClose := false
	for {
		// Inter-attribute whitespace, then the tag-closing dispatch.
		spaces := i
		for i < end && isSpace(buf[i]) {
			i++
		}
		if i >= end {
			return false, nil
		}
		if c := buf[i]; c == '>' {
			i++
			break
		} else if c == '/' {
			if i+1 >= end {
				return false, nil
			}
			if buf[i+1] != '>' {
				return false, nil // let the general path diagnose
			}
			selfClose = true
			i += 2
			break
		} else if spaces == i || !isNameStart(c) {
			// Attribute without preceding whitespace, or a byte that
			// starts no name: the general path raises the exact error.
			return false, nil
		}
		ast := i
		i++
		for i < end && nameByteTab[buf[i]] {
			i++
		}
		aend := i
		for i < end && isSpace(buf[i]) {
			i++
		}
		if i >= end || buf[i] != '=' {
			return false, nil
		}
		i++
		for i < end && isSpace(buf[i]) {
			i++
		}
		if i >= end {
			return false, nil
		}
		q := buf[i]
		if q != '"' && q != '\'' {
			return false, nil
		}
		qc := uint8(ccQuot)
		if q == '\'' {
			qc = ccApos
		}
		i++
		vst := i
		j := bytes.IndexByte(buf[i:end], q)
		if j < 0 {
			return false, nil
		}
		vb := buf[vst : vst+j]
		if cleanAttrValue(vb, qc, swarOnes*uint64(q)) != len(vb) {
			// A reference, line ending, non-ASCII or illegal byte: the
			// general path normalizes, expands and validates it.
			return false, nil
		}
		i = vst + j + 1
		aname, err := s.resolveFast(buf[ast:aend], nameHash(buf[ast:aend]), start+1+int64(ast-nst))
		if err != nil {
			return true, err
		}
		for k := att0; k < len(attrs); k++ {
			if attrs[k].Name == aname.name {
				return true, s.errDupAttr(start, aname.name, name.name)
			}
		}
		var aval string
		if s.bh != nil {
			aval = s.arenaString(vb)
		} else if s.attrInterest == nil || s.attrInterest.WantsAttrValue(name.id, aname.id) {
			aval = s.internText(vb)
		}
		attrs = append(attrs, sax.Attr{
			Name: aname.name, Value: aval,
			Prefix: aname.prefix, Local: aname.local, NameID: aname.id,
		})
	}
	// Commit: one cursor update for the whole tag.
	s.off += int64(i - s.pos)
	s.pos = i
	s.depth++
	s.stack = append(s.stack, name)
	var evAttrs []sax.Attr
	if len(attrs) > att0 {
		evAttrs = attrs[att0:len(attrs):len(attrs)]
	}
	if s.bh != nil {
		s.batchAttrs = attrs
	} else {
		s.attrs = attrs
	}
	if err := s.emitTag(h, sax.StartElement, name, s.depth, evAttrs, start); err != nil {
		return true, err
	}
	if selfClose {
		if err := s.emitTag(h, sax.EndElement, name, s.depth, nil, s.off); err != nil {
			return true, err
		}
		s.closeElement()
	}
	return true, nil
}

// resolveFast resolves name bytes whose nameHash the caller already
// computed: the direct-mapped probe of resolveName without the re-hash.
// nameOff is the name's byte offset for diagnostics.
//
//vitex:hotpath
func (s *Scanner) resolveFast(b []byte, hash uint32, nameOff int64) (symEntry, error) {
	if len(s.nameSlots) == nameSlotCount {
		if sl := &s.nameSlots[hash&(nameSlotCount-1)]; sl.hash == hash && sl.e.name == string(b) {
			return sl.e, nil
		}
	}
	return s.resolveNameMiss(b, hash, nameOff)
}

// scanStartTag parses "<name attr=... >" with '<' already consumed.
//
//vitex:hotpath
func (s *Scanner) scanStartTag(h sax.Handler, start int64) error {
	if s.seenRoot && s.depth == 0 {
		return s.syntaxf(start, "multiple root elements")
	}
	if done, err := s.fastStartTag(h, start); done {
		return err
	}
	name, err := s.readNameID()
	if err != nil {
		return err
	}
	s.attrs = s.attrs[:0]
	selfClose := false
	for {
		s.skipSpace()
		c, ok := s.peek()
		if !ok {
			return s.errEOFInTag(start, name.name)
		}
		if c == '>' {
			s.advance(1)
			break
		}
		if c == '/' {
			s.advance(1)
			if err := s.expect(">"); err != nil {
				return err
			}
			selfClose = true
			break
		}
		aname, err := s.readNameID()
		if err != nil {
			return err
		}
		s.skipSpace()
		if err := s.expect("="); err != nil {
			return err
		}
		s.skipSpace()
		wanted := s.attrInterest == nil || s.attrInterest.WantsAttrValue(name.id, aname.id)
		aval, err := s.scanAttrValue(wanted)
		if err != nil {
			return err
		}
		for i := range s.attrs {
			if s.attrs[i].Name == aname.name {
				return s.errDupAttr(start, aname.name, name.name)
			}
		}
		s.attrs = append(s.attrs, sax.Attr{
			Name: aname.name, Value: aval,
			Prefix: aname.prefix, Local: aname.local, NameID: aname.id,
		})
	}
	s.depth++
	s.stack = append(s.stack, name)
	var evAttrs []sax.Attr
	if len(s.attrs) > 0 {
		evAttrs = s.attrs
	}
	if err := s.emitTag(h, sax.StartElement, name, s.depth, evAttrs, start); err != nil {
		return err
	}
	if selfClose {
		// The synthetic end event of a self-closing tag carries the offset
		// just past the tag — where an explicit end tag would have begun —
		// matching encoding/xml's convention (the fuzz differential pins
		// this).
		if err := s.emitTag(h, sax.EndElement, name, s.depth, nil, s.off); err != nil {
			return err
		}
		s.closeElement()
	}
	return nil
}

// scanAttrValue parses a quoted attribute value with references resolved.
// With wanted false (sax.AttrInterest proved no consumer reads it) the value
// is fully parsed and validated but returned as "" without materializing a
// string.
//
//vitex:hotpath
func (s *Scanner) scanAttrValue(wanted bool) (string, error) {
	start := s.off
	q, ok := s.readByte()
	if !ok {
		return "", s.syntaxf(s.off, "unexpected EOF, expected attribute value")
	}
	if q != '\'' && q != '"' {
		return "", s.errUnquotedAttr(q)
	}
	qc := uint8(ccQuot)
	if q == '\'' {
		qc = ccApos
	}
	qpat := swarOnes * uint64(q)
	s.valBuf = s.valBuf[:0]
	needsCheck := false
	for {
		if s.pos == s.end && !s.fill() {
			return "", s.syntaxf(s.off, "unexpected EOF in attribute value")
		}
		if n := cleanAttrValue(s.buf[s.pos:s.end], qc, qpat); n > 0 {
			s.valBuf = append(s.valBuf, s.buf[s.pos:s.pos+n]...)
			s.advance(n)
			if s.pos == s.end {
				continue
			}
		}
		switch c := s.buf[s.pos]; {
		case c == q:
			s.advance(1)
			return s.finishAttrValue(wanted, needsCheck, start)
		case c == '<':
			return "", s.syntaxf(s.off, "'<' not allowed in attribute value")
		case c == '&':
			r, err := s.scanReference()
			if err != nil {
				return "", err
			}
			s.valBuf = append(s.valBuf, r...)
			needsCheck = true
		case c == '\r':
			// Line-ending normalization applies inside attribute
			// values too (XML 1.0 §2.11, matching encoding/xml).
			s.advance(1)
			if n, ok := s.peek(); ok && n == '\n' {
				s.advance(1)
			}
			s.valBuf = append(s.valBuf, '\n')
		case c >= 0x80:
			if err := s.appendRuneTo(&s.valBuf, start); err != nil {
				return "", err
			}
		default: // a control byte the XML Char production forbids
			return "", s.errIllegalChar(start, rune(c))
		}
	}
}

// finishAttrValue turns the scanned value bytes into the returned string:
// an arena view in batch mode, "" when no consumer reads it
// (sax.AttrInterest), an interned string otherwise. Reference expansions are
// the only bytes the fused scan did not validate.
//
//vitex:hotpath
func (s *Scanner) finishAttrValue(wanted, needsCheck bool, start int64) (string, error) {
	if needsCheck {
		if err := s.validateChars(s.valBuf, start); err != nil {
			return "", err
		}
	}
	if s.bh != nil {
		return s.arenaString(s.valBuf), nil
	}
	if !wanted {
		return "", nil
	}
	return s.internText(s.valBuf), nil
}

// scanEndTag parses "</name>" with "</" already consumed. The fast path
// compares the scanned name bytes directly against the open element on the
// stack: a match reuses that element's interned entry, skipping both the
// rune-level name validation (the bytes were validated when the start tag
// interned them) and the intern-cache lookup.
//
//vitex:hotpath
func (s *Scanner) scanEndTag(h sax.Handler, start int64) error {
	// In-window fast path: "</name>" with no whitespace, matching the open
	// element byte-for-byte — one comparison against the stack top, no name
	// scan or resolution. Anything else (window seam, "</name >", a
	// mismatch) falls to the general path below, which rescans from the
	// same position.
	if s.depth > 0 {
		top := &s.stack[len(s.stack)-1]
		if n := len(top.name); s.end-s.pos > n &&
			s.buf[s.pos+n] == '>' && string(s.buf[s.pos:s.pos+n]) == top.name {
			name := *top
			s.pos += n + 1
			s.off += int64(n + 1)
			if err := s.emitTag(h, sax.EndElement, name, s.depth, nil, start); err != nil {
				return err
			}
			s.closeElement()
			return nil
		}
	}
	b, err := s.readNameBytes()
	if err != nil {
		return err
	}
	if s.depth > 0 && string(b) == s.stack[len(s.stack)-1].name {
		name := s.stack[len(s.stack)-1]
		s.skipSpace()
		if err := s.expect(">"); err != nil {
			return err
		}
		if err := s.emitTag(h, sax.EndElement, name, s.depth, nil, start); err != nil {
			return err
		}
		s.closeElement()
		return nil
	}
	// Unmatched or mismatched end tag: resolve the name fully so the
	// diagnostics (invalid name, unmatched, mismatched — in that order,
	// matching the single-path scan) carry the canonical strings.
	name, err := s.resolveName(b, start)
	if err != nil {
		return err
	}
	s.skipSpace()
	if err := s.expect(">"); err != nil {
		return err
	}
	if s.depth == 0 {
		return s.errUnmatchedEnd(start, name.name)
	}
	return s.errMismatchedEnd(start, name.name, s.stack[len(s.stack)-1].name)
}

//vitex:hotpath
func (s *Scanner) closeElement() {
	s.stack = s.stack[:len(s.stack)-1]
	s.depth--
	if s.depth == 0 {
		s.seenRoot = true
	}
}

// scanPI skips "<?target ...?>" (XML declarations and processing
// instructions), with encoding/xml's verdicts: the target must be a valid
// XML name (multi-colon targets are allowed — PI targets are plain names,
// not QNames), instruction content is not character-validated, and an "<?xml
// ...?>" declaration whose encoding pseudo-attribute names anything but
// UTF-8 is rejected (only UTF-8 input is supported, as with BOMs).
func (s *Scanner) scanPI(start int64) error {
	s.advance(1) // consume '?'
	target, err := s.readNameBytes()
	if err != nil {
		return s.syntaxf(start, "expected target name after '<?'")
	}
	if !isXMLName(target) {
		return s.syntaxf(start, "invalid XML name %q", target)
	}
	isDecl := string(target) == "xml"
	if !isDecl {
		// Ordinary instruction: content is neither emitted nor validated,
		// so skipping is a pure IndexByte hop between '?' bytes.
		for {
			if s.pos == s.end && !s.fill() {
				return s.syntaxf(start, "unexpected EOF in processing instruction")
			}
			i := bytes.IndexByte(s.buf[s.pos:s.end], '?')
			if i < 0 {
				s.advance(s.end - s.pos)
				continue
			}
			s.advance(i + 1)
			c, ok := s.peek()
			if !ok {
				return s.syntaxf(start, "unexpected EOF in processing instruction")
			}
			if c == '>' {
				s.advance(1)
				return nil
			}
		}
	}
	var inst []byte
	prev := byte(0)
	for {
		c, ok := s.readByte()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in processing instruction")
		}
		if prev == '?' && c == '>' {
			break
		}
		if isDecl {
			inst = append(inst, c)
		}
		prev = c
	}
	if isDecl {
		if n := len(inst); n > 0 {
			inst = inst[:n-1] // trailing '?' of the terminator
		}
		if v := pseudoAttr(string(inst), "version"); v != "" && v != "1.0" {
			return s.syntaxf(start, "unsupported version %q; only version 1.0 is supported", v)
		}
		if enc := pseudoAttr(string(inst), "encoding"); enc != "" && !strings.EqualFold(enc, "utf-8") {
			return s.syntaxf(start, "unsupported encoding: %q declared in XML declaration (only UTF-8 input is supported)", enc)
		}
	}
	return nil
}

// pseudoAttr extracts a pseudo-attribute value from an XML declaration's
// content, with the same lenient scan encoding/xml applies: "param="
// occurrences not followed by a quote are skipped, and the first quoted one
// wins (the fuzz differential pins this — giving up at the first unquoted
// occurrence would accept declarations encoding/xml rejects).
func pseudoAttr(inst, param string) string {
	param += "="
	i := 0
	var sep byte
	for i < len(inst) {
		sub := inst[i:]
		k := strings.Index(sub, param)
		if k < 0 || len(param)+k >= len(sub) {
			return ""
		}
		i += len(param) + k + 1
		if c := sub[len(param)+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return ""
	}
	end := strings.IndexByte(inst[i:], sep)
	if end < 0 {
		return ""
	}
	return inst[i : i+end]
}

// scanBang dispatches "<!--", "<![CDATA[" and "<!DOCTYPE" with "<!" partially
// consumed (the '!' is still pending). Comments, DOCTYPE and skipped
// directives flush pending text; CDATA extends it. Markup declarations the
// scanner does not interpret are skipped with encoding/xml's lax algorithm
// (skipDirective) so both front-ends accept the same documents.
func (s *Scanner) scanBang(h sax.Handler, start int64) error {
	s.advance(1) // consume '!'
	c, ok := s.peek()
	if !ok {
		return s.syntaxf(start, "unexpected EOF after '<!'")
	}
	switch {
	case c == '-':
		if err := s.flushText(h); err != nil {
			return err
		}
		return s.scanComment(start)
	case c == '[':
		return s.scanCDATA(start)
	case s.hasPrefix("DOCTYPE"):
		if err := s.flushText(h); err != nil {
			return err
		}
		return s.scanDoctype(start)
	default:
		if err := s.flushText(h); err != nil {
			return err
		}
		// Mirror encoding/xml: the first byte after "<!" is consumed
		// before the quote/nesting rules engage.
		s.advance(1)
		return s.skipDirective(start)
	}
}

// skipDirective consumes a "<!...>" markup declaration the scanner does not
// interpret, byte-for-byte compatible with encoding/xml's directive
// scanning: quoted literals hide markup characters, '<'...'>' pairs nest,
// and embedded comments are skipped wholly (without the "--" restriction of
// real comments). Nothing is emitted; directives only split text runs.
func (s *Scanner) skipDirective(start int64) error {
	var quote byte
	depth := 0
	for {
		c, ok := s.readByte()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in markup declaration")
		}
	reprocess:
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '>':
			if depth == 0 {
				return nil
			}
			depth--
		case c == '<' && depth > 0:
			depth++
		case c == '<':
			// A depth-0 '<' may open an embedded comment. On a partial
			// match the mismatching byte is reprocessed with the '<'
			// already counted as nesting — exactly encoding/xml's loop.
			const lit = "!--"
			for i := 0; i < len(lit); i++ {
				nc, ok := s.readByte()
				if !ok {
					return s.syntaxf(start, "unexpected EOF in markup declaration")
				}
				if nc != lit[i] {
					depth++
					c = nc
					goto reprocess
				}
			}
			var p1, p2 byte
			for {
				nc, ok := s.readByte()
				if !ok {
					return s.syntaxf(start, "unexpected EOF in markup declaration")
				}
				if p1 == '-' && p2 == '-' && nc == '>' {
					break
				}
				p1, p2 = p2, nc
			}
		}
	}
}

// scanComment skips "<!-- ... -->", enforcing the no-"--" rule loosely
// (only the terminator is required). Content is not character-validated
// (neither front-end looks inside comments), so the skip is a pure
// bytes.IndexByte hop between '-' bytes.
func (s *Scanner) scanComment(start int64) error {
	if err := s.expect("--"); err != nil {
		return err
	}
	for {
		if s.pos == s.end && !s.fill() {
			return s.syntaxf(start, "unexpected EOF in comment")
		}
		i := bytes.IndexByte(s.buf[s.pos:s.end], '-')
		if i < 0 {
			s.advance(s.end - s.pos)
			continue
		}
		s.advance(i + 1)
		c, ok := s.peek()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in comment")
		}
		if c != '-' {
			continue // lone '-': ordinary content
		}
		s.advance(1)
		c, ok = s.peek()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in comment")
		}
		if c == '>' {
			s.advance(1)
			return nil
		}
		return s.syntaxf(s.off, "'--' not allowed inside comment")
	}
}

// scanCDATA appends "<![CDATA[ ... ]]>" content to the pending text run.
// Clean stretches go through the bulk scan (cleanCDATA) with character
// validation fused in; ']' runs are resolved by direct lookahead — a run of
// two or more followed by '>' terminates the section with the surplus
// brackets as content, anything else is ordinary content.
func (s *Scanner) scanCDATA(start int64) error {
	if err := s.expect("[CDATA["); err != nil {
		return err
	}
	// A CDATA section outside the root element joins the pending text run
	// like any character data: flushText rejects it if non-whitespace,
	// tolerates it otherwise — the same verdicts encoding/xml produces.
	// A borrowed run the section continues is copied out first (the appends
	// below write into the accumulation buffer).
	s.materializeText()
	if len(s.text) == 0 {
		s.textAt = start
	}
	for {
		if s.pos == s.end && !s.fill() {
			return s.syntaxf(start, "unexpected EOF in CDATA section")
		}
		if n := cleanCDATA(s.buf[s.pos:s.end]); n > 0 {
			s.text = append(s.text, s.buf[s.pos:s.pos+n]...)
			s.advance(n)
			if s.pos == s.end {
				continue
			}
		}
		switch c := s.buf[s.pos]; contentClass[c] {
		case ccRB:
			k := 0
			for {
				c2, ok := s.peek()
				if !ok {
					return s.syntaxf(start, "unexpected EOF in CDATA section")
				}
				if c2 == ']' {
					s.advance(1)
					k++
					continue
				}
				if c2 == '>' && k >= 2 {
					for ; k > 2; k-- {
						s.text = append(s.text, ']')
					}
					s.advance(1)
					return nil
				}
				for ; k > 0; k-- {
					s.text = append(s.text, ']')
				}
				break
			}
		case ccCR:
			// Line endings normalize here too (XML 1.0 §2.11).
			s.advance(1)
			if n, ok := s.peek(); ok && n == '\n' {
				s.advance(1)
			}
			s.text = append(s.text, '\n')
		case ccHigh:
			if err := s.appendRuneTo(&s.text, s.textAt); err != nil {
				return err
			}
		default: // ccBad: a control byte the XML Char production forbids
			return s.errIllegalChar(s.textAt, rune(c))
		}
	}
}

// scanDoctype processes "<!DOCTYPE ... >". The external identifier is
// skipped; inside a bracketed internal subset, <!ENTITY name "value">
// declarations are collected for reference expansion while everything else
// (element/attlist/notation declarations, parameter entities, PIs,
// comments) is skipped. Quoted strings are respected so '>' inside literals
// does not terminate early.
func (s *Scanner) scanDoctype(start int64) error {
	if err := s.expect("DOCTYPE"); err != nil {
		return err
	}
	bracket := 0
	var quote byte
	for {
		c, ok := s.readByte()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in DOCTYPE")
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '[':
			bracket++
		case ']':
			bracket--
		case '<':
			if bracket > 0 {
				if err := s.scanSubsetDecl(start); err != nil {
					return err
				}
			}
		case '>':
			if bracket <= 0 {
				return nil
			}
		}
	}
}

// scanSubsetDecl handles one declaration inside the internal subset, with
// the leading '<' consumed. Only <!ENTITY name "value"> is interpreted.
func (s *Scanner) scanSubsetDecl(start int64) error {
	c, ok := s.peek()
	if !ok {
		return s.syntaxf(start, "unexpected EOF in DOCTYPE internal subset")
	}
	if c != '!' {
		// PI or junk: let the caller's quote/bracket tracking resume.
		return nil
	}
	s.advance(1)
	// Read the declaration keyword (letters only).
	var kw strings.Builder
	for {
		c, ok = s.peek()
		if !ok || c < 'A' || c > 'Z' {
			break
		}
		kw.WriteByte(c)
		s.advance(1)
	}
	if kw.String() != "ENTITY" {
		// Other declarations (ELEMENT, ATTLIST, NOTATION) or comments:
		// skip to the closing '>' respecting quotes. Comments ("--")
		// are tolerated loosely here.
		return s.skipDeclTail(start)
	}
	s.skipSpace()
	c, ok = s.peek()
	if !ok {
		return s.syntaxf(start, "unexpected EOF in entity declaration")
	}
	if c == '%' {
		// Parameter entity: not supported, skip the declaration.
		return s.skipDeclTail(start)
	}
	name, err := s.readName()
	if err != nil {
		return err
	}
	s.skipSpace()
	c, ok = s.peek()
	if !ok {
		return s.syntaxf(start, "unexpected EOF in entity declaration")
	}
	if c != '\'' && c != '"' {
		// SYSTEM/PUBLIC external entity: unsupported, skipped; a later
		// reference to it reports "unknown entity".
		return s.skipDeclTail(start)
	}
	quote := c
	s.advance(1)
	var val strings.Builder
	for {
		c, ok = s.readByte()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in entity value")
		}
		if c == quote {
			break
		}
		val.WriteByte(c)
	}
	if s.entities == nil {
		s.entities = make(map[string]string)
	}
	// Per XML, the first declaration of an entity binds.
	if _, exists := s.entities[name]; !exists {
		s.entities[name] = val.String()
	}
	return s.skipDeclTail(start)
}

// skipDeclTail consumes up to and including the '>' ending a subset
// declaration, respecting quoted literals.
func (s *Scanner) skipDeclTail(start int64) error {
	var quote byte
	for {
		c, ok := s.readByte()
		if !ok {
			return s.syntaxf(start, "unexpected EOF in DOCTYPE declaration")
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			quote = c
		case '>':
			return nil
		}
	}
}

// emit delivers one event to the handler (or queues it in batch mode). Both
// paths fill a long-lived event struct through a pointer: a sax.Event is
// over a hundred bytes, and building it as a literal then storing it costs a
// bulk copy per event — the dominant cost of markup-dense scans before
// per-field stores. Every field is written because the target slot carries
// the previous event's values.
//
//vitex:hotpath
func (s *Scanner) emit(h sax.Handler, k sax.Kind, name string, depth int, text string, attrs []sax.Attr, off int64) error {
	ev := &s.event
	if s.bh != nil {
		ev = s.batchSlot()
	}
	ev.Kind, ev.Name, ev.Prefix, ev.Local, ev.NameID = k, name, "", "", sax.SymNone
	ev.Depth, ev.Text, ev.Offset = depth, text, off
	ev.Attrs = attrs
	if s.bh != nil {
		return s.batchQueued(ev)
	}
	return h.HandleEvent(ev)
}

// emitTag delivers a start/end-element event carrying the name's QName split
// and local-name symbol ID (or queues it in batch mode).
//
//vitex:hotpath
func (s *Scanner) emitTag(h sax.Handler, k sax.Kind, name symEntry, depth int, attrs []sax.Attr, off int64) error {
	ev := &s.event
	if s.bh != nil {
		ev = s.batchSlot()
	}
	ev.Kind, ev.Name, ev.Prefix, ev.Local, ev.NameID = k, name.name, name.prefix, name.local, name.id
	ev.Depth, ev.Text, ev.Offset = depth, "", off
	ev.Attrs = attrs
	if s.bh != nil {
		return s.batchQueued(ev)
	}
	return h.HandleEvent(ev)
}
