package xmlscan

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sax"
)

// pullAll drains a Puller into a trace.
func pullAll(t *testing.T, doc string) ([]string, error) {
	t.Helper()
	p := NewPuller(strings.NewReader(doc))
	var out []string
	for {
		ev, err := p.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, fmt.Sprintf("%v|%s|%d|%s|%v", ev.Kind, ev.Name, ev.Depth, ev.Text, ev.Attrs))
	}
}

// pushAll produces the same trace through the push API.
func pushAll(t *testing.T, doc string) ([]string, error) {
	t.Helper()
	var out []string
	err := NewScanner(strings.NewReader(doc)).Run(sax.HandlerFunc(func(ev *sax.Event) error {
		out = append(out, fmt.Sprintf("%v|%s|%d|%s|%v", ev.Kind, ev.Name, ev.Depth, ev.Text, ev.Attrs))
		return nil
	}))
	return out, err
}

func TestPullMatchesPush(t *testing.T) {
	docs := []string{
		"<a/>",
		"<a>x<b d='1'/>y</a>",
		datagen.PaperFigure1,
		`<?xml version="1.0"?><r><!--c--><x><![CDATA[data]]></x></r>`,
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		docs = append(docs, datagen.DefaultRandomTree.Generate(rng))
	}
	for _, doc := range docs {
		a, errA := pullAll(t, doc)
		b, errB := pushAll(t, doc)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error disagreement on %q: pull=%v push=%v", doc, errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("trace lengths differ on %q: %d vs %d\npull: %v\npush: %v", doc, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("event %d differs on %q:\npull: %s\npush: %s", i, doc, a[i], b[i])
			}
		}
	}
}

func TestPullSelfClosingYieldsTwoEvents(t *testing.T) {
	p := NewPuller(strings.NewReader("<a/>"))
	kinds := []sax.Kind{}
	for {
		ev, err := p.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []sax.Kind{sax.StartDocument, sax.StartElement, sax.EndElement, sax.EndDocument}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v", kinds)
		}
	}
}

func TestPullErrorsSticky(t *testing.T) {
	p := NewPuller(strings.NewReader("<a><b></a>"))
	var firstErr error
	for i := 0; i < 20; i++ {
		_, err := p.Next()
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("expected syntax error")
	}
	if _, err := p.Next(); !errors.Is(err, firstErr) && err == nil {
		t.Fatal("error must be sticky")
	}
}

func TestPullEOFSticky(t *testing.T) {
	p := NewPuller(strings.NewReader("<a/>"))
	for {
		if _, err := p.Next(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			break
		}
	}
	if _, err := p.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF must be sticky, got %v", err)
	}
}

func TestPullAttrsSurviveNextToken(t *testing.T) {
	p := NewPuller(strings.NewReader(`<a x="1"><b y="2"/></a>`))
	var saved *sax.Event
	for {
		ev, err := p.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == sax.StartElement && ev.Name == "a" {
			cp := *ev
			saved = &cp
		}
	}
	if saved == nil || len(saved.Attrs) != 1 || saved.Attrs[0].Value != "1" {
		t.Fatalf("saved attrs corrupted: %+v", saved)
	}
}
