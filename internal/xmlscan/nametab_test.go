package xmlscan

import (
	"encoding/xml"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/sax"
)

// stdAcceptsName reports whether encoding/xml parses <name/> successfully —
// the reference verdict the ported name tables must reproduce.
func stdAcceptsName(name string) bool {
	return stdAcceptsDoc("<" + name + "/>")
}

// TestNameTablesMatchStdlib sweeps the whole basic multilingual plane,
// comparing isXMLName against encoding/xml for each rune as a name start and
// as a second character. This pins the ported XML 1.0 Appendix B tables to
// the stdlib's data: any transcription error fails here, not in a fuzz
// campaign months later.
func TestNameTablesMatchStdlib(t *testing.T) {
	if testing.Short() {
		t.Skip("BMP sweep skipped in short mode")
	}
	var buf [utf8.UTFMax]byte
	for r := rune(0x21); r <= 0xFFFD; r++ {
		if r >= 0xD800 && r <= 0xDFFF {
			continue // surrogates are not encodable
		}
		n := utf8.EncodeRune(buf[:], r)
		alone := string(buf[:n])
		if strings.ContainsAny(alone, "<>&'\"/=?! \t\r\n") {
			continue // XML structure bytes: never reach name validation
		}
		asFirst := isXMLName([]byte(alone))
		if std := stdAcceptsName(alone); asFirst != std {
			t.Errorf("name start %U: scanner %v, encoding/xml %v", r, asFirst, std)
		}
		second := "a" + alone
		asSecond := isXMLName([]byte(second))
		if std := stdAcceptsName(second); asSecond != std {
			t.Errorf("second char %U: scanner %v, encoding/xml %v", r, asSecond, std)
		}
		if t.Failed() {
			if r > 0x100 { // report a handful, then stop
				break
			}
		}
	}
}

// TestScannerNameVerdicts spot-checks the scanner end to end on name shapes
// the fuzz campaign surfaced.
func TestScannerNameVerdicts(t *testing.T) {
	cases := []struct {
		doc string
		ok  bool
	}{
		{"<a/>", true},
		{"<élément>x</élément>", true},
		{"<a.b-c_d/>", true},
		{"<:/>", true},  // degenerate QName, accepted unsplit
		{"<a:/>", true}, // degenerate QName, accepted unsplit
		{"<p:a xmlns:p='u'/>", true},
		{"<a:b:c/>", false},   // more than one colon
		{"<1a/>", false},      // digit cannot start a name
		{"<a\x80b/>", false},  // invalid UTF-8 in name
		{"<a\u00d7/>", false}, // U+00D7 multiplication sign: not a name char
	}
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	for _, c := range cases {
		err := NewScanner(strings.NewReader(c.doc)).Run(nop)
		if (err == nil) != c.ok {
			t.Errorf("%q: err=%v, want ok=%v", c.doc, err, c.ok)
		}
		if got := stdAcceptsDoc(c.doc); got != c.ok {
			t.Errorf("%q: encoding/xml ok=%v, want %v (fix the expectation)", c.doc, got, c.ok)
		}
	}
}

func stdAcceptsDoc(doc string) bool {
	dec := xml.NewDecoder(strings.NewReader(doc))
	dec.Entity = map[string]string{}
	for {
		_, err := dec.Token()
		if err != nil {
			return err.Error() == "EOF"
		}
	}
}
