package xmlscan

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sax"
)

// collect runs the scanner over doc and returns a compact textual trace of
// the events, or the error.
func collect(t *testing.T, doc string) ([]string, error) {
	t.Helper()
	var out []string
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		switch ev.Kind {
		case sax.StartDocument:
			out = append(out, "doc(")
		case sax.EndDocument:
			out = append(out, ")doc")
		case sax.StartElement:
			s := fmt.Sprintf("<%s d%d", ev.Name, ev.Depth)
			for _, a := range ev.Attrs {
				s += fmt.Sprintf(" %s=%q", a.Name, a.Value)
			}
			out = append(out, s+">")
		case sax.EndElement:
			out = append(out, fmt.Sprintf("</%s d%d>", ev.Name, ev.Depth))
		case sax.Text:
			out = append(out, fmt.Sprintf("text(d%d,%q)", ev.Depth, ev.Text))
		}
		return nil
	})
	err := NewScanner(strings.NewReader(doc)).Run(h)
	return out, err
}

func mustCollect(t *testing.T, doc string) []string {
	t.Helper()
	out, err := collect(t, doc)
	if err != nil {
		t.Fatalf("scan %q: %v", doc, err)
	}
	return out
}

func assertTrace(t *testing.T, doc string, want ...string) {
	t.Helper()
	got := mustCollect(t, doc)
	want = append(append([]string{"doc("}, want...), ")doc")
	if len(got) != len(want) {
		t.Fatalf("scan %q:\n got %v\nwant %v", doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan %q: event %d = %q, want %q\nfull: %v", doc, i, got[i], want[i], got)
		}
	}
}

func TestSimpleElement(t *testing.T) {
	assertTrace(t, "<a></a>", "<a d1>", "</a d1>")
}

func TestNestedElements(t *testing.T) {
	assertTrace(t, "<a><b><c/></b></a>",
		"<a d1>", "<b d2>", "<c d3>", "</c d3>", "</b d2>", "</a d1>")
}

func TestTextContent(t *testing.T) {
	assertTrace(t, "<a>hello</a>", "<a d1>", `text(d2,"hello")`, "</a d1>")
}

func TestTextDepths(t *testing.T) {
	assertTrace(t, "<a>x<b>y</b>z</a>",
		"<a d1>", `text(d2,"x")`, "<b d2>", `text(d3,"y")`, "</b d2>", `text(d2,"z")`, "</a d1>")
}

func TestAttributes(t *testing.T) {
	assertTrace(t, `<a id="1" name='n &amp; m'/>`,
		`<a d1 id="1" name="n & m">`, "</a d1>")
}

func TestAttributeWhitespace(t *testing.T) {
	assertTrace(t, "<a  id = \"1\"\n\tb='2' ></a>",
		`<a d1 id="1" b="2">`, "</a d1>")
}

func TestSelfClosing(t *testing.T) {
	assertTrace(t, "<a><b/></a>", "<a d1>", "<b d2>", "</b d2>", "</a d1>")
}

func TestEntities(t *testing.T) {
	assertTrace(t, "<a>&lt;&gt;&amp;&apos;&quot;</a>",
		"<a d1>", `text(d2,"<>&'\"")`, "</a d1>")
}

func TestCharRefs(t *testing.T) {
	assertTrace(t, "<a>&#65;&#x42;&#x1F600;</a>",
		"<a d1>", fmt.Sprintf("text(d2,%q)", "AB\U0001F600"), "</a d1>")
}

func TestCDATA(t *testing.T) {
	assertTrace(t, "<a><![CDATA[<not>&markup;]]></a>",
		"<a d1>", `text(d2,"<not>&markup;")`, "</a d1>")
}

// CDATA must coalesce with surrounding character data into one text node.
func TestCDATACoalesces(t *testing.T) {
	assertTrace(t, "<a>x<![CDATA[y]]>z</a>",
		"<a d1>", `text(d2,"xyz")`, "</a d1>")
}

func TestCDATAEmpty(t *testing.T) {
	assertTrace(t, "<a><![CDATA[]]>v</a>", "<a d1>", `text(d2,"v")`, "</a d1>")
}

func TestCDATAWithBrackets(t *testing.T) {
	assertTrace(t, "<a><![CDATA[a]b]]c]]></a>",
		"<a d1>", `text(d2,"a]b]]c")`, "</a d1>")
}

// Comments split text runs (they are distinct nodes in the XPath data model).
func TestCommentSplitsText(t *testing.T) {
	assertTrace(t, "<a>x<!-- c -->y</a>",
		"<a d1>", `text(d2,"x")`, `text(d2,"y")`, "</a d1>")
}

func TestCommentOutsideRoot(t *testing.T) {
	assertTrace(t, "<!-- head --><a/><!-- tail -->", "<a d1>", "</a d1>")
}

func TestProcessingInstruction(t *testing.T) {
	assertTrace(t, `<?xml version="1.0"?><a><?pi data?></a>`, "<a d1>", "</a d1>")
}

func TestDoctype(t *testing.T) {
	assertTrace(t, `<!DOCTYPE book SYSTEM "book.dtd"><a/>`, "<a d1>", "</a d1>")
}

func TestDoctypeInternalSubset(t *testing.T) {
	assertTrace(t, `<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> <!ENTITY e "x>y"> ]><a/>`,
		"<a d1>", "</a d1>")
}

func TestWhitespaceOutsideRoot(t *testing.T) {
	assertTrace(t, "\n  <a/>\n\t ", "<a d1>", "</a d1>")
}

func TestUTF8Names(t *testing.T) {
	assertTrace(t, "<héllo>ü</héllo>", "<héllo d1>", `text(d2,"ü")`, "</héllo d1>")
}

func TestLoneGTInText(t *testing.T) {
	assertTrace(t, "<a>1 > 0</a>", "<a d1>", `text(d2,"1 > 0")`, "</a d1>")
}

func TestDeepNesting(t *testing.T) {
	const n = 200
	doc := strings.Repeat("<x>", n) + strings.Repeat("</x>", n)
	got := mustCollect(t, doc)
	if len(got) != 2*n+2 {
		t.Fatalf("got %d events, want %d", len(got), 2*n+2)
	}
	if got[n] != fmt.Sprintf("<x d%d>", n) {
		t.Fatalf("innermost start = %q", got[n])
	}
}

func TestLargeTextTokenGrowsBuffer(t *testing.T) {
	big := strings.Repeat("lorem ipsum ", 20000) // ~240KB, > DefaultBufferSize
	got := mustCollect(t, "<a>"+big+"</a>")
	want := fmt.Sprintf("text(d2,%q)", big)
	if got[2] != want {
		t.Fatalf("large text mangled (len %d vs %d)", len(got[2]), len(want))
	}
}

func TestOffsets(t *testing.T) {
	doc := `<a><b id="1"/></a>`
	var offs []int64
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.StartElement {
			offs = append(offs, ev.Offset)
		}
		return nil
	})
	if err := NewScanner(strings.NewReader(doc)).Run(h); err != nil {
		t.Fatal(err)
	}
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 3 {
		t.Fatalf("offsets = %v, want [0 3]", offs)
	}
}

func TestSingleUse(t *testing.T) {
	s := NewScanner(strings.NewReader("<a/>"))
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	if err := s.Run(nop); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nop); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestHandlerErrorAborts(t *testing.T) {
	wantErr := errors.New("stop")
	n := 0
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		n++
		if ev.Kind == sax.StartElement {
			return wantErr
		}
		return nil
	})
	err := NewScanner(strings.NewReader("<a><b/></a>")).Run(h)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if n != 2 { // StartDocument + <a>
		t.Fatalf("handler called %d times, want 2", n)
	}
}

// --- error cases ---

func wantSyntaxError(t *testing.T, doc, substr string) {
	t.Helper()
	_, err := collect(t, doc)
	if err == nil {
		t.Fatalf("scan %q: expected error containing %q, got nil", doc, substr)
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("scan %q: error %v is not a *SyntaxError", doc, err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("scan %q: error %q does not contain %q", doc, err, substr)
	}
}

func TestErrMismatchedTags(t *testing.T)  { wantSyntaxError(t, "<a><b></a></b>", "mismatched") }
func TestErrUnclosedRoot(t *testing.T)    { wantSyntaxError(t, "<a><b></b>", "still open") }
func TestErrMultipleRoots(t *testing.T)   { wantSyntaxError(t, "<a/><b/>", "multiple root") }
func TestErrNoRoot(t *testing.T)          { wantSyntaxError(t, "  \n ", "no root") }
func TestErrTextOutsideRoot(t *testing.T) { wantSyntaxError(t, "junk<a/>", "outside root") }
func TestErrTrailingText(t *testing.T)    { wantSyntaxError(t, "<a/>junk", "outside root") }
func TestErrUnquotedAttr(t *testing.T)    { wantSyntaxError(t, "<a id=1/>", "quoted") }
func TestErrDuplicateAttr(t *testing.T) {
	wantSyntaxError(t, `<a x="1" x="2"/>`, "duplicate attribute")
}
func TestErrBadEntity(t *testing.T)         { wantSyntaxError(t, "<a>&nope;</a>", "unknown entity") }
func TestErrBadCharRef(t *testing.T)        { wantSyntaxError(t, "<a>&#zz;</a>", "invalid digit") }
func TestErrEmptyCharRef(t *testing.T)      { wantSyntaxError(t, "<a>&#;</a>", "character reference") }
func TestErrHugeCharRef(t *testing.T)       { wantSyntaxError(t, "<a>&#x110000;</a>", "out of range") }
func TestErrUnterminatedTag(t *testing.T)   { wantSyntaxError(t, "<a", "unexpected EOF") }
func TestErrUnterminatedCDATA(t *testing.T) { wantSyntaxError(t, "<a><![CDATA[x</a>", "CDATA") }
func TestErrCommentDoubleDash(t *testing.T) { wantSyntaxError(t, "<a><!-- a -- b --></a>", "--") }
func TestErrUnmatchedEnd(t *testing.T)      { wantSyntaxError(t, "</a>", "unmatched end tag") }
func TestErrLTInAttr(t *testing.T)          { wantSyntaxError(t, `<a x="<"/>`, "not allowed") }
func TestErrBadNameStart(t *testing.T)      { wantSyntaxError(t, "<1a/>", "invalid name") }

func TestErrEmptyInput(t *testing.T) { wantSyntaxError(t, "", "no root") }

// errReader fails after n bytes, to exercise read-error propagation.
type errReader struct {
	s string
	n int
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.n >= len(r.s) {
		return 0, fmt.Errorf("disk on fire")
	}
	// Dribble one byte at a time to exercise buffer refills.
	p[0] = r.s[r.n]
	r.n++
	return 1, nil
}

func TestReadErrorPropagates(t *testing.T) {
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	err := NewScanner(&errReader{s: "<a><b></b>"}).Run(nop)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		// The scanner may also report the open-elements syntax error;
		// either is acceptable as long as it fails.
		if err == nil {
			t.Fatal("expected error")
		}
	}
}

func TestOneByteReads(t *testing.T) {
	doc := `<root a="v"><child>text &amp; more</child><!--c--><kid/></root>`
	var a, b []string
	ha := sax.HandlerFunc(func(ev *sax.Event) error { a = append(a, fmt.Sprint(*ev)); return nil })
	hb := sax.HandlerFunc(func(ev *sax.Event) error { b = append(b, fmt.Sprint(*ev)); return nil })
	if err := NewScanner(strings.NewReader(doc)).Run(ha); err != nil {
		t.Fatal(err)
	}
	if err := NewScanner(iotest1(doc)).Run(hb); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// iotest1 returns a reader that yields one byte per Read.
func iotest1(s string) io.Reader { return &oneByteReader{s: s} }

type oneByteReader struct {
	s string
	n int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.n >= len(r.s) {
		return 0, io.EOF
	}
	p[0] = r.s[r.n]
	r.n++
	return 1, nil
}

func TestPaperFigure1(t *testing.T) {
	// The 17-line sample document from figure 1 of the paper.
	doc := datagen.PaperFigure1
	var starts []string
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.StartElement {
			starts = append(starts, fmt.Sprintf("%s@%d", ev.Name, ev.Depth))
		}
		return nil
	})
	if err := NewScanner(strings.NewReader(doc)).Run(h); err != nil {
		t.Fatal(err)
	}
	want := []string{"book@1", "section@2", "section@3", "section@4",
		"table@5", "table@6", "table@7", "cell@8", "position@6", "author@3"}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v", starts)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("start %d = %q, want %q", i, starts[i], want[i])
		}
	}
}

// collectText parses doc and returns every Text event's content.
func collectText(t *testing.T, doc string) []string {
	t.Helper()
	var out []string
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.Text {
			out = append(out, ev.Text)
		}
		return nil
	})
	if err := NewScanner(strings.NewReader(doc)).Run(h); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestUTF8BOMSkipped(t *testing.T) {
	got := collectText(t, "\xEF\xBB\xBF<r>x</r>")
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("text = %q", got)
	}
	// A reused scanner re-checks the BOM per document.
	s := NewScanner(strings.NewReader("\xEF\xBB\xBF<r>a</r>"))
	nop := sax.HandlerFunc(func(*sax.Event) error { return nil })
	if err := s.Run(nop); err != nil {
		t.Fatal(err)
	}
	s.Reset(strings.NewReader("\xEF\xBB\xBF<r>b</r>"))
	if err := s.Run(nop); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestUTF16BOMRejected(t *testing.T) {
	for name, doc := range map[string]string{
		"UTF-16BE": "\xFE\xFF\x00<\x00r",
		"UTF-16LE": "\xFF\xFE<\x00r\x00",
		"UTF-32BE": "\x00\x00\xFE\xFF\x00\x00\x00<",
	} {
		err := NewScanner(strings.NewReader(doc)).Run(sax.HandlerFunc(func(*sax.Event) error { return nil }))
		if err == nil || !strings.Contains(err.Error(), "unsupported encoding") {
			t.Errorf("%s: err = %v, want unsupported-encoding error", name, err)
		}
	}
}

func TestLineEndingNormalization(t *testing.T) {
	// XML 1.0 §2.11: \r\n and lone \r normalize to \n in text, CDATA and
	// attribute values; character references are exempt.
	got := collectText(t, "<r>a\r\nb\rc<![CDATA[d\r\ne\rf]]>\rg&#13;h</r>")
	want := []string{"a\nb\ncd\ne\nf\ng\rh"}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("text = %q, want %q", got, want)
	}
	var attr string
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.StartElement && len(ev.Attrs) > 0 {
			attr = ev.Attrs[0].Value
		}
		return nil
	})
	if err := NewScanner(strings.NewReader("<r k='a\r\nb\rc&#13;d'/>")).Run(h); err != nil {
		t.Fatal(err)
	}
	if attr != "a\nb\nc\rd" {
		t.Fatalf("attr = %q", attr)
	}
}

func TestQNameSplitOnEvents(t *testing.T) {
	type rec struct {
		name, prefix, local string
		id                  int32
	}
	var elems []rec
	var attrs []rec
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		if ev.Kind == sax.StartElement {
			elems = append(elems, rec{ev.Name, ev.Prefix, ev.Local, ev.NameID})
			for i := range ev.Attrs {
				a := &ev.Attrs[i]
				attrs = append(attrs, rec{a.Name, a.Prefix, a.Local, a.NameID})
			}
		}
		return nil
	})
	syms := sax.NewSymbols()
	aID := syms.Intern("a")
	kID := syms.Intern("k")
	doc := `<r xmlns:p='u'><p:a p:k='1' k='2'/></r>`
	if err := NewScannerWith(strings.NewReader(doc), syms).Run(h); err != nil {
		t.Fatal(err)
	}
	wantElems := []rec{{"r", "", "r", sax.SymUnknown}, {"p:a", "p", "a", aID}}
	wantAttrs := []rec{{"xmlns:p", "xmlns", "p", sax.SymUnknown}, {"p:k", "p", "k", kID}, {"k", "", "k", kID}}
	if fmt.Sprint(elems) != fmt.Sprint(wantElems) {
		t.Fatalf("elems = %v, want %v", elems, wantElems)
	}
	if fmt.Sprint(attrs) != fmt.Sprint(wantAttrs) {
		t.Fatalf("attrs = %v, want %v", attrs, wantAttrs)
	}
}
