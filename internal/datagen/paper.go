// Package datagen generates the XML corpora used by tests, examples and the
// benchmark harness. It stands in for the datasets of the ViteX paper: the
// Protein Sequence Database [2] (no longer distributed; see Protein), the
// recursive book/section sample of figure 1, and synthetic recursive and
// random-tree workloads that exercise the exponential-match behaviour the
// paper's motivation describes. All generators are deterministic for a given
// seed and parameters so experiments are reproducible.
package datagen

// PaperFigure1 is the 17-line sample document of figure 1 in the ViteX paper
// (ICDE 2005), with the paper's `</>` shorthand expanded to well-formed
// closing tags. Against the query //section[author]//table[position]//cell
// the only solution is the cell opened on line 8 ("A"): the paper walks
// through how the nine pattern matches via table₅/table₆/table₇ ×
// section₂/section₃/section₄ collapse to the single match
// ⟨section₂, table₅, cell₈⟩ once ⟨position⟩ (line 11) and ⟨author⟩ (line 15)
// arrive.
const PaperFigure1 = `<book>
 <section>
  <section>
   <section>
    <table>
     <table>
      <table>
       <cell> A </cell>
      </table>
     </table>
     <position> B </position>
    </table>
   </section>
  </section>
  <author> C </author>
 </section>
</book>`

// PaperQuery is the running-example query of the paper (§1 and figure 3).
const PaperQuery = "//section[author]//table[position]//cell"

// PaperProteinQuery is the query of §2 claim 5, timed at 6.02s on the 75MB
// Protein dataset (4.43s of which was SAX parsing).
const PaperProteinQuery = "//ProteinEntry[reference]/@id"
