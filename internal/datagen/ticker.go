package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Ticker generates a stock-market event stream — the first motivating
// application of the paper's introduction ("stock market data, sports
// tickers, electronic personalized newspapers"). Each trade is a small
// element with symbol, price and volume; queries like
// //trade[symbol='ACME']/price exercise incremental result delivery
// (experiment E8): solutions must flow out long before the stream ends.
type Ticker struct {
	// Trades is the number of trade records.
	Trades int
	// Symbols is the symbol universe (uniformly drawn).
	Symbols []string
	// Seed seeds the deterministic stream.
	Seed int64
}

// DefaultSymbols is a small symbol universe.
var DefaultSymbols = []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA", "STARK", "WAYNE"}

// SparseTickerQueries builds the standing-subscription workload used by the
// routed-dispatch benchmarks and the perf-trajectory tool: `matching`
// queries over the ticker vocabulary followed by `dead` queries over names
// that never occur in any ticker feed. One definition keeps the committed
// BENCH_*.json numbers and BenchmarkQuerySetSparse measuring the same
// workload.
func SparseTickerQueries(matching, dead int) []string {
	sources := make([]string, 0, matching+dead)
	for i := 0; i < matching; i++ {
		sym := DefaultSymbols[i%len(DefaultSymbols)]
		sources = append(sources, fmt.Sprintf("//trade[symbol='%s']/price", sym))
	}
	for i := 0; i < dead; i++ {
		sources = append(sources, fmt.Sprintf("//catalog%d[entry%d]//leaf%d", i, i, i))
	}
	return sources
}

// String renders the whole stream as one document.
func (tk Ticker) String() string {
	symbols := tk.Symbols
	if len(symbols) == 0 {
		symbols = DefaultSymbols
	}
	rng := rand.New(rand.NewSource(tk.Seed))
	var sb strings.Builder
	sb.WriteString("<ticker>\n")
	price := make(map[string]float64, len(symbols))
	for _, s := range symbols {
		price[s] = 20 + rng.Float64()*180
	}
	for i := 0; i < tk.Trades; i++ {
		sym := symbols[rng.Intn(len(symbols))]
		price[sym] *= 1 + (rng.Float64()-0.5)*0.02
		fmt.Fprintf(&sb, " <trade seq=\"%d\">\n  <symbol>%s</symbol>\n  <price>%.2f</price>\n  <volume>%d</volume>\n </trade>\n",
			i, sym, price[sym], 100*(1+rng.Intn(50)))
	}
	sb.WriteString("</ticker>\n")
	return sb.String()
}
