package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// QueryGen is a grammar-driven random query generator spanning the full
// supported XPath fragment — '/' and '//' steps, name tests, '*', '@attr'
// and 'text()' leaves, value comparisons (= != < <= > >=) against string and
// numeric literals, self comparisons [. = 'v'], 'and'/'or' with parentheses,
// predicate paths with nested predicates, and top-level unions. It is the
// query side of the randomized differential campaign: everything it emits
// must parse, and every engine must agree on it.
//
// All randomness comes from the rng, so a seeded rng reproduces the query.
// The simpler RandomQuery remains for the older property tests; QueryGen
// subsumes it with deeper nesting and the constructs it never emitted
// (nested predicates, parenthesized disjunctions, multi-branch unions,
// text() comparisons, relative ordering operators).
type QueryGen struct {
	// Labels/Attrs/Texts should match the document generator's alphabet so
	// queries hit; Texts doubles as the string-literal pool.
	Labels []string
	Attrs  []string
	Texts  []string
	// Numbers is the numeric-literal pool (as written in the query).
	Numbers []string
	// MaxSteps bounds the spine length; MaxPredDepth bounds predicate
	// nesting (a predicate path whose steps carry predicates, recursively);
	// MaxBranches bounds union width (1 = never a union).
	MaxSteps     int
	MaxPredDepth int
	MaxBranches  int
	// ConjunctiveOnly suppresses 'or' (the naive baseline's fragment).
	ConjunctiveOnly bool
}

// DefaultQueryGen is tuned to the ChurnRandomTree / DefaultRandomTree
// alphabet.
var DefaultQueryGen = QueryGen{
	Labels:       []string{"a", "b", "c", "d"},
	Attrs:        []string{"id", "k"},
	Texts:        []string{"1", "2", "3", "x", "y"},
	Numbers:      []string{"1", "2", "2.5", "3"},
	MaxSteps:     4,
	MaxPredDepth: 2,
	MaxBranches:  3,
}

// ChurnRandomTree is the document profile of the churn and differential
// campaigns: the DefaultRandomTree alphabet with deeper nesting and a strong
// self-nesting bias, so descendant axes meet recursive label chains.
var ChurnRandomTree = RandomTree{
	MaxDepth:     9,
	MaxFanout:    3,
	Labels:       []string{"a", "b", "c", "d"},
	AttrProb:     0.3,
	TextProb:     0.4,
	Attrs:        []string{"id", "k"},
	Texts:        []string{"1", "2", "3", "x", "y"},
	SelfNestProb: 0.35,
}

// Generate emits one random query: a single path, or a union of up to
// MaxBranches paths.
func (g QueryGen) Generate(rng *rand.Rand) string {
	branches := 1
	if g.MaxBranches > 1 && rng.Intn(3) == 0 {
		branches = 2 + rng.Intn(g.MaxBranches-1)
	}
	parts := make([]string, branches)
	for i := range parts {
		parts[i] = g.GeneratePath(rng)
	}
	return strings.Join(parts, " | ")
}

// GeneratePath emits one random non-union path.
func (g QueryGen) GeneratePath(rng *rand.Rand) string {
	var sb strings.Builder
	steps := 1 + rng.Intn(g.MaxSteps)
	for i := 0; i < steps; i++ {
		sb.WriteString(g.axis(rng))
		sb.WriteString(g.elementStep(rng, g.MaxPredDepth))
	}
	// Occasionally end on an attribute or text() leaf (no predicates or
	// comparisons are allowed there at top level).
	switch rng.Intn(6) {
	case 0:
		sb.WriteString("/@" + pick(rng, g.Attrs))
	case 1:
		sb.WriteString("/text()")
	}
	return sb.String()
}

func (g QueryGen) axis(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return "/"
	}
	return "//"
}

// elementStep emits a name or '*' test with optional predicates nested up to
// depth.
func (g QueryGen) elementStep(rng *rand.Rand, depth int) string {
	label := pick(rng, g.Labels)
	if rng.Intn(8) == 0 {
		label = "*"
	}
	if rng.Intn(3) != 0 {
		return label
	}
	preds := 1
	if rng.Intn(6) == 0 {
		preds = 2 // two bracket expressions, implicitly conjoined
	}
	var sb strings.Builder
	sb.WriteString(label)
	for i := 0; i < preds; i++ {
		sb.WriteString("[")
		sb.WriteString(g.boolExpr(rng, depth, 2))
		sb.WriteString("]")
	}
	return sb.String()
}

// boolExpr emits an and/or combination of predicate leaves; fanout bounds
// the connective width.
func (g QueryGen) boolExpr(rng *rand.Rand, depth, fanout int) string {
	if fanout <= 0 || rng.Intn(3) != 0 {
		return g.predLeaf(rng, depth)
	}
	conn := " and "
	if !g.ConjunctiveOnly && rng.Intn(2) == 0 {
		conn = " or "
	}
	left := g.boolExpr(rng, depth, fanout-1)
	right := g.boolExpr(rng, depth, fanout-1)
	expr := left + conn + right
	if rng.Intn(2) == 0 {
		return "(" + expr + ")"
	}
	return expr
}

// predLeaf emits one predicate atom: attribute/text existence tests, value
// comparisons, self comparisons, or a relative path (possibly './/'-rooted,
// possibly with nested predicates, possibly ending in a comparison).
func (g QueryGen) predLeaf(rng *rand.Rand, depth int) string {
	switch rng.Intn(8) {
	case 0:
		return "@" + pick(rng, g.Attrs)
	case 1:
		return "@" + pick(rng, g.Attrs) + g.comparison(rng)
	case 2:
		return ". = '" + pick(rng, g.Texts) + "'"
	case 3:
		return "text()"
	case 4:
		return "text()" + g.comparison(rng)
	default:
		return g.predPath(rng, depth)
	}
}

// predPath emits a relative path predicate of 1-3 steps. Non-final steps are
// element tests (optionally with nested predicates when depth allows); the
// final step may be an element (optionally compared), '@attr' or 'text()'.
func (g QueryGen) predPath(rng *rand.Rand, depth int) string {
	var sb strings.Builder
	if rng.Intn(3) == 0 {
		sb.WriteString(".//")
	}
	steps := 1 + rng.Intn(3)
	for i := 0; i < steps; i++ {
		if i > 0 {
			sb.WriteString(g.axis(rng))
		}
		last := i == steps-1
		if last {
			switch rng.Intn(6) {
			case 0:
				sb.WriteString("@" + pick(rng, g.Attrs))
				return sb.String()
			case 1:
				sb.WriteString("text()")
				if rng.Intn(2) == 0 {
					sb.WriteString(g.comparison(rng))
				}
				return sb.String()
			}
		}
		if depth > 0 && rng.Intn(4) == 0 {
			sb.WriteString(g.elementStep(rng, depth-1))
		} else {
			label := pick(rng, g.Labels)
			if rng.Intn(10) == 0 {
				label = "*"
			}
			sb.WriteString(label)
		}
		if last && rng.Intn(4) == 0 {
			sb.WriteString(g.comparison(rng))
		}
	}
	return sb.String()
}

// comparison emits "op literal" with a string or numeric literal.
func (g QueryGen) comparison(rng *rand.Rand) string {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	op := ops[rng.Intn(len(ops))]
	if len(g.Numbers) > 0 && rng.Intn(2) == 0 {
		return fmt.Sprintf(" %s %s", op, pick(rng, g.Numbers))
	}
	return fmt.Sprintf(" %s '%s'", op, pick(rng, g.Texts))
}

func pick(rng *rand.Rand, from []string) string {
	return from[rng.Intn(len(from))]
}
