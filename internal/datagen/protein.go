package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Protein generates a deterministic corpus shaped like the Protein Sequence
// Database of Georgetown PIR — the 75MB dataset of the paper's experiments
// ([2]; the original file is no longer distributed). The generator preserves
// the properties the paper's numbers depend on: a shallow (depth ≤ 6),
// non-recursive, very wide document (hundreds of thousands of ProteinEntry
// records), ~90% of bytes in text/attribute content, and the elements the
// paper's query touches (//ProteinEntry[reference]/@id). About 1 in 8
// entries has no reference child, so the paper's query is selective.
type Protein struct {
	// TargetBytes is the approximate output size (the generator stops
	// after the entry that crosses the target). 75<<20 reproduces the
	// paper's dataset scale.
	TargetBytes int64
	// Seed makes the corpus reproducible.
	Seed int64
}

// aminoAcids is the 20-letter protein alphabet used for sequences.
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

var organisms = []string{
	"Homo sapiens", "Mus musculus", "Rattus norvegicus", "Escherichia coli",
	"Saccharomyces cerevisiae", "Drosophila melanogaster", "Arabidopsis thaliana",
	"Caenorhabditis elegans", "Danio rerio", "Gallus gallus",
}

var journals = []string{
	"J. Biol. Chem.", "Proc. Natl. Acad. Sci. U.S.A.", "Nucleic Acids Res.",
	"EMBO J.", "Biochemistry", "FEBS Lett.", "Nature", "Science",
}

var surnames = []string{
	"Chen", "Davidson", "Zheng", "Smith", "Garcia", "Kumar", "Sato",
	"Mueller", "Rossi", "Kim", "Olsen", "Novak", "Silva", "Dubois",
}

// WriteTo streams the corpus to w and returns the number of bytes written.
func (p Protein) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	rng := rand.New(rand.NewSource(p.Seed))
	if _, err := io.WriteString(cw, "<ProteinDatabase>\n"); err != nil {
		return cw.n, err
	}
	for i := 0; cw.n < p.TargetBytes; i++ {
		if _, err := writeEntry(cw, rng, i); err != nil {
			return cw.n, err
		}
	}
	if _, err := io.WriteString(cw, "</ProteinDatabase>\n"); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// String renders the corpus in memory (tests and small examples only).
func (p Protein) String() string {
	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

// Counts returns how many ProteinEntry records a corpus of this
// configuration contains, and how many of them carry a reference child (the
// cardinality of the paper's query //ProteinEntry[reference]/@id). It
// regenerates the corpus into a counting sink, so it is exactly consistent
// with WriteTo.
func (p Protein) Counts() (entries, withRef int) {
	rng := rand.New(rand.NewSource(p.Seed))
	cw := &countWriter{w: io.Discard}
	if _, err := io.WriteString(cw, "<ProteinDatabase>\n"); err != nil {
		return 0, 0
	}
	for cw.n < p.TargetBytes {
		hasRef, err := writeEntry(cw, rng, entries)
		if err != nil {
			return entries, withRef
		}
		entries++
		if hasRef {
			withRef++
		}
	}
	return entries, withRef
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeEntry(w io.Writer, rng *rand.Rand, i int) (hasRef bool, err error) {
	id := fmt.Sprintf("PIR%07d", i)
	org := organisms[rng.Intn(len(organisms))]
	name := proteinName(rng)
	hasRef = rng.Intn(8) != 0 // ~7/8 of entries carry references
	seq := randomSeq(rng, 120+rng.Intn(360))
	var b strings.Builder
	fmt.Fprintf(&b, "<ProteinEntry id=\"%s\">\n", id)
	fmt.Fprintf(&b, " <header>\n  <uid>%s</uid>\n  <accession>A%06d</accession>\n  <created_date>%02d-%s-%d</created_date>\n </header>\n",
		id, i, 1+rng.Intn(28), []string{"Jan", "Apr", "Jul", "Oct"}[rng.Intn(4)], 1988+rng.Intn(14))
	fmt.Fprintf(&b, " <protein>\n  <name>%s</name>\n  <classification><superfamily>%s superfamily</superfamily></classification>\n </protein>\n",
		name, name)
	if hasRef {
		nrefs := 1 + rng.Intn(3)
		for j := 0; j < nrefs; j++ {
			fmt.Fprintf(&b, " <reference>\n  <refinfo refid=\"%s.%d\">\n   <authors>\n", id, j)
			nauth := 1 + rng.Intn(4)
			for k := 0; k < nauth; k++ {
				fmt.Fprintf(&b, "    <author>%s, %c.</author>\n",
					surnames[rng.Intn(len(surnames))], 'A'+rune(rng.Intn(26)))
			}
			fmt.Fprintf(&b, "   </authors>\n   <citation>%s</citation>\n   <year>%d</year>\n  </refinfo>\n </reference>\n",
				journals[rng.Intn(len(journals))], 1970+rng.Intn(32))
		}
	}
	fmt.Fprintf(&b, " <organism>\n  <source>%s</source>\n  <common>%s</common>\n </organism>\n", org, org)
	fmt.Fprintf(&b, " <summary>\n  <length>%d</length>\n  <type>complete</type>\n </summary>\n", len(seq))
	fmt.Fprintf(&b, " <sequence>%s</sequence>\n</ProteinEntry>\n", seq)
	_, err = io.WriteString(w, b.String())
	return hasRef, err
}

func proteinName(rng *rand.Rand) string {
	prefixes := []string{"cytochrome", "kinase", "hemoglobin", "ferredoxin", "ubiquitin",
		"actin", "myosin", "histone", "collagen", "insulin"}
	suffixes := []string{"alpha chain", "beta chain", "precursor", "isoform 2", "fragment",
		"family member", "homolog", "subunit"}
	return prefixes[rng.Intn(len(prefixes))] + " " + suffixes[rng.Intn(len(suffixes))]
}

func randomSeq(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[rng.Intn(len(aminoAcids))]
	}
	return string(b)
}
