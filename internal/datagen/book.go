package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Book generates recursive book/section documents in the shape of the
// paper's figure 1: nested sections containing nested tables with cells,
// plus author and position elements that make the paper's predicates
// selective. Recursion depth is the lever that makes the number of pattern
// matches of //section//table//cell grow combinatorially — the workload of
// experiment E5.
type Book struct {
	// SectionDepth is the nesting depth of sections (figure 1 uses 3).
	SectionDepth int
	// TableDepth is the nesting depth of tables inside the innermost
	// section (figure 1 uses 3).
	TableDepth int
	// Repeat lays out this many independent copies of the nested
	// structure under the root, scaling data size without deepening
	// recursion.
	Repeat int
	// AuthorEvery places an <author> in one out of this many outermost
	// sections (1 = every copy, 0 = never), controlling predicate
	// selectivity.
	AuthorEvery int
	// PositionEvery places a <position> next to the outermost table of
	// one out of this many copies (1 = every copy, 0 = never).
	PositionEvery int
}

// Figure1Shape is the configuration matching the paper's figure 1 document.
var Figure1Shape = Book{SectionDepth: 3, TableDepth: 3, Repeat: 1, AuthorEvery: 1, PositionEvery: 1}

// String renders the document.
func (b Book) String() string {
	var sb strings.Builder
	sb.WriteString("<book>\n")
	for i := 0; i < b.Repeat; i++ {
		b.writeCopy(&sb, i)
	}
	sb.WriteString("</book>\n")
	return sb.String()
}

func (b Book) writeCopy(sb *strings.Builder, i int) {
	for d := 0; d < b.SectionDepth; d++ {
		sb.WriteString(strings.Repeat(" ", d+1))
		sb.WriteString("<section>\n")
	}
	ind := strings.Repeat(" ", b.SectionDepth+1)
	for d := 0; d < b.TableDepth; d++ {
		sb.WriteString(ind + strings.Repeat(" ", d))
		sb.WriteString("<table>\n")
	}
	sb.WriteString(ind + strings.Repeat(" ", b.TableDepth))
	fmt.Fprintf(sb, "<cell>C%d</cell>\n", i)
	for d := b.TableDepth - 1; d >= 0; d-- {
		if d == 0 && b.PositionEvery > 0 && i%b.PositionEvery == 0 {
			sb.WriteString(ind + strings.Repeat(" ", d))
			sb.WriteString("<position>B</position>\n")
		}
		sb.WriteString(ind + strings.Repeat(" ", d))
		sb.WriteString("</table>\n")
	}
	for d := b.SectionDepth - 1; d >= 0; d-- {
		if d == 0 && b.AuthorEvery > 0 && i%b.AuthorEvery == 0 {
			sb.WriteString(strings.Repeat(" ", d+1))
			sb.WriteString("<author>C</author>\n")
		}
		sb.WriteString(strings.Repeat(" ", d+1))
		sb.WriteString("</section>\n")
	}
}

// RecursiveChain produces the minimal adversarial input for match
// enumeration: depth nested <a> elements around a single <b/>. Against
// chain queries //a//a…//b the naive engine materializes one partial match
// per combination of a-levels — binomial growth — while TwigM's stacks stay
// linear.
func RecursiveChain(depth int) string {
	return strings.Repeat("<a>", depth) + "<b/>" + strings.Repeat("</a>", depth)
}

// ChainQuery builds the query //a//a…(k times)…//b used by E5.
func ChainQuery(k int) string {
	return strings.Repeat("//a", k) + "//b"
}

// RandomTree generates a random labeled tree for property-based testing.
// All randomness comes from rng, so a seeded rng reproduces the document.
type RandomTree struct {
	// MaxDepth bounds nesting; MaxFanout bounds children per element.
	MaxDepth  int
	MaxFanout int
	// Labels is the element alphabet; small alphabets force recursion
	// and label collisions, the hard cases for streaming evaluation.
	Labels []string
	// AttrProb/TextProb are per-element probabilities of carrying an
	// attribute (named from Attrs) or a text child.
	AttrProb float64
	TextProb float64
	Attrs    []string
	// Texts is the text alphabet (short values so comparisons hit).
	Texts []string
	// SelfNestProb, when positive, is the probability that a child element
	// repeats its parent's label — the recursive chains (a inside a inside
	// a) that make descendant-axis pattern-match counts explode. Zero keeps
	// the label choice uniform (and the stream of a seeded rng unchanged).
	SelfNestProb float64
}

// DefaultRandomTree is tuned for the cross-engine property tests: four
// labels, depth 7, heavy recursion.
var DefaultRandomTree = RandomTree{
	MaxDepth:  7,
	MaxFanout: 4,
	Labels:    []string{"a", "b", "c", "d"},
	AttrProb:  0.3,
	TextProb:  0.4,
	Attrs:     []string{"id", "k"},
	Texts:     []string{"1", "2", "3", "x", "y"},
}

// Generate renders one random document.
func (rt RandomTree) Generate(rng *rand.Rand) string {
	var sb strings.Builder
	rt.element(&sb, rng, 1, "")
	return sb.String()
}

func (rt RandomTree) element(sb *strings.Builder, rng *rand.Rand, depth int, parent string) {
	label := rt.Labels[rng.Intn(len(rt.Labels))]
	if rt.SelfNestProb > 0 && parent != "" && rng.Float64() < rt.SelfNestProb {
		label = parent
	}
	sb.WriteString("<" + label)
	if rng.Float64() < rt.AttrProb {
		attr := rt.Attrs[rng.Intn(len(rt.Attrs))]
		fmt.Fprintf(sb, " %s=%q", attr, rt.Texts[rng.Intn(len(rt.Texts))])
	}
	kids := 0
	if depth < rt.MaxDepth {
		kids = rng.Intn(rt.MaxFanout + 1)
	}
	if kids == 0 && rng.Float64() >= rt.TextProb {
		sb.WriteString("/>")
		return
	}
	sb.WriteString(">")
	if rng.Float64() < rt.TextProb {
		sb.WriteString(rt.Texts[rng.Intn(len(rt.Texts))])
	}
	for i := 0; i < kids; i++ {
		rt.element(sb, rng, depth+1, label)
		if rng.Float64() < rt.TextProb/2 {
			sb.WriteString(rt.Texts[rng.Intn(len(rt.Texts))])
		}
	}
	sb.WriteString("</" + label + ">")
}

// RandomQuery generates a random query in the supported fragment over the
// same alphabet as a RandomTree, for property-based engine equivalence. Set
// conjunctiveOnly to stay inside the naive engine's fragment.
func RandomQuery(rng *rand.Rand, rt RandomTree, conjunctiveOnly bool) string {
	var sb strings.Builder
	steps := 1 + rng.Intn(3)
	for i := 0; i < steps; i++ {
		if rng.Intn(2) == 0 {
			sb.WriteString("/")
		} else {
			sb.WriteString("//")
		}
		label := rt.Labels[rng.Intn(len(rt.Labels))]
		if rng.Intn(8) == 0 {
			label = "*"
		}
		sb.WriteString(label)
		if rng.Intn(3) == 0 {
			sb.WriteString(randomPredicate(rng, rt, conjunctiveOnly))
		}
	}
	// Occasionally end on an attribute or text() step.
	switch rng.Intn(6) {
	case 0:
		sb.WriteString("/@" + rt.Attrs[rng.Intn(len(rt.Attrs))])
	case 1:
		sb.WriteString("/text()")
	}
	return sb.String()
}

func randomPredicate(rng *rand.Rand, rt RandomTree, conjunctiveOnly bool) string {
	leaf := func() string {
		switch rng.Intn(5) {
		case 0:
			return "@" + rt.Attrs[rng.Intn(len(rt.Attrs))]
		case 1:
			return fmt.Sprintf("@%s='%s'", rt.Attrs[rng.Intn(len(rt.Attrs))], rt.Texts[rng.Intn(len(rt.Texts))])
		case 2:
			return fmt.Sprintf("%s='%s'", rt.Labels[rng.Intn(len(rt.Labels))], rt.Texts[rng.Intn(len(rt.Texts))])
		case 3:
			axis := ""
			if rng.Intn(2) == 0 {
				axis = ".//"
			}
			return axis + rt.Labels[rng.Intn(len(rt.Labels))]
		default:
			return rt.Labels[rng.Intn(len(rt.Labels))] + "/" + rt.Labels[rng.Intn(len(rt.Labels))]
		}
	}
	p := leaf()
	if rng.Intn(3) == 0 {
		conn := " and "
		if !conjunctiveOnly && rng.Intn(2) == 0 {
			conn = " or "
		}
		p += conn + leaf()
	}
	return "[" + p + "]"
}
