package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sax"
)

// wellFormed checks a generated document parses with the std front-end.
func wellFormed(t *testing.T, doc string) (elements, texts int) {
	t.Helper()
	h := sax.HandlerFunc(func(ev *sax.Event) error {
		switch ev.Kind {
		case sax.StartElement:
			elements++
		case sax.Text:
			texts++
		}
		return nil
	})
	if err := sax.NewStdDriver(strings.NewReader(doc)).Run(h); err != nil {
		t.Fatalf("generated document malformed: %v\nhead: %.200s", err, doc)
	}
	return
}

func TestPaperFigure1WellFormed(t *testing.T) {
	els, _ := wellFormed(t, PaperFigure1)
	if els != 10 {
		t.Fatalf("figure 1 has %d elements, want 10", els)
	}
}

func TestProteinDeterministic(t *testing.T) {
	p := Protein{TargetBytes: 50 << 10, Seed: 7}
	a, b := p.String(), p.String()
	if a != b {
		t.Fatal("protein generator not deterministic")
	}
}

func TestProteinShape(t *testing.T) {
	p := Protein{TargetBytes: 200 << 10, Seed: 1}
	doc := p.String()
	if int64(len(doc)) < p.TargetBytes {
		t.Fatalf("size %d < target %d", len(doc), p.TargetBytes)
	}
	if int64(len(doc)) > p.TargetBytes*2 {
		t.Fatalf("size %d overshoots target %d", len(doc), p.TargetBytes)
	}
	wellFormed(t, doc)
	entries, withRef := p.Counts()
	if entries == 0 || withRef == 0 || withRef >= entries {
		t.Fatalf("counts: entries=%d withRef=%d", entries, withRef)
	}
	if got := strings.Count(doc, "<ProteinEntry "); got != entries {
		t.Fatalf("Counts()=%d but document has %d entries", entries, got)
	}
	// ~7/8 of entries carry references.
	if ratio := float64(withRef) / float64(entries); ratio < 0.75 || ratio > 0.98 {
		t.Fatalf("reference ratio %.2f outside [0.75, 0.98]", ratio)
	}
}

func TestProteinStreamingMatchesString(t *testing.T) {
	p := Protein{TargetBytes: 30 << 10, Seed: 3}
	var sb strings.Builder
	n, err := p.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != p.String() {
		t.Fatal("WriteTo and String disagree")
	}
	if n != int64(len(sb.String())) {
		t.Fatalf("reported %d bytes, wrote %d", n, sb.Len())
	}
}

func TestBookFigure1Shape(t *testing.T) {
	doc := Figure1Shape.String()
	els, _ := wellFormed(t, doc)
	// book + 3 sections + 3 tables + cell + position + author = 10
	if els != 10 {
		t.Fatalf("figure1 shape has %d elements, want 10", els)
	}
	for _, want := range []string{"<section>", "<table>", "<cell>", "<position>", "<author>"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("missing %s in:\n%s", want, doc)
		}
	}
}

func TestBookRepeat(t *testing.T) {
	b := Book{SectionDepth: 2, TableDepth: 2, Repeat: 5, AuthorEvery: 2, PositionEvery: 1}
	doc := b.String()
	wellFormed(t, doc)
	if got := strings.Count(doc, "<cell>"); got != 5 {
		t.Fatalf("cells = %d, want 5", got)
	}
	if got := strings.Count(doc, "<author>"); got != 3 { // copies 0,2,4
		t.Fatalf("authors = %d, want 3", got)
	}
}

func TestRecursiveChain(t *testing.T) {
	doc := RecursiveChain(5)
	wellFormed(t, doc)
	if strings.Count(doc, "<a>") != 5 || strings.Count(doc, "<b/>") != 1 {
		t.Fatalf("bad chain: %s", doc)
	}
	if q := ChainQuery(3); q != "//a//a//a//b" {
		t.Fatalf("ChainQuery(3) = %q", q)
	}
}

func TestRandomTreeWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		doc := DefaultRandomTree.Generate(rng)
		wellFormed(t, doc)
	}
}

func TestChurnRandomTreeWellFormedAndDeterministic(t *testing.T) {
	a := ChurnRandomTree.Generate(rand.New(rand.NewSource(11)))
	b := ChurnRandomTree.Generate(rand.New(rand.NewSource(11)))
	if a != b {
		t.Fatal("seeded generation not reproducible")
	}
	rng := rand.New(rand.NewSource(42))
	selfNested := 0
	for i := 0; i < 200; i++ {
		doc := ChurnRandomTree.Generate(rng)
		wellFormed(t, doc)
		for _, l := range ChurnRandomTree.Labels {
			if strings.Contains(doc, "<"+l+"><"+l+">") {
				selfNested++
				break
			}
		}
	}
	// The self-nesting bias must actually produce recursive label chains.
	if selfNested < 20 {
		t.Fatalf("only %d/200 documents had directly self-nested labels", selfNested)
	}
}

func TestQueryGenDeterministicAndShaped(t *testing.T) {
	g := DefaultQueryGen
	a := g.Generate(rand.New(rand.NewSource(5)))
	b := g.Generate(rand.New(rand.NewSource(5)))
	if a != b {
		t.Fatal("seeded generation not reproducible")
	}
	rng := rand.New(rand.NewSource(42))
	unions, preds, ors := 0, 0, 0
	for i := 0; i < 500; i++ {
		q := g.Generate(rng)
		if q == "" || !strings.HasPrefix(q, "/") {
			t.Fatalf("bad query %q", q)
		}
		// Parsing is validated in the integration campaign (avoiding an
		// import cycle here); check bracket/paren balance and coverage.
		for _, pair := range [][2]string{{"[", "]"}, {"(", ")"}} {
			if strings.Count(q, pair[0]) != strings.Count(q, pair[1]) {
				t.Fatalf("unbalanced %s%s in %q", pair[0], pair[1], q)
			}
		}
		if strings.Contains(q, " | ") {
			unions++
		}
		if strings.Contains(q, "[") {
			preds++
		}
		if strings.Contains(q, " or ") {
			ors++
		}
	}
	// The grammar knobs must all fire with real frequency.
	if unions < 50 || preds < 100 || ors < 25 {
		t.Fatalf("thin coverage: unions=%d preds=%d ors=%d", unions, preds, ors)
	}
	g.ConjunctiveOnly = true
	for i := 0; i < 200; i++ {
		if q := g.Generate(rng); strings.Contains(q, " or ") {
			t.Fatalf("ConjunctiveOnly emitted %q", q)
		}
	}
}

func TestRandomQueryParses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		q := RandomQuery(rng, DefaultRandomTree, i%2 == 0)
		if q == "" {
			t.Fatal("empty query")
		}
		// Parsing is validated in the integration package (avoiding an
		// import cycle here); check basic shape.
		if !strings.HasPrefix(q, "/") {
			t.Fatalf("query %q must be absolute", q)
		}
	}
}

func TestTicker(t *testing.T) {
	tk := Ticker{Trades: 50, Seed: 9}
	doc := tk.String()
	els, _ := wellFormed(t, doc)
	if els != 1+50*4 { // ticker + (trade, symbol, price, volume) each
		t.Fatalf("elements = %d", els)
	}
	if tk.String() != doc {
		t.Fatal("ticker not deterministic")
	}
}
