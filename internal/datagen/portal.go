package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Portal generates the content-feed corpus of the prefix-sharing workloads:
// a news portal whose channels carry articles, each with a typed metadata
// head (field elements drawn from a large name universe) and a structural
// body. The element traffic is dominated by the SHARED part of realistic
// subscriptions — //channel//article/head — while the field leaves diverge
// per query, which is exactly the shape that separates prefix-shared
// evaluation (trie does the structural work once) from per-machine
// evaluation (every subscription pushes its own channel/article/head
// entries).
//
//	<portal>
//	  <channel name="c2">
//	    <article id="a17">
//	      <head><f12>v3</f12><f86>v0</f86>...</head>
//	      <body><sec><p>...</p><p>...</p></sec><sec>...</sec></body>
//	    </article>
//	  </channel>
//	</portal>
type Portal struct {
	// Channels is the number of <channel> blocks (default 4).
	Channels int
	// Articles is the total number of articles, spread round-robin over
	// the channels.
	Articles int
	// Fields is the size of the metadata field-name universe f0..f{N-1}
	// (default 200); FieldsPerArticle fields are drawn per article
	// (default 6).
	Fields           int
	FieldsPerArticle int
	// Values is the size of the field-value universe v0..v{M-1} (default
	// 20).
	Values int
	// Secs and Paras shape the structural body filler (defaults 2 and 3).
	Secs  int
	Paras int
	// Seed seeds the deterministic stream.
	Seed int64
}

func (p Portal) withDefaults() Portal {
	if p.Channels == 0 {
		p.Channels = 4
	}
	if p.Fields == 0 {
		p.Fields = 200
	}
	if p.FieldsPerArticle == 0 {
		p.FieldsPerArticle = 6
	}
	if p.Values == 0 {
		p.Values = 20
	}
	if p.Secs == 0 {
		p.Secs = 2
	}
	if p.Paras == 0 {
		p.Paras = 3
	}
	return p
}

// String renders the whole feed as one document.
func (p Portal) String() string {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var sb strings.Builder
	sb.WriteString("<portal>\n")
	perChannel := (p.Articles + p.Channels - 1) / p.Channels
	article := 0
	for c := 0; c < p.Channels && article < p.Articles; c++ {
		fmt.Fprintf(&sb, " <channel name=\"c%d\">\n", c)
		for a := 0; a < perChannel && article < p.Articles; a++ {
			fmt.Fprintf(&sb, "  <article id=\"a%d\">\n   <head>", article)
			for f := 0; f < p.FieldsPerArticle; f++ {
				field, value := rng.Intn(p.Fields), rng.Intn(p.Values)
				fmt.Fprintf(&sb, "<f%d>v%d</f%d>", field, value, field)
			}
			sb.WriteString("</head>\n   <body>")
			for s := 0; s < p.Secs; s++ {
				sb.WriteString("<sec>")
				for q := 0; q < p.Paras; q++ {
					fmt.Fprintf(&sb, "<p>t%d</p>", rng.Intn(97))
				}
				sb.WriteString("</sec>")
			}
			sb.WriteString("</body>\n  </article>\n")
			article++
		}
		sb.WriteString(" </channel>\n")
	}
	sb.WriteString("</portal>\n")
	return sb.String()
}

// OverlapQueries builds the standing-subscription workload of the
// prefix-sharing benchmarks: n queries of which a fraction `overlap` share
// one of a handful of structural prefixes over the Portal vocabulary
// (diverging only in their metadata-field leaf and value test), and the
// rest are dead-vocabulary subscriptions that match no Portal feed — the
// realistic pub/sub mix where most standing queries are silent on any given
// document. fields/values must match the Portal generator's universes for
// the overlapping queries to hit.
func OverlapQueries(n int, overlap float64, fields, values int, seed int64) []string {
	if fields == 0 {
		fields = 200
	}
	if values == 0 {
		values = 20
	}
	rng := rand.New(rand.NewSource(seed))
	shared := int(float64(n)*overlap + 0.5)
	if shared > n {
		shared = n
	}
	sources := make([]string, 0, n)
	// Three prefix families keep the trie from degenerating into a single
	// chain; all share //channel//article and diverge below it.
	families := []string{
		"//channel//article/head/f%d[. = 'v%d']",
		"/portal/channel//article/head/f%d[. = 'v%d']",
		"//channel/article/head/f%d[. = 'v%d']",
	}
	for i := 0; i < shared; i++ {
		fam := families[i%len(families)]
		sources = append(sources, fmt.Sprintf(fam, rng.Intn(fields), rng.Intn(values)))
	}
	for i := shared; i < n; i++ {
		sources = append(sources, fmt.Sprintf("//catalog%d[entry%d]//leaf%d", i, i, i))
	}
	return sources
}
