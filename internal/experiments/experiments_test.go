package experiments

import (
	"strings"
	"testing"
	"time"
)

// testConfig runs at reduced scale (2MB protein) so the suite stays fast;
// the shapes under test are already visible there.
func testConfig(t *testing.T) Config {
	return Config{ProteinMB: 2, Seed: 1, Dir: t.TempDir()}
}

func TestE1ParseDominated(t *testing.T) {
	res, err := testConfig(t).RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions == 0 {
		t.Fatal("no solutions")
	}
	// The paper's shape: parsing is the dominant cost (74% there). Our
	// assertion is weaker but directional: parse alone costs more than
	// a third of the full pipeline.
	if res.ParseShare < 0.33 {
		t.Fatalf("parse share %.2f — pipeline is not parse-dominated", res.ParseShare)
	}
	if !strings.Contains(res.Table, "SAX parse only") {
		t.Fatalf("table:\n%s", res.Table)
	}
}

func TestE2MemoryFlat(t *testing.T) {
	res, err := testConfig(t).RunE2([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PeakHeap) != 3 {
		t.Fatalf("peaks: %v", res.PeakHeap)
	}
	// Flatness: peak at 4MB must be within 4x of peak at 1MB (the paper
	// reports a constant; GC noise makes exact equality unrealistic).
	if res.PeakHeap[2] > 4*res.PeakHeap[0]+(8<<20) {
		t.Fatalf("memory grows with input: %v", res.PeakHeap)
	}
	// Machine entries are the real invariant: bounded by depth×|Q|,
	// identical across sizes.
	if res.PeakStack[0] != res.PeakStack[2] {
		t.Fatalf("peak stack entries vary with size: %v", res.PeakStack)
	}
}

func TestE3Linear(t *testing.T) {
	res, err := testConfig(t).RunE3([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit.B <= 0 {
		t.Fatalf("fit: %+v", res.Fit)
	}
	if res.Fit.R2 < 0.9 {
		t.Fatalf("time vs size not linear: R²=%.3f times=%v", res.Fit.R2, res.Times)
	}
}

func TestE4Polynomial(t *testing.T) {
	res, err := testConfig(t).RunE4(6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 6 {
		t.Fatalf("times: %v", res.Times)
	}
	// Polynomial (not exponential) growth: doubling the chain length
	// must grow time far less than the pattern-match count (which grows
	// as C(12,k)). Allow a generous polynomial factor of 50 between k=3
	// and k=6, versus the >1000x a match-enumerating engine shows.
	if res.Times[5] > 50*res.Times[2]+time.Millisecond {
		t.Fatalf("time grows too fast with |Q|: %v", res.Times)
	}
}

func TestE5NaiveBlowsUp(t *testing.T) {
	res, err := testConfig(t).RunE5([]int{6, 10, 14}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Naive match storage grows superlinearly: C(6,3)=20, C(10,3)=120,
	// C(14,3)=364 full embeddings plus partials.
	if !(res.NaivePeak[0] < res.NaivePeak[1] && res.NaivePeak[1] < res.NaivePeak[2]) {
		t.Fatalf("naive peaks not growing: %v", res.NaivePeak)
	}
	growthNaive := float64(res.NaivePeak[2]) / float64(res.NaivePeak[0])
	growthTwigM := float64(res.TwigMPeak[2]) / float64(res.TwigMPeak[0])
	if growthNaive < 4*growthTwigM {
		t.Fatalf("naive growth %.1fx vs twigm %.1fx — blowup not visible", growthNaive, growthTwigM)
	}
	// TwigM stays linear in depth.
	if res.TwigMPeak[2] > 4*14 {
		t.Fatalf("twigm peak %d not linear in depth", res.TwigMPeak[2])
	}
}

func TestE5bExponentialInQuerySize(t *testing.T) {
	res, err := testConfig(t).RunE5b(14, 5, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Naive peak tracks C(14,k): 14, 91, 364, 1001, 2002 full spine
	// embeddings (plus partials) — strictly accelerating growth.
	for i := 1; i < len(res.NaivePeak); i++ {
		if res.NaivePeak[i] <= res.NaivePeak[i-1] {
			t.Fatalf("naive peaks not growing: %v", res.NaivePeak)
		}
	}
	ratioNaive := float64(res.NaivePeak[4]) / float64(res.NaivePeak[0])
	ratioTwigM := float64(res.TwigMPeak[4]) / float64(res.TwigMPeak[0])
	if ratioNaive < 10*ratioTwigM {
		t.Fatalf("naive %.0fx vs twigm %.0fx across |Q| sweep", ratioNaive, ratioTwigM)
	}
	// TwigM grows linearly in |Q|: k+1 stacks, ≤ depth entries each.
	if res.TwigMPeak[4] > 14*6 {
		t.Fatalf("twigm peak %d not linear", res.TwigMPeak[4])
	}
}

func TestE6PaperExample(t *testing.T) {
	res, err := testConfig(t).RunE6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0] != "<cell> A </cell>" {
		t.Fatalf("solutions: %q", res.Solutions)
	}
	if !strings.Contains(res.Machine, "=cell *") {
		t.Fatalf("machine:\n%s", res.Machine)
	}
}

func TestE7BuildLinear(t *testing.T) {
	res, err := testConfig(t).RunE7([]int{1, 9, 17, 33, 63}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit.R2 < 0.8 || res.Fit.B <= 0 {
		t.Fatalf("build time not linear: %+v times=%v", res.Fit, res.BuildTimes)
	}
	// A 63-node machine must build in well under a millisecond.
	if res.BuildTimes[len(res.BuildTimes)-1] > time.Millisecond {
		t.Fatalf("build too slow: %v", res.BuildTimes)
	}
}

func TestE9SharedScanWins(t *testing.T) {
	res, err := testConfig(t).RunE9(20000)
	if err != nil {
		t.Fatal(err)
	}
	// Six queries share one parse: the shared strategy must beat one
	// pass per query (conservatively, by at least 1.5x — measured ~2-4x).
	if res.Speedup < 1.5 {
		t.Fatalf("shared-scan speedup only %.2fx (shared=%v separate=%v)",
			res.Speedup, res.SharedTime, res.SeparateT)
	}
}

func TestE8Incremental(t *testing.T) {
	res, err := testConfig(t).RunE8(2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions == 0 {
		t.Fatal("no solutions")
	}
	if res.FirstAtFrac > 0.10 {
		t.Fatalf("first result at %.0f%% of stream — not incremental", res.FirstAtFrac*100)
	}
	// price confirms when its trade's symbol has already been seen...
	// symbol precedes price, so lag should be small (within the trade).
	if res.MeanLagEvents > 10 {
		t.Fatalf("mean lag %.1f events", res.MeanLagEvents)
	}
}
