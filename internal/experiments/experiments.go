// Package experiments reproduces every quantitative claim of the ViteX
// paper (see DESIGN.md §3 for the experiment index). Each Run* function
// executes one experiment at a configurable scale and returns a rendered
// table plus the measurements, so cmd/vitexbench can print reports and the
// test suite can assert the *shapes* the paper claims (linear scaling, flat
// memory, exponential naive blowup) at reduced scale.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// Config scales the experiments. The paper's scale is ProteinMB=75; tests
// use 2-4MB where the shapes are already visible.
type Config struct {
	// ProteinMB is the protein corpus size for E1-E3 (paper: 75).
	ProteinMB int
	// Seed for all generators.
	Seed int64
	// Dir is where generated corpora are cached between experiments
	// (empty = os.TempDir()).
	Dir string
	// Out receives progress logging (nil = silent).
	Out io.Writer
}

func (c Config) logf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// proteinPath generates (or reuses) the protein corpus file of c.ProteinMB.
func (c Config) proteinPath() (string, int64, error) {
	dir := c.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("vitex-protein-%dMB-seed%d.xml", c.ProteinMB, c.Seed))
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return path, st.Size(), nil
	}
	c.logf("generating %dMB protein corpus at %s...\n", c.ProteinMB, path)
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	n, err := datagen.Protein{TargetBytes: int64(c.ProteinMB) << 20, Seed: c.Seed}.WriteTo(f)
	if err != nil {
		os.Remove(path)
		return "", 0, err
	}
	return path, n, nil
}

// scanOnly measures a pure parse pass (the paper's "SAX parsing" share).
func scanOnly(path string) (time.Duration, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	events := int64(0)
	h := sax.HandlerFunc(func(*sax.Event) error { events++; return nil })
	t := metrics.StartTimer()
	if err := xmlscan.NewScanner(f).Run(h); err != nil {
		return 0, 0, err
	}
	return t.Elapsed(), events, nil
}

// E1Result carries the protein-query timing of §2 claim 5.
type E1Result struct {
	Bytes      int64
	ParseTime  time.Duration
	QueryTime  time.Duration // full pipeline: parse + TwigM
	Solutions  int64
	ParseShare float64 // ParseTime / QueryTime
	Table      string
}

// RunE1 reproduces experiment E1: //ProteinEntry[reference]/@id over the
// protein corpus; the paper reports 6.02s total with 4.43s (74%) of it SAX
// parsing. Absolute times differ on our substrate; the claim under test is
// that the query pipeline is parse-dominated (TwigM adds a minor overhead).
func (c Config) RunE1() (E1Result, error) {
	path, size, err := c.proteinPath()
	if err != nil {
		return E1Result{}, err
	}
	parseTime, _, err := scanOnly(path)
	if err != nil {
		return E1Result{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return E1Result{}, err
	}
	defer f.Close()
	prog := twigm.MustCompile(datagen.PaperProteinQuery)
	run := prog.Start(twigm.Options{})
	t := metrics.StartTimer()
	if err := xmlscan.NewScanner(f).Run(run); err != nil {
		return E1Result{}, err
	}
	queryTime := t.Elapsed()
	res := E1Result{
		Bytes:      size,
		ParseTime:  parseTime,
		QueryTime:  queryTime,
		Solutions:  run.Count(),
		ParseShare: float64(parseTime) / float64(queryTime),
	}
	tbl := metrics.Table{
		Title:   fmt.Sprintf("E1: %s over %s protein corpus (paper: 6.02s total, 4.43s parse = 74%% on 75MB)", datagen.PaperProteinQuery, metrics.Bytes(uint64(size))),
		Headers: []string{"phase", "time", "throughput", "share"},
	}
	tbl.AddRow("SAX parse only", parseTime.Round(time.Millisecond).String(), metrics.Throughput(size, parseTime), fmt.Sprintf("%.0f%%", res.ParseShare*100))
	tbl.AddRow("parse + TwigM", queryTime.Round(time.Millisecond).String(), metrics.Throughput(size, queryTime), "100%")
	tbl.AddRow("solutions", fmt.Sprint(res.Solutions), "", "")
	res.Table = tbl.String()
	return res, nil
}

// E2Result carries the memory-stability measurements of §2 claim 3.
type E2Result struct {
	SizesMB   []int
	PeakHeap  []uint64 // engine-attributable live heap per size
	PeakStack []int    // machine entries high-water
	Table     string
}

// RunE2 reproduces experiment E2: peak engine memory while scanning protein
// corpora of growing size. The paper reports memory "stable at 1MB" on a
// 75MB input; the claim under test is flatness — peak memory must not grow
// with input size.
func (c Config) RunE2(sizesMB []int) (E2Result, error) {
	res := E2Result{SizesMB: sizesMB}
	prog := twigm.MustCompile(datagen.PaperProteinQuery)
	tbl := metrics.Table{
		Title:   "E2: peak engine memory vs input size (paper: stable at ~1MB)",
		Headers: []string{"input", "peak live heap", "peak machine entries", "solutions"},
	}
	for _, mb := range sizesMB {
		sub := c
		sub.ProteinMB = mb
		path, size, err := sub.proteinPath()
		if err != nil {
			return res, err
		}
		f, err := os.Open(path)
		if err != nil {
			return res, err
		}
		run := prog.Start(twigm.Options{CountOnly: true})
		hs := &metrics.HeapSampler{Every: 50000}
		h := hs.Wrap(run)
		if err := xmlscan.NewScanner(f).Run(h); err != nil {
			f.Close()
			return res, err
		}
		f.Close()
		stats := run.Stats()
		res.PeakHeap = append(res.PeakHeap, hs.Peak)
		res.PeakStack = append(res.PeakStack, stats.PeakStackEntries)
		tbl.AddRow(metrics.Bytes(uint64(size)), metrics.Bytes(hs.Peak), fmt.Sprint(stats.PeakStackEntries), fmt.Sprint(run.Count()))
	}
	res.Table = tbl.String()
	return res, nil
}

// E3Result carries the data-size scaling of §2 claim 1.
type E3Result struct {
	SizesMB []int
	Times   []time.Duration
	Fit     metrics.Fit // time vs bytes; R²≈1 and positive slope = linear
	Table   string
}

// RunE3 reproduces experiment E3: evaluation time vs data size for a fixed
// query (linear scaling expected).
func (c Config) RunE3(sizesMB []int) (E3Result, error) {
	res := E3Result{SizesMB: sizesMB}
	prog := twigm.MustCompile(datagen.PaperProteinQuery)
	tbl := metrics.Table{
		Title:   "E3: evaluation time vs data size (fixed query; paper claim: polynomial/linear)",
		Headers: []string{"input", "time", "throughput"},
	}
	var xs, ys []float64
	for _, mb := range sizesMB {
		sub := c
		sub.ProteinMB = mb
		path, size, err := sub.proteinPath()
		if err != nil {
			return res, err
		}
		// Minimum of three runs per size: scheduler noise inflates
		// individual runs but never deflates them, so the minimum is
		// the cleanest estimator for a scaling fit.
		var el time.Duration
		for rep := 0; rep < 3; rep++ {
			f, err := os.Open(path)
			if err != nil {
				return res, err
			}
			run := prog.Start(twigm.Options{CountOnly: true})
			t := metrics.StartTimer()
			if err := xmlscan.NewScanner(f).Run(run); err != nil {
				f.Close()
				return res, err
			}
			f.Close()
			if d := t.Elapsed(); rep == 0 || d < el {
				el = d
			}
		}
		res.Times = append(res.Times, el)
		xs = append(xs, float64(size))
		ys = append(ys, el.Seconds())
		tbl.AddRow(metrics.Bytes(uint64(size)), el.Round(time.Millisecond).String(), metrics.Throughput(size, el))
	}
	res.Fit = metrics.LinearFit(xs, ys)
	tbl.AddRow("linear fit", fmt.Sprintf("R²=%.4f", res.Fit.R2), fmt.Sprintf("%.1fns/byte", res.Fit.B*1e9))
	res.Table = tbl.String()
	return res, nil
}

// E4Result carries the query-size scaling of §2 claim 1.
type E4Result struct {
	QuerySizes []int
	Times      []time.Duration
	Table      string
}

// RunE4 reproduces experiment E4: evaluation time vs query size on fixed
// recursive data. Chain queries //sec//sec…//cell grow the pattern-match
// space exponentially; TwigM's time must grow polynomially (roughly
// linearly in |Q| at fixed depth).
func (c Config) RunE4(maxChain int, repeat int) (E4Result, error) {
	res := E4Result{}
	doc := datagen.Book{SectionDepth: 12, TableDepth: 4, Repeat: repeat, AuthorEvery: 1, PositionEvery: 1}.String()
	tbl := metrics.Table{
		Title:   "E4: evaluation time vs query size (recursive sections, depth 12)",
		Headers: []string{"|Q|", "query", "time", "flag propagations", "solutions"},
	}
	for k := 1; k <= maxChain; k++ {
		src := strings.Repeat("//section", k) + "//cell"
		q := xpath.MustParse(src)
		prog, err := twigm.Compile(q)
		if err != nil {
			return res, err
		}
		run := prog.Start(twigm.Options{CountOnly: true})
		t := metrics.StartTimer()
		if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
			return res, err
		}
		el := t.Elapsed()
		res.QuerySizes = append(res.QuerySizes, q.Size())
		res.Times = append(res.Times, el)
		stats := run.Stats()
		label := src
		if len(label) > 30 {
			label = label[:27] + "..."
		}
		tbl.AddRow(fmt.Sprint(q.Size()), label, el.Round(time.Microsecond).String(), fmt.Sprint(stats.FlagProps), fmt.Sprint(run.Count()))
	}
	res.Table = tbl.String()
	return res, nil
}

// E5Result contrasts TwigM with the naive enumeration baseline (§1).
type E5Result struct {
	Depths      []int
	NaivePeak   []int // peak stored pattern matches (naive)
	NaiveTimes  []time.Duration
	TwigMPeak   []int // peak stack entries (TwigM)
	TwigMTimes  []time.Duration
	NaiveFailed []bool // hit the match limit
	Table       string
}

// RunE5 reproduces experiment E5 (the paper's figure-1 motivation at
// scale): recursive chains of depth d against //a//a//a//b. The naive
// engine's stored matches grow as C(d,3); TwigM's state stays linear in d.
func (c Config) RunE5(depths []int, maxMatches int) (E5Result, error) {
	res := E5Result{Depths: depths}
	const chainK = 3
	src := datagen.ChainQuery(chainK)
	q := xpath.MustParse(src)
	tbl := metrics.Table{
		Title:   fmt.Sprintf("E5: naive match enumeration vs TwigM compact encoding (query %s)", src),
		Headers: []string{"depth", "naive matches", "naive time", "twigm entries", "twigm time", "speedup"},
	}
	prog, err := twigm.Compile(q)
	if err != nil {
		return res, err
	}
	eng, err := naive.Compile(q)
	if err != nil {
		return res, err
	}
	for _, d := range depths {
		doc := datagen.RecursiveChain(d)
		// Naive.
		nrun := eng.Start(naive.Options{MaxMatches: maxMatches})
		nt := metrics.StartTimer()
		nerr := xmlscan.NewScanner(strings.NewReader(doc)).Run(nrun)
		nel := nt.Elapsed()
		nstats := nrun.Stats()
		failed := nerr != nil
		// TwigM.
		trun := prog.Start(twigm.Options{CountOnly: true})
		tt := metrics.StartTimer()
		if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(trun); err != nil {
			return res, err
		}
		tel := tt.Elapsed()
		tstats := trun.Stats()

		res.NaivePeak = append(res.NaivePeak, nstats.PeakMatches)
		res.NaiveTimes = append(res.NaiveTimes, nel)
		res.TwigMPeak = append(res.TwigMPeak, tstats.PeakStackEntries)
		res.TwigMTimes = append(res.TwigMTimes, tel)
		res.NaiveFailed = append(res.NaiveFailed, failed)

		naiveCell := fmt.Sprint(nstats.PeakMatches)
		timeCell := nel.Round(time.Microsecond).String()
		if failed {
			naiveCell = fmt.Sprintf(">%d (limit)", maxMatches)
			timeCell = "aborted"
		}
		speed := "-"
		if !failed && tel > 0 {
			speed = fmt.Sprintf("%.0fx", float64(nel)/float64(tel))
		}
		tbl.AddRow(fmt.Sprint(d), naiveCell, timeCell, fmt.Sprint(tstats.PeakStackEntries), tel.Round(time.Microsecond).String(), speed)
	}
	res.Table = tbl.String()
	return res, nil
}

// E5bResult sweeps the query size instead of the data depth: the dimension
// in which the paper states the exponential ("exponential in the query
// size").
type E5bResult struct {
	ChainLens  []int
	NaivePeak  []int
	TwigMPeak  []int
	NaiveTimes []time.Duration
	TwigMTimes []time.Duration
	Table      string
}

// RunE5b fixes the recursion depth and grows the chain query //a//a…//b.
// Naive storage tracks C(depth, k) — exponential in |Q| until k reaches
// depth/2 — while TwigM state grows linearly in |Q|.
func (c Config) RunE5b(depth int, maxChain int, maxMatches int) (E5bResult, error) {
	res := E5bResult{}
	doc := datagen.RecursiveChain(depth)
	tbl := metrics.Table{
		Title:   fmt.Sprintf("E5b: growth in query size at fixed depth %d (paper: matches exponential in |Q|)", depth),
		Headers: []string{"chain k", "|Q|", "naive matches", "naive time", "twigm entries", "twigm time"},
	}
	for k := 1; k <= maxChain; k++ {
		src := datagen.ChainQuery(k)
		q := xpath.MustParse(src)
		prog, err := twigm.Compile(q)
		if err != nil {
			return res, err
		}
		eng, err := naive.Compile(q)
		if err != nil {
			return res, err
		}
		nrun := eng.Start(naive.Options{MaxMatches: maxMatches})
		nt := metrics.StartTimer()
		nerr := xmlscan.NewScanner(strings.NewReader(doc)).Run(nrun)
		nel := nt.Elapsed()
		nstats := nrun.Stats()

		trun := prog.Start(twigm.Options{CountOnly: true})
		tt := metrics.StartTimer()
		if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(trun); err != nil {
			return res, err
		}
		tel := tt.Elapsed()
		tstats := trun.Stats()

		res.ChainLens = append(res.ChainLens, k)
		res.NaivePeak = append(res.NaivePeak, nstats.PeakMatches)
		res.TwigMPeak = append(res.TwigMPeak, tstats.PeakStackEntries)
		res.NaiveTimes = append(res.NaiveTimes, nel)
		res.TwigMTimes = append(res.TwigMTimes, tel)

		naiveCell := fmt.Sprint(nstats.PeakMatches)
		timeCell := nel.Round(time.Microsecond).String()
		if nerr != nil {
			naiveCell = fmt.Sprintf(">%d (limit)", maxMatches)
			timeCell = "aborted"
		}
		tbl.AddRow(fmt.Sprint(k), fmt.Sprint(q.Size()), naiveCell, timeCell,
			fmt.Sprint(tstats.PeakStackEntries), tel.Round(time.Microsecond).String())
	}
	res.Table = tbl.String()
	return res, nil
}

// E6Result is the paper's worked example (figures 1 and 3).
type E6Result struct {
	Machine   string
	Solutions []string
	Table     string
}

// RunE6 replays the paper's worked example: the figure-1 document against
// //section[author]//table[position]//cell must yield exactly cell₈.
func (c Config) RunE6() (E6Result, error) {
	prog := twigm.MustCompile(datagen.PaperQuery)
	results, stats, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(datagen.PaperFigure1)), twigm.Options{Ordered: true})
	if err != nil {
		return E6Result{}, err
	}
	res := E6Result{Machine: prog.Describe(), Solutions: twigm.Values(results)}
	tbl := metrics.Table{
		Title:   "E6: paper worked example (figure 1 document, figure 3 machine)",
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("query", datagen.PaperQuery)
	tbl.AddRow("solutions", strings.Join(res.Solutions, " "))
	tbl.AddRow("candidates created", fmt.Sprint(stats.CandidatesCreated))
	tbl.AddRow("candidates dropped", fmt.Sprint(stats.CandidatesDropped))
	tbl.AddRow("stack pushes", fmt.Sprint(stats.Pushes))
	res.Table = tbl.String()
	return res, nil
}

// E7Result verifies linear TwigM build time (§2 claim 2).
type E7Result struct {
	QuerySizes []int
	BuildTimes []time.Duration
	Fit        metrics.Fit
	Table      string
}

// RunE7 reproduces experiment E7: machine build time vs query size. Each
// build is repeated reps times and averaged.
func (c Config) RunE7(sizes []int, reps int) (E7Result, error) {
	res := E7Result{}
	tbl := metrics.Table{
		Title:   "E7: TwigM build time vs query size (paper claim 2: linear)",
		Headers: []string{"|Q|", "avg build time"},
	}
	var xs, ys []float64
	for _, size := range sizes {
		var b strings.Builder
		b.WriteString("//root")
		for i := 1; i < size; i += 2 {
			fmt.Fprintf(&b, "//s%d[p%d]", i, i)
		}
		q, err := xpath.Parse(b.String())
		if err != nil {
			return res, err
		}
		t := metrics.StartTimer()
		for i := 0; i < reps; i++ {
			if _, err := twigm.Compile(q); err != nil {
				return res, err
			}
		}
		avg := t.Elapsed() / time.Duration(reps)
		res.QuerySizes = append(res.QuerySizes, q.Size())
		res.BuildTimes = append(res.BuildTimes, avg)
		xs = append(xs, float64(q.Size()))
		ys = append(ys, avg.Seconds())
		tbl.AddRow(fmt.Sprint(q.Size()), avg.String())
	}
	res.Fit = metrics.LinearFit(xs, ys)
	tbl.AddRow("linear fit", fmt.Sprintf("R²=%.4f", res.Fit.R2))
	res.Table = tbl.String()
	return res, nil
}

// E9Result measures the multi-query extension: N standing queries over one
// shared scan versus N separate passes (the subscription deployment of the
// paper's motivating applications).
type E9Result struct {
	Queries    int
	SharedTime time.Duration
	SeparateT  time.Duration
	Speedup    float64
	Table      string
}

// RunE9 evaluates a bundle of ticker subscriptions both ways. This
// experiment is an extension of this reproduction (the paper evaluates a
// single query); it quantifies what the shared-scan architecture buys.
func (c Config) RunE9(trades int) (E9Result, error) {
	doc := datagen.Ticker{Trades: trades, Seed: c.Seed}.String()
	sources := []string{
		"//trade[symbol='ACME']/price",
		"//trade[symbol='GLOBEX']/price",
		"//trade[symbol='STARK']/volume",
		"//trade[price>150]/@seq",
		"//trade[volume>4000]/symbol",
		"//trade/@seq",
	}
	progs := make([]*twigm.Program, len(sources))
	for i, src := range sources {
		progs[i] = twigm.MustCompile(src)
	}
	// Shared: one scan fans out to all machines.
	shared := metrics.StartTimer()
	handlers := make(sax.Fanout, len(progs))
	for i, prog := range progs {
		handlers[i] = prog.Start(twigm.Options{CountOnly: true})
	}
	if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(handlers); err != nil {
		return E9Result{}, err
	}
	sharedTime := shared.Elapsed()
	// Separate: one full pass per query.
	sep := metrics.StartTimer()
	for _, prog := range progs {
		run := prog.Start(twigm.Options{CountOnly: true})
		if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(run); err != nil {
			return E9Result{}, err
		}
	}
	sepTime := sep.Elapsed()
	res := E9Result{
		Queries:    len(sources),
		SharedTime: sharedTime,
		SeparateT:  sepTime,
		Speedup:    float64(sepTime) / float64(sharedTime),
	}
	tbl := metrics.Table{
		Title:   fmt.Sprintf("E9 (extension): %d standing queries over one ticker stream (%d trades)", len(sources), trades),
		Headers: []string{"strategy", "time", "speedup"},
	}
	tbl.AddRow("shared single scan", sharedTime.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", res.Speedup))
	tbl.AddRow("one pass per query", sepTime.Round(time.Millisecond).String(), "1.00x")
	res.Table = tbl.String()
	return res, nil
}

// E8Result measures incremental delivery (§1 requirement 2).
type E8Result struct {
	Trades        int
	Solutions     int
	MeanLagEvents float64 // events between a solution's confirmation and its result node's last event
	FirstAtFrac   float64 // stream fraction at which the first result arrived
	Table         string
}

// RunE8 reproduces experiment E8: a stock-ticker stream with a selective
// query; solutions must flow long before end of stream.
func (c Config) RunE8(trades int) (E8Result, error) {
	doc := datagen.Ticker{Trades: trades, Seed: c.Seed}.String()
	prog := twigm.MustCompile("//trade[symbol='ACME']/price")
	results, stats, err := twigm.Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), twigm.Options{})
	if err != nil {
		return E8Result{}, err
	}
	res := E8Result{Trades: trades, Solutions: len(results)}
	if len(results) > 0 {
		res.FirstAtFrac = float64(results[0].DeliveredAt) / float64(stats.Events)
		var lag float64
		for _, r := range results {
			lag += float64(r.DeliveredAt - r.ConfirmedAt)
		}
		res.MeanLagEvents = lag / float64(len(results))
	}
	tbl := metrics.Table{
		Title:   "E8: incremental result delivery on a ticker stream (§1 requirement 2)",
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("trades", fmt.Sprint(trades))
	tbl.AddRow("solutions", fmt.Sprint(res.Solutions))
	tbl.AddRow("first result at", fmt.Sprintf("%.1f%% of stream", res.FirstAtFrac*100))
	tbl.AddRow("mean confirm→deliver lag", fmt.Sprintf("%.1f events", res.MeanLagEvents))
	res.Table = tbl.String()
	return res, nil
}
