// Package obs holds the observability primitives of the reproduction:
// lock-free latency histograms and sampled per-document stage traces. Both
// are stdlib-only and built for hot paths — recording into a histogram is
// three atomic adds, and a disabled trace is a nil pointer whose methods
// no-op, so the instrumented code pays nothing when observation is off.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log2-spaced histogram buckets. Bucket i
// counts observations v (in nanoseconds) with bits.Len64(v) == i, i.e.
// v in [2^(i-1), 2^i); bucket 0 takes non-positive observations. The last
// bucket is a catch-all for anything at or above 2^(NumBuckets-2) ns
// (~9.3 hours) — far beyond any latency this system produces.
const NumBuckets = 46

// bucketOf maps a nanosecond observation to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds (math.MaxInt64 for the catch-all last bucket). Bounds are
// exact powers of two: 1ns, 2ns, 4ns, ... — the layout trades ~2x relative
// quantile error for a recording cost of one bits.Len64 and three atomic
// adds, with no configuration to get wrong.
func BucketUpperNs(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Histogram is a lock-free log2-bucketed latency histogram. The zero value
// is ready to use. Concurrent Observe calls never contend on a lock; a
// Snapshot taken under concurrent recording is internally consistent per
// counter (each is an atomic) but not across counters — sum and count may
// disagree by in-flight observations, which is fine for monitoring.
//
//vitex:counters
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Observe records one duration.
//
//vitex:hotpath
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(d.Nanoseconds()) }

// ObserveNs records one observation of ns nanoseconds.
//
//vitex:hotpath
func (h *Histogram) ObserveNs(ns int64) {
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
}

// Snapshot copies the histogram's counters into a plain value.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram, safe to aggregate and
// summarize without further synchronization.
type Snapshot struct {
	Count   int64
	SumNs   int64
	Buckets [NumBuckets]int64
}

// Merge adds o's observations into s (for per-channel -> global rollups).
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns a conservative (upper-bound) estimate of the q-quantile
// in nanoseconds: the upper bound of the first bucket at which the
// cumulative count reaches q*Count. Returns 0 for an empty snapshot.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(NumBuckets - 1)
}

// Stats condenses the snapshot into the wire summary.
func (s Snapshot) Stats() Stats {
	return Stats{
		Count: s.Count,
		SumNs: s.SumNs,
		P50Ns: s.Quantile(0.50),
		P95Ns: s.Quantile(0.95),
		P99Ns: s.Quantile(0.99),
	}
}

// Stats is the compact, JSON-round-trippable summary of a histogram that
// metrics responses embed: total observations, their sum, and upper-bound
// quantile estimates (see Snapshot.Quantile for the estimator).
type Stats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}
