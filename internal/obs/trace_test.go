package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceSafe: the disabled state is a nil pointer; every method must
// no-op without dereferencing.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.AddStage(StageAdmission, time.Second)
	tr.AddEvents(1)
	tr.AddMachinesWoken(1)
	tr.AddDeliveries(1)
	tr.MarkEnd()
	tr.Ref()
	tr.Unref()
	if tr.SinceStartNs() != 0 {
		t.Fatal("nil SinceStartNs != 0")
	}
	var tcr *Tracer
	if tcr.Sample("c", 1) != nil {
		t.Fatal("nil tracer sampled")
	}
	if tcr.Recent() != nil || tcr.Emitted() != 0 {
		t.Fatal("nil tracer has records")
	}
}

func TestTracerSamplingCadence(t *testing.T) {
	tr := NewTracer(3, 8, nil)
	var sampled int
	for i := 0; i < 30; i++ {
		if tc := tr.Sample("c", int64(i)); tc != nil {
			sampled++
			tc.Unref()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 30 at every=3, want 10", sampled)
	}
	if NewTracer(0, 8, nil) != nil {
		t.Fatal("every=0 should disable the tracer entirely")
	}
}

// TestTraceLifecycle walks one trace through the reference protocol and
// checks the emitted record.
func TestTraceLifecycle(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(1, 8, &sink)
	tc := tr.Sample("orders", 7)
	if tc == nil {
		t.Fatal("every=1 must sample")
	}
	tc.AddStage(StageAdmission, 100*time.Nanosecond)
	tc.AddStage(StageWALAppend, 200*time.Nanosecond)
	tc.AddStage(StageWireWrite, 50*time.Nanosecond)
	tc.AddStage(StageWireWrite, 50*time.Nanosecond) // accumulates
	tc.AddEvents(42)
	tc.AddMachinesWoken(3)
	tc.AddDeliveries(2)
	tc.Ref() // one in-flight delivery
	tc.Unref()
	if tr.Emitted() != 0 {
		t.Fatal("emitted before last reference released")
	}
	tc.MarkEnd()
	tc.Unref()
	if tr.Emitted() != 1 {
		t.Fatalf("emitted = %d, want 1", tr.Emitted())
	}
	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("recent = %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Channel != "orders" || r.DocSeq != 7 {
		t.Fatalf("record identity = %q/%d", r.Channel, r.DocSeq)
	}
	if r.Stages["wire_write"] != 100 {
		t.Fatalf("wire_write = %d, want accumulated 100", r.Stages["wire_write"])
	}
	if r.Events != 42 || r.MachinesWoken != 3 || r.Deliveries != 2 {
		t.Fatalf("counts = %+v", r)
	}
	if got := r.StageSumNs(); got != 100+200+100 {
		t.Fatalf("stage sum = %d", got)
	}
	if r.TotalNs <= 0 {
		t.Fatalf("total_ns = %d, want > 0 after MarkEnd", r.TotalNs)
	}
	// The sink got exactly one NDJSON line that round-trips.
	line := strings.TrimSpace(sink.String())
	if strings.Contains(line, "\n") {
		t.Fatalf("sink has multiple lines: %q", line)
	}
	var back Record
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("sink line does not parse: %v", err)
	}
	if back.DocSeq != 7 || back.Stages["wal_append"] != 200 {
		t.Fatalf("sink record = %+v", back)
	}
}

// TestTracerRingWraps: the ring keeps the newest ringSize records,
// newest first.
func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(1, 4, nil)
	for i := 1; i <= 10; i++ {
		tc := tr.Sample("c", int64(i))
		tc.Unref()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("recent = %d records, want 4", len(recs))
	}
	for i, want := range []int64{10, 9, 8, 7} {
		if recs[i].DocSeq != want {
			t.Fatalf("recent[%d].DocSeq = %d, want %d", i, recs[i].DocSeq, want)
		}
	}
}

// TestTracerConcurrent exercises sample/record/emit and Recent under
// contention (meaningful under -race).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(2, 16, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tc := tr.Sample("c", int64(i))
				if tc == nil {
					continue
				}
				tc.AddStage(StageScanDispatch, time.Microsecond)
				tc.Ref()
				go func() {
					tc.AddStage(StageWireWrite, time.Nanosecond)
					tc.MarkEnd()
					tc.Unref()
				}()
				tc.Unref()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Recent()
		}
	}()
	wg.Wait()
	<-done
	for deadline := time.Now().Add(5 * time.Second); tr.Emitted() != 1000; {
		if time.Now().After(deadline) {
			t.Fatalf("emitted = %d, want 1000", tr.Emitted())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < numStages; s++ {
		name := s.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad name %q", s, name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}
