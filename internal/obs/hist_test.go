package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket layout: bucket i holds ns in
// [2^(i-1), 2^i), with 0 and negatives in bucket 0 and a catch-all tail.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},         // [1,2)
		{2, 2}, {3, 2}, // [2,4)
		{4, 3}, {7, 3}, // [4,8)
		{1023, 10}, {1024, 11}, // 2^10 boundary
		{int64(1) << 44, NumBuckets - 1},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every non-tail observation must fall strictly below its bucket's
	// upper bound and at or above the previous bucket's.
	for _, ns := range []int64{1, 2, 3, 100, 999, 4096, 1e9} {
		b := bucketOf(ns)
		if ns >= BucketUpperNs(b) {
			t.Errorf("ns %d >= upper bound %d of its bucket %d", ns, BucketUpperNs(b), b)
		}
		if b > 0 && ns < BucketUpperNs(b-1) {
			t.Errorf("ns %d < upper bound %d of bucket %d", ns, BucketUpperNs(b-1), b-1)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 must be in the fast
	// bucket's range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket of 100ns: upper bound 128
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := int64(90*100 + 10*1e6); s.SumNs != want {
		t.Fatalf("sum = %d, want %d", s.SumNs, want)
	}
	if got := s.Quantile(0.50); got != 128 {
		t.Errorf("p50 = %d, want 128 (upper bound of the 100ns bucket)", got)
	}
	if got := s.Quantile(0.99); got < int64(time.Millisecond) || got > int64(2*time.Millisecond) {
		t.Errorf("p99 = %d, want within [1ms, 2ms]", got)
	}
	if got := s.Quantile(0); got != 128 {
		t.Errorf("q0 = %d, want first non-empty bucket bound 128", got)
	}
	var empty Snapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.ObserveNs(10)
	a.ObserveNs(1000)
	b.ObserveNs(10)
	b.ObserveNs(1 << 30)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 4 {
		t.Fatalf("merged count = %d, want 4", s.Count)
	}
	if want := int64(10 + 1000 + 10 + 1<<30); s.SumNs != want {
		t.Fatalf("merged sum = %d, want %d", s.SumNs, want)
	}
	if got := s.Buckets[bucketOf(10)]; got != 2 {
		t.Fatalf("merged 10ns bucket = %d, want 2", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshots are taken, asserting the final totals are exact (run under
// -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var bucketSum int64
				for _, c := range s.Buckets {
					bucketSum += c
				}
				// count is read before the buckets, so observations
				// completing mid-snapshot only push the bucket sum above
				// it; the sum can trail count only by in-flight recorders
				// that bumped count but not their bucket yet.
				if bucketSum < s.Count-workers {
					t.Errorf("snapshot skew: bucket sum %d vs count %d", bucketSum, s.Count)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.ObserveNs(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if want := int64(workers * perWorker); s.Count != want {
		t.Fatalf("final count = %d, want %d", s.Count, want)
	}
	var bucketSum int64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("final bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.ObserveNs(int64(i))
	}
	st := h.Snapshot().Stats()
	if st.Count != 1000 || st.SumNs != 999*1000/2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50Ns > st.P95Ns || st.P95Ns > st.P99Ns {
		t.Fatalf("quantiles not monotone: %+v", st)
	}
}
