package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one segment of a published document's journey through
// the broker. Stages are recorded as nanosecond durations on a Trace; see
// docs/observability.md for exactly where each stage starts and ends.
type Stage uint8

const (
	// StageAdmission: publish handler entry to ingest-queue send,
	// excluding WAL time (admission checks, sequence allocation).
	StageAdmission Stage = iota
	// StageWALAppend: WAL record encode+write, excluding the fsync.
	StageWALAppend
	// StageWALFsync: the durable-mode fsync inside the WAL append.
	StageWALFsync
	// StageQueueWait: ingest-queue send to evaluation start (queue depth
	// plus worker-semaphore wait).
	StageQueueWait
	// StageScanDispatch: engine evaluation (scan + trie + machine
	// dispatch), excluding time spent inside ring pushes.
	StageScanDispatch
	// StageRingEnqueue: time spent pushing deliveries into subscription
	// rings (includes blocking on a full ring under the block policy).
	StageRingEnqueue
	// StageDeliverWait: ring enqueue to wire-writer dequeue, per traced
	// delivery. Overlaps StageScanDispatch when a consumer drains
	// mid-evaluation; on the critical path (last delivery of the
	// document) it is the consumer wake-up latency.
	StageDeliverWait
	// StageWireWrite: NDJSON encode plus flush to the subscriber's
	// connection.
	StageWireWrite

	numStages
)

var stageNames = [numStages]string{
	"admission",
	"wal_append",
	"wal_fsync",
	"queue_wait",
	"scan_dispatch",
	"ring_enqueue",
	"deliver_wait",
	"wire_write",
}

// String returns the stage's snake_case wire name.
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Trace accumulates the per-stage timing of one sampled document. A nil
// *Trace is the disabled state: every method no-ops, so instrumented code
// calls them unconditionally and pays only a nil check when sampling is
// off. Stage adds are atomic — the publisher goroutine, the evaluation
// worker and any number of wire writers record concurrently.
//
// Lifecycle: Tracer.Sample hands out a trace holding one reference for the
// publish path. Each delivery carried into a subscription ring takes
// another (Ref); whoever retires a delivery — wire write, drop, replay
// skip — releases it (Unref). The release that drops the count to zero
// emits the finished record to the tracer and recycles the trace, so the
// NDJSON line appears only once the last traced byte hit a connection.
//
//vitex:pooled
type Trace struct {
	tracer  *Tracer
	channel string
	docSeq  int64
	start   time.Time

	stages        [numStages]atomic.Int64
	endNs         atomic.Int64
	events        atomic.Int64
	machinesWoken atomic.Int64
	deliveries    atomic.Int64
	refs          atomic.Int64
}

// Reset clears the trace for reuse. Atomic fields are plain-stored: the
// pool hand-off happens-before the next Sample.
func (t *Trace) Reset() { *t = Trace{} }

// SetDocSeq fills in the document number once it is assigned (publishers
// sample before taking the admission lock, where the sequence is unknown).
func (t *Trace) SetDocSeq(seq int64) {
	if t == nil {
		return
	}
	t.docSeq = seq
}

// Cancel discards the trace without emitting a record — the traced publish
// was rejected (queue full, WAL failure, shutdown). Callers must not touch
// t afterwards.
func (t *Trace) Cancel() {
	if t == nil {
		return
	}
	tr := t.tracer
	t.Reset()
	tr.pool.Put(t)
}

// AddStage adds d to the stage's accumulated duration.
func (t *Trace) AddStage(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stages[s].Add(d.Nanoseconds())
}

// SinceStartNs returns the monotonic offset from the trace's start, for
// correlating timestamps taken on different goroutines. 0 on a nil trace.
func (t *Trace) SinceStartNs() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// MarkEnd advances the trace's end watermark to now; the final record's
// total_ns is admission start to the latest MarkEnd (normally the last
// delivery's wire flush).
func (t *Trace) MarkEnd() {
	if t == nil {
		return
	}
	now := time.Since(t.start).Nanoseconds()
	for {
		cur := t.endNs.Load()
		if now <= cur || t.endNs.CompareAndSwap(cur, now) {
			return
		}
	}
}

// AddEvents records scan events attributed to this document.
func (t *Trace) AddEvents(n int64) {
	if t == nil {
		return
	}
	t.events.Add(n)
}

// AddMachinesWoken records machine deliveries (engine wake-ups).
func (t *Trace) AddMachinesWoken(n int64) {
	if t == nil {
		return
	}
	t.machinesWoken.Add(n)
}

// AddDeliveries records results fanned out to subscription rings.
func (t *Trace) AddDeliveries(n int64) {
	if t == nil {
		return
	}
	t.deliveries.Add(n)
}

// Ref takes an additional reference (one per in-flight traced delivery).
func (t *Trace) Ref() {
	if t == nil {
		return
	}
	t.refs.Add(1)
}

// Unref releases a reference; the release that reaches zero emits the
// record and recycles the trace. Callers must not touch t afterwards.
func (t *Trace) Unref() {
	if t == nil {
		return
	}
	if t.refs.Add(-1) == 0 {
		t.tracer.emit(t)
	}
}

// Record is one finished trace as exposed on /debug/traces and written to
// the NDJSON sink.
type Record struct {
	Channel string `json:"channel"`
	DocSeq  int64  `json:"doc_seq"`
	// TotalNs is admission start to the last recorded end mark (normally
	// the final traced delivery's wire flush; evaluation end for a
	// document with no deliveries).
	TotalNs int64 `json:"total_ns"`
	// Stages maps stage name to accumulated nanoseconds. Stages on
	// different goroutines can overlap (see StageDeliverWait), so the sum
	// approximates TotalNs rather than partitioning it exactly.
	Stages        map[string]int64 `json:"stages"`
	Events        int64            `json:"events"`
	MachinesWoken int64            `json:"machines_woken"`
	Deliveries    int64            `json:"deliveries"`
}

// StageSumNs returns the sum of all recorded stage durations.
func (r Record) StageSumNs() int64 {
	var sum int64
	for _, ns := range r.Stages {
		sum += ns
	}
	return sum
}

// Tracer samples publishes for stage tracing: every Nth publish gets a
// Trace, finished records land in a bounded in-memory ring (served by
// /debug/traces) and, when configured, as NDJSON lines on a sink.
//
//vitex:counters
type Tracer struct {
	every int64 //vitex:plain set at construction, read-only afterwards
	tick  atomic.Int64
	pool  sync.Pool // *Trace

	mu   sync.Mutex
	ring []Record  //vitex:guardedby=mu
	next int       //vitex:guardedby=mu
	sink io.Writer //vitex:guardedby=mu
	enc  *json.Encoder

	emitted atomic.Int64
}

// NewTracer samples one publish in every. ringSize bounds the in-memory
// record ring (<=0 defaults to 256); sink, when non-nil, additionally
// receives each record as one NDJSON line. every <= 0 disables tracing
// entirely: the returned tracer is nil, and nil tracers hand out nil
// traces, so the instrumented path stays allocation-free.
func NewTracer(every int, ringSize int, sink io.Writer) *Tracer {
	if every <= 0 {
		return nil
	}
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Tracer{every: int64(every), ring: make([]Record, 0, ringSize), sink: sink}
	if sink != nil {
		t.enc = json.NewEncoder(sink)
	}
	return t
}

// Sample returns a started Trace when this publish is selected, nil
// otherwise (and always nil on a nil tracer). The returned trace holds one
// reference for the publish path.
func (tr *Tracer) Sample(channel string, docSeq int64) *Trace {
	if tr == nil {
		return nil
	}
	if tr.tick.Add(1)%tr.every != 0 {
		return nil
	}
	t, _ := tr.pool.Get().(*Trace)
	if t == nil {
		t = &Trace{}
	}
	t.tracer = tr
	t.channel = channel
	t.docSeq = docSeq
	t.start = time.Now()
	t.refs.Store(1)
	return t
}

// Emitted returns the number of finished trace records.
func (tr *Tracer) Emitted() int64 {
	if tr == nil {
		return 0
	}
	return tr.emitted.Load()
}

// Recent returns the buffered records, newest first.
func (tr *Tracer) Recent() []Record {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Record, 0, len(tr.ring))
	// ring is filled to cap then overwritten at next; newest-first order
	// walks backwards from next-1.
	for i := 0; i < len(tr.ring); i++ {
		idx := tr.next - 1 - i
		if idx < 0 {
			idx += len(tr.ring)
		}
		out = append(out, tr.ring[idx])
	}
	return out
}

// emit builds the finished record, publishes it to the ring and sink, and
// recycles the trace.
func (tr *Tracer) emit(t *Trace) {
	rec := Record{
		Channel:       t.channel,
		DocSeq:        t.docSeq,
		TotalNs:       t.endNs.Load(),
		Stages:        make(map[string]int64, numStages),
		Events:        t.events.Load(),
		MachinesWoken: t.machinesWoken.Load(),
		Deliveries:    t.deliveries.Load(),
	}
	for s := Stage(0); s < numStages; s++ {
		if ns := t.stages[s].Load(); ns != 0 {
			rec.Stages[s.String()] = ns
		}
	}
	t.Reset()
	tr.pool.Put(t)

	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, rec)
		tr.next = len(tr.ring) % cap(tr.ring)
	} else {
		tr.ring[tr.next] = rec
		tr.next = (tr.next + 1) % len(tr.ring)
	}
	if tr.enc != nil {
		// Best-effort: a failing sink must not break publishing.
		_ = tr.enc.Encode(rec)
	}
	tr.mu.Unlock()
	tr.emitted.Add(1)
}
