// Package xmlout provides the canonical XML serialization shared by every
// engine in the repository. The TwigM machine serializes result fragments
// directly from the event stream while the DOM oracle serializes from tree
// nodes; tests compare the two byte-for-byte, so both must use exactly these
// rules:
//
//   - text escapes '&', '<' and '>'
//   - attribute values are double-quoted and additionally escape '"'
//   - attributes keep document order
//   - an element with no children serializes self-closing: <name/>
//   - text content is emitted verbatim otherwise (no whitespace
//     normalization)
package xmlout

import "strings"

// EscapeText writes s into b with character-data escaping.
func EscapeText(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
}

// EscapeAttr writes s into b with attribute-value escaping (double-quote
// convention).
func EscapeAttr(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
}

// Attr is a name/value pair for OpenTag.
type Attr struct {
	Name  string
	Value string
}

// OpenTag writes "<name a="v"...>" without the closing '>' decision: pass
// selfClose to emit "/>" instead of ">".
func OpenTag(b *strings.Builder, name string, attrs []Attr, selfClose bool) {
	b.WriteByte('<')
	b.WriteString(name)
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		EscapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	if selfClose {
		b.WriteString("/>")
	} else {
		b.WriteByte('>')
	}
}

// CloseTag writes "</name>".
func CloseTag(b *strings.Builder, name string) {
	b.WriteString("</")
	b.WriteString(name)
	b.WriteByte('>')
}

// AppendText is EscapeText for append-style []byte buffers (used by the
// streaming recorder, which serializes fragments incrementally).
func AppendText(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// AppendAttr is EscapeAttr for append-style buffers.
func AppendAttr(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}
