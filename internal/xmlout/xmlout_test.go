package xmlout

import (
	"strings"
	"testing"
	"testing/quick"
)

func escText(s string) string {
	var b strings.Builder
	EscapeText(&b, s)
	return b.String()
}

func escAttr(s string) string {
	var b strings.Builder
	EscapeAttr(&b, s)
	return b.String()
}

func TestEscapeText(t *testing.T) {
	cases := map[string]string{
		"plain":   "plain",
		"a&b":     "a&amp;b",
		"<tag>":   "&lt;tag&gt;",
		`"quote"`: `"quote"`,
		"":        "",
	}
	for in, want := range cases {
		if got := escText(in); got != want {
			t.Errorf("EscapeText(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeAttr(t *testing.T) {
	if got := escAttr(`a&b<c>"d"`); got != `a&amp;b&lt;c&gt;&quot;d&quot;` {
		t.Fatalf("got %q", got)
	}
}

// unescape inverts the five escapes, for the round-trip property.
func unescape(s string) string {
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`)
	return r.Replace(s)
}

// Property (testing/quick): escaping never produces raw markup characters
// and round-trips through unescaping.
func TestEscapeRoundTripQuick(t *testing.T) {
	propText := func(s string) bool {
		e := escText(s)
		if strings.ContainsAny(e, "<>") {
			return false
		}
		return unescape(e) == s
	}
	propAttr := func(s string) bool {
		e := escAttr(s)
		if strings.ContainsAny(e, `<>"`) {
			return false
		}
		return unescape(e) == s
	}
	if err := quick.Check(propText, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(propAttr, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: builder-based and append-based escaping agree byte for byte.
func TestBuilderAppendAgreeQuick(t *testing.T) {
	prop := func(s string) bool {
		return escText(s) == string(AppendText(nil, s)) &&
			escAttr(s) == string(AppendAttr(nil, s))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCloseTag(t *testing.T) {
	var b strings.Builder
	OpenTag(&b, "a", []Attr{{"x", `v"1`}, {"y", "2"}}, false)
	b.WriteString("body")
	CloseTag(&b, "a")
	want := `<a x="v&quot;1" y="2">body</a>`
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
}

func TestSelfClosingTag(t *testing.T) {
	var b strings.Builder
	OpenTag(&b, "empty", nil, true)
	if b.String() != "<empty/>" {
		t.Fatalf("got %q", b.String())
	}
}
