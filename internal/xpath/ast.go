// Package xpath implements the "XPath parser" module of the ViteX
// architecture (ICDE 2005, figure 2): it turns an XPath string in the
// fragment XP{/, //, *, []} into the tree representation that the TwigM
// builder, the naive baseline and the DOM oracle all consume.
//
// Supported surface (abbreviated syntax):
//
//	/step, //step chains; name tests, *, @attr, text()
//	predicates [relpath], [relpath op literal], [@a op literal],
//	[text() op literal], [. op literal], and/or, parentheses,
//	nested predicates inside predicate paths
//	ops: = != < <= > >=
//
// Out of scope, rejected with ParseError (all outside XP{/,//,*,[]}):
// not(), positional predicates, functions, path-vs-path joins, reverse and
// named axes, absolute paths inside predicates, unions.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sax"
)

// Axis is the relationship between a query node and its parent query node.
type Axis uint8

const (
	// Child is the '/' axis. For Attribute nodes it reads "attribute of
	// the element itself"; for Text nodes, "text-node child".
	Child Axis = iota
	// Descendant is the '//' axis: proper descendant for elements and
	// text nodes, self-or-descendant for attributes (per the
	// descendant-or-self::node() expansion of '//').
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Kind discriminates query-node variants.
type Kind uint8

const (
	// Element matches elements by name (or any element for "*").
	Element Kind = iota
	// Attribute matches an attribute by name; its value is the node's
	// string-value.
	Attribute
	// Text matches text nodes; each maximal character-data run is one
	// node.
	Text
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	default:
		return "text()"
	}
}

// Op is a comparison operator in a value predicate.
type Op uint8

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (o Op) String() string { return opNames[o] }

// Comparison is a value test attached to a query node: the node's
// string-value compared against a literal.
//
// Semantics (shared by all three engines; a deliberate, documented
// simplification of XPath 1.0 coercion): if the literal was written as a
// number, both sides are compared numerically and a node whose string-value
// does not parse as a number fails the comparison (including !=; XPath's
// NaN-propagating != is not reproduced). If the literal is a quoted string,
// = and != compare strings, while the ordering operators convert both sides
// to numbers.
type Comparison struct {
	Op      Op
	Literal string  // literal text (unquoted)
	Number  float64 // parsed value when IsNumber
	IsNum   bool    // literal was a number token
}

// Eval reports whether value op literal holds under the comparison rules
// above.
func (c *Comparison) Eval(value string) bool {
	numeric := c.IsNum || c.Op >= OpLt
	if numeric {
		rhs := c.Number
		if !c.IsNum {
			f, err := strconv.ParseFloat(strings.TrimSpace(c.Literal), 64)
			if err != nil {
				return false
			}
			rhs = f
		}
		lhs, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			return false
		}
		switch c.Op {
		case OpEq:
			return lhs == rhs
		case OpNe:
			return lhs != rhs
		case OpLt:
			return lhs < rhs
		case OpLe:
			return lhs <= rhs
		case OpGt:
			return lhs > rhs
		default:
			return lhs >= rhs
		}
	}
	if c.Op == OpEq {
		return value == c.Literal
	}
	return value != c.Literal // OpNe
}

func (c *Comparison) String() string {
	if c.IsNum {
		return fmt.Sprintf(" %s %s", c.Op, strconv.FormatFloat(c.Number, 'g', -1, 64))
	}
	return fmt.Sprintf(" %s '%s'", c.Op, c.Literal)
}

// PredOp is the operator of a predicate-expression node.
type PredOp uint8

const (
	// PredLeaf tests existence of a match of Leaf's subtree.
	PredLeaf PredOp = iota
	// PredSelf tests the owning node's own string-value via Self.
	PredSelf
	// PredAnd / PredOr combine Kids.
	PredAnd
	PredOr
	// PredTrue is the constant-true predicate ("[.]").
	PredTrue
)

// PredExpr is a boolean expression over predicate leaves. A query node's
// predicate set [p1][p2]... is the PredAnd of the individual bracket
// expressions.
type PredExpr struct {
	Op   PredOp
	Kids []*PredExpr // PredAnd, PredOr
	Leaf *Node       // PredLeaf: first node of the relative path
	Self *Comparison // PredSelf
}

// Node is one node of the query tree. The top-level path forms the spine
// (linked by Next with Spine=true); predicate relative paths are also linked
// by Next but with Spine=false. The output node is the spine node whose Next
// is nil.
type Node struct {
	Kind Kind
	// Name is the element or attribute name test as written ("p:a" for a
	// prefixed test); "*" for the wildcard; unused for text().
	Name string
	// Prefix and Local split Name at its namespace colon. A name test
	// matches nodes whose local name equals Local; when Prefix is
	// non-empty the node's lexical prefix must also equal Prefix.
	Prefix string
	Local  string
	Axis   Axis
	// Next is the continuation of this node's path chain, if any.
	Next *Node
	// Pred is this node's predicate expression, nil when there are no
	// brackets. Satisfaction of a node = Pred ∧ (Next matched) ∧ Cmp.
	Pred *PredExpr
	// Cmp is a value test on this node's own string-value, attached by a
	// trailing comparison on the path that ends at this node.
	Cmp *Comparison
	// Spine marks nodes on the top-level path.
	Spine bool
}

// Query is a parsed XPath query.
type Query struct {
	// Root is the first step of the spine.
	Root *Node
	// Output is the spine leaf whose matches are the query solutions.
	Output *Node
	// Source is the original query text.
	Source string
}

// Wildcard reports whether n matches every element name.
func (n *Node) Wildcard() bool { return n.Kind == Element && n.Name == "*" }

// Matches reports whether a lexical QName satisfies this node's name test:
// the wildcard matches everything; otherwise local names must agree, and a
// prefixed test additionally requires the name's prefix. Only meaningful for
// Element and Attribute nodes.
func (n *Node) Matches(name string) bool {
	if n.Name == "*" {
		return true
	}
	tp, tl := n.Prefix, n.Local
	if tl == "" && n.Name != "" {
		// Node built without the parser: split on demand.
		tp, tl = sax.SplitName(n.Name)
	}
	prefix, local := sax.SplitName(name)
	if tl != local {
		return false
	}
	return tp == "" || tp == prefix
}

// Size returns the number of query nodes in the subtree rooted at n,
// including nodes reached through predicates — the |Q| of the paper's
// complexity bounds.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	size := 1 + n.Next.Size()
	size += n.Pred.size()
	return size
}

func (p *PredExpr) size() int {
	if p == nil {
		return 0
	}
	s := 0
	for _, k := range p.Kids {
		s += k.size()
	}
	if p.Leaf != nil {
		s += p.Leaf.Size()
	}
	return s
}

// Size returns the total number of query nodes — the paper's |Q|.
func (q *Query) Size() int { return q.Root.Size() }

// String reconstructs a canonical form of the query.
func (q *Query) String() string {
	var b strings.Builder
	writePath(&b, q.Root)
	return b.String()
}

func writePath(b *strings.Builder, n *Node) {
	for ; n != nil; n = n.Next {
		b.WriteString(n.Axis.String())
		writeStep(b, n)
	}
}

func writeStep(b *strings.Builder, n *Node) {
	switch n.Kind {
	case Attribute:
		b.WriteByte('@')
		b.WriteString(n.Name)
	case Text:
		b.WriteString("text()")
	default:
		b.WriteString(n.Name)
	}
	if n.Pred != nil {
		b.WriteByte('[')
		writePred(b, n.Pred)
		b.WriteByte(']')
	}
	if n.Cmp != nil {
		b.WriteString(n.Cmp.String())
	}
}

func writePred(b *strings.Builder, p *PredExpr) {
	switch p.Op {
	case PredTrue:
		b.WriteByte('.')
	case PredSelf:
		b.WriteByte('.')
		b.WriteString(p.Self.String())
	case PredLeaf:
		// Relative paths print without the leading axis for child.
		n := p.Leaf
		if n.Axis == Descendant {
			b.WriteString(".//")
		}
		writeStep(b, n)
		for n = n.Next; n != nil; n = n.Next {
			b.WriteString(n.Axis.String())
			writeStep(b, n)
		}
	case PredAnd, PredOr:
		word := " and "
		if p.Op == PredOr {
			word = " or "
		}
		for i, k := range p.Kids {
			if i > 0 {
				b.WriteString(word)
			}
			// 'and' binds tighter than 'or': only an 'or' nested in
			// an 'and' needs parentheses.
			paren := k.Op == PredOr && p.Op == PredAnd
			if paren {
				b.WriteByte('(')
			}
			writePred(b, k)
			if paren {
				b.WriteByte(')')
			}
		}
	}
}

// Walk calls fn for every query node in the tree (spine and predicates), in
// a deterministic pre-order.
func (q *Query) Walk(fn func(*Node)) { walkNode(q.Root, fn) }

func walkNode(n *Node, fn func(*Node)) {
	for ; n != nil; n = n.Next {
		fn(n)
		walkPred(n.Pred, fn)
	}
}

func walkPred(p *PredExpr, fn func(*Node)) {
	if p == nil {
		return
	}
	if p.Leaf != nil {
		walkNode(p.Leaf, fn)
	}
	for _, k := range p.Kids {
		walkPred(k, fn)
	}
}
