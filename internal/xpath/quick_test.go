package xpath

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
)

// Property (testing/quick-style over the repository's query generator):
// every generated query parses, its canonical form is a fixed point, and
// Size is stable across the round trip.
func TestGeneratedQueriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		src := datagen.RandomQuery(rng, datagen.DefaultRandomTree, i%2 == 0)
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", src, err)
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q (from %q) does not parse: %v", canon, src, err)
		}
		if q2.String() != canon {
			t.Fatalf("canonical form not fixed point: %q -> %q", canon, q2.String())
		}
		if q2.Size() != q.Size() {
			t.Fatalf("size changed across round trip: %d -> %d (%q)", q.Size(), q2.Size(), src)
		}
	}
}

// Property (testing/quick): arbitrary strings never panic the parser — they
// parse or return a ParseError.
func TestParseNeverPanicsQuick(t *testing.T) {
	prop := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): comparison trichotomy for numeric literals —
// for any float value v and literal l, exactly one of <, =, > holds (when v
// parses as a number), and <= == (< or =).
func TestComparisonTrichotomyQuick(t *testing.T) {
	prop := func(v float64, l float64) bool {
		if v != v || l != l || v > 1e300 || v < -1e300 || l > 1e300 || l < -1e300 {
			return true // skip NaN/overflow noise
		}
		value := formatFloat(v)
		mk := func(op Op) *Comparison {
			return &Comparison{Op: op, Literal: formatFloat(l), Number: l, IsNum: true}
		}
		lt := mk(OpLt).Eval(value)
		eq := mk(OpEq).Eval(value)
		gt := mk(OpGt).Eval(value)
		if count(lt, eq, gt) != 1 {
			return false
		}
		le := mk(OpLe).Eval(value)
		ge := mk(OpGe).Eval(value)
		ne := mk(OpNe).Eval(value)
		return le == (lt || eq) && ge == (gt || eq) && ne == !eq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func count(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// formatFloat renders a float64 so it parses back to exactly the same
// value ('g' with precision -1 round-trips).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
