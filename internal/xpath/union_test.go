package xpath

import (
	"strings"
	"testing"
)

func TestParseUnionBranches(t *testing.T) {
	qs, err := ParseUnion("//a[b] | /c/d | //e/@f")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("branches = %d", len(qs))
	}
	wants := []string{"//a[b]", "/c/d", "//e/@f"}
	for i, q := range qs {
		if q.String() != wants[i] {
			t.Errorf("branch %d = %q, want %q", i, q.String(), wants[i])
		}
		if q.Output == nil || !q.Output.Spine {
			t.Errorf("branch %d output not set", i)
		}
	}
}

func TestParseUnionSingle(t *testing.T) {
	qs, err := ParseUnion("//a")
	if err != nil || len(qs) != 1 {
		t.Fatalf("qs=%v err=%v", qs, err)
	}
}

func TestParseRejectsUnion(t *testing.T) {
	_, err := Parse("//a | //b")
	if err == nil || !strings.Contains(err.Error(), "ParseUnion") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseUnionErrors(t *testing.T) {
	for _, src := range []string{
		"//a |",
		"| //a",
		"//a | | //b",
		"//a[x | y]", // '|' is only a top-level connective
		"//a | b",    // second branch must be absolute
	} {
		if _, err := ParseUnion(src); err == nil {
			t.Errorf("ParseUnion(%q): expected error", src)
		}
	}
}

func TestParseUnionValidatesEveryBranch(t *testing.T) {
	if _, err := ParseUnion("//a | //@id/b"); err == nil {
		t.Fatal("invalid second branch must fail")
	}
}
