package xpath

import "strings"

// Parse compiles an XPath query in XP{/,//,*,[]} into a Query tree. It is
// the entry point of the "XPath parser" module of the ViteX architecture.
// Union expressions ('p1 | p2') are rejected here; use ParseUnion.
func Parse(src string) (*Query, error) {
	qs, err := ParseUnion(src)
	if err != nil {
		return nil, err
	}
	if len(qs) != 1 {
		return nil, &ParseError{Query: src, Pos: 0, Msg: "union query where a single path is required; use ParseUnion"}
	}
	return qs[0], nil
}

// ParseUnion compiles 'path | path | ...' into one Query per branch. Each
// branch is an independent query tree; union semantics (set union of the
// branch results, deduplicated by node, in document order) are implemented
// by the evaluators.
func ParseUnion(src string) ([]*Query, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var qs []*Query
	for {
		root, err := p.parsePath(true)
		if err != nil {
			return nil, err
		}
		q := &Query{Root: root, Source: src}
		out := root
		for out.Next != nil {
			out = out.Next
		}
		q.Output = out
		for n := root; n != nil; n = n.Next {
			n.Spine = true
		}
		if err := validate(q); err != nil {
			return nil, err
		}
		qs = append(qs, q)
		if p.tok.kind != tokPipe {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errHere("unexpected %s after end of path", p.tok.kind)
	}
	return qs, nil
}

// MustParse is Parse that panics on error; intended for tests, examples and
// package-level query constants.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...any) *ParseError {
	return p.lex.errf(p.tok.pos, format, args...)
}

// parsePath parses ('/'|'//') Step (('/'|'//') Step)*. For top-level paths
// (absolute=true) the leading axis is mandatory; predicate-relative paths
// instead begin with an implicit child axis or an explicit './/' handled by
// the caller.
func (p *parser) parsePath(absolute bool) (*Node, error) {
	if p.tok.kind != tokSlash && p.tok.kind != tokDSlash {
		return nil, p.errHere("query must begin with '/' or '//', found %s", p.tok.kind)
	}
	var head, tail *Node
	for p.tok.kind == tokSlash || p.tok.kind == tokDSlash {
		axis := Child
		if p.tok.kind == tokDSlash {
			axis = Descendant
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		if tail == nil {
			head = step
		} else {
			tail.Next = step
		}
		tail = step
	}
	_ = absolute
	return head, nil
}

// parseStep parses one step: '@name', 'text()', name or '*', with optional
// predicates on element steps.
func (p *parser) parseStep(axis Axis) (*Node, error) {
	switch p.tok.kind {
	case tokAt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokName {
			return nil, p.errHere("expected attribute name after '@', found %s", p.tok.kind)
		}
		n := &Node{Kind: Attribute, Name: p.tok.text, Axis: axis}
		if err := splitQName(n, &p.lex, p.tok.pos); err != nil {
			return nil, err
		}
		return n, p.advance()
	case tokStar:
		n := &Node{Kind: Element, Name: "*", Local: "*", Axis: axis}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parsePredicates(n)
	case tokName:
		name := p.tok.text
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			if name != "text" {
				return nil, p.lex.errf(pos, "unsupported function %s()", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokRParen {
				return nil, p.errHere("expected ')' after 'text(', found %s", p.tok.kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Node{Kind: Text, Axis: axis}, nil
		}
		n := &Node{Kind: Element, Name: name, Axis: axis}
		if err := splitQName(n, &p.lex, pos); err != nil {
			return nil, err
		}
		return p.parsePredicates(n)
	default:
		return nil, p.errHere("expected a step, found %s", p.tok.kind)
	}
}

// splitQName fills in n's Prefix/Local from its Name, rejecting malformed
// QNames (empty prefix or local part, more than one colon).
func splitQName(n *Node, l *lexer, pos int) error {
	name := n.Name
	i := strings.IndexByte(name, ':')
	if i < 0 {
		n.Local = name
		return nil
	}
	if i == 0 || i == len(name)-1 || strings.IndexByte(name[i+1:], ':') >= 0 {
		return l.errf(pos, "malformed QName %q", name)
	}
	n.Prefix, n.Local = name[:i], name[i+1:]
	return nil
}

// parsePredicates attaches zero or more bracket expressions to n, combining
// multiple brackets with AND.
func (p *parser) parsePredicates(n *Node) (*Node, error) {
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRBracket {
			return nil, p.errHere("expected ']', found %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if n.Pred == nil {
			n.Pred = expr
		} else if n.Pred.Op == PredAnd {
			n.Pred.Kids = append(n.Pred.Kids, expr)
		} else {
			n.Pred = &PredExpr{Op: PredAnd, Kids: []*PredExpr{n.Pred, expr}}
		}
	}
	return n, nil
}

func (p *parser) parseOr() (*PredExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokOr {
		return left, nil
	}
	or := &PredExpr{Op: PredOr, Kids: []*PredExpr{left}}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		or.Kids = append(or.Kids, right)
	}
	return or, nil
}

func (p *parser) parseAnd() (*PredExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokAnd {
		return left, nil
	}
	and := &PredExpr{Op: PredAnd, Kids: []*PredExpr{left}}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		and.Kids = append(and.Kids, right)
	}
	return and, nil
}

// parseUnary parses '(' expr ')' or a path predicate.
func (p *parser) parseUnary() (*PredExpr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errHere("expected ')', found %s", p.tok.kind)
		}
		return expr, p.advance()
	}
	return p.parsePathPred()
}

// parsePathPred parses a relative path with an optional trailing comparison:
//
//	. [op literal]
//	relpath [op literal]
//	.//relpath [op literal]
//
// A bare '//' is rejected: in XPath it would restart from the document root,
// which is almost never what a predicate author means; './/...' expresses
// the descendant version explicitly.
func (p *parser) parsePathPred() (*PredExpr, error) {
	switch p.tok.kind {
	case tokSlash, tokDSlash:
		return nil, p.errHere("absolute paths are not allowed inside predicates; use './/' for descendants")
	case tokDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokSlash || p.tok.kind == tokDSlash {
			// './/a' or './a' — a relative path with explicit axis.
			head, err := p.parseRelPathFrom()
			if err != nil {
				return nil, err
			}
			return p.attachComparison(head)
		}
		if p.tok.kind == tokOp {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			return &PredExpr{Op: PredSelf, Self: cmp}, nil
		}
		return &PredExpr{Op: PredTrue}, nil
	case tokString, tokNumber:
		return nil, p.errHere("literal-first comparisons are not supported; write 'path op literal'")
	default:
		head, err := p.parseRelStepChain()
		if err != nil {
			return nil, err
		}
		return p.attachComparison(head)
	}
}

// parseRelPathFrom parses the ('/'|'//') Step ... continuation after '.'.
func (p *parser) parseRelPathFrom() (*Node, error) {
	return p.parsePath(false)
}

// parseRelStepChain parses 'step (('/'|'//') step)*' with an implicit child
// axis on the first step.
func (p *parser) parseRelStepChain() (*Node, error) {
	head, err := p.parseStep(Child)
	if err != nil {
		return nil, err
	}
	tail := head
	for p.tok.kind == tokSlash || p.tok.kind == tokDSlash {
		axis := Child
		if p.tok.kind == tokDSlash {
			axis = Descendant
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		tail.Next = step
		tail = step
	}
	return head, nil
}

// attachComparison wraps a predicate path in a PredLeaf, attaching a
// trailing comparison to the path's last node.
func (p *parser) attachComparison(head *Node) (*PredExpr, error) {
	if p.tok.kind == tokOp {
		cmp, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		tail := head
		for tail.Next != nil {
			tail = tail.Next
		}
		tail.Cmp = cmp
	}
	return &PredExpr{Op: PredLeaf, Leaf: head}, nil
}

func (p *parser) parseComparison() (*Comparison, error) {
	op := p.tok.op
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokString:
		c := &Comparison{Op: op, Literal: p.tok.text}
		return c, p.advance()
	case tokNumber:
		c := &Comparison{Op: op, Literal: p.tok.text, Number: p.tok.num, IsNum: true}
		return c, p.advance()
	default:
		return nil, p.errHere("expected a literal after comparison operator, found %s (path-vs-path comparisons are not supported)", p.tok.kind)
	}
}

// validate enforces the semantic rules of the fragment.
func validate(q *Query) error {
	perr := func(msg string) error { return &ParseError{Query: q.Source, Pos: len(q.Source), Msg: msg} }
	// Non-final spine steps must be elements: /a/@id/b is meaningless.
	for n := q.Root; n != nil; n = n.Next {
		if n.Next != nil && n.Kind != Element {
			return perr("only the final step of a path may be an attribute or text() step")
		}
	}
	var err error
	q.Walk(func(n *Node) {
		if err != nil {
			return
		}
		if n.Kind != Element {
			if n.Pred != nil {
				err = perr("predicates on attribute or text() steps are not supported")
			}
			if n.Next != nil {
				err = perr("only the final step of a path may be an attribute or text() step")
			}
		}
	})
	return err
}
