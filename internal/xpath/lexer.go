package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexer token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash // //
	tokName
	tokStar
	tokAt
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokDot
	tokAnd
	tokOr
	tokOp      // comparison operator, value in op
	tokString  // quoted literal, value in text
	tokNumber  // numeric literal, value in num/text
	tokPipe    // '|', union of paths
	tokInvalid // lexical error
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokSlash:
		return "'/'"
	case tokDSlash:
		return "'//'"
	case tokName:
		return "name"
	case tokStar:
		return "'*'"
	case tokAt:
		return "'@'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokDot:
		return "'.'"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokOp:
		return "comparison operator"
	case tokString:
		return "string literal"
	case tokNumber:
		return "number"
	case tokPipe:
		return "'|'"
	default:
		return "invalid token"
	}
}

type token struct {
	kind tokKind
	text string
	op   Op
	num  float64
	pos  int // byte offset in the query string
}

// ParseError reports a lexical or syntactic error in an XPath query, with
// the byte position at which it was detected.
type ParseError struct {
	Query string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xpath: %s at position %d in %q", e.Msg, e.Pos, e.Query)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) *ParseError {
	return &ParseError{Query: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		l.pos++
	}
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{kind: tokDSlash, pos: start}, nil
		}
		return token{kind: tokSlash, pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokOp, op: OpEq, pos: start}, nil
	case '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, op: OpNe, pos: start}, nil
		}
		return token{}, l.errf(start, "'!' must be followed by '='")
	case '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, op: OpLe, pos: start}, nil
		}
		return token{kind: tokOp, op: OpLt, pos: start}, nil
	case '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, op: OpGe, pos: start}, nil
		}
		return token{kind: tokOp, op: OpGt, pos: start}, nil
	case '\'', '"':
		l.pos++
		i := strings.IndexByte(l.src[l.pos:], c)
		if i < 0 {
			return token{}, l.errf(start, "unterminated string literal")
		}
		text := l.src[l.pos : l.pos+i]
		l.pos += i + 1
		return token{kind: tokString, text: text, pos: start}, nil
	case '.':
		// Could be '.', './/...', or a number like '.5'.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	}
	if c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && (l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' || l.src[l.pos+1] == '.') {
		return l.lexNumber()
	}
	if isNameStartRune(rune(c)) || c >= utf8.RuneSelf {
		return l.lexName()
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: f, pos: start}, nil
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isNameRune(r) {
			break
		}
		l.pos += size
	}
	name := l.src[start:l.pos]
	switch name {
	case "and":
		return token{kind: tokAnd, pos: start}, nil
	case "or":
		return token{kind: tokOr, pos: start}, nil
	}
	return token{kind: tokName, text: name, pos: start}, nil
}

func isNameStartRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameRune(r rune) bool {
	return isNameStartRune(r) || r == '-' || r == '.' || unicode.IsDigit(r) || r == ':'
}
