package xpath

import (
	"strings"
	"testing"
)

// roundTrip checks that a query parses and its canonical form re-parses to
// the same canonical form (fixed point).
func roundTrip(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	canon := q.String()
	q2, err := Parse(canon)
	if err != nil {
		t.Fatalf("reparse of canonical %q (from %q): %v", canon, src, err)
	}
	if got := q2.String(); got != canon {
		t.Fatalf("canonical form unstable: %q -> %q -> %q", src, canon, got)
	}
	return q
}

func TestParseSimplePaths(t *testing.T) {
	cases := []struct {
		src   string
		canon string
		size  int
	}{
		{"/a", "/a", 1},
		{"//a", "//a", 1},
		{"/a/b", "/a/b", 2},
		{"//a//b", "//a//b", 2},
		{"/a//b/c", "/a//b/c", 3},
		{"//*", "//*", 1},
		{"/a/*/b", "/a/*/b", 3},
		{"//a/@id", "//a/@id", 2},
		{"//a//@id", "//a//@id", 2},
		{"//a/text()", "//a/text()", 2},
		{"//a//text()", "//a//text()", 2},
		{" //a / b ", "//a/b", 2},
	}
	for _, c := range cases {
		q := roundTrip(t, c.src)
		if got := q.String(); got != c.canon {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.canon)
		}
		if got := q.Size(); got != c.size {
			t.Errorf("Parse(%q).Size() = %d, want %d", c.src, got, c.size)
		}
	}
}

func TestParsePredicates(t *testing.T) {
	cases := []struct {
		src   string
		canon string
		size  int
	}{
		{"//a[b]", "//a[b]", 2},
		{"//a[b][c]", "//a[b and c]", 3},
		{"//a[b and c]", "//a[b and c]", 3},
		{"//a[b or c]", "//a[b or c]", 3},
		{"//a[b and c or d]", "//a[b and c or d]", 4},
		{"//a[(b or c) and d]", "//a[(b or c) and d]", 4},
		{"//a[b/c]", "//a[b/c]", 3},
		{"//a[b//c]", "//a[b//c]", 3},
		{"//a[.//b]", "//a[.//b]", 2},
		{"//a[./b]", "//a[b]", 2},
		{"//a[@id]", "//a[@id]", 2},
		{"//a[text()]", "//a[text()]", 2},
		{"//a[b[c]/d]", "//a[b[c]/d]", 4},
		{"//section[author]//table[position]//cell",
			"//section[author]//table[position]//cell", 5},
	}
	for _, c := range cases {
		q := roundTrip(t, c.src)
		if got := q.String(); got != c.canon {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.canon)
		}
		if got := q.Size(); got != c.size {
			t.Errorf("Parse(%q).Size() = %d, want %d", c.src, got, c.size)
		}
	}
}

func TestParseComparisons(t *testing.T) {
	cases := []struct {
		src   string
		canon string
	}{
		{"//a[b='x']", "//a[b = 'x']"},
		{`//a[b="x"]`, "//a[b = 'x']"},
		{"//a[b!='x']", "//a[b != 'x']"},
		{"//a[@id='7']", "//a[@id = '7']"},
		{"//a[b=3]", "//a[b = 3]"},
		{"//a[b<3]", "//a[b < 3]"},
		{"//a[b<=3.5]", "//a[b <= 3.5]"},
		{"//a[b>3]", "//a[b > 3]"},
		{"//a[b>=-2]", "//a[b >= -2]"},
		{"//a[.='x']", "//a[. = 'x']"},
		{"//a[text()='x']", "//a[text() = 'x']"},
		{"//a[b/c='x']", "//a[b/c = 'x']"},
		{"//a[.//b='x']", "//a[.//b = 'x']"},
		{"//a[.]", "//a[.]"},
	}
	for _, c := range cases {
		q := roundTrip(t, c.src)
		if got := q.String(); got != c.canon {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.canon)
		}
	}
}

func TestOutputNode(t *testing.T) {
	q := MustParse("//a[b]//c/@id")
	if q.Output.Kind != Attribute || q.Output.Name != "id" {
		t.Fatalf("output node = %+v, want @id", q.Output)
	}
	if !q.Output.Spine {
		t.Fatal("output node must be on the spine")
	}
	// Predicate nodes are not spine nodes.
	var b *Node
	q.Walk(func(n *Node) {
		if n.Kind == Element && n.Name == "b" {
			b = n
		}
	})
	if b == nil || b.Spine {
		t.Fatalf("predicate node b: %+v, want non-spine", b)
	}
}

func TestSpineChain(t *testing.T) {
	q := MustParse("//a/b//c")
	var names []string
	for n := q.Root; n != nil; n = n.Next {
		names = append(names, n.Name)
		if !n.Spine {
			t.Fatalf("spine node %s not marked Spine", n.Name)
		}
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("spine = %v", names)
	}
	if q.Root.Axis != Descendant || q.Root.Next.Axis != Child || q.Output.Axis != Descendant {
		t.Fatal("axes wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"", "must begin"},
		{"a/b", "must begin"},
		{"/", "expected a step"},
		{"//", "expected a step"},
		{"//a[", "expected a step"},
		{"//a[]", "expected a step"},
		{"//a[b", "expected ']'"},
		{"//a]", "unexpected"},
		{"//a[//b]", "absolute paths"},
		{"//a[/b]", "absolute paths"},
		{"//a[b=]", "expected a literal"},
		{"//a[b=c]", "expected a literal"},
		{"//a['x'=b]", "literal-first"},
		{"//a[b!c]", "'!' must be followed"},
		{"//a[f(x)]", "unsupported function f()"},
		{"//a[not(b)]", "unsupported function not()"},
		{"//a[position()]", "unsupported function position()"},
		{"//a[1]", "literal-first"},
		{"//@id/a", "final step"},
		{"//text()/a", "final step"},
		{"//a[@id/b]", "final step"},
		{"//a[text()/b]", "final step"},
		{"//a[b]'", "unterminated string"},
		{"//a[(b]", "expected ')'"},
		{"//a $", "unexpected character"},
		{"//a//", "expected a step"},
		{"//a b", "unexpected name"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.src, c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, err, c.substr)
		}
	}
}

func TestComparisonEval(t *testing.T) {
	cases := []struct {
		cmp   Comparison
		value string
		want  bool
	}{
		{Comparison{Op: OpEq, Literal: "x"}, "x", true},
		{Comparison{Op: OpEq, Literal: "x"}, "y", false},
		{Comparison{Op: OpNe, Literal: "x"}, "y", true},
		{Comparison{Op: OpNe, Literal: "x"}, "x", false},
		{Comparison{Op: OpEq, Literal: "3", Number: 3, IsNum: true}, "3.0", true},
		{Comparison{Op: OpEq, Literal: "3", Number: 3, IsNum: true}, " 3 ", true},
		{Comparison{Op: OpEq, Literal: "3", Number: 3, IsNum: true}, "4", false},
		{Comparison{Op: OpEq, Literal: "3", Number: 3, IsNum: true}, "pig", false},
		{Comparison{Op: OpNe, Literal: "3", Number: 3, IsNum: true}, "pig", false}, // documented NaN divergence
		{Comparison{Op: OpLt, Literal: "3", Number: 3, IsNum: true}, "2.5", true},
		{Comparison{Op: OpLe, Literal: "3", Number: 3, IsNum: true}, "3", true},
		{Comparison{Op: OpGt, Literal: "3", Number: 3, IsNum: true}, "3", false},
		{Comparison{Op: OpGe, Literal: "3", Number: 3, IsNum: true}, "3", true},
		// Ordering with a string literal converts both sides to numbers.
		{Comparison{Op: OpLt, Literal: "10"}, "9", true},
		{Comparison{Op: OpLt, Literal: "10"}, "11", false},
		{Comparison{Op: OpLt, Literal: "pig"}, "9", false},
	}
	for i, c := range cases {
		if got := c.cmp.Eval(c.value); got != c.want {
			t.Errorf("case %d: Eval(%q) %s = %v, want %v", i, c.value, c.cmp.String(), got, c.want)
		}
	}
}

func TestWalkOrderDeterministic(t *testing.T) {
	q := MustParse("//a[x/y or @z]//b[w]/c")
	var names []string
	q.Walk(func(n *Node) {
		name := n.Name
		if n.Kind == Text {
			name = "text()"
		}
		names = append(names, name)
	})
	want := "a,x,y,z,b,w,c"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("walk order = %s, want %s", got, want)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad query should panic")
		}
	}()
	MustParse("not a query")
}

func TestSizeCountsPredicateSubtrees(t *testing.T) {
	// a + (b + c) + d + e = 5
	if got := MustParse("//a[b/c]//d/e").Size(); got != 5 {
		t.Fatalf("Size = %d, want 5", got)
	}
}

func TestPrefixedNameTests(t *testing.T) {
	q := MustParse("//p:a[@n:k]/b")
	if q.Root.Name != "p:a" || q.Root.Prefix != "p" || q.Root.Local != "a" {
		t.Fatalf("root = %+v", q.Root)
	}
	attr := q.Root.Pred.Leaf
	if attr.Name != "n:k" || attr.Prefix != "n" || attr.Local != "k" {
		t.Fatalf("attr = %+v", attr)
	}
	if b := q.Root.Next; b.Prefix != "" || b.Local != "b" {
		t.Fatalf("b = %+v", b)
	}
	if q.String() != "//p:a[n:k]/b" && q.String() != "//p:a[@n:k]/b" {
		t.Fatalf("String() = %q", q.String())
	}
	for _, bad := range []string{"//:a", "//p:", "//p:a:b", "//x[@:k]"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestNameTestMatchesLocalAndPrefix(t *testing.T) {
	a := MustParse("//a").Root
	pa := MustParse("//p:a").Root
	star := MustParse("//*").Root
	cases := []struct {
		n    *Node
		name string
		want bool
	}{
		{a, "a", true}, {a, "p:a", true}, {a, "b", false}, {a, "p:b", false},
		{pa, "p:a", true}, {pa, "a", false}, {pa, "q:a", false},
		{star, "anything", true}, {star, "p:x", true},
	}
	for _, c := range cases {
		if got := c.n.Matches(c.name); got != c.want {
			t.Errorf("%s.Matches(%q) = %v, want %v", c.n.Name, c.name, got, c.want)
		}
	}
}
