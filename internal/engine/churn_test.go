package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/twigm"
	"repro/internal/xpath"
)

// churnDoc exercises a spread of element names so most churned queries match
// something.
const churnDoc = `<feed>` +
	`<trade><symbol>ACME</symbol><price>10</price><volume>3</volume></trade>` +
	`<trade><symbol>GLOBEX</symbol><price>20</price><volume>7</volume></trade>` +
	`<news><title>x</title><body k="1">text</body></news>` +
	`</feed>`

// streamValues evaluates a snapshot serially (workers == 0) or sharded,
// collecting per-machine values and stats.
func streamValues(t *testing.T, s Snapshot, doc string, workers int) ([][]string, []twigm.Stats) {
	t.Helper()
	out := make([][]string, s.Len())
	opts := make([]twigm.Options, s.Len())
	for i := range opts {
		idx := i
		opts[i] = twigm.Options{Emit: func(r twigm.Result) error {
			out[idx] = append(out[idx], r.Value)
			return nil
		}}
	}
	var stats []twigm.Stats
	var err error
	if workers > 1 {
		stats, err = s.StreamParallel(strings.NewReader(doc), false, opts, workers)
	} else {
		stats, err = s.Stream(strings.NewReader(doc), false, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestAddCompilesOnlyTheNewQuery is the incremental-update acceptance
// property: adding one query to a 100-query live set compiles exactly one
// machine — process-wide, not just per-engine — and leaves the other 100
// machine objects untouched (pointer identity).
func TestAddCompilesOnlyTheNewQuery(t *testing.T) {
	sources := make([]string, 100)
	for i := range sources {
		sources[i] = fmt.Sprintf("//sub%d[child%d]/leaf%d", i, i, i)
	}
	e := mustEngine(t, sources...)
	before := e.Snapshot().Programs()
	newQ := xpath.MustParse("//trade[symbol='ACME']/price")

	m0 := e.Metrics()
	global0 := twigm.CompileCount()
	if _, err := e.Add(newQ); err != nil {
		t.Fatal(err)
	}
	m1 := e.Metrics()
	if d := m1.Compiles - m0.Compiles; d != 1 {
		t.Fatalf("engine compiled %d machines for one Add", d)
	}
	if d := twigm.CompileCount() - global0; d != 1 {
		t.Fatalf("process compiled %d machines for one Add", d)
	}
	after := e.Snapshot().Programs()
	if len(after) != 101 {
		t.Fatalf("len = %d", len(after))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("machine %d was rebuilt by Add", i)
		}
	}
	// And the added machine evaluates.
	out, _ := streamValues(t, e.Snapshot(), churnDoc, 0)
	if !reflect.DeepEqual(out[100], []string{"<price>10</price>"}) {
		t.Fatalf("added machine results = %q", out[100])
	}
}

// TestSnapshotIsolation: a snapshot taken before a mutation evaluates the
// old membership even after Add/Remove publish new epochs.
func TestSnapshotIsolation(t *testing.T) {
	e := mustEngine(t, "//trade/price", "//news/title")
	old := e.Snapshot()
	if _, err := e.Add(xpath.MustParse("//trade/volume")); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(e.Snapshot().Programs()[0]); err != nil {
		t.Fatal(err)
	}
	if old.Len() != 2 || e.Len() != 2 {
		t.Fatalf("old len %d, new len %d", old.Len(), e.Len())
	}
	outOld, _ := streamValues(t, old, churnDoc, 0)
	if len(outOld[0]) != 2 || len(outOld[1]) != 1 {
		t.Fatalf("old snapshot results = %q", outOld)
	}
	outNew, _ := streamValues(t, e.Snapshot(), churnDoc, 0)
	if !reflect.DeepEqual(outNew[0], []string{"<title>x</title>"}) {
		t.Fatalf("new membership query 0 = %q", outNew[0])
	}
	if len(outNew[1]) != 2 {
		t.Fatalf("new membership query 1 = %q", outNew[1])
	}
}

// TestScannerResolvesNamesAddedAfterCaching: pooled sessions cache
// name->symbol resolutions in their scanners. A name unknown during one
// stream can become a standing query's subscription via Add; the next stream
// through the same pooled session must route it.
func TestScannerResolvesNamesAddedAfterCaching(t *testing.T) {
	e := mustEngine(t, "//trade/price")
	// First stream caches "news", "title", "body", "k" as unknown in the
	// pooled session's scanner.
	streamValues(t, e.Snapshot(), churnDoc, 0)
	if _, err := e.Add(xpath.MustParse("//news/title")); err != nil {
		t.Fatal(err)
	}
	out, _ := streamValues(t, e.Snapshot(), churnDoc, 0)
	if !reflect.DeepEqual(out[1], []string{"<title>x</title>"}) {
		t.Fatalf("query added after cache warm-up found %q", out[1])
	}
	// Same property for attribute names.
	if _, err := e.Add(xpath.MustParse("//body/@k")); err != nil {
		t.Fatal(err)
	}
	out, _ = streamValues(t, e.Snapshot(), churnDoc, 0)
	if !reflect.DeepEqual(out[2], []string{"1"}) {
		t.Fatalf("attribute query added after cache warm-up found %q", out[2])
	}
}

// TestRemoveTombstonesAndCompacts: removals tombstone slots without
// recompiling survivors; once tombstones outnumber survivors (past the
// minimum), a compaction pass reclaims the slots — still without compiling
// anything — and evaluation is unaffected throughout.
func TestRemoveTombstonesAndCompacts(t *testing.T) {
	n := 3 * compactMinGarbage
	sources := make([]string, n)
	for i := range sources {
		sources[i] = fmt.Sprintf("//sub%d", i)
	}
	keep := "//trade/price"
	sources = append(sources, keep)
	e := mustEngine(t, sources...)
	keepProg := e.Snapshot().Programs()[n]

	compiles0 := e.Metrics().Compiles
	progs := e.Snapshot().Programs()
	for i := 0; i < n; i++ {
		if err := e.Remove(progs[i]); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.Compiles != compiles0 {
		t.Fatalf("removal compiled %d machines", m.Compiles-compiles0)
	}
	if m.Compactions == 0 {
		t.Fatalf("no compaction after %d removals: %+v", n, m)
	}
	// The compaction invariant bounds residual garbage: below the minimum
	// or not exceeding the live count.
	if m.Live != 1 || m.Slots != m.Live+m.Garbage ||
		(m.Garbage >= compactMinGarbage && m.Garbage > m.Live) {
		t.Fatalf("post-compaction occupancy: %+v", m)
	}
	if e.Snapshot().Programs()[0] != keepProg {
		t.Fatal("survivor was rebuilt by compaction")
	}
	out, _ := streamValues(t, e.Snapshot(), churnDoc, 0)
	if len(out[0]) != 2 {
		t.Fatalf("survivor results after compaction = %q", out[0])
	}
	// Removing the last machine leaves a working empty engine.
	if err := e.Remove(keepProg); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(keepProg); err == nil {
		t.Fatal("double Remove succeeded")
	}
	if _, err := e.Stream(strings.NewReader(churnDoc), false, nil); err != nil {
		t.Fatalf("empty engine stream: %v", err)
	}
}

// TestReplaceReusesSlot: Replace swaps the machine in place — same dense
// position, one compile, no effect on neighbours.
func TestReplaceReusesSlot(t *testing.T) {
	e := mustEngine(t, "//trade/price", "//sub0", "//news/title")
	before := e.Snapshot().Programs()
	compiles0 := e.Metrics().Compiles
	p, err := e.Replace(before[1], xpath.MustParse("//trade/volume"))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Metrics().Compiles - compiles0; d != 1 {
		t.Fatalf("Replace compiled %d machines", d)
	}
	after := e.Snapshot().Programs()
	if after[0] != before[0] || after[2] != before[2] || after[1] != p {
		t.Fatal("Replace disturbed neighbouring slots")
	}
	out, _ := streamValues(t, e.Snapshot(), churnDoc, 0)
	if !reflect.DeepEqual(out[1], []string{"<volume>3</volume>", "<volume>7</volume>"}) {
		t.Fatalf("replaced machine results = %q", out[1])
	}
	if _, err := e.Replace(before[1], xpath.MustParse("//x")); err == nil {
		t.Fatal("Replace of a removed machine succeeded")
	}
}

// TestShardRebalanceIsLocal: a parallel session resyncing after one Add
// rebuilds the routing tables of exactly one shard (the one the new slot
// hashes to); the other shards keep their tables untouched. Driven against
// the session directly — sync.Pool gives no retention guarantee (it
// deliberately drops entries under the race detector), so the pooled path
// cannot assert shard counts deterministically.
func TestShardRebalanceIsLocal(t *testing.T) {
	sources := make([]string, 8)
	for i := range sources {
		sources[i] = fmt.Sprintf("//sub%d", i)
	}
	e := mustEngine(t, sources...)
	const workers = 4
	ps := newPsession(e, workers)
	ps.sync(e.cur.Load()) // initial build: not a rebalance
	if got := e.Metrics().ShardRebalances; got != 0 {
		t.Fatalf("initial build counted %d rebalances", got)
	}
	tables := make([][][]int32, workers)
	for wi, w := range ps.workers {
		tables[wi] = w.rt.elemSubs
	}
	if _, err := e.Add(xpath.MustParse("//trade/price")); err != nil {
		t.Fatal(err)
	}
	ps.sync(e.cur.Load())
	if d := e.Metrics().ShardRebalances; d != 1 {
		t.Fatalf("one Add rebalanced %d shards, want 1", d)
	}
	// Slot 8 hashes to shard 0; shards 1-3 must keep their exact tables.
	for wi := 1; wi < workers; wi++ {
		if !reflect.DeepEqual(ps.workers[wi].rt.elemSubs, tables[wi]) {
			t.Fatalf("shard %d tables rebuilt by an Add outside it", wi)
		}
	}
	// End-to-end: the resynced sharded path evaluates the grown set.
	out, _ := streamValues(t, e.Snapshot(), churnDoc, workers)
	if len(out[8]) != 2 {
		t.Fatalf("added machine results = %q", out[8])
	}
}

// TestChurnedEngineMatchesFresh drives a random Add/Remove/Replace walk and,
// after every mutation, checks the churned engine's full output — values and
// stats, serial and sharded — against a freshly compiled engine over the
// same membership.
func TestChurnedEngineMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vocab := []string{
		"//trade/price", "//trade/volume", "//trade[symbol='ACME']/price",
		"//news/title", "//news//body", "//body/@k", "//title/text()",
		"//*[@k]", "//feed//trade", "//absent//nothing",
	}
	e := mustEngine(t)
	var sources []string
	steps := 60
	if testing.Short() {
		steps = 15
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(sources) == 0: // Add
			src := vocab[rng.Intn(len(vocab))]
			if _, err := e.Add(xpath.MustParse(src)); err != nil {
				t.Fatal(err)
			}
			sources = append(sources, src)
		case op == 1: // Remove
			i := rng.Intn(len(sources))
			if err := e.Remove(e.Snapshot().Programs()[i]); err != nil {
				t.Fatal(err)
			}
			sources = append(sources[:i], sources[i+1:]...)
		default: // Replace
			i := rng.Intn(len(sources))
			src := vocab[rng.Intn(len(vocab))]
			if _, err := e.Replace(e.Snapshot().Programs()[i], xpath.MustParse(src)); err != nil {
				t.Fatal(err)
			}
			sources[i] = src
		}
		fresh := mustEngine(t, sources...)
		churnOut, churnStats := streamValues(t, e.Snapshot(), churnDoc, 0)
		freshOut, freshStats := streamValues(t, fresh.Snapshot(), churnDoc, 0)
		if !reflect.DeepEqual(churnOut, freshOut) {
			t.Fatalf("step %d: churned %q, fresh %q (sources %q)", step, churnOut, freshOut, sources)
		}
		if !reflect.DeepEqual(churnStats, freshStats) {
			t.Fatalf("step %d: stats diverge\nchurned %+v\nfresh   %+v", step, churnStats, freshStats)
		}
		if len(sources) >= 2 {
			parOut, parStats := streamValues(t, e.Snapshot(), churnDoc, 3)
			if !reflect.DeepEqual(parOut, churnOut) || !reflect.DeepEqual(parStats, churnStats) {
				t.Fatalf("step %d: parallel diverges from serial on churned engine", step)
			}
		}
	}
}

// TestConcurrentChurnAndStreams runs mutations concurrently with serial and
// sharded streams (the concurrency contract of the live engine; the race
// detector is the other half of this test). Each stream must be internally
// consistent with the snapshot it captured: one stats entry per machine of
// that snapshot.
func TestConcurrentChurnAndStreams(t *testing.T) {
	e := mustEngine(t, "//trade/price", "//news/title", "//trade/volume")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(par int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				opts := make([]twigm.Options, s.Len())
				var err error
				if par > 1 {
					_, err = s.StreamParallel(strings.NewReader(churnDoc), false, opts, par)
				} else {
					_, err = s.Stream(strings.NewReader(churnDoc), false, opts)
				}
				if err != nil {
					t.Errorf("stream during churn: %v", err)
					return
				}
			}
		}(g) // g=0,1 serial; g=2 parallel(2)
	}
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"//trade/price", "//body/@k", "//news//body", "//feed//trade", "//sub1[sub2]"}
	for i := 0; i < 200; i++ {
		if progs := e.Snapshot().Programs(); len(progs) > 2 && rng.Intn(2) == 0 {
			if err := e.Remove(progs[rng.Intn(len(progs))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := e.Add(xpath.MustParse(vocab[rng.Intn(len(vocab))])); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
