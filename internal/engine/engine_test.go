package engine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/twigm"
	"repro/internal/xpath"
)

func mustEngine(t *testing.T, sources ...string) *Engine {
	t.Helper()
	queries := make([]*xpath.Query, len(sources))
	for i, src := range sources {
		queries[i] = xpath.MustParse(src)
	}
	e, err := New(queries...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func collect(t *testing.T, e *Engine, doc string, ordered bool) [][]string {
	t.Helper()
	out := make([][]string, e.Len())
	opts := make([]twigm.Options, e.Len())
	for i := range opts {
		idx := i
		opts[i] = twigm.Options{Ordered: ordered, Emit: func(r twigm.Result) error {
			out[idx] = append(out[idx], r.Value)
			return nil
		}}
	}
	if _, err := e.Stream(strings.NewReader(doc), false, opts); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRoutedSparseMachinesUntouched: machines whose vocabulary never occurs
// in the document must do zero machine work — the point of routed dispatch.
func TestRoutedSparseMachinesUntouched(t *testing.T) {
	e := mustEngine(t,
		"//trade/price",
		"//absent[child]//deeper",
		"//missing/@attr",
	)
	doc := `<feed><trade><price>10</price></trade><trade><price>20</price></trade></feed>`
	opts := make([]twigm.Options, e.Len())
	stats, err := e.Stream(strings.NewReader(doc), false, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Pushes == 0 {
		t.Fatal("matching machine pushed nothing")
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Pushes != 0 || stats[i].FlagProps != 0 {
			t.Fatalf("sparse machine %d did work: %+v", i, stats[i])
		}
		// Shared-scan counters are still reported for every machine.
		if stats[i].Events != stats[0].Events || stats[i].Elements != stats[0].Elements {
			t.Fatalf("machine %d missing shared scan counters: %+v vs %+v", i, stats[i], stats[0])
		}
	}
}

// TestFragmentRecordingAcrossForeignTags: once a machine's output element
// opens, it must see descendant markup whose names no query mentions —
// fragment serialization needs the full feed.
func TestFragmentRecordingAcrossForeignTags(t *testing.T) {
	e := mustEngine(t, "//keep", "//other")
	doc := `<r><keep a="1"><alien>x<beta/>y</alien></keep><other/></r>`
	out := collect(t, e, doc, false)
	want := []string{`<keep a="1"><alien>x<beta/>y</alien></keep>`}
	if !reflect.DeepEqual(out[0], want) {
		t.Fatalf("fragment = %q, want %q", out[0], want)
	}
	if !reflect.DeepEqual(out[1], []string{"<other/>"}) {
		t.Fatalf("second machine = %q", out[1])
	}
}

// TestTextRoutingSelfPredicate: text events must reach machines holding an
// open string-value accumulator even between matching tags.
func TestTextRoutingSelfPredicate(t *testing.T) {
	e := mustEngine(t, "//v[.='hit']", "//w")
	doc := `<r><v>h<i/>it</v><v>miss</v><w>z</w></r>`
	out := collect(t, e, doc, true)
	if len(out[0]) != 1 || !strings.Contains(out[0][0], "h<i/>it") {
		t.Fatalf("self-comparison results = %q", out[0])
	}
}

// TestWildcardGetsEverything: '*' machines subscribe to every element name.
func TestWildcardGetsEverything(t *testing.T) {
	e := mustEngine(t, "//*[@id]", "//none")
	doc := `<r><a id="1"/><b><c id="2"/></b></r>`
	out := collect(t, e, doc, true)
	if len(out[0]) != 2 {
		t.Fatalf("wildcard results = %q", out[0])
	}
}

// TestAttrOnlyRouting: an element name foreign to a machine still routes to
// it when an attribute name matches (descendant attribute axes).
func TestAttrOnlyRouting(t *testing.T) {
	e := mustEngine(t, "//@seq", "//blocker")
	doc := `<r><foreign seq="9"/><plain/></r>`
	out := collect(t, e, doc, true)
	if !reflect.DeepEqual(out[0], []string{"9"}) {
		t.Fatalf("attr results = %q", out[0])
	}
}

// TestEmitErrorAborts: a machine's emit error aborts the shared scan.
func TestEmitErrorAborts(t *testing.T) {
	e := mustEngine(t, "//a", "//b")
	boom := errors.New("boom")
	opts := []twigm.Options{
		{Emit: func(twigm.Result) error { return boom }},
		{},
	}
	_, err := e.Stream(strings.NewReader(`<r><a/><b/></r>`), false, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestSessionReuseIsClean: repeated Stream calls over one engine (exercising
// the session pool and every Reset path) must keep producing identical
// results, including after an aborted stream.
func TestSessionReuseIsClean(t *testing.T) {
	e := mustEngine(t, "//trade[symbol='A']/price", "//trade/price", "//x")
	doc := `<feed><trade><symbol>A</symbol><price>1</price></trade><trade><symbol>B</symbol><price>2</price></trade></feed>`
	first := collect(t, e, doc, false)
	// Abort one stream mid-way to dirty a session.
	opts := []twigm.Options{{Emit: func(twigm.Result) error { return errors.New("stop") }}, {}, {}}
	if _, err := e.Stream(strings.NewReader(doc), false, opts); err == nil {
		t.Fatal("expected abort error")
	}
	for i := 0; i < 5; i++ {
		again := collect(t, e, doc, false)
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("iteration %d: %q != %q", i, again, first)
		}
	}
}

// TestStdParserRouting: the encoding/xml adapter interns against the same
// table, so routed dispatch works identically under the ablation.
func TestStdParserRouting(t *testing.T) {
	e := mustEngine(t, "//a/b", "//zzz")
	doc := `<a><b>x</b><c><b>y</b></c></a>`
	opts := func() []twigm.Options { return make([]twigm.Options, e.Len()) }
	custom, err := e.Stream(strings.NewReader(doc), false, opts())
	if err != nil {
		t.Fatal(err)
	}
	std, err := e.Stream(strings.NewReader(doc), true, opts())
	if err != nil {
		t.Fatal(err)
	}
	if custom[0].CandidatesEmitted != 1 || std[0].CandidatesEmitted != 1 {
		t.Fatalf("emitted: custom=%d std=%d", custom[0].CandidatesEmitted, std[0].CandidatesEmitted)
	}
}

// TestConcurrentStreams hammers one engine from several goroutines: each
// Stream call must get independent pooled machine state.
func TestConcurrentStreams(t *testing.T) {
	e := mustEngine(t, "//trade/price", "//trade[symbol='A']/price", "//nothing")
	doc := `<feed>` + strings.Repeat(`<trade><symbol>A</symbol><price>7</price></trade><trade><symbol>B</symbol><price>9</price></trade>`, 20) + `</feed>`
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				counts := make([]int, e.Len())
				opts := make([]twigm.Options, e.Len())
				for j := range opts {
					opts[j].CountOnly = true
					opts[j].Emit = func(twigm.Result) error { counts[j]++; return nil }
				}
				if _, err := e.Stream(strings.NewReader(doc), false, opts); err != nil {
					errs <- err
					return
				}
				if counts[0] != 40 || counts[1] != 20 || counts[2] != 0 {
					errs <- fmt.Errorf("counts = %v", counts)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDenseSet(t *testing.T) {
	var d denseSet
	d.init(5)
	d.set(3, true)
	d.set(1, true)
	d.set(3, true) // idempotent
	if len(d.items) != 2 {
		t.Fatalf("items = %v", d.items)
	}
	d.set(3, false)
	d.set(3, false) // idempotent
	if len(d.items) != 1 || d.items[0] != 1 {
		t.Fatalf("items = %v", d.items)
	}
	d.set(0, true)
	d.set(4, true)
	d.clear()
	if len(d.items) != 0 {
		t.Fatalf("items after clear = %v", d.items)
	}
	for i, p := range d.pos {
		if p != -1 {
			t.Fatalf("pos[%d] = %d after clear", i, p)
		}
	}
}

func TestMergeStats(t *testing.T) {
	a := twigm.Stats{Events: 10, Elements: 4, MaxDepth: 3, Pushes: 2, PeakStackEntries: 1, PeakLiveCandidates: 2}
	b := twigm.Stats{Events: 10, Elements: 4, MaxDepth: 3, Pushes: 5, PeakStackEntries: 2, PeakLiveCandidates: 1}
	m := MergeStats([]twigm.Stats{a, b})
	if m.Events != 10 || m.Pushes != 7 || m.PeakStackEntries != 3 || m.PeakLiveCandidates != 2 {
		t.Fatalf("merged = %+v", m)
	}
}
