package engine

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/twigm"
)

// ctxDoc builds a document with n matches for //a/b.
func ctxDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < n; i++ {
		sb.WriteString("<a><b>x</b></a>")
	}
	sb.WriteString("</root>")
	return sb.String()
}

// cancelAfterReader cancels a context after the first Read call, simulating
// an external cancellation (deadline, disconnecting client) landing while
// the scan is consuming the stream.
type cancelAfterReader struct {
	r      io.Reader
	cancel context.CancelFunc
	fired  bool
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if !c.fired {
		c.fired = true
		c.cancel()
	}
	return n, err
}

func countingOpts(n int, count *int64) []twigm.Options {
	opts := make([]twigm.Options, n)
	for i := range opts {
		opts[i] = twigm.Options{Emit: func(twigm.Result) error {
			*count++
			return nil
		}}
	}
	return opts
}

// streamWith runs either the serial or the parallel context entry point.
func streamWith(e *Engine, ctx context.Context, r io.Reader, opts []twigm.Options, workers int) ([]twigm.Stats, error) {
	if workers > 1 {
		return e.StreamParallelContext(ctx, r, false, opts, workers)
	}
	return e.StreamContext(ctx, r, false, opts)
}

// TestCancelDuringScan: a context canceled while the scan is mid-document
// aborts the evaluation promptly with ctx.Err(), in both the serial and the
// sharded-parallel engine loops.
func TestCancelDuringScan(t *testing.T) {
	const matches = 5000
	doc := ctxDoc(matches)
	for _, workers := range []int{1, 2} {
		e := mustEngine(t, "//a/b", "//a/b/text()")
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var count int64
		r := &cancelAfterReader{r: strings.NewReader(doc), cancel: cancel}
		_, err := streamWith(e, ctx, r, countingOpts(e.Len(), &count), workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if count >= 2*matches {
			t.Fatalf("workers=%d: %d results delivered after cancellation (full doc = %d)", workers, count, 2*matches)
		}
	}
}

// TestCancelDuringEmit: an Emit callback canceling the context stops the
// stream before any further result is delivered, and the evaluation reports
// ctx.Err() even though the callback itself returned nil.
func TestCancelDuringEmit(t *testing.T) {
	doc := ctxDoc(2000)
	for _, workers := range []int{1, 2} {
		e := mustEngine(t, "//a/b", "//a/b/text()")
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var count int64
		opts := make([]twigm.Options, e.Len())
		for i := range opts {
			opts[i] = twigm.Options{Emit: func(twigm.Result) error {
				count++
				if count == 1 {
					cancel()
				}
				return nil
			}}
		}
		_, err := streamWith(e, ctx, strings.NewReader(doc), opts, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if count != 1 {
			t.Fatalf("workers=%d: %d results delivered, want exactly 1 (none after cancel)", workers, count)
		}
	}
}

// TestPreCanceledContext: evaluation with an already-canceled context does
// no machine work at all.
func TestPreCanceledContext(t *testing.T) {
	doc := ctxDoc(100)
	for _, workers := range []int{1, 2} {
		e := mustEngine(t, "//a/b", "//a/b/text()")
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var count int64
		stats, err := streamWith(e, ctx, strings.NewReader(doc), countingOpts(e.Len(), &count), workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if count != 0 {
			t.Fatalf("workers=%d: %d results delivered on a pre-canceled context", workers, count)
		}
		if len(stats) > 0 && stats[0].Pushes != 0 {
			t.Fatalf("workers=%d: machine pushed %d entries on a pre-canceled context", workers, stats[0].Pushes)
		}
	}
}

// TestDeadlineExceededSurfaces: a context that dies by deadline reports
// DeadlineExceeded, not Canceled — the engine must return ctx.Err(), not a
// sentinel of its own.
func TestDeadlineExceededSurfaces(t *testing.T) {
	e := mustEngine(t, "//a/b")
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer dcancel()
	var count int64
	_, err := e.StreamContext(dctx, strings.NewReader(ctxDoc(10)), false, countingOpts(e.Len(), &count))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextlessStreamUnchanged: the plain Stream entry points must be
// unaffected by the cancellation plumbing.
func TestContextlessStreamUnchanged(t *testing.T) {
	e := mustEngine(t, "//a/b")
	var count int64
	_, err := e.Stream(strings.NewReader(ctxDoc(50)), false, countingOpts(e.Len(), &count))
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}
