// Package engine is the shared-dispatch query engine of the reproduction:
// it evaluates any number of TwigM machines over one sequential scan of an
// XML stream, routing each event only to the machines that can react to it.
//
// The paper's motivating scenario (ICDE 2005 §1: stock tickers, personalized
// newspapers) is many standing queries over one feed. Sharing the scan makes
// parsing cost constant in the number of queries, but a broadcast fan-out
// still makes per-event machine work O(#queries). The engine removes that
// factor the same way NFA-based multi-query filters index their
// subscriptions: all queries are compiled against one symbol table
// (sax.Symbols), the scanner stamps every event with the name's integer ID,
// and a NameID-indexed routing table maps each event to the machines whose
// element or attribute tests mention that name. A 100-query set where an
// event concerns 2 queries touches 2 machines.
//
// Routing is sound because a TwigM machine is a no-op on events it has no
// subscription for:
//
//   - StartElement can only push on a name match (or wildcard), and can only
//     feed attribute nodes on an attribute-name match — so the static
//     subscriptions are element names, attribute names and wildcards.
//   - EndElement only pops entries, so it matters only to machines with live
//     entries.
//   - Text only matters to machines with a live text()-parent or
//     string-value entry (or an absolute text() node).
//   - A machine serializing a result fragment must see everything below the
//     result element, whatever its names; such machines are temporarily
//     promoted to a full feed.
//
// The dynamic conditions change only inside HandleEvent, so the engine
// refreshes a machine's routing membership exactly when it delivers an event
// to it.
//
// On top of routing, the engine factors the overlapping structural prefixes
// of its queries into one shared axis-step trie (twigm.CompileShared /
// twigm.Trie): the trie is evaluated once per event by the session, and the
// per-query residual machines anchor into its stacks — so the prefix names
// thousands of overlapping subscriptions share stop being subscriptions of
// every machine, and per-event cost grows sublinearly in the set size. See
// the package comment of internal/twigm's shared.go for the exact-equivalence
// argument, and epoch.go for how grafting/pruning composes with churn.
//
// Evaluation state (machines, scanner, routing sets) lives in pooled
// sessions: a long-lived Engine serving a stream of documents reuses all of
// it, so steady-state evaluation is nearly allocation-free.
//
// The machine set is dynamic: Add, Remove and Replace mutate a live engine
// between — and safely concurrent with — Stream calls, compiling only the
// changed query. Membership is versioned in immutable epochs (epoch.go);
// each Stream runs against the Snapshot current when it started, and pooled
// sessions resync their per-machine state incrementally when they observe a
// newer epoch.
package engine

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// Engine is a live set of compiled machines plus their routing index. It is
// safe for concurrent use: every Stream call checks a private session out of
// an internal pool and runs against the membership snapshot current at its
// start, while Add/Remove/Replace publish new snapshots without recompiling
// untouched machines.
//
//vitex:counters
type Engine struct {
	syms *sax.Symbols
	// share selects prefix-shared compilation (Config).
	share bool //vitex:plain set at construction, read-only afterwards

	// mu serializes mutations (Add/Remove/Replace). Streams never take it:
	// they load cur once and run against that immutable epoch.
	mu  sync.Mutex
	cur atomic.Pointer[epoch]

	pool  sync.Pool // *session (serial evaluation)
	ppool sync.Pool // *psession (parallel sharded evaluation)

	// Churn accounting (see Metrics).
	compiles        atomic.Int64
	compactions     atomic.Int64
	shardRebalances atomic.Int64
	trieGrafts      atomic.Int64
	triePrunes      atomic.Int64
	trieCompactions atomic.Int64

	// Dispatch accounting, flushed once per stream from session-local
	// counters (see Metrics).
	events     atomic.Int64
	deliveries atomic.Int64
	triePushes atomic.Int64

	// evalHist records each serial stream's evaluation cost as ns/event:
	// two clock reads per document, so it is always on.
	evalHist obs.Histogram

	// Hot-path attribution sampling (EnableHotStats): every hotEvery-th
	// serial stream runs the timed route variant, which splits the
	// stream's wall clock into scan, shared-trie and machine-delivery
	// nanoseconds. Accumulators are cumulative; see Metrics.Hot.
	hotEvery     atomic.Int64
	hotTick      atomic.Int64
	hotStreams   atomic.Int64
	hotEvents    atomic.Int64
	hotScanNs    atomic.Int64
	hotTrieNs    atomic.Int64
	hotMachineNs atomic.Int64

	// scanBatch is the per-stream event-batch override (SetScanBatch):
	// 0 = scanner default, < 0 = batching disabled (per-event delivery).
	scanBatch atomic.Int64
}

// SetScanBatch overrides how many scanner events are delivered to sessions
// per sax.BatchHandler call on subsequent streams (custom scanner only; the
// std-parser path is always per-event). n > 0 sets the batch size, n == 0
// restores the scanner default (xmlscan.DefaultEventBatch), n < 0 disables
// batching entirely so events arrive one HandleEvent at a time — the A/B
// configurations the scanner-bandwidth experiments sweep.
func (e *Engine) SetScanBatch(n int) { e.scanBatch.Store(int64(n)) }

// scanBatchEvents resolves the SetScanBatch override to the value handed to
// xmlscan.Scanner.SetEventBatch (where 0 means "per-event").
func (e *Engine) scanBatchEvents() int {
	switch n := e.scanBatch.Load(); {
	case n == 0:
		return xmlscan.DefaultEventBatch
	case n < 0:
		return 0
	default:
		return int(n)
	}
}

// EnableHotStats makes every every-th serial Stream run with timed routing,
// attributing its wall clock across scan, shared-trie and machine stages
// (Metrics.Hot). every <= 0 disables sampling (the default); 1 times every
// stream. Timed streams pay two clock reads per event, so sample sparsely
// on hot services. Parallel evaluation is never timed.
func (e *Engine) EnableHotStats(every int) { e.hotEvery.Store(int64(every)) }

// EvalHistogram returns the distribution of per-stream evaluation cost in
// nanoseconds per scan event, cumulative over the engine's lifetime.
func (e *Engine) EvalHistogram() obs.Snapshot { return e.evalHist.Snapshot() }

// Config tunes engine construction.
type Config struct {
	// DisablePrefixSharing compiles every query into a full standalone
	// machine instead of factoring common location-path prefixes into the
	// shared trie. Sharing is semantically invisible (results are
	// byte-identical either way); disabling it exists for ablation
	// benchmarks and differential tests.
	DisablePrefixSharing bool
}

// New compiles the parsed queries against one shared symbol table and builds
// the routing index, with common query prefixes factored into a shared trie.
// Each query becomes one machine; callers model a union query as one machine
// per branch.
func New(queries ...*xpath.Query) (*Engine, error) {
	return NewConfigured(Config{}, queries...)
}

// NewConfigured is New with explicit configuration.
//
//vitex:cowmut builds the first epoch before the engine escapes
func NewConfigured(cfg Config, queries ...*xpath.Query) (*Engine, error) {
	e := &Engine{syms: sax.NewSymbols(), share: !cfg.DisablePrefixSharing}
	ep := &epoch{seq: 1, progs: make([]*twigm.Program, 0, len(queries))}
	if e.share {
		ep.trie = twigm.NewTrie()
	}
	for _, q := range queries {
		p, err := e.compileLocked(q)
		if err != nil {
			return nil, err
		}
		ep.progs = append(ep.progs, p)
		ep.anchors = append(ep.anchors, -1)
		e.graftLocked(ep, int32(len(ep.progs)-1), p)
		e.compiles.Add(1)
	}
	ep.elemSubs = make([][]int32, e.syms.Len()+1)
	ep.attrSubs = make([][]int32, e.syms.Len()+1)
	ep.outputSubs = make([][]int32, e.syms.Len()+1)
	for i, p := range ep.progs {
		ep.subscribe(int32(i), p)
	}
	ep.reindex()
	e.cur.Store(ep)
	return e, nil
}

// Snapshot is an immutable view of the engine's membership at one instant.
// All evaluation runs through a snapshot: machine indexes (opts, stats,
// Programs) are dense positions in the snapshot's insertion order and stay
// coherent however the engine is mutated afterwards.
type Snapshot struct {
	eng *Engine
	ep  *epoch
}

// Snapshot captures the current membership (one atomic load). Callers that
// must pair a Stream with external per-machine bookkeeping take a snapshot
// once and use it for both.
func (e *Engine) Snapshot() Snapshot { return Snapshot{eng: e, ep: e.cur.Load()} }

// Programs returns the live machines in insertion order. The slice is shared
// when no slot is tombstoned; callers must not modify it.
func (s Snapshot) Programs() []*twigm.Program {
	if s.ep.garbage == 0 {
		return s.ep.progs
	}
	out := make([]*twigm.Program, len(s.ep.live))
	for d, slot := range s.ep.live {
		out[d] = s.ep.progs[slot]
	}
	return out
}

// Len returns the number of live machines.
func (s Snapshot) Len() int { return len(s.ep.live) }

// Programs returns the current live machines in insertion order; see
// Snapshot.Programs.
func (e *Engine) Programs() []*twigm.Program { return e.Snapshot().Programs() }

// Symbols returns the shared table all machines are compiled against.
func (e *Engine) Symbols() *sax.Symbols { return e.syms }

// Len returns the current number of live machines.
func (e *Engine) Len() int { return e.Snapshot().Len() }

// Stream evaluates the current membership over one scan of r; it is
// Snapshot().Stream. opts[i] configures machine i in snapshot order.
func (e *Engine) Stream(r io.Reader, useStdParser bool, opts []twigm.Options) ([]twigm.Stats, error) {
	return e.Snapshot().Stream(r, useStdParser, opts)
}

// StreamContext is Stream honoring a cancellation context; it is
// Snapshot().StreamContext.
func (e *Engine) StreamContext(ctx context.Context, r io.Reader, useStdParser bool, opts []twigm.Options) ([]twigm.Stats, error) {
	return e.Snapshot().StreamContext(ctx, r, useStdParser, opts)
}

// Stream evaluates every machine of the snapshot over one scan of r. opts[i]
// configures machine i (emit callbacks and modes); len(opts) must equal
// Len(). The returned per-machine statistics carry the shared scan's Events,
// Elements and MaxDepth counters — under routed dispatch a machine does not
// see every event, so per-machine counts of scan-level quantities would be
// meaningless. ConfirmedAt/DeliveredAt of results are indexed against the
// shared scan's event clock and match what a broadcast evaluation would
// report.
func (s Snapshot) Stream(r io.Reader, useStdParser bool, opts []twigm.Options) ([]twigm.Stats, error) {
	return s.StreamContext(context.Background(), r, useStdParser, opts)
}

// StreamContext is Stream honoring a cancellation context: the scan checks
// ctx at every event, so cancellation — from a caller's deadline, or from
// inside an Emit callback — aborts the evaluation promptly mid-document and
// returns ctx.Err(). The per-event check is a single non-blocking channel
// poll and is skipped entirely for contexts that cannot be canceled
// (context.Background/TODO), so the hot path is unchanged.
func (s Snapshot) StreamContext(ctx context.Context, r io.Reader, useStdParser bool, opts []twigm.Options) ([]twigm.Stats, error) {
	e, ep := s.eng, s.ep
	if len(opts) != len(ep.live) {
		return nil, fmt.Errorf("engine: %d option sets for %d machines", len(opts), len(ep.live))
	}
	ses, _ := e.pool.Get().(*session)
	if ses == nil {
		ses = newSession(e)
	}
	defer e.pool.Put(ses)
	ses.sync(ep)
	ses.reset(opts)
	ses.ctx, ses.done = ctx, ctx.Done()
	if every := e.hotEvery.Load(); every > 0 && e.hotTick.Add(1)%every == 0 {
		ses.rt.timed = true
	}

	var drv sax.Driver
	if useStdParser {
		drv = sax.NewStdDriverWith(r, e.syms)
	} else {
		ses.scan.Reset(r)
		ses.scan.SetEventBatch(e.scanBatchEvents())
		drv = ses.scan
	}
	start := time.Now()
	err := drv.Run(ses)
	durNs := time.Since(start).Nanoseconds()
	if err == nil && ses.done != nil {
		// A cancellation racing the final events (e.g. an Emit callback
		// canceling on the document's last result) still reports ctx.Err(),
		// so cancel-during-emit is deterministic wherever the result falls.
		err = ses.ctx.Err()
	}
	ses.ctx, ses.done = nil, nil
	e.events.Add(ses.events)
	e.deliveries.Add(ses.rt.deliveries)
	e.triePushes.Add(ses.rt.prun.Pushes())
	if ses.events > 0 {
		e.evalHist.ObserveNs(durNs / ses.events)
	}
	if ses.rt.timed {
		ses.rt.timed = false
		e.hotStreams.Add(1)
		e.hotEvents.Add(ses.events)
		e.hotTrieNs.Add(ses.rt.trieNs)
		e.hotMachineNs.Add(ses.rt.machineNs)
		// Scan is the remainder: everything the stream spent outside
		// trie pushes and machine deliveries (parsing, routing-table
		// lookups). Clamp against clock skew on near-empty documents.
		if scan := durNs - ses.rt.trieNs - ses.rt.machineNs; scan > 0 {
			e.hotScanNs.Add(scan)
		}
		ses.rt.trieNs, ses.rt.machineNs = 0, 0
	}
	stats := make([]twigm.Stats, len(ep.live))
	for d, slot := range ep.live {
		st := ses.runs[slot].Stats()
		st.Events = ses.events
		st.Elements = ses.elements
		st.MaxDepth = ses.maxDepth
		stats[d] = st
	}
	return stats, err
}

// session is one serial evaluation's worth of mutable state: the machine
// runs (slot-indexed against the epoch it last synced to), the reusable
// scanner, and the router over all of them. Sessions are pooled and fully
// reset between documents; they survive epoch changes by resyncing.
//
//vitex:pooled
type session struct {
	eng *Engine //vitex:keep engine identity, constant for the session's life
	// ep is the epoch the slot-indexed state below matches.
	ep   *epoch       //vitex:keep resync state, realigned by sync() per checkout
	runs []*twigm.Run // slot -> run (nil for tombstoned slots)
	rt   router
	scan *xmlscan.Scanner //vitex:keep warmed scanner, Reset(r) per stream by StreamContext

	// Cancellation for the stream in flight: done is ctx.Done(), cached so
	// the per-event poll is one channel read; nil when the context cannot be
	// canceled. Cleared before the session returns to the pool.
	ctx  context.Context //vitex:keep cleared by StreamContext before pooling
	done <-chan struct{} //vitex:keep cleared by StreamContext before pooling

	// Shared-scan counters.
	events   int64
	elements int64
	maxDepth int

	// recordable: at least one machine of the current stream serializes
	// fragments (not CountOnly) — gates attribute-value interest.
	recordable bool
}

func newSession(e *Engine) *session {
	return &session{
		eng:  e,
		scan: xmlscan.NewScannerWith(nil, e.syms),
	}
}

// sync aligns the session's slot-indexed state with ep. Steady state (no
// mutation since last checkout) is a pointer compare. After a mutation, runs
// are re-keyed by program identity, so machines untouched by the mutation —
// including machines moved to new slots by compaction — keep their warmed-up
// run state; only added or replaced machines start fresh runs.
func (s *session) sync(ep *epoch) {
	if s.ep == ep {
		return
	}
	s.runs = rekeyRuns(s.ep, s.runs, ep)
	s.ep = ep
	s.rt.init(s.runs, ep.elemSubs, ep.attrSubs, ep.wild, ep.live, ep.trie, nil)
}

// rekeyRuns rebuilds a session's slot-indexed run slice for a new epoch,
// re-keying existing runs by program identity: machines untouched by the
// mutation — including machines moved to new slots by compaction — keep
// their warmed-up run state; only added or replaced machines start fresh
// runs. Shared by the serial and parallel session resyncs so the reuse
// semantics cannot drift between the two evaluation modes.
func rekeyRuns(old *epoch, oldRuns []*twigm.Run, ep *epoch) []*twigm.Run {
	var byProg map[*twigm.Program]*twigm.Run
	if old != nil {
		byProg = make(map[*twigm.Program]*twigm.Run, len(oldRuns))
		for slot, p := range old.progs {
			if p != nil && oldRuns[slot] != nil {
				byProg[p] = oldRuns[slot]
			}
		}
	}
	runs := make([]*twigm.Run, len(ep.progs))
	for slot, p := range ep.progs {
		if p == nil {
			continue
		}
		if r := byProg[p]; r != nil {
			runs[slot] = r
		} else {
			runs[slot] = p.Start(twigm.Options{})
		}
	}
	return runs
}

func (s *session) reset(opts []twigm.Options) {
	s.recordable = false
	for d, slot := range s.ep.live {
		if !opts[d].CountOnly {
			s.recordable = true
		}
		ro := opts[d]
		// Engine sessions may receive batched events whose Text/Attr.Value
		// strings die when HandleBatch returns (sax.BatchHandler contract),
		// so any value a machine retains past the event must be copied.
		ro.CopyValues = true
		s.runs[slot].Reset(ro)
		if a := s.ep.anchors[slot]; a >= 0 {
			// Anchored residual machines read their trie node's shared
			// stack; rebind every stream (the session may have resynced
			// to a different trie since last checkout).
			s.runs[slot].BindAnchor(s.rt.prun.Stack(a))
		}
	}
	s.events = 0
	s.elements = 0
	s.maxDepth = 0
	s.rt.reset()
}

// WantsTextEvent implements sax.TextInterest: when no machine is in the
// text-routing set, the next text event will be delivered to nobody, so the
// scanner may skip materializing its content (the event itself still
// arrives and ticks the shared clock). Serial evaluation only — the
// parallel producer batches events for several workers whose text sets
// evolve independently, so it does not implement the interface.
//
//vitex:hotpath
func (s *session) WantsTextEvent() bool { return len(s.rt.textSet.items) > 0 }

// WantsAttrValue implements sax.AttrInterest: an attribute value can only be
// observed by a machine testing that attribute name, by a machine already
// serializing a fragment, or by a machine that might START a fragment on
// this very element — one whose OUTPUT element node matches the tag name
// (fragments open with the full tag, attributes included), in a stream that
// records fragments at all (not CountOnly). Everything else lets the
// scanner skip materializing the value. Missing routing information (an
// uninterned ID) answers true, matching the router's broadcast fallback.
//
//vitex:hotpath
func (s *session) WantsAttrValue(elemID, attrID int32) bool {
	ep := s.ep
	if len(s.rt.fullSet.items) > 0 {
		return true
	}
	if elemID == sax.SymNone || attrID == sax.SymNone {
		return true
	}
	if attrID > 0 && int(attrID) < len(ep.attrSubs) && len(ep.attrSubs[attrID]) > 0 {
		return true
	}
	if !s.recordable {
		return false
	}
	if len(ep.outputWild) > 0 {
		return true
	}
	return elemID > 0 && int(elemID) < len(ep.outputSubs) && len(ep.outputSubs[elemID]) > 0
}

// HandleEvent implements sax.Handler: it counts the scan's shared-level
// quantities and routes the event to the machines subscribed to it.
//
//vitex:hotpath
func (s *session) HandleEvent(ev *sax.Event) error {
	if s.done != nil {
		select {
		case <-s.done:
			return s.ctx.Err()
		default:
		}
	}
	s.events++
	if ev.Kind == sax.StartElement {
		s.elements++
		if ev.Depth > s.maxDepth {
			s.maxDepth = ev.Depth
		}
	}
	return s.rt.route(ev, s.events)
}

// HandleBatch implements sax.BatchHandler: the scanner hands over events in
// arrays, amortizing the per-event interface dispatch into one direct-call
// loop. Routing, counters, the event clock and the per-event cancellation
// poll are identical to per-event delivery. Event strings are transient per
// the batch contract; the machines run with twigm.Options.CopyValues, so
// anything a candidate retains is copied inside the route.
//
//vitex:hotpath
func (s *session) HandleBatch(evs []sax.Event) error {
	// The per-event cancellation poll stays inside the loop: a cancelled
	// stream must deliver no further results, not even from events already
	// queued in the same batch (see TestCancelDuringEmit).
	for i := range evs {
		if err := s.HandleEvent(&evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// router routes scan events to a set of machines: the static subscription
// tables restricted to the machines it routes for, the dynamic membership
// sets, and the per-event subscriber scratch. The serial session routes over
// all machines with the engine-wide tables; each shard worker of the
// parallel mode routes over its shard with shard-filtered tables. One
// implementation for both is what keeps the parallel mode's
// byte-identical-to-serial guarantee from drifting.
//
//vitex:pooled
type router struct {
	runs []*twigm.Run //vitex:keep rewired by init/rehost on resync, not per stream

	elemSubs [][]int32 //vitex:keep subscription tables, rebuilt only on resync
	attrSubs [][]int32 //vitex:keep subscription tables, rebuilt only on resync
	wild     []int32   //vitex:keep subscription tables, rebuilt only on resync
	machines []int32   //vitex:keep routed-machine set, rebuilt only on resync

	// Dynamic routing sets. endSet holds machines with live stack entries
	// or an active recording (they need end-element events); textSet holds
	// machines for which the next text event could matter; fullSet holds
	// machines serializing a fragment (they need every event). fullSet is
	// a subset of both others by construction of the membership tests.
	endSet  denseSet
	textSet denseSet
	fullSet denseSet

	// Per-event dedup of the start-element subscriber union.
	stamps  []int64 //vitex:keep dedup stamps; stamp monotonicity makes stale entries harmless
	stamp   int64   //vitex:keep monotonic epoch for stamps, must never rewind
	scratch []int32 //vitex:keep reusable subscriber buffer, overwritten per event

	// clock is the scan index of the event being delivered — the serial
	// half of the emission-order key the parallel merge sorts on.
	clock int64 //vitex:keep overwritten by deliver before any read

	// prun evaluates the shared prefix trie once per event before any
	// machine delivery; anchored machines read its stacks. The serial
	// session's router evaluates the whole trie; each parallel shard's
	// router is restricted (via Rebind's filter) to the anchor paths of
	// its own machines — sharding the trie by subtree.
	prun twigm.PrefixRun

	// deliveries counts machine wake-ups this stream (dispatch metrics).
	deliveries int64

	// Hot-stats sampling (Engine.EnableHotStats): timed selects the timed
	// route variant for this stream; trieNs/machineNs accumulate the
	// stream's shared-trie and machine-delivery nanoseconds, drained by
	// StreamContext after the run.
	timed     bool  //vitex:keep set per stream by StreamContext, cleared by it after the run
	trieNs    int64 //vitex:keep drained and zeroed by StreamContext after a timed run
	machineNs int64 //vitex:keep drained and zeroed by StreamContext after a timed run
}

// init wires the router over runs (indexed by global machine id) with the
// given subscription tables; machines lists the ids this router routes for,
// trie is the epoch's shared prefix trie (nil without sharing) and trieIDs
// restricts trie evaluation to a subset of node IDs (nil = all).
func (rt *router) init(runs []*twigm.Run, elemSubs, attrSubs [][]int32, wild, machines []int32, trie *twigm.Trie, trieIDs []bool) {
	n := len(runs)
	rt.runs = runs
	rt.elemSubs = elemSubs
	rt.attrSubs = attrSubs
	rt.wild = wild
	rt.machines = machines
	rt.stamps = make([]int64, n)
	rt.endSet.init(n)
	rt.textSet.init(n)
	rt.fullSet.init(n)
	if trie != nil {
		rt.prun.Rebind(trie, trieIDs)
	}
}

// rehost points the router at a new slot universe without touching its
// subscription tables: the routed membership is unchanged (the caller
// verified that), only the runs slice and the slot-indexed scratch need to
// cover the new universe. Slot universes only grow between rehosts —
// shrinking renumbers slots (compaction), which changes membership and goes
// through init instead.
func (rt *router) rehost(runs []*twigm.Run, nSlots int) {
	rt.runs = runs
	for len(rt.stamps) < nSlots {
		rt.stamps = append(rt.stamps, 0)
	}
	rt.endSet.grow(nSlots)
	rt.textSet.grow(nSlots)
	rt.fullSet.grow(nSlots)
}

// reset clears the dynamic sets and recomputes the memberships of every
// routed machine (their runs have just been Reset with fresh options).
func (rt *router) reset() {
	rt.endSet.clear()
	rt.textSet.clear()
	rt.fullSet.clear()
	rt.prun.ResetStream()
	rt.deliveries = 0
	for _, i := range rt.machines {
		rt.refresh(i)
	}
}

// refresh recomputes machine i's dynamic routing memberships. Called after
// every delivery to i (the only points its state can change) and at reset.
//
//vitex:hotpath
func (rt *router) refresh(i int32) {
	run := rt.runs[i]
	recording := run.Recording()
	rt.fullSet.set(i, recording)
	rt.endSet.set(i, recording || run.LiveEntries() > 0)
	rt.textSet.set(i, run.WantsText())
}

// deliver hands the event to machine i with the clock synced to the shared
// scan index, then refreshes i's routing memberships.
//
//vitex:hotpath
func (rt *router) deliver(i int32, ev *sax.Event, idx int64) error {
	rt.clock = idx
	rt.deliveries++
	err := rt.runs[i].HandleRouted(ev, idx)
	rt.refresh(i)
	return err
}

// route dispatches one scan event (1-based shared index idx) to the routed
// machines subscribed to it, in ascending machine order. The shared prefix
// trie is evaluated around the machine deliveries: pushed before them (an
// anchored machine's axis check may read an entry opened by this very
// event) and popped after them, mirroring how a machine's own prefix
// entries would outlive its deeper entries within the event.
//
//vitex:hotpath
func (rt *router) route(ev *sax.Event, idx int64) error {
	if rt.timed {
		return rt.routeTimed(ev, idx)
	}
	switch ev.Kind {
	case sax.StartElement:
		rt.prun.StartElement(ev)
		for _, i := range rt.startSubscribers(ev) {
			if err := rt.deliver(i, ev, idx); err != nil {
				return err
			}
		}
	case sax.EndElement:
		// endSet contains every machine with something to pop or an
		// open recording; iterate a snapshot since delivery mutates
		// membership.
		for _, i := range rt.snapshot(&rt.endSet) {
			if err := rt.deliver(i, ev, idx); err != nil {
				return err
			}
		}
		rt.prun.EndElement(ev.Depth)
	case sax.Text:
		for _, i := range rt.snapshot(&rt.textSet) {
			if err := rt.deliver(i, ev, idx); err != nil {
				return err
			}
		}
	default: // StartDocument, EndDocument: broadcast (2 events per stream)
		for _, i := range rt.machines {
			if err := rt.deliver(i, ev, idx); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeTimed is route with per-stage clock reads: shared-trie pushes/pops
// and machine-delivery loops are bracketed by time.Now pairs whose deltas
// accumulate into trieNs/machineNs; everything else in the stream's wall
// clock is attributed to the scan by StreamContext. Dispatch order and
// semantics are identical to route — only clock reads are added — so a
// timed stream delivers byte-identical results.
//
//vitex:hotpath
func (rt *router) routeTimed(ev *sax.Event, idx int64) error {
	switch ev.Kind {
	case sax.StartElement:
		t0 := time.Now()
		rt.prun.StartElement(ev)
		rt.trieNs += time.Since(t0).Nanoseconds()
		return rt.deliverAllTimed(rt.startSubscribers(ev), ev, idx)
	case sax.EndElement:
		if err := rt.deliverAllTimed(rt.snapshot(&rt.endSet), ev, idx); err != nil {
			return err
		}
		t0 := time.Now()
		rt.prun.EndElement(ev.Depth)
		rt.trieNs += time.Since(t0).Nanoseconds()
	case sax.Text:
		return rt.deliverAllTimed(rt.snapshot(&rt.textSet), ev, idx)
	default:
		return rt.deliverAllTimed(rt.machines, ev, idx)
	}
	return nil
}

// deliverAllTimed delivers the event to every listed machine with the loop
// bracketed by one clock pair, accumulating into machineNs.
//
//vitex:hotpath
func (rt *router) deliverAllTimed(list []int32, ev *sax.Event, idx int64) error {
	t0 := time.Now()
	var err error
	for _, i := range list {
		if err = rt.deliver(i, ev, idx); err != nil {
			break
		}
	}
	rt.machineNs += time.Since(t0).Nanoseconds()
	return err
}

// startSubscribers collects, deduplicates and orders the routed machines
// that must see a start-element event: subscribers of the element name,
// wildcard machines, subscribers of any attribute name present, and machines
// on the full feed. Delivery is in machine order, matching what a broadcast
// fan-out would do, so interleavings are reproducible.
//
//vitex:hotpath
func (rt *router) startSubscribers(ev *sax.Event) []int32 {
	rt.stamp++
	out := rt.scratch[:0]
	broadcast := false
	if id := ev.NameID; id == sax.SymNone {
		// Producer without a symbol table: no routing information.
		broadcast = true
	} else if id > 0 && int(id) < len(rt.elemSubs) {
		out = rt.appendNew(out, rt.elemSubs[id])
	}
	for ai := range ev.Attrs {
		if id := ev.Attrs[ai].NameID; id == sax.SymNone {
			broadcast = true
		} else if id > 0 && int(id) < len(rt.attrSubs) {
			out = rt.appendNew(out, rt.attrSubs[id])
		}
	}
	if broadcast {
		out = append(out[:0], rt.machines...)
		rt.scratch = out
		return out
	}
	out = rt.appendNew(out, rt.wild)
	out = rt.appendNew(out, rt.fullSet.items)
	// Insertion sort: subscriber counts per event are small by design.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	rt.scratch = out
	return out
}

// appendNew appends the members of list not yet stamped this event. A method
// rather than a closure inside startSubscribers: the closure captured out by
// reference and allocated per start-element (hotalloc caught it).
//
//vitex:hotpath
func (rt *router) appendNew(out, list []int32) []int32 {
	for _, i := range list {
		if rt.stamps[i] != rt.stamp {
			rt.stamps[i] = rt.stamp
			out = append(out, i)
		}
	}
	return out
}

// snapshot copies a dynamic set into the scratch buffer in machine order, so
// deliveries can mutate the set while we iterate.
//
//vitex:hotpath
func (rt *router) snapshot(d *denseSet) []int32 {
	out := append(rt.scratch[:0], d.items...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	rt.scratch = out
	return out
}

// denseSet is a set of machine indexes with O(1) insert/remove and
// allocation-free iteration: items is the members in arbitrary order, pos
// maps a machine to its slot (-1 when absent).
type denseSet struct {
	items []int32
	pos   []int32
}

func (d *denseSet) init(n int) {
	d.items = make([]int32, 0, n)
	d.pos = make([]int32, n)
	for i := range d.pos {
		d.pos[i] = -1
	}
}

// grow extends the position index to cover n slots (members unchanged).
func (d *denseSet) grow(n int) {
	for len(d.pos) < n {
		d.pos = append(d.pos, -1)
	}
}

func (d *denseSet) clear() {
	for _, i := range d.items {
		d.pos[i] = -1
	}
	d.items = d.items[:0]
}

//vitex:hotpath
func (d *denseSet) set(i int32, in bool) {
	p := d.pos[i]
	if in == (p >= 0) {
		return
	}
	if in {
		d.pos[i] = int32(len(d.items))
		d.items = append(d.items, i)
		return
	}
	last := d.items[len(d.items)-1]
	d.items[p] = last
	d.pos[last] = p
	d.items = d.items[:len(d.items)-1]
	d.pos[i] = -1
}

// MergeStats aggregates per-machine statistics of one shared scan into one
// Stats value (for union queries evaluated as several machines): counters
// sum, per-machine peaks add (they are simultaneous), live-candidate peaks
// take the maximum, and scan-level counters (Events, Elements, MaxDepth)
// pass through from the shared scan.
func MergeStats(stats []twigm.Stats) twigm.Stats {
	var out twigm.Stats
	for i, s := range stats {
		if i == 0 {
			out.Events = s.Events
			out.Elements = s.Elements
			out.MaxDepth = s.MaxDepth
		}
		out.Pushes += s.Pushes
		out.Pops += s.Pops
		out.FlagProps += s.FlagProps
		out.CandMoves += s.CandMoves
		out.CandidatesCreated += s.CandidatesCreated
		out.CandidatesEmitted += s.CandidatesEmitted
		out.CandidatesDropped += s.CandidatesDropped
		out.PrunedPushes += s.PrunedPushes
		out.PeakStackEntries += s.PeakStackEntries
		if s.PeakLiveCandidates > out.PeakLiveCandidates {
			out.PeakLiveCandidates = s.PeakLiveCandidates
		}
		out.PeakBufferedBytes += s.PeakBufferedBytes
	}
	return out
}
