package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/twigm"
	"repro/internal/xpath"
)

// metricsDoc exercises the churned vocabulary so streams route, deliver and
// push trie entries (the dispatch counters move, not just the churn ones).
const metricsDoc = `<feed>` +
	`<trade><symbol>ACME</symbol><price>10</price><volume>3</volume></trade>` +
	`<trade><symbol>GLOBEX</symbol><price>20</price><volume>7</volume></trade>` +
	`<news><title>x</title><body k="1">text</body></news>` +
	`</feed>`

// metricsSources overlap heavily on //feed/trade and //feed/news so churn
// drives the shared trie through grafts, prunes and compactions.
var metricsSources = []string{
	"//feed/trade/price",
	"//feed/trade/volume",
	"//feed/trade/symbol",
	"//feed/news/title",
	"//feed/news/body",
	"//feed/trade[symbol='ACME']/price",
	"//feed/news/body/@k",
	"//feed//volume",
}

// monotoneCounters extracts the cumulative (lifetime) counters of a Metrics
// snapshot, the ones that must never move backwards however the engine is
// churned; point-in-time gauges (Slots, Live, Garbage, TrieNodes, ...) are
// deliberately excluded.
func monotoneCounters(m Metrics) []int64 {
	return []int64{
		int64(m.Epoch),
		m.Compiles,
		m.Compactions,
		m.ShardRebalances,
		m.TrieGrafts,
		m.TriePrunes,
		m.TrieCompactions,
		m.Events,
		m.Deliveries,
		m.TriePushes,
	}
}

var monotoneNames = []string{
	"Epoch", "Compiles", "Compactions", "ShardRebalances",
	"TrieGrafts", "TriePrunes", "TrieCompactions",
	"Events", "Deliveries", "TriePushes",
}

// TestMetricsConsistencyUnderChurn runs subscription churn and document
// traffic concurrently with a metrics poller and asserts the accounting
// stays coherent throughout:
//
//   - every cumulative counter is monotone non-decreasing across polls;
//   - gauges respect their structural bounds at every poll (anchored
//     machines never exceed live machines, garbage never goes negative);
//   - after quiescing, the survivors' trie state matches a fresh engine
//     compiled from the same queries — the incremental graft/prune/compact
//     path must land on exactly the state a from-scratch build produces;
//   - the steady state respects the compaction policy: trie garbage is
//     either under the compaction minimum or no larger than the live count.
func TestMetricsConsistencyUnderChurn(t *testing.T) {
	e := mustEngine(t, metricsSources[0], metricsSources[3])
	rng := rand.New(rand.NewSource(7))

	stop := make(chan struct{})    // quiesce signal for traffic and poller
	churned := make(chan struct{}) // churner exhausted its budget
	errs := make(chan error, 8)
	var wg sync.WaitGroup

	// Churner: the only mutator, so it can track membership locally.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(churned)
		live := append([]*twigm.Program(nil), e.Programs()...)
		for i := 0; i < 400; i++ {
			q := xpath.MustParse(metricsSources[rng.Intn(len(metricsSources))])
			p, err := e.Add(q)
			if err != nil {
				errs <- fmt.Errorf("Add: %w", err)
				return
			}
			live = append(live, p)
			for len(live) > 6 {
				victim := rng.Intn(len(live))
				if err := e.Remove(live[victim]); err != nil {
					errs <- fmt.Errorf("Remove: %w", err)
					return
				}
				live[victim] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}()

	// Traffic: one serial and one sharded streamer, each evaluating the
	// membership current at its stream's start.
	for _, workers := range []int{0, 2} {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				opts := make([]twigm.Options, s.Len())
				var err error
				if workers > 1 {
					_, err = s.StreamParallel(strings.NewReader(metricsDoc), false, opts, workers)
				} else {
					_, err = s.Stream(strings.NewReader(metricsDoc), false, opts)
				}
				if err != nil {
					errs <- fmt.Errorf("stream (workers=%d): %w", workers, err)
					return
				}
			}
		}(workers)
	}

	// Poller: cumulative counters only move forward; gauges stay in bounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := monotoneCounters(e.Metrics())
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := e.Metrics()
			cur := monotoneCounters(m)
			for i := range cur {
				if cur[i] < prev[i] {
					errs <- fmt.Errorf("counter %s went backwards: %d -> %d", monotoneNames[i], prev[i], cur[i])
					return
				}
			}
			prev = cur
			if m.AnchoredMachines > m.Live {
				errs <- fmt.Errorf("AnchoredMachines %d > Live %d", m.AnchoredMachines, m.Live)
				return
			}
			if m.Garbage < 0 || m.TrieGarbage < 0 || m.TrieNodes < 0 {
				errs <- fmt.Errorf("negative gauge: %+v", m)
				return
			}
		}
	}()

	<-churned
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: the incremental path must have landed on a coherent steady
	// state. Some churn must actually have happened for the test to mean
	// anything.
	final := e.Metrics()
	if final.Compiles < 400 || final.TriePrunes == 0 {
		t.Fatalf("churn did not exercise the engine: %+v", final)
	}
	if final.TrieGarbage >= compactMinGarbage && final.TrieGarbage > final.TrieNodes {
		t.Errorf("trie compaction policy violated at steady state: garbage %d, live %d",
			final.TrieGarbage, final.TrieNodes)
	}

	// A fresh engine compiled from the survivors must agree with the churned
	// engine on everything structural: live machines, anchored machines, and
	// live trie nodes (trie garbage is history, so the fresh build has none).
	survivors := e.Programs()
	queries := make([]*xpath.Query, len(survivors))
	for i, p := range survivors {
		queries[i] = p.Query()
	}
	fresh, err := New(queries...)
	if err != nil {
		t.Fatal(err)
	}
	fm := fresh.Metrics()
	if fm.Live != final.Live {
		t.Errorf("Live: churned %d, fresh %d", final.Live, fm.Live)
	}
	if fm.AnchoredMachines != final.AnchoredMachines {
		t.Errorf("AnchoredMachines: churned %d, fresh %d", final.AnchoredMachines, fm.AnchoredMachines)
	}
	if fm.TrieNodes != final.TrieNodes {
		t.Errorf("TrieNodes: churned %d, fresh %d", final.TrieNodes, fm.TrieNodes)
	}
	if fm.TrieGarbage != 0 {
		t.Errorf("fresh engine has trie garbage: %d", fm.TrieGarbage)
	}

	// And the two engines produce identical results on the document.
	churnedOut := collect(t, e, metricsDoc, true)
	freshOut := collect(t, fresh, metricsDoc, true)
	for i := range churnedOut {
		if fmt.Sprint(churnedOut[i]) != fmt.Sprint(freshOut[i]) {
			t.Errorf("machine %d: churned %q, fresh %q", i, churnedOut[i], freshOut[i])
		}
	}
}
