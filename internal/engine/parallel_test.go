package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/twigm"
)

// streamAll evaluates the engine over doc collecting full results per
// machine, serially (workers == 0) or sharded.
func streamAll(t *testing.T, e *Engine, doc string, useStd bool, base twigm.Options, workers int) ([][]twigm.Result, []twigm.Stats, error) {
	t.Helper()
	out := make([][]twigm.Result, e.Len())
	opts := make([]twigm.Options, e.Len())
	for i := range opts {
		idx := i
		opts[i] = base
		opts[i].Emit = func(r twigm.Result) error {
			out[idx] = append(out[idx], r)
			return nil
		}
	}
	var stats []twigm.Stats
	var err error
	if workers == 0 {
		stats, err = e.Stream(strings.NewReader(doc), useStd, opts)
	} else {
		stats, err = e.StreamParallel(strings.NewReader(doc), useStd, opts, workers)
	}
	return out, stats, err
}

var parallelTestSources = []string{
	"//trade[symbol='ACME']/price",
	"//trade/volume",
	"//trade/@seq",
	"//*[@seq]",
	"//symbol[.='GLOBEX']",
	"//nosuchelement[nope]/@attr",
	"//trade//price",
	"//book//title",
}

// TestStreamParallelMatchesSerial: sharded evaluation must be byte-identical
// to serial routed dispatch — results, Seqs, clocks and statistics — for
// every worker count, parser and mode.
func TestStreamParallelMatchesSerial(t *testing.T) {
	e := mustEngine(t, parallelTestSources...)
	doc := datagen.Ticker{Trades: 120, Seed: 5}.String()
	for _, workers := range []int{2, 3, 5, 8} {
		for _, useStd := range []bool{false, true} {
			for _, base := range []twigm.Options{{}, {Ordered: true}, {CountOnly: true}} {
				name := fmt.Sprintf("workers=%d/std=%v/%+v", workers, useStd, base)
				want, wantStats, err := streamAll(t, e, doc, useStd, base, 0)
				if err != nil {
					t.Fatal(err)
				}
				got, gotStats, err := streamAll(t, e, doc, useStd, base, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: results diverge\nserial   %+v\nparallel %+v", name, want, got)
				}
				if !reflect.DeepEqual(gotStats, wantStats) {
					t.Fatalf("%s: stats diverge\nserial   %+v\nparallel %+v", name, wantStats, gotStats)
				}
			}
		}
	}
}

// TestStreamParallelEmissionOrder: the merged emission sequence (across
// machines, as the caller observes it) must equal the serial interleaving,
// not just the per-machine sequences.
func TestStreamParallelEmissionOrder(t *testing.T) {
	e := mustEngine(t, parallelTestSources...)
	doc := datagen.Ticker{Trades: 200, Seed: 8}.String()
	order := func(workers int) []string {
		var seq []string
		opts := make([]twigm.Options, e.Len())
		for i := range opts {
			idx := i
			opts[i] = twigm.Options{Emit: func(r twigm.Result) error {
				seq = append(seq, fmt.Sprintf("%d@%d:%d", idx, r.DeliveredAt, r.Seq))
				return nil
			}}
		}
		var err error
		if workers == 0 {
			_, err = e.Stream(strings.NewReader(doc), false, opts)
		} else {
			_, err = e.StreamParallel(strings.NewReader(doc), false, opts, workers)
		}
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}
	want := order(0)
	for _, workers := range []int{2, 4, 7} {
		if got := order(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: emission order diverges\nserial   %v\nparallel %v", workers, want, got)
		}
	}
}

// TestStreamParallelRepeatedStreams: pooled parallel sessions must reset
// completely between documents, including across worker-count changes.
func TestStreamParallelRepeatedStreams(t *testing.T) {
	e := mustEngine(t, parallelTestSources...)
	rng := rand.New(rand.NewSource(13))
	docs := []string{
		datagen.Ticker{Trades: 60, Seed: 1}.String(),
		datagen.Ticker{Trades: 90, Seed: 2}.String(),
		datagen.Book{SectionDepth: 4, TableDepth: 2, Repeat: 4, AuthorEvery: 2, PositionEvery: 2}.String(),
	}
	for round := 0; round < 6; round++ {
		doc := docs[round%len(docs)]
		workers := 2 + rng.Intn(4)
		base := twigm.Options{Ordered: round%2 == 0}
		want, _, err := streamAll(t, e, doc, false, base, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := streamAll(t, e, doc, false, base, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d workers %d: results diverge", round, workers)
		}
	}
}

// TestStreamParallelErrors: scan syntax errors and Emit failures must abort
// the evaluation and propagate, without deadlocking the pipeline.
func TestStreamParallelErrors(t *testing.T) {
	e := mustEngine(t, "//a", "//b", "//c")
	opts := func(emit func(twigm.Result) error) []twigm.Options {
		o := make([]twigm.Options, e.Len())
		for i := range o {
			o[i] = twigm.Options{Emit: emit}
		}
		return o
	}
	if _, err := e.StreamParallel(strings.NewReader("<r><a>1</a><oops></r>"), false,
		opts(func(twigm.Result) error { return nil }), 2); err == nil {
		t.Fatal("malformed document: expected error")
	}
	boom := errors.New("boom")
	bigDoc := "<r>" + strings.Repeat("<a>x</a><b>y</b><c>z</c>", 2000) + "</r>"
	_, err := e.StreamParallel(strings.NewReader(bigDoc), false,
		opts(func(twigm.Result) error { return boom }), 3)
	if !errors.Is(err, boom) {
		t.Fatalf("emit error: got %v, want boom", err)
	}
}

// TestStreamParallelFallsBackToSerial: one machine, one worker or a Trace
// writer must take the serial path (and still be correct).
func TestStreamParallelFallsBackToSerial(t *testing.T) {
	e := mustEngine(t, "//a")
	doc := "<r><a>1</a><a>2</a></r>"
	var got []string
	opts := []twigm.Options{{Emit: func(r twigm.Result) error {
		got = append(got, r.Value)
		return nil
	}}}
	if _, err := e.StreamParallel(strings.NewReader(doc), false, opts, 8); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"<a>1</a>", "<a>2</a>"}) {
		t.Fatalf("results = %q", got)
	}
}

// TestConcurrentParallelStreams: concurrent StreamParallel calls on one
// Engine must each check out a private parallel session and stay correct.
func TestConcurrentParallelStreams(t *testing.T) {
	e := mustEngine(t, "//trade/price", "//trade[symbol='A']/price", "//nothing")
	doc := `<feed>` + strings.Repeat(`<trade><symbol>A</symbol><price>7</price></trade><trade><symbol>B</symbol><price>9</price></trade>`, 20) + `</feed>`
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		workers := 2 + g%3
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				counts := make([]int, e.Len())
				opts := make([]twigm.Options, e.Len())
				for j := range opts {
					opts[j].CountOnly = true
					opts[j].Emit = func(twigm.Result) error { counts[j]++; return nil }
				}
				if _, err := e.StreamParallel(strings.NewReader(doc), false, opts, workers); err != nil {
					errs <- err
					return
				}
				if counts[0] != 40 || counts[1] != 20 || counts[2] != 0 {
					errs <- fmt.Errorf("counts = %v", counts)
					return
				}
			}
		}(workers)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
