// Parallel sharded evaluation: the multi-core mode of the shared-dispatch
// engine.
//
// Serial routed dispatch (engine.go) made per-event machine work
// proportional to the interested queries, but one goroutine still scans,
// routes and runs every machine — on a large standing set the paper's
// many-subscriptions scenario leaves every core but one idle. This file
// splits the pipeline: a scan goroutine parses the stream and stamps events
// into fixed-size pooled batches, N workers each own a static shard of the
// machines (machine i belongs to shard i mod N) and route every batch
// against their shard only, and the caller's goroutine merges the per-shard
// result streams back into the exact serial emission order.
//
// Determinism is the design constraint: parallel evaluation must be
// byte-identical to the serial routed run — same Results, same Seq numbers,
// same ConfirmedAt/DeliveredAt clocks, same interleaving of emissions across
// machines (union dedup picks the first branch to emit; Ordered flushes
// mid-stream). Three properties deliver it:
//
//  1. A machine's state trajectory depends only on the events delivered to
//     it and the shared event clock. Workers deliver exactly the events the
//     serial router would (the routing decision for machine i reads only
//     machine i's state and static tables), with the clock pinned per event
//     via Run.HandleRouted — so per-machine outputs are identical.
//  2. Serial emission order is (event index, machine index, per-machine
//     emission order): the serial loop delivers each event to its
//     subscribers in ascending machine order, and any emission happens
//     inside some delivery. Each worker processes events in order and its
//     shard machines in ascending order, so each shard's emission stream is
//     already sorted by that key.
//  3. Workers emit one result chunk per batch (empty chunks included), so
//     the merger can walk batches in lockstep and k-way-merge the shard
//     streams by (event index, machine index) — ties are impossible across
//     shards because a machine lives in exactly one — invoking the caller's
//     Emit callbacks sequentially from one goroutine, exactly as the serial
//     engine would.
//
// Batches, worker sessions, machine runs, routing tables and the internal
// Emit closures are pooled per Engine; the per-stream cost on top of the
// serial path is one pair of channels per worker plus the emission buffers
// results pass through.
package engine

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
)

// batchSize is the number of events stamped into one batch. Large enough to
// amortize channel hand-off, small enough to keep incremental delivery
// (results reach the caller at batch granularity).
const batchSize = 512

// errAborted is the sentinel the producer returns to stop the scan after a
// downstream failure; it never escapes to the caller.
var errAborted = errors.New("engine: parallel evaluation aborted")

// StreamParallel evaluates every machine over one scan of r using the given
// number of worker goroutines (workers <= 0 means GOMAXPROCS). Results,
// statistics, per-query Seq numbers and ConfirmedAt/DeliveredAt clocks are
// byte-identical to Stream; Emit callbacks are invoked sequentially from the
// calling goroutine in the serial emission order. Evaluations with a Trace
// writer, fewer than two machines or fewer than two workers fall back to the
// serial path.
func (e *Engine) StreamParallel(r io.Reader, useStdParser bool, opts []twigm.Options, workers int) ([]twigm.Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(e.progs) {
		workers = len(e.progs)
	}
	traced := false
	for i := range opts {
		if opts[i].Trace != nil {
			traced = true
			break
		}
	}
	if workers < 2 || traced {
		return e.Stream(r, useStdParser, opts)
	}
	if len(opts) != len(e.progs) {
		return nil, fmt.Errorf("engine: %d option sets for %d machines", len(opts), len(e.progs))
	}

	ps, _ := e.ppool.Get().(*psession)
	if ps == nil || ps.nworkers != workers {
		ps = newPsession(e, workers)
	}
	defer e.ppool.Put(ps)
	ps.reset(opts)

	var drv sax.Driver
	if useStdParser {
		drv = sax.NewStdDriverWith(r, e.syms)
	} else {
		ps.scan.Reset(r)
		drv = ps.scan
	}

	// Start the shard workers and the scan.
	var wg sync.WaitGroup
	for _, w := range ps.workers {
		wg.Add(1)
		go func(w *pworker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	prod := &ps.prod
	var scanErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		scanErr = drv.Run(prod)
		prod.finish()
	}()

	// Merge: one chunk per worker per batch, k-way merged by
	// (event index, machine index).
	var emitErr error
	fronts := make([]resultChunk, len(ps.workers))
	for {
		open := false
		for wi, w := range ps.workers {
			c, ok := <-w.out
			if ok {
				open = true
			}
			fronts[wi] = c
		}
		if !open {
			break
		}
		if emitErr != nil {
			continue // draining after a failed Emit
		}
		for {
			best := -1
			for wi := range fronts {
				f := &fronts[wi]
				if f.next >= len(f.emissions) {
					continue
				}
				if best < 0 || less(&f.emissions[f.next], &fronts[best].emissions[fronts[best].next]) {
					best = wi
				}
			}
			if best < 0 {
				break
			}
			em := &fronts[best].emissions[fronts[best].next]
			fronts[best].next++
			if emit := opts[em.mach].Emit; emit != nil {
				if err := emit(em.res); err != nil {
					emitErr = err
					prod.abort.Store(true)
					break
				}
			}
		}
	}
	wg.Wait()

	stats := make([]twigm.Stats, len(ps.runs))
	for i, run := range ps.runs {
		st := run.Stats()
		st.Events = prod.events
		st.Elements = prod.elements
		st.MaxDepth = prod.maxDepth
		stats[i] = st
	}
	for _, w := range ps.workers {
		if w.failed != nil {
			return stats, w.failed
		}
	}
	if emitErr != nil {
		return stats, emitErr
	}
	if scanErr != nil && scanErr != errAborted {
		return stats, scanErr
	}
	return stats, nil
}

// emission is one result with its serial-order key: the 1-based index of the
// scan event during whose delivery it was emitted, and the machine that
// emitted it.
type emission struct {
	at   int64
	mach int32
	res  twigm.Result
}

// less orders emissions by the serial emission key.
func less(a, b *emission) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.mach < b.mach
}

// resultChunk is one batch's worth of one shard's emissions, already sorted
// by the serial key.
type resultChunk struct {
	emissions []emission
	next      int
}

// eventBatch is a pooled, fixed-capacity slice of scan events. Attribute
// slices are deep-copied into the batch's arena (the scanner reuses its
// attribute buffer between events); Name/Text strings are stable by the
// producer contracts of this repository. refs counts the workers still
// reading the batch; the last one returns it to the freelist.
type eventBatch struct {
	base   int64 // 1-based scan index of events[0]
	events []sax.Event
	attrs  []sax.Attr
	refs   atomic.Int32
}

// psession is one parallel evaluation's worth of mutable state: all machine
// runs, the shard workers (each a router over its shard with shard-filtered
// tables), the reusable scanner and the batch freelist. Pooled per Engine.
// Runs, routing tables, internal Emit closures, dynamic sets and batches are
// all retained across streams; the per-stream cost is one pair of channels
// per worker plus whatever emission buffers results need.
type psession struct {
	eng      *Engine
	nworkers int
	runs     []*twigm.Run
	scan     *xmlscan.Scanner
	workers  []*pworker
	free     chan *eventBatch
	prod     producer
	// emitOn[i] records whether the caller installed an Emit for machine
	// i this stream; the prebuilt internal closures consult it so they
	// can be wired once at construction.
	emitOn []bool
	// emits[i] is machine i's internal Emit closure, built once.
	emits []func(twigm.Result) error
}

// pworker owns the machines of one shard: a router restricted to the shard,
// the channels batches and results flow through, and the emission buffer the
// shard's internal Emit closures append to.
type pworker struct {
	ps *psession
	rt router

	cur    []emission
	failed error

	in  chan *eventBatch
	out chan resultChunk
}

func newPsession(e *Engine, workers int) *psession {
	n := len(e.progs)
	ps := &psession{
		eng:      e,
		nworkers: workers,
		runs:     make([]*twigm.Run, n),
		scan:     xmlscan.NewScannerWith(nil, e.syms),
		free:     make(chan *eventBatch, 4*workers+4),
		emitOn:   make([]bool, n),
	}
	for i, p := range e.progs {
		ps.runs[i] = p.Start(twigm.Options{})
	}
	shardOf := func(i int32) int { return int(i) % workers }
	shardFilter := func(subs [][]int32, w int) [][]int32 {
		out := make([][]int32, len(subs))
		for id, list := range subs {
			for _, i := range list {
				if shardOf(i) == w {
					out[id] = append(out[id], i)
				}
			}
		}
		return out
	}
	for wi := 0; wi < workers; wi++ {
		w := &pworker{ps: ps}
		var wild, machines []int32
		for _, i := range e.wild {
			if shardOf(i) == wi {
				wild = append(wild, i)
			}
		}
		for i := int32(0); int(i) < n; i++ {
			if shardOf(i) == wi {
				machines = append(machines, i)
			}
		}
		w.rt.init(ps.runs, shardFilter(e.elemSubs, wi), shardFilter(e.attrSubs, wi), wild, machines)
		ps.workers = append(ps.workers, w)
	}
	ps.emits = make([]func(twigm.Result) error, n)
	for i := range ps.emits {
		ps.emits[i] = ps.emitFor(int32(i))
	}
	ps.prod.ps = ps
	return ps
}

// emitFor builds machine i's internal Emit closure, wired once at
// construction: it stamps each result with the serial-order key and parks it
// on the owning worker's chunk buffer.
func (ps *psession) emitFor(i int32) func(twigm.Result) error {
	w := ps.workers[int(i)%ps.nworkers]
	return func(tr twigm.Result) error {
		if !ps.emitOn[i] {
			return nil
		}
		w.cur = append(w.cur, emission{at: w.rt.clock, mach: i, res: tr})
		return nil
	}
}

// reset prepares the pooled session for a new stream: machine runs are reset
// with the caller's options (Emit redirected to the prebuilt per-machine
// recorder), routing memberships recomputed, channels re-created (the
// previous stream closed them).
func (ps *psession) reset(opts []twigm.Options) {
	for i, run := range ps.runs {
		ps.emitOn[i] = opts[i].Emit != nil
		ropts := opts[i]
		ropts.Emit = ps.emits[i]
		run.Reset(ropts)
	}
	for _, w := range ps.workers {
		w.cur = nil
		w.failed = nil
		w.in = make(chan *eventBatch, 4)
		w.out = make(chan resultChunk, 8)
		w.rt.reset()
	}
	ps.prod.reset()
}

// ---- producer (scan side) ----

// producer implements sax.Handler on the scan goroutine: it stamps events
// into batches, maintains the shared-scan counters, and hands full batches
// to every worker.
type producer struct {
	ps       *psession
	cur      *eventBatch
	events   int64
	elements int64
	maxDepth int
	abort    atomic.Bool
}

func (p *producer) reset() {
	p.cur = nil
	p.events = 0
	p.elements = 0
	p.maxDepth = 0
	p.abort.Store(false)
}

func (p *producer) batch() *eventBatch {
	select {
	case b := <-p.ps.free:
		b.events = b.events[:0]
		b.attrs = b.attrs[:0]
		return b
	default:
		return &eventBatch{
			events: make([]sax.Event, 0, batchSize),
			attrs:  make([]sax.Attr, 0, 2*batchSize),
		}
	}
}

// HandleEvent implements sax.Handler. The scanner reuses its event and
// attribute buffers between calls, so events are copied by value and
// attribute slices into the batch arena.
func (p *producer) HandleEvent(ev *sax.Event) error {
	if p.abort.Load() {
		return errAborted
	}
	p.events++
	if ev.Kind == sax.StartElement {
		p.elements++
		if ev.Depth > p.maxDepth {
			p.maxDepth = ev.Depth
		}
	}
	if p.cur == nil {
		p.cur = p.batch()
		p.cur.base = p.events
	}
	b := p.cur
	e := *ev
	if len(ev.Attrs) > 0 {
		start := len(b.attrs)
		b.attrs = append(b.attrs, ev.Attrs...)
		e.Attrs = b.attrs[start:len(b.attrs):len(b.attrs)]
	}
	b.events = append(b.events, e)
	if len(b.events) == batchSize {
		p.dispatch()
	}
	return nil
}

// dispatch hands the current batch to every worker.
func (p *producer) dispatch() {
	b := p.cur
	p.cur = nil
	b.refs.Store(int32(len(p.ps.workers)))
	for _, w := range p.ps.workers {
		w.in <- b
	}
}

// finish flushes the trailing partial batch and closes the worker inputs.
func (p *producer) finish() {
	if p.cur != nil && len(p.cur.events) > 0 {
		p.dispatch()
	}
	p.cur = nil
	for _, w := range p.ps.workers {
		close(w.in)
	}
}

// ---- worker (shard side) ----

// loop consumes batches until the producer closes the input, emitting one
// result chunk per batch. After a machine failure the worker keeps draining
// (and releasing) batches so the producer and merger never block, but stops
// delivering events.
func (w *pworker) loop() {
	for b := range w.in {
		if w.failed == nil {
			for i := range b.events {
				if err := w.rt.route(&b.events[i], b.base+int64(i)); err != nil {
					w.failed = err
					break
				}
			}
		}
		if b.refs.Add(-1) == 0 {
			select {
			case w.ps.free <- b:
			default:
			}
		}
		w.out <- resultChunk{emissions: w.cur}
		w.cur = nil
	}
	close(w.out)
}
