// Parallel sharded evaluation: the multi-core mode of the shared-dispatch
// engine.
//
// Serial routed dispatch (engine.go) made per-event machine work
// proportional to the interested queries, but one goroutine still scans,
// routes and runs every machine — on a large standing set the paper's
// many-subscriptions scenario leaves every core but one idle. This file
// splits the pipeline: a scan goroutine parses the stream and stamps events
// into fixed-size pooled batches, N workers each own a static shard of the
// machines (machine i belongs to shard i mod N) and route every batch
// against their shard only, and the caller's goroutine merges the per-shard
// result streams back into the exact serial emission order.
//
// Determinism is the design constraint: parallel evaluation must be
// byte-identical to the serial routed run — same Results, same Seq numbers,
// same ConfirmedAt/DeliveredAt clocks, same interleaving of emissions across
// machines (union dedup picks the first branch to emit; Ordered flushes
// mid-stream). Three properties deliver it:
//
//  1. A machine's state trajectory depends only on the events delivered to
//     it and the shared event clock. Workers deliver exactly the events the
//     serial router would (the routing decision for machine i reads only
//     machine i's state and static tables), with the clock pinned per event
//     via Run.HandleRouted — so per-machine outputs are identical.
//  2. Serial emission order is (event index, machine index, per-machine
//     emission order): the serial loop delivers each event to its
//     subscribers in ascending machine order, and any emission happens
//     inside some delivery. Each worker processes events in order and its
//     shard machines in ascending order, so each shard's emission stream is
//     already sorted by that key.
//  3. Workers emit one result chunk per batch (empty chunks included), so
//     the merger can walk batches in lockstep and k-way-merge the shard
//     streams by (event index, machine index) — ties are impossible across
//     shards because a machine lives in exactly one — invoking the caller's
//     Emit callbacks sequentially from one goroutine, exactly as the serial
//     engine would.
//
// Batches, worker sessions, machine runs, routing tables and the internal
// Emit closures are pooled per Engine; the per-stream cost on top of the
// serial path is one pair of channels per worker plus the emission buffers
// results pass through.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/sax"
	"repro/internal/twigm"
	"repro/internal/xmlscan"
)

// batchSize is the number of events stamped into one batch. Large enough to
// amortize channel hand-off, small enough to keep incremental delivery
// (results reach the caller at batch granularity).
const batchSize = 512

// errAborted is the sentinel the producer returns to stop the scan after a
// downstream failure; it never escapes to the caller.
var errAborted = errors.New("engine: parallel evaluation aborted")

// StreamParallel evaluates the current membership over one scan of r; it is
// Snapshot().StreamParallel.
func (e *Engine) StreamParallel(r io.Reader, useStdParser bool, opts []twigm.Options, workers int) ([]twigm.Stats, error) {
	return e.Snapshot().StreamParallel(r, useStdParser, opts, workers)
}

// StreamParallelContext is StreamParallel honoring a cancellation context;
// it is Snapshot().StreamParallelContext.
func (e *Engine) StreamParallelContext(ctx context.Context, r io.Reader, useStdParser bool, opts []twigm.Options, workers int) ([]twigm.Stats, error) {
	return e.Snapshot().StreamParallelContext(ctx, r, useStdParser, opts, workers)
}

// StreamParallel evaluates every machine of the snapshot over one scan of r
// using the given number of worker goroutines (workers <= 0 means
// GOMAXPROCS). Results, statistics, per-query Seq numbers and
// ConfirmedAt/DeliveredAt clocks are byte-identical to Stream; Emit
// callbacks are invoked sequentially from the calling goroutine in the
// serial emission order. Evaluations with a Trace writer, fewer than two
// machines or fewer than two workers fall back to the serial path.
func (s Snapshot) StreamParallel(r io.Reader, useStdParser bool, opts []twigm.Options, workers int) ([]twigm.Stats, error) {
	return s.StreamParallelContext(context.Background(), r, useStdParser, opts, workers)
}

// StreamParallelContext is StreamParallel honoring a cancellation context:
// the scan goroutine checks ctx at every event and the merge loop before
// every emission, so cancellation — from a caller's deadline, or from inside
// an Emit callback — aborts the evaluation promptly mid-document and returns
// ctx.Err(). Contexts that cannot be canceled cost nothing on the scan path.
func (s Snapshot) StreamParallelContext(ctx context.Context, r io.Reader, useStdParser bool, opts []twigm.Options, workers int) ([]twigm.Stats, error) {
	e, ep := s.eng, s.ep
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ep.live) {
		workers = len(ep.live)
	}
	traced := false
	for i := range opts {
		if opts[i].Trace != nil {
			traced = true
			break
		}
	}
	if workers < 2 || traced {
		return s.StreamContext(ctx, r, useStdParser, opts)
	}
	if len(opts) != len(ep.live) {
		return nil, fmt.Errorf("engine: %d option sets for %d machines", len(opts), len(ep.live))
	}

	ps, _ := e.ppool.Get().(*psession)
	if ps == nil || ps.nworkers != workers {
		ps = newPsession(e, workers)
	}
	defer e.ppool.Put(ps)
	ps.sync(ep)
	ps.reset(opts)
	done := ctx.Done()
	ps.prod.ctx, ps.prod.done = ctx, done
	defer func() { ps.prod.ctx, ps.prod.done = nil, nil }()

	var drv sax.Driver
	if useStdParser {
		drv = sax.NewStdDriverWith(r, e.syms)
	} else {
		ps.scan.Reset(r)
		ps.scan.SetEventBatch(e.scanBatchEvents())
		drv = ps.scan
	}

	// Start the shard workers and the scan.
	var wg sync.WaitGroup
	for _, w := range ps.workers {
		wg.Add(1)
		go func(w *pworker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	prod := &ps.prod
	var scanErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		scanErr = drv.Run(prod)
		prod.finish()
	}()

	// Merge: one chunk per worker per batch, k-way merged by
	// (event index, machine index).
	var emitErr error
	fronts := make([]resultChunk, len(ps.workers))
	for {
		open := false
		for wi, w := range ps.workers {
			c, ok := <-w.out
			if ok {
				open = true
			}
			fronts[wi] = c
		}
		if !open {
			break
		}
		if emitErr != nil {
			continue // draining after a failed Emit
		}
		for {
			best := -1
			for wi := range fronts {
				f := &fronts[wi]
				if f.next >= len(f.emissions) {
					continue
				}
				if best < 0 || less(&f.emissions[f.next], &fronts[best].emissions[fronts[best].next]) {
					best = wi
				}
			}
			if best < 0 {
				break
			}
			em := &fronts[best].emissions[fronts[best].next]
			fronts[best].next++
			if emit := opts[ep.liveIdx[em.mach]].Emit; emit != nil {
				if done != nil {
					// Cancellation (possibly from the previous emit call)
					// stops delivery before the next result goes out.
					select {
					case <-done:
						emitErr = ctx.Err()
						prod.abort.Store(true)
					default:
					}
					if emitErr != nil {
						break
					}
				}
				if err := emit(em.res); err != nil {
					emitErr = err
					prod.abort.Store(true)
					break
				}
			}
		}
	}
	wg.Wait()

	e.events.Add(prod.events)
	var deliveries, triePushes int64
	for _, w := range ps.workers {
		deliveries += w.rt.deliveries
		triePushes += w.rt.prun.Pushes()
	}
	e.deliveries.Add(deliveries)
	e.triePushes.Add(triePushes)

	stats := make([]twigm.Stats, len(ep.live))
	for d, slot := range ep.live {
		st := ps.runs[slot].Stats()
		st.Events = prod.events
		st.Elements = prod.elements
		st.MaxDepth = prod.maxDepth
		stats[d] = st
	}
	for _, w := range ps.workers {
		if w.failed != nil {
			return stats, w.failed
		}
	}
	if emitErr != nil {
		return stats, emitErr
	}
	if scanErr != nil && scanErr != errAborted {
		return stats, scanErr
	}
	if done != nil {
		// As in the serial path: a cancellation racing the final events is
		// still reported, so cancel-during-emit is deterministic wherever
		// the result falls in the document.
		if err := ctx.Err(); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// emission is one result with its serial-order key: the 1-based index of the
// scan event during whose delivery it was emitted, and the machine that
// emitted it.
type emission struct {
	at   int64
	mach int32
	res  twigm.Result
}

// less orders emissions by the serial emission key.
func less(a, b *emission) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.mach < b.mach
}

// resultChunk is one batch's worth of one shard's emissions, already sorted
// by the serial key.
type resultChunk struct {
	emissions []emission
	next      int
}

// eventBatch is a pooled, fixed-capacity slice of scan events. Attribute
// slices are deep-copied into the batch's arena (the scanner reuses its
// attribute buffer between events). Element names are stable interned
// strings; Text and attribute values are stable on the per-event producer
// path, but under batched scanning (sax.BatchHandler) they die when the
// scanner's HandleBatch call returns — long before the shard workers read
// the batch — so the producer copies them into the batch's chars arena.
// refs counts the workers still reading the batch; the last one returns it
// to the freelist.
//
//vitex:pooled
type eventBatch struct {
	base   int64 //vitex:keep assigned by HandleEvent when the first event lands
	events []sax.Event
	attrs  []sax.Attr
	chars  []byte
	refs   atomic.Int32 //vitex:keep zero when freed (dispatch sets, workers decrement)
}

// reset truncates the batch's arenas for reuse, keeping their capacity.
func (b *eventBatch) reset() {
	b.events = b.events[:0]
	b.attrs = b.attrs[:0]
	b.chars = b.chars[:0]
}

// copied copies s into the batch's character arena and returns a string view
// of the copy without a header allocation; the view lives as long as the
// batch holds it (arena growth may move the backing array, but existing
// views pin the old one). Used only for transient scanner strings.
//
//vitex:hotpath
func (b *eventBatch) copied(s string) string {
	if s == "" {
		return ""
	}
	st := len(b.chars)
	b.chars = append(b.chars, s...)
	c := b.chars[st:]
	return unsafe.String(&c[0], len(c))
}

// psession is one parallel evaluation's worth of mutable state: all machine
// runs (slot-indexed against the epoch it last synced to), the shard workers
// (each a router over its shard with shard-filtered tables), the reusable
// scanner and the batch freelist. Pooled per Engine. Runs, routing tables,
// internal Emit closures, dynamic sets and batches are all retained across
// streams; the per-stream cost is one pair of channels per worker plus
// whatever emission buffers results need. Across epochs the session resyncs
// incrementally: a mutation rebuilds routing state only in the shards whose
// membership changed (slot i belongs to shard i mod N, so an Add touches
// exactly one shard).
//
//vitex:pooled
type psession struct {
	eng *Engine //vitex:keep engine identity, constant for the session's life
	// ep is the epoch the slot-indexed state below matches.
	ep       *epoch           //vitex:keep resync state, realigned by sync() per checkout
	nworkers int              //vitex:keep construction constant (pool lookup key)
	runs     []*twigm.Run     // slot -> run (nil for tombstoned slots)
	scan     *xmlscan.Scanner //vitex:keep warmed scanner, Reset(r) per stream by StreamParallelContext
	workers  []*pworker
	free     chan *eventBatch //vitex:keep batch freelist, survives streams by design
	prod     producer
	// emitOn[slot] records whether the caller installed an Emit for the
	// machine this stream; the prebuilt internal closures consult it so
	// they can be wired once per slot.
	emitOn []bool
	// emits[slot] is the machine's internal Emit closure, built once per
	// slot.
	emits []func(twigm.Result) error //vitex:keep prebuilt closures, grown by sync only
}

// pworker owns the machines of one shard: a router restricted to the shard
// (tables owned by the worker, mutated in place during resyncs — they are
// session-private), the channels batches and results flow through, and the
// emission buffer the shard's internal Emit closures append to.
//
//vitex:pooled
type pworker struct {
	ps *psession //vitex:keep owning session, constant for the worker's life
	rt router

	cur    []emission
	failed error

	in  chan *eventBatch
	out chan resultChunk
}

// reset prepares the worker for a new stream: the emission buffer is handed
// off chunk-by-chunk during evaluation, the channels were closed by the
// previous stream, and the router recomputes its dynamic memberships.
func (w *pworker) reset() {
	w.cur = nil
	w.failed = nil
	w.in = make(chan *eventBatch, 4)
	w.out = make(chan resultChunk, 8)
	w.rt.reset()
}

func newPsession(e *Engine, workers int) *psession {
	ps := &psession{
		eng:      e,
		nworkers: workers,
		scan:     xmlscan.NewScannerWith(nil, e.syms),
		free:     make(chan *eventBatch, 4*workers+4),
	}
	for wi := 0; wi < workers; wi++ {
		ps.workers = append(ps.workers, &pworker{ps: ps})
	}
	ps.prod.ps = ps
	return ps
}

// shardOf maps a machine slot to the worker that owns it. Static sharding by
// slot keeps a machine on one worker across its lifetime (epochs preserve
// slots outside compaction), which is what makes incremental resync local.
func (ps *psession) shardOf(slot int32) int { return int(slot) % ps.nworkers }

// sync aligns the session's slot-indexed state with ep. Steady state is a
// pointer compare. After a mutation, runs are re-keyed by program identity
// (machines untouched by the mutation keep their warmed-up state), and only
// the shards whose slot membership changed rebuild their routing tables —
// the per-shard rebuild is recorded in the engine's ShardRebalances metric.
func (ps *psession) sync(ep *epoch) {
	if ps.ep == ep {
		return
	}
	old := ps.ep
	runs := rekeyRuns(old, ps.runs, ep)
	dirty := make([]bool, ps.nworkers)
	for slot := range ep.progs {
		var prev *twigm.Program
		prevAnchor := int32(-1)
		if old != nil && slot < len(old.progs) {
			prev = old.progs[slot]
			prevAnchor = old.anchors[slot]
		}
		// An anchor move without a program change (trie compaction
		// renumbering IDs) also invalidates the shard's trie filter.
		if ep.progs[slot] != prev || ep.anchors[slot] != prevAnchor {
			dirty[ps.shardOf(int32(slot))] = true
		}
	}
	if old != nil {
		for slot := len(ep.progs); slot < len(old.progs); slot++ {
			if old.progs[slot] != nil {
				dirty[ps.shardOf(int32(slot))] = true
			}
		}
	}
	ps.runs = runs

	// Grow the per-slot emit plumbing; closures resolve their worker per
	// call, so they survive compaction moving a slot between shards.
	for slot := len(ps.emits); slot < len(ep.progs); slot++ {
		ps.emits = append(ps.emits, ps.emitFor(int32(slot)))
		ps.emitOn = append(ps.emitOn, false)
	}

	rebuilt := int64(0)
	for wi, w := range ps.workers {
		if old != nil && !dirty[wi] {
			// Membership unchanged: the shard keeps its tables — and its
			// current trie reference: the shard's machines and their
			// anchors are unchanged, and published tries never mutate
			// nodes in place, so the old trie answers identically for
			// this shard's anchor paths. Only the runs slice reference
			// moves to the new slot universe.
			w.rt.rehost(runs, len(ep.progs))
			continue
		}
		var wild, machines []int32
		for _, slot := range ep.wild {
			if ps.shardOf(slot) == wi {
				wild = append(wild, slot)
			}
		}
		for _, slot := range ep.live {
			if ps.shardOf(slot) == wi {
				machines = append(machines, slot)
			}
		}
		// Shard the trie by subtree: this worker evaluates only the trie
		// nodes on its own machines' anchor paths (ancestors included, so
		// anchor compatibility checks see their full chain). Other
		// subtrees cost this worker nothing.
		var trieIDs []bool
		if ep.trie != nil {
			trieIDs = make([]bool, ep.trie.NumIDs())
			for _, slot := range machines {
				for id := ep.anchors[slot]; id >= 0; id = ep.trie.Parent(id) {
					if trieIDs[id] {
						break // path above already marked
					}
					trieIDs[id] = true
				}
			}
		}
		w.rt.init(runs, shardFilter(ep.elemSubs, ps, wi), shardFilter(ep.attrSubs, ps, wi), wild, machines, ep.trie, trieIDs)
		if old != nil {
			rebuilt++
		}
	}
	if rebuilt > 0 {
		ps.eng.shardRebalances.Add(rebuilt)
	}
	ps.ep = ep
}

// shardFilter restricts a subscription table to the slots of one shard.
func shardFilter(subs [][]int32, ps *psession, w int) [][]int32 {
	out := make([][]int32, len(subs))
	for id, list := range subs {
		for _, slot := range list {
			if ps.shardOf(slot) == w {
				out[id] = append(out[id], slot)
			}
		}
	}
	return out
}

// emitFor builds the slot's internal Emit closure, wired once: it stamps
// each result with the serial-order key and parks it on the owning worker's
// chunk buffer.
func (ps *psession) emitFor(slot int32) func(twigm.Result) error {
	return func(tr twigm.Result) error {
		if !ps.emitOn[slot] {
			return nil
		}
		w := ps.workers[ps.shardOf(slot)]
		w.cur = append(w.cur, emission{at: w.rt.clock, mach: slot, res: tr})
		return nil
	}
}

// reset prepares the pooled session for a new stream: machine runs are reset
// with the caller's options (Emit redirected to the prebuilt per-slot
// recorder), routing memberships recomputed, channels re-created (the
// previous stream closed them).
func (ps *psession) reset(opts []twigm.Options) {
	for d, slot := range ps.ep.live {
		ps.emitOn[slot] = opts[d].Emit != nil
		ropts := opts[d]
		ropts.Emit = ps.emits[slot]
		// Batch character data lives in recycled eventBatch arenas, so any
		// value a machine retains past the event must be copied.
		ropts.CopyValues = true
		ps.runs[slot].Reset(ropts)
		if a := ps.ep.anchors[slot]; a >= 0 {
			// Anchored machines read the prefix stacks of the worker that
			// owns their shard (each worker evaluates its own slice of
			// the trie).
			ps.runs[slot].BindAnchor(ps.workers[ps.shardOf(slot)].rt.prun.Stack(a))
		}
	}
	for _, w := range ps.workers {
		w.reset()
	}
	ps.prod.reset()
}

// ---- producer (scan side) ----

// producer implements sax.Handler on the scan goroutine: it stamps events
// into batches, maintains the shared-scan counters, and hands full batches
// to every worker.
//
//vitex:pooled
type producer struct {
	ps       *psession //vitex:keep owning session, constant for the producer's life
	cur      *eventBatch
	events   int64
	elements int64
	maxDepth int
	abort    atomic.Bool

	// Cancellation for the stream in flight: done is ctx.Done(), polled per
	// event; nil when the context cannot be canceled. Cleared when the
	// session returns to the pool.
	ctx  context.Context //vitex:keep cleared by StreamParallelContext before pooling
	done <-chan struct{} //vitex:keep cleared by StreamParallelContext before pooling
}

func (p *producer) reset() {
	p.cur = nil
	p.events = 0
	p.elements = 0
	p.maxDepth = 0
	p.abort.Store(false)
}

func (p *producer) batch() *eventBatch {
	select {
	case b := <-p.ps.free:
		b.reset()
		return b
	default:
		return &eventBatch{
			events: make([]sax.Event, 0, batchSize),
			attrs:  make([]sax.Attr, 0, 2*batchSize),
		}
	}
}

// HandleEvent implements sax.Handler. The scanner reuses its event and
// attribute buffers between calls, so events are copied by value and
// attribute slices into the batch arena.
//
//vitex:hotpath
func (p *producer) HandleEvent(ev *sax.Event) error {
	if p.abort.Load() {
		return errAborted
	}
	if p.done != nil {
		select {
		case <-p.done:
			return p.ctx.Err()
		default:
		}
	}
	p.events++
	if ev.Kind == sax.StartElement {
		p.elements++
		if ev.Depth > p.maxDepth {
			p.maxDepth = ev.Depth
		}
	}
	if p.cur == nil {
		p.cur = p.batch()
		p.cur.base = p.events
	}
	b := p.cur
	e := *ev
	if len(ev.Attrs) > 0 {
		start := len(b.attrs)
		b.attrs = append(b.attrs, ev.Attrs...)
		e.Attrs = b.attrs[start:len(b.attrs):len(b.attrs)]
	}
	b.events = append(b.events, e)
	if len(b.events) == batchSize {
		p.dispatch()
	}
	return nil
}

// HandleBatch implements sax.BatchHandler: the scanner hands over arrays of
// events whose Text/Attr.Value strings die when this call returns, so every
// event is copied by value with its transient strings re-homed into the
// current eventBatch's chars arena (names are interned and stay as-is).
// Counters and batch boundaries match per-event delivery exactly; the
// abort/cancellation poll runs once per incoming array instead of once per
// event, which only delays an abort by at most one scanner batch.
//
//vitex:hotpath
func (p *producer) HandleBatch(evs []sax.Event) error {
	if p.abort.Load() {
		return errAborted
	}
	if p.done != nil {
		select {
		case <-p.done:
			return p.ctx.Err()
		default:
		}
	}
	for i := range evs {
		ev := &evs[i]
		p.events++
		if ev.Kind == sax.StartElement {
			p.elements++
			if ev.Depth > p.maxDepth {
				p.maxDepth = ev.Depth
			}
		}
		if p.cur == nil {
			p.cur = p.batch()
			p.cur.base = p.events
		}
		b := p.cur
		e := *ev
		e.Text = b.copied(ev.Text)
		if len(ev.Attrs) > 0 {
			start := len(b.attrs)
			b.attrs = append(b.attrs, ev.Attrs...)
			e.Attrs = b.attrs[start:len(b.attrs):len(b.attrs)]
			for j := range e.Attrs {
				e.Attrs[j].Value = b.copied(e.Attrs[j].Value)
			}
		}
		b.events = append(b.events, e)
		if len(b.events) == batchSize {
			p.dispatch()
		}
	}
	return nil
}

// dispatch hands the current batch to every worker.
//
//vitex:hotpath
func (p *producer) dispatch() {
	b := p.cur
	p.cur = nil
	b.refs.Store(int32(len(p.ps.workers)))
	for _, w := range p.ps.workers {
		w.in <- b
	}
}

// finish flushes the trailing partial batch and closes the worker inputs.
func (p *producer) finish() {
	if p.cur != nil && len(p.cur.events) > 0 {
		p.dispatch()
	}
	p.cur = nil
	for _, w := range p.ps.workers {
		close(w.in)
	}
}

// ---- worker (shard side) ----

// loop consumes batches until the producer closes the input, emitting one
// result chunk per batch. After a machine failure the worker keeps draining
// (and releasing) batches so the producer and merger never block, but stops
// delivering events.
//
//vitex:hotpath
func (w *pworker) loop() {
	for b := range w.in {
		if w.failed == nil {
			for i := range b.events {
				if err := w.rt.route(&b.events[i], b.base+int64(i)); err != nil {
					w.failed = err
					break
				}
			}
		}
		if b.refs.Add(-1) == 0 {
			select {
			case w.ps.free <- b:
			default:
			}
		}
		w.out <- resultChunk{emissions: w.cur}
		w.cur = nil
	}
	close(w.out)
}
