// Epoch layer: the mutability story of the shared-dispatch engine.
//
// The paper's subscription scenario is not a fixed query set — millions of
// standing subscriptions churn constantly. Recompiling every machine on each
// Add would make churn cost O(total queries); this file makes it O(changed
// query) by separating the engine's identity (symbol table, pools, metrics)
// from its membership (an immutable epoch snapshot swapped atomically):
//
//   - The shared sax.Symbols table is append-only and engine-lifetime: a new
//     query compiles against it alone, existing machines and interned IDs are
//     never invalidated, and scanners only ever need to re-resolve names they
//     previously failed to find (see xmlscan.Scanner.Reset).
//   - An epoch assigns each machine a slot. Mutations build the next epoch
//     by structural sharing: outer tables are copied (O(slots) pointer
//     copies, no compilation), inner subscription lists are shared and only
//     appended to — appends land past every older epoch's length, so
//     in-flight streams reading an older epoch never observe them. Removal
//     rebuilds just the removed machine's lists.
//   - Remove tombstones a slot (progs[slot] = nil) instead of renumbering,
//     so untouched machines keep their slots and pooled sessions resync
//     incrementally. When tombstones exceed a threshold, a compaction pass
//     renumbers the survivors densely (preserving relative order) and
//     rebuilds the routing tables, reclaiming slot-indexed space.
//   - Stream calls capture a Snapshot (one atomic load). A stream started
//     before a mutation completes runs against the old membership — results
//     of a concurrently-removed query are still delivered on that stream,
//     and a concurrently-added query first matches on the next stream.
//
// Mutations are serialized by Engine.mu; Snapshot and Stream never take it.
package engine

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/twigm"
	"repro/internal/xpath"
)

// Compaction runs when at least compactMinGarbage slots are tombstoned AND
// tombstones outnumber live machines. The first bound keeps small sets from
// compacting on every other Remove; the second bounds slot-indexed state
// (session runs, stamps, dense sets) at 2x the live set.
const compactMinGarbage = 16

// epoch is one immutable membership snapshot: the compiled machines by slot,
// the live-slot index, and the routing tables restricted to live slots.
// Everything reachable from an epoch is frozen once the epoch is published;
// successor epochs share inner subscription lists append-only (see the
// package comment for why that is safe). The copy-on-write discipline is
// machine-checked: only //vitex:cowmut functions (the builders below, which
// run before Engine.cur.Store publishes the epoch) may write its fields.
//
//vitex:cow
type epoch struct {
	// seq increments per mutation (diagnostics; sessions compare epoch
	// pointers, not seqs).
	seq uint64
	// progs maps slot -> machine; nil is a tombstone left by Remove.
	progs []*twigm.Program
	// live lists the non-tombstoned slots in ascending order. Ascending
	// slot order equals insertion order (compaction is stable), and is the
	// order broadcast deliveries and dense (caller-facing) indexing use.
	live []int32
	// liveIdx maps slot -> dense index in live (-1 for tombstones).
	liveIdx []int32

	elemSubs [][]int32 // NameID -> live slots subscribed to the element name
	attrSubs [][]int32 // NameID -> live slots subscribed to the attribute name
	wild     []int32   // live slots with a '*' element node
	// outputSubs/outputWild index machines by their OUTPUT element name: the
	// only machines that can start a fragment recording on an element with
	// that name. Attribute-value interest routing (sax.AttrInterest) reads
	// them; they are maintained exactly like elemSubs/wild.
	outputSubs [][]int32
	outputWild []int32

	// trie is the shared prefix trie of this membership (nil when the
	// engine was built with prefix sharing disabled); anchors maps slot ->
	// trie node ID the slot's residual machine is anchored at (-1 for
	// unanchored machines). Mutations graft/prune copy-on-write, so the
	// pair is immutable once the epoch is published, like everything else
	// here.
	trie    *twigm.Trie
	anchors []int32

	garbage int // tombstoned slots in progs
}

// clone copies the epoch's outer structure for the next mutation: slot and
// subscription tables get fresh outer slices (inner lists shared), and the
// subscription tables grow to cover symsLen (the table may have grown while
// compiling the query that triggered this mutation).
//
//vitex:cowmut builds the next epoch before publication
func (ep *epoch) clone(symsLen int) *epoch {
	next := &epoch{
		seq:        ep.seq + 1,
		progs:      append([]*twigm.Program(nil), ep.progs...),
		elemSubs:   growSubs(ep.elemSubs, symsLen),
		attrSubs:   growSubs(ep.attrSubs, symsLen),
		wild:       ep.wild,
		outputSubs: growSubs(ep.outputSubs, symsLen),
		outputWild: ep.outputWild,
		trie:       ep.trie,
		anchors:    append([]int32(nil), ep.anchors...),
		garbage:    ep.garbage,
	}
	return next
}

// growSubs copies the outer slice of a subscription table, extended to cover
// IDs 1..symsLen.
func growSubs(subs [][]int32, symsLen int) [][]int32 {
	n := symsLen + 1
	if n < len(subs) {
		n = len(subs)
	}
	out := make([][]int32, n)
	copy(out, subs)
	return out
}

// subscribe adds slot to every routing list its program's static
// subscriptions name. Appends may share backing arrays with older epochs;
// they only ever write past those epochs' lengths.
//
//vitex:cowmut called on unpublished epochs only
func (ep *epoch) subscribe(slot int32, p *twigm.Program) {
	for _, id := range p.ElemNameIDs() {
		ep.elemSubs[id] = append(ep.elemSubs[id], slot)
	}
	for _, id := range p.AttrNameIDs() {
		ep.attrSubs[id] = append(ep.attrSubs[id], slot)
	}
	if p.HasWildcardElem() {
		ep.wild = append(ep.wild, slot)
	}
	if id, wildcard := p.OutputElemNameID(); wildcard {
		ep.outputWild = append(ep.outputWild, slot)
	} else if id > 0 {
		ep.outputSubs[id] = append(ep.outputSubs[id], slot)
	}
}

// unsubscribe rebuilds (fresh backing — older epochs keep reading the old
// lists) every routing list that mentions slot, dropping it.
//
//vitex:cowmut called on unpublished epochs only
func (ep *epoch) unsubscribe(slot int32, p *twigm.Program) {
	for _, id := range p.ElemNameIDs() {
		ep.elemSubs[id] = without(ep.elemSubs[id], slot)
	}
	for _, id := range p.AttrNameIDs() {
		ep.attrSubs[id] = without(ep.attrSubs[id], slot)
	}
	if p.HasWildcardElem() {
		ep.wild = without(ep.wild, slot)
	}
	if id, wildcard := p.OutputElemNameID(); wildcard {
		ep.outputWild = without(ep.outputWild, slot)
	} else if id > 0 {
		ep.outputSubs[id] = without(ep.outputSubs[id], slot)
	}
}

// without returns a fresh copy of list with slot removed.
func without(list []int32, slot int32) []int32 {
	out := make([]int32, 0, len(list)-1)
	for _, s := range list {
		if s != slot {
			out = append(out, s)
		}
	}
	return out
}

// reindex rebuilds the live/liveIdx views from progs.
//
//vitex:cowmut called on unpublished epochs only
func (ep *epoch) reindex() {
	ep.live = make([]int32, 0, len(ep.progs)-ep.garbage)
	ep.liveIdx = make([]int32, len(ep.progs))
	for slot, p := range ep.progs {
		if p == nil {
			ep.liveIdx[slot] = -1
			continue
		}
		ep.liveIdx[slot] = int32(len(ep.live))
		ep.live = append(ep.live, int32(slot))
	}
}

// slotOf returns the slot of p, or -1 if p is not a live machine of this
// epoch. Linear in slots — mutations are O(slots) bookkeeping anyway.
func (ep *epoch) slotOf(p *twigm.Program) int32 {
	for slot, q := range ep.progs {
		if q == p && q != nil {
			return int32(slot)
		}
	}
	return -1
}

// compact renumbers the survivors densely, preserving relative order, and
// rebuilds the routing tables from scratch. Sessions resynced to a compacted
// epoch re-key their per-slot state by program identity, so machine runs
// (and their warmed-up allocations) survive the renumbering.
//
//vitex:cowmut builds the compacted epoch before publication
func (ep *epoch) compact(symsLen int) *epoch {
	next := &epoch{
		seq:        ep.seq, // compaction rides the mutation that triggered it
		progs:      make([]*twigm.Program, 0, len(ep.live)),
		elemSubs:   make([][]int32, symsLen+1),
		attrSubs:   make([][]int32, symsLen+1),
		outputSubs: make([][]int32, symsLen+1),
		trie:       ep.trie,
		anchors:    make([]int32, 0, len(ep.live)),
	}
	for _, slot := range ep.live {
		p := ep.progs[slot]
		next.subscribe(int32(len(next.progs)), p)
		next.progs = append(next.progs, p)
		next.anchors = append(next.anchors, ep.anchors[slot])
	}
	next.reindex()
	return next
}

// ---- engine mutations ----

// compileLocked compiles q the way this engine evaluates: prefix-shared
// (residual machine + profile) by default, a full standalone machine when
// sharing is disabled.
func (e *Engine) compileLocked(q *xpath.Query) (*twigm.Program, error) {
	if !e.share {
		return twigm.CompileWith(q, e.syms)
	}
	return twigm.CompileShared(q, e.syms)
}

// graftLocked merges p's prefix profile into the epoch's trie and records
// slot's anchor. No-op for unanchored machines.
//
//vitex:cowmut mutates the unpublished epoch under e.mu
func (e *Engine) graftLocked(ep *epoch, slot int32, p *twigm.Program) {
	if !p.Anchored() {
		return
	}
	ep.trie, ep.anchors[slot] = ep.trie.Graft(p.Profile(), e.syms.Len())
	e.trieGrafts.Add(1)
}

// pruneLocked releases slot's anchor path from the epoch's trie.
//
//vitex:cowmut mutates the unpublished epoch under e.mu
func (e *Engine) pruneLocked(ep *epoch, slot int32) {
	if a := ep.anchors[slot]; a >= 0 {
		ep.trie = ep.trie.Prune(a)
		ep.anchors[slot] = -1
		e.triePrunes.Add(1)
	}
}

// maybeCompactTrieLocked rebuilds the trie with dense node IDs when pruning
// has left more dead IDs than live nodes (same shape as slot compaction).
// Machines are NOT recompiled: their stored profiles are re-grafted and the
// epoch's anchor table rewritten, so pooled sessions just resize their
// prefix stacks on resync.
//
//vitex:cowmut mutates the unpublished epoch under e.mu
func (e *Engine) maybeCompactTrieLocked(ep *epoch) {
	t := ep.trie
	if t == nil || t.Garbage() < compactMinGarbage || t.Garbage() <= t.Live() {
		return
	}
	fresh := twigm.NewTrie()
	for slot, p := range ep.progs {
		if p == nil || !p.Anchored() {
			continue
		}
		fresh, ep.anchors[slot] = fresh.Graft(p.Profile(), e.syms.Len())
	}
	ep.trie = fresh
	e.trieCompactions.Add(1)
}

// Add compiles q against the shared symbol table, grafts its prefix profile
// into the trie and publishes a new epoch containing it. No existing machine
// is recompiled or otherwise touched; streams already running keep their
// snapshot and first see the new machine on their next Stream call. Returns
// the new machine, which is the handle Remove and Replace take.
//
//vitex:cowmut builds the next epoch under e.mu, publishes via cur.Store
func (e *Engine) Add(q *xpath.Query) (*twigm.Program, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, err := e.compileLocked(q)
	if err != nil {
		return nil, err
	}
	e.compiles.Add(1)
	ep := e.cur.Load().clone(e.syms.Len())
	slot := int32(len(ep.progs))
	ep.progs = append(ep.progs, p)
	ep.anchors = append(ep.anchors, -1)
	e.graftLocked(ep, slot, p)
	ep.subscribe(slot, p)
	ep.reindex()
	e.cur.Store(ep)
	return p, nil
}

// Remove tombstones machine p, prunes its trie branch and publishes a new
// epoch without it. Streams already running still deliver p's results; later
// streams do not. When tombstones (slots or trie IDs) pass the compaction
// threshold the new epoch is compacted.
//
//vitex:cowmut builds the next epoch under e.mu, publishes via cur.Store
func (e *Engine) Remove(p *twigm.Program) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.cur.Load()
	slot := old.slotOf(p)
	if slot < 0 {
		return fmt.Errorf("engine: Remove of a machine not in the set")
	}
	ep := old.clone(e.syms.Len())
	ep.progs[slot] = nil
	ep.garbage++
	e.pruneLocked(ep, slot)
	ep.unsubscribe(slot, p)
	ep.reindex()
	if ep.garbage >= compactMinGarbage && ep.garbage > len(ep.live) {
		ep = ep.compact(e.syms.Len())
		e.compactions.Add(1)
	}
	e.maybeCompactTrieLocked(ep)
	e.cur.Store(ep)
	return nil
}

// Replace swaps machine old for a machine compiled from q, reusing old's
// slot (the new machine keeps old's position in the dense order). Only q is
// compiled; the trie prunes old's branch and grafts the new profile.
//
//vitex:cowmut builds the next epoch under e.mu, publishes via cur.Store
func (e *Engine) Replace(old *twigm.Program, q *xpath.Query) (*twigm.Program, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.cur.Load()
	slot := cur.slotOf(old)
	if slot < 0 {
		return nil, fmt.Errorf("engine: Replace of a machine not in the set")
	}
	p, err := e.compileLocked(q)
	if err != nil {
		return nil, err
	}
	e.compiles.Add(1)
	ep := cur.clone(e.syms.Len())
	ep.unsubscribe(slot, old)
	e.pruneLocked(ep, slot)
	ep.progs[slot] = p
	e.graftLocked(ep, slot, p)
	ep.subscribe(slot, p)
	ep.reindex()
	e.maybeCompactTrieLocked(ep)
	e.cur.Store(ep)
	return p, nil
}

// Metrics is a point-in-time view of the engine's churn accounting, the
// counters the incremental-update guarantees are asserted against: Compiles
// counts machine compilations over the engine's lifetime (an Add moves it by
// exactly one), Compactions counts slot-reclaiming passes, ShardRebalances
// counts parallel-shard routing tables rebuilt during pooled session resyncs
// (an Add touches exactly one shard per session), and Slots/Live/Garbage
// describe the current epoch.
type Metrics struct {
	Epoch           uint64
	Compiles        int64
	Compactions     int64
	ShardRebalances int64
	Slots           int
	Live            int
	Garbage         int

	// Prefix-sharing accounting. TrieNodes is the live shared-trie node
	// count (0 when sharing is disabled or no query shares); TrieGarbage
	// counts pruned node IDs awaiting compaction; AnchoredMachines is how
	// many live machines evaluate as residuals behind the trie.
	// TrieGrafts/TriePrunes/TrieCompactions count trie mutations over the
	// engine's lifetime.
	TrieNodes        int
	TrieGarbage      int
	AnchoredMachines int
	TrieGrafts       int64
	TriePrunes       int64
	TrieCompactions  int64

	// Dispatch accounting, cumulative over the engine's lifetime: scan
	// events routed, machine deliveries made (Deliveries/Events = machines
	// woken per event — the quantity prefix sharing drives down), and trie
	// entries pushed by the shared prefix layer.
	Events     int64
	Deliveries int64
	TriePushes int64

	// Eval summarizes the per-stream evaluation-cost histogram
	// (nanoseconds per scan event, serial streams only): always on, two
	// clock reads per document. Full bucket data via EvalHistogram.
	Eval obs.Stats

	// Hot is the sampled hot-path attribution (EnableHotStats); all
	// zeros unless sampling is on.
	Hot HotStats
}

// HotStats attributes sampled streams' wall clock across the three serial
// hot-path stages: scan (parsing + routing lookups), the shared prefix
// trie, and residual-machine deliveries. Cumulative over the timed streams
// only; divide by Events for per-event cost.
type HotStats struct {
	Streams   int64
	Events    int64
	ScanNs    int64
	TrieNs    int64
	MachineNs int64
}

// Metrics returns the engine's churn and dispatch accounting.
func (e *Engine) Metrics() Metrics {
	ep := e.cur.Load()
	anchored := 0
	for _, slot := range ep.live {
		if ep.anchors[slot] >= 0 {
			anchored++
		}
	}
	return Metrics{
		Epoch:            ep.seq,
		Compiles:         e.compiles.Load(),
		Compactions:      e.compactions.Load(),
		ShardRebalances:  e.shardRebalances.Load(),
		Slots:            len(ep.progs),
		Live:             len(ep.live),
		Garbage:          ep.garbage,
		TrieNodes:        ep.trie.Live(),
		TrieGarbage:      ep.trie.Garbage(),
		AnchoredMachines: anchored,
		TrieGrafts:       e.trieGrafts.Load(),
		TriePrunes:       e.triePrunes.Load(),
		TrieCompactions:  e.trieCompactions.Load(),
		Events:           e.events.Load(),
		Deliveries:       e.deliveries.Load(),
		TriePushes:       e.triePushes.Load(),
		Eval:             e.evalHist.Snapshot().Stats(),
		Hot: HotStats{
			Streams:   e.hotStreams.Load(),
			Events:    e.hotEvents.Load(),
			ScanNs:    e.hotScanNs.Load(),
			TrieNs:    e.hotTrieNs.Load(),
			MachineNs: e.hotMachineNs.Load(),
		},
	}
}
