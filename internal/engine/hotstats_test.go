package engine

import (
	"strings"
	"testing"

	"repro/internal/twigm"
)

// TestEvalHistogramAlwaysOn: every serial stream with events lands one
// observation (its ns-per-event) in the evaluation histogram, with no
// opt-in required.
func TestEvalHistogramAlwaysOn(t *testing.T) {
	e := mustEngine(t, metricsSources[0], metricsSources[3])
	const streams = 5
	for i := 0; i < streams; i++ {
		if _, err := e.Stream(strings.NewReader(metricsDoc), false, make([]twigm.Options, e.Len())); err != nil {
			t.Fatal(err)
		}
	}
	s := e.EvalHistogram()
	if s.Count != streams {
		t.Fatalf("eval histogram count = %d, want %d", s.Count, streams)
	}
	if s.SumNs <= 0 {
		t.Fatalf("eval histogram sum = %d", s.SumNs)
	}
	m := e.Metrics()
	if m.Eval.Count != streams || m.Eval.P50Ns <= 0 {
		t.Fatalf("Metrics.Eval = %+v", m.Eval)
	}
}

// TestHotStatsAttribution: with sampling enabled, timed streams split their
// wall clock across scan, trie and machine shares; with sampling off, the
// counters stay still and results are unaffected either way.
func TestHotStatsAttribution(t *testing.T) {
	e := mustEngine(t, metricsSources...)
	baseline := collect(t, e, metricsDoc, true)

	m0 := e.Metrics()
	if m0.Hot.Streams != 0 {
		t.Fatalf("hot stats moved before enabling: %+v", m0.Hot)
	}

	e.EnableHotStats(2) // every 2nd stream is timed
	const streams = 10
	for i := 0; i < streams; i++ {
		got := collect(t, e, metricsDoc, true)
		for q := range baseline {
			if strings.Join(got[q], "|") != strings.Join(baseline[q], "|") {
				t.Fatalf("stream %d query %d results changed under hot-stats sampling:\n%v\nvs\n%v", i, q, got[q], baseline[q])
			}
		}
	}
	m1 := e.Metrics()
	if m1.Hot.Streams != streams/2 {
		t.Fatalf("timed %d streams, want %d: %+v", m1.Hot.Streams, streams/2, m1.Hot)
	}
	if m1.Hot.Events <= 0 {
		t.Fatalf("timed streams recorded no events: %+v", m1.Hot)
	}
	// The three shares partition the sampled wall clock: each non-negative,
	// trie+machine strictly positive on a delivering workload, and scan
	// (the residual) positive because parsing always costs something.
	if m1.Hot.ScanNs <= 0 || m1.Hot.TrieNs < 0 || m1.Hot.MachineNs <= 0 {
		t.Fatalf("hot attribution shares = %+v", m1.Hot)
	}

	e.EnableHotStats(0)
	for i := 0; i < 4; i++ {
		collect(t, e, metricsDoc, true)
	}
	m2 := e.Metrics()
	if m2.Hot.Streams != m1.Hot.Streams || m2.Hot.Events != m1.Hot.Events {
		t.Fatalf("hot stats moved while disabled: %+v vs %+v", m2.Hot, m1.Hot)
	}
}
