// Package sax defines the streaming event model that connects the XML
// front-ends (internal/xmlscan and the encoding/xml adapter) to the query
// engines (internal/twigm, internal/naive). It mirrors the "SAX parser"
// module of the ViteX architecture (ICDE 2005, figure 2): the parser turns an
// XML byte stream into a sequence of events, and downstream machines change
// state per event.
//
// Events carry the element depth explicitly because the TwigM machine's axis
// checks are pure level arithmetic: the root element has depth 1, its
// children depth 2, and so on. Text events carry the depth of the text node
// itself (parent depth + 1), matching the XPath data model in which text
// nodes are children of their containing element.
package sax

import "fmt"

// Kind discriminates the event variants a Handler receives.
type Kind uint8

// Event kinds, in the order a well-formed document produces them.
const (
	// StartDocument is delivered once before any other event.
	StartDocument Kind = iota
	// StartElement is delivered for each opening (or self-closing) tag.
	StartElement
	// EndElement is delivered for each closing tag (self-closing tags
	// produce an immediate EndElement after their StartElement).
	EndElement
	// Text is delivered for each maximal run of character data between
	// tags. Adjacent character data, entity references and CDATA sections
	// are coalesced into a single Text event, so one Text event per
	// XPath text node.
	Text
	// EndDocument is delivered once after the root element closes.
	EndDocument
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case StartDocument:
		return "StartDocument"
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case EndDocument:
		return "EndDocument"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of a start-element event. Values have all
// entity references resolved.
type Attr struct {
	// Name is the full lexical QName as written in the document
	// (serialization uses it verbatim).
	Name  string
	Value string
	// Prefix and Local are the namespace prefix (empty when none) and the
	// local part of Name. Producers in this repository always populate
	// Local; consumers use LocalName, which falls back to splitting Name
	// for hand-built attrs.
	Prefix string
	Local  string
	// NameID is the Symbols ID of the LOCAL name when the producer interns
	// against a table (SymNone when it does not, SymUnknown when the name
	// is not in the table). Namespace-declaration attributes (xmlns,
	// xmlns:p) always carry SymUnknown: they are namespace machinery, not
	// query-matchable data. See Event.NameID.
	NameID int32
}

// LocalName returns the attribute's local name, splitting Name when the
// producer did not populate Local.
//
//vitex:hotpath
func (a *Attr) LocalName() string {
	if a.Local != "" {
		return a.Local
	}
	_, local := SplitName(a.Name)
	return local
}

// IsNamespaceDecl reports whether the attribute is a namespace declaration
// (xmlns="..." or xmlns:p="..."). Such attributes are preserved in Attrs so
// fragments serialize faithfully, but they never match attribute name tests.
//
//vitex:hotpath
func (a *Attr) IsNamespaceDecl() bool { return IsNamespaceDecl(a.Name) }

// IsNamespaceDecl reports whether a lexical attribute name declares a
// namespace.
//
//vitex:hotpath
func IsNamespaceDecl(name string) bool {
	return name == "xmlns" || (len(name) > 6 && name[:6] == "xmlns:")
}

// SplitName splits a lexical QName into its prefix and local part at the
// first colon. Names without a colon have an empty prefix. Degenerate names
// where either part would be empty (":", ":a", "a:") are not QNames; they
// stay unsplit — the whole name is the local part, matching encoding/xml's
// treatment (the cross-parser fuzz differential pins this).
//
//vitex:hotpath
func SplitName(name string) (prefix, local string) {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			if i == 0 || i == len(name)-1 {
				return "", name
			}
			return name[:i], name[i+1:]
		}
	}
	return "", name
}

// ClassifyBOM inspects the first bytes of a document for a byte-order mark.
// It returns the number of leading bytes to skip (3 for the UTF-8 BOM, 0
// otherwise) and, for the unsupported UTF-16/32 encodings, the encoding name
// to report. Both front-ends share this table so they can never diverge on
// BOM handling. UTF-32LE (FF FE 00 00) is checked before UTF-16LE (FF FE):
// the 4-byte pattern can only be UTF-32 — a NUL character is not valid XML.
func ClassifyBOM(head []byte) (skip int, unsupported string) {
	switch {
	case len(head) >= 3 && head[0] == 0xEF && head[1] == 0xBB && head[2] == 0xBF:
		return 3, ""
	case len(head) >= 4 && head[0] == 0x00 && head[1] == 0x00 && head[2] == 0xFE && head[3] == 0xFF:
		return 0, "UTF-32"
	case len(head) >= 4 && head[0] == 0xFF && head[1] == 0xFE && head[2] == 0x00 && head[3] == 0x00:
		return 0, "UTF-32"
	case len(head) >= 2 && (head[0] == 0xFE && head[1] == 0xFF || head[0] == 0xFF && head[1] == 0xFE):
		return 0, "UTF-16"
	}
	return 0, ""
}

// Event is one unit of the stream. The same Event value is reused by
// producers between Handler calls; handlers must copy anything they retain
// (Name, Text and Attrs share the producer's buffers only until the handler
// returns — producers in this repository hand out stable strings, but the
// contract is defined conservatively so alternative producers can recycle
// buffers).
type Event struct {
	Kind Kind
	// Name is the element name for StartElement/EndElement: the full
	// lexical QName, prefix included, exactly as written (fragments
	// serialize it verbatim).
	Name string
	// Prefix and Local split Name at its namespace colon (Prefix is empty
	// for unprefixed names). Name tests match on the local name; a
	// prefixed test additionally requires the prefix. Producers in this
	// repository always populate Local; consumers use LocalName, which
	// falls back to splitting Name for hand-built events. The encoding/xml
	// adapter reconstructs the lexical prefix from the in-scope namespace
	// declarations, so both front-ends agree.
	Prefix string
	Local  string
	// NameID is the Symbols ID of the LOCAL name for
	// StartElement/EndElement when the producer was constructed with a
	// Symbols table: a positive ID for interned names, SymUnknown for names
	// absent from the table, SymNone (the zero value) when the producer
	// does not intern at all. Consumers compiled against the same table may
	// dispatch on it directly; they must fall back to Name for SymNone.
	NameID int32
	// Depth is the element depth for StartElement/EndElement (root = 1)
	// and the text-node depth (parent depth + 1) for Text.
	Depth int
	// Text is the character data for Text events.
	Text string
	// Attrs holds the attributes of a StartElement event, in document
	// order. Nil for other kinds.
	Attrs []Attr
	// Offset is the byte offset in the input at which the token that
	// produced this event begins. Diagnostic only.
	Offset int64
}

// LocalName returns the element's local name, splitting Name when the
// producer did not populate Local.
//
//vitex:hotpath
func (ev *Event) LocalName() string {
	if ev.Local != "" {
		return ev.Local
	}
	_, local := SplitName(ev.Name)
	return local
}

// PrefixName returns the element's namespace prefix ("" when none),
// splitting Name when the producer did not populate Local.
//
//vitex:hotpath
func (ev *Event) PrefixName() string {
	if ev.Local != "" {
		return ev.Prefix
	}
	prefix, _ := SplitName(ev.Name)
	return prefix
}

// PrefixName returns the attribute's namespace prefix ("" when none).
//
//vitex:hotpath
func (a *Attr) PrefixName() string {
	if a.Local != "" {
		return a.Prefix
	}
	prefix, _ := SplitName(a.Name)
	return prefix
}

// Handler consumes a stream of events. Returning a non-nil error aborts the
// parse; the error is propagated to the driver's caller.
type Handler interface {
	HandleEvent(ev *Event) error
}

// TextInterest is an optional Handler refinement: a handler that can prove
// no downstream consumer will read the NEXT text event's content returns
// false, and producers may then deliver the Text event with an empty Text
// string instead of materializing the character data (validation and event
// accounting are unaffected — the event itself is still delivered, so event
// clocks are identical either way). The routed query engine implements it
// from its text-subscription set; producers that batch events for multiple
// concurrent consumers must not use it.
type TextInterest interface {
	WantsTextEvent() bool
}

// AttrInterest is an optional Handler refinement, the attribute-value
// counterpart of TextInterest: WantsAttrValue is asked per attribute of the
// next start-element (both IDs interned against the producer's Symbols
// table), and false lets the producer deliver that Attr with an empty Value
// instead of materializing it. Implementations must answer true whenever
// any consumer could observe the value — including consumers that may start
// serializing this very element's tag (fragment recording includes every
// attribute). Parsing and well-formedness validation are unaffected.
type AttrInterest interface {
	WantsAttrValue(elemNameID, attrNameID int32) bool
}

// BatchHandler is the high-throughput Handler refinement: a producer that
// recognizes it delivers events in arrays of up to a few hundred instead of
// one callback per event, amortizing the interface dispatch and letting the
// producer defer per-event bookkeeping to a per-batch epoch.
//
// The contract is strictly more transient than Handler's: every string and
// slice reachable from the batch — Text, Attr.Value, the Attrs backing array
// — is valid ONLY until HandleBatch returns, after which the producer
// recycles the arenas backing them (element names are the exception: they
// are interned and stable for the producer's lifetime). A handler that
// retains content must copy it before returning. Returning a non-nil error
// aborts the parse exactly as Handler's would; events later in the slice are
// the handler's to skip.
//
// Producers ignore TextInterest/AttrInterest on a BatchHandler: batch
// content is arena-backed and allocation-free either way, and interest
// answers would be stale for events the handler has not yet observed.
type BatchHandler interface {
	HandleBatch(evs []Event) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ev *Event) error

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(ev *Event) error { return f(ev) }

// Driver is anything that can push a full document's events into a Handler.
// Both the custom scanner and the encoding/xml adapter implement it.
type Driver interface {
	Run(h Handler) error
}

// Attr lookup helper: Get returns the value of the named attribute and
// whether it was present.
//
//vitex:hotpath
func GetAttr(attrs []Attr, name string) (string, bool) {
	for i := range attrs {
		if attrs[i].Name == name {
			return attrs[i].Value, true
		}
	}
	return "", false
}
