// Package sax defines the streaming event model that connects the XML
// front-ends (internal/xmlscan and the encoding/xml adapter) to the query
// engines (internal/twigm, internal/naive). It mirrors the "SAX parser"
// module of the ViteX architecture (ICDE 2005, figure 2): the parser turns an
// XML byte stream into a sequence of events, and downstream machines change
// state per event.
//
// Events carry the element depth explicitly because the TwigM machine's axis
// checks are pure level arithmetic: the root element has depth 1, its
// children depth 2, and so on. Text events carry the depth of the text node
// itself (parent depth + 1), matching the XPath data model in which text
// nodes are children of their containing element.
package sax

import "fmt"

// Kind discriminates the event variants a Handler receives.
type Kind uint8

// Event kinds, in the order a well-formed document produces them.
const (
	// StartDocument is delivered once before any other event.
	StartDocument Kind = iota
	// StartElement is delivered for each opening (or self-closing) tag.
	StartElement
	// EndElement is delivered for each closing tag (self-closing tags
	// produce an immediate EndElement after their StartElement).
	EndElement
	// Text is delivered for each maximal run of character data between
	// tags. Adjacent character data, entity references and CDATA sections
	// are coalesced into a single Text event, so one Text event per
	// XPath text node.
	Text
	// EndDocument is delivered once after the root element closes.
	EndDocument
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case StartDocument:
		return "StartDocument"
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case EndDocument:
		return "EndDocument"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of a start-element event. Values have all
// entity references resolved.
type Attr struct {
	Name  string
	Value string
	// NameID is the Symbols ID of Name when the producer interns against a
	// table (SymNone when it does not, SymUnknown when the name is not in
	// the table). See Event.NameID.
	NameID int32
}

// Event is one unit of the stream. The same Event value is reused by
// producers between Handler calls; handlers must copy anything they retain
// (Name, Text and Attrs share the producer's buffers only until the handler
// returns — producers in this repository hand out stable strings, but the
// contract is defined conservatively so alternative producers can recycle
// buffers).
type Event struct {
	Kind Kind
	// Name is the element name for StartElement/EndElement. Namespace
	// prefixes are preserved verbatim (ViteX predates namespace-aware
	// matching; queries match the lexical QName).
	Name string
	// NameID is the Symbols ID of Name for StartElement/EndElement when the
	// producer was constructed with a Symbols table: a positive ID for
	// interned names, SymUnknown for names absent from the table, SymNone
	// (the zero value) when the producer does not intern at all. Consumers
	// compiled against the same table may dispatch on it directly; they
	// must fall back to Name for SymNone.
	NameID int32
	// Depth is the element depth for StartElement/EndElement (root = 1)
	// and the text-node depth (parent depth + 1) for Text.
	Depth int
	// Text is the character data for Text events.
	Text string
	// Attrs holds the attributes of a StartElement event, in document
	// order. Nil for other kinds.
	Attrs []Attr
	// Offset is the byte offset in the input at which the token that
	// produced this event begins. Diagnostic only.
	Offset int64
}

// Handler consumes a stream of events. Returning a non-nil error aborts the
// parse; the error is propagated to the driver's caller.
type Handler interface {
	HandleEvent(ev *Event) error
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ev *Event) error

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(ev *Event) error { return f(ev) }

// Driver is anything that can push a full document's events into a Handler.
// Both the custom scanner and the encoding/xml adapter implement it.
type Driver interface {
	Run(h Handler) error
}

// Attr lookup helper: Get returns the value of the named attribute and
// whether it was present.
func GetAttr(attrs []Attr, name string) (string, bool) {
	for i := range attrs {
		if attrs[i].Name == name {
			return attrs[i].Value, true
		}
	}
	return "", false
}
