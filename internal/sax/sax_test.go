package sax

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func trace(t *testing.T, doc string) ([]string, error) {
	t.Helper()
	var out []string
	err := NewStdDriver(strings.NewReader(doc)).Run(HandlerFunc(func(ev *Event) error {
		out = append(out, fmt.Sprintf("%v|%s|%d|%q", ev.Kind, ev.Name, ev.Depth, ev.Text))
		return nil
	}))
	return out, err
}

func TestStdDriverBasic(t *testing.T) {
	got, err := trace(t, "<a>x<b/>y</a>")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`StartDocument||0|""`,
		`StartElement|a|1|""`,
		`Text||2|"x"`,
		`StartElement|b|2|""`,
		`EndElement|b|2|""`,
		`Text||2|"y"`,
		`EndElement|a|1|""`,
		`EndDocument||0|""`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestStdDriverDepths(t *testing.T) {
	got, err := trace(t, "<a><b><c>deep</c></b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != `StartElement|c|3|""` || got[4] != `Text||4|"deep"` {
		t.Fatalf("got %v", got)
	}
}

func TestStdDriverCoalescesCDATA(t *testing.T) {
	got, err := trace(t, "<a>x<![CDATA[y]]>z</a>")
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != `Text||2|"xyz"` {
		t.Fatalf("CDATA not coalesced: %v", got)
	}
}

func TestStdDriverCommentSplitsText(t *testing.T) {
	got, err := trace(t, "<a>x<!--c-->y</a>")
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != `Text||2|"x"` || got[3] != `Text||2|"y"` {
		t.Fatalf("comment handling: %v", got)
	}
}

func TestStdDriverErrors(t *testing.T) {
	for _, doc := range []string{"<a><b></a>", "<a>", "junk<a/>", "<a/><b/>", "<a/>trail", ""} {
		if _, err := trace(t, doc); err == nil {
			t.Errorf("doc %q: expected error", doc)
		}
	}
}

func TestStdDriverAttrs(t *testing.T) {
	var attrs []Attr
	err := NewStdDriver(strings.NewReader(`<a x="1" y="2&amp;3"/>`)).Run(HandlerFunc(func(ev *Event) error {
		if ev.Kind == StartElement {
			attrs = append(attrs, ev.Attrs...)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 || attrs[0] != (Attr{Name: "x", Value: "1", Local: "x"}) || attrs[1] != (Attr{Name: "y", Value: "2&3", Local: "y"}) {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestGetAttr(t *testing.T) {
	attrs := []Attr{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}}
	if v, ok := GetAttr(attrs, "b"); !ok || v != "2" {
		t.Fatalf("GetAttr(b) = %q, %v", v, ok)
	}
	if _, ok := GetAttr(attrs, "z"); ok {
		t.Fatal("GetAttr(z) should miss")
	}
	if _, ok := GetAttr(nil, "a"); ok {
		t.Fatal("GetAttr(nil) should miss")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		StartDocument: "StartDocument",
		StartElement:  "StartElement",
		EndElement:    "EndElement",
		Text:          "Text",
		EndDocument:   "EndDocument",
		Kind(99):      "Kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestHandlerErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	err := NewStdDriver(strings.NewReader("<a><b/><c/></a>")).Run(HandlerFunc(func(ev *Event) error {
		n++
		if ev.Kind == StartElement && ev.Name == "b" {
			return boom
		}
		return nil
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n != 3 { // StartDocument, <a>, <b>
		t.Fatalf("handler called %d times", n)
	}
}
