package sax

// Fanout forwards every event to a set of handlers in order, so several
// independent consumers — e.g. one TwigM machine per subscribed query —
// share a single sequential scan of the stream. The first handler error
// aborts the whole parse (the paper's single-scan requirement makes partial
// restarts impossible anyway).
type Fanout []Handler

// HandleEvent implements Handler.
func (f Fanout) HandleEvent(ev *Event) error {
	for _, h := range f {
		if err := h.HandleEvent(ev); err != nil {
			return err
		}
	}
	return nil
}
