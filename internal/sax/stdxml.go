package sax

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// StdDriver adapts encoding/xml's token stream to the sax event model. It is
// the reference front-end: internal/xmlscan is cross-checked against it in
// tests and the permanent differential harness, and benchmarks compare their
// throughput (the parse-time share of experiment E1 depends on which
// front-end is used).
//
// encoding/xml resolves namespace prefixes to URIs and reports names as
// (URI, local). The sax model carries the lexical QName — name tests match
// local names, and prefixed tests match the prefix as written — so the
// driver tracks the in-scope xmlns declarations itself and maps each URI
// back to the innermost prefix bound to it. Documents that bind two prefixes
// to one URI in the same scope reconstruct to the innermost binding (a
// documented approximation; see README "XML conformance").
type StdDriver struct {
	r        io.Reader
	syms     *Symbols
	interned map[string]int32
	qnames   map[qnameKey]qname

	// In-scope namespace bindings, innermost last, plus the number of
	// bindings each open element declared (for popping at its end tag).
	bindings   []nsBinding
	declCounts []int
}

type nsBinding struct{ prefix, uri string }

type qnameKey struct{ prefix, local string }

// qname is a reconstructed lexical name: the full QName, its split, and the
// local name's symbol ID.
type qname struct {
	name   string
	prefix string
	local  string
	id     int32
}

// NewStdDriver returns a Driver backed by encoding/xml.
func NewStdDriver(r io.Reader) *StdDriver { return &StdDriver{r: r} }

// NewStdDriverWith returns a Driver backed by encoding/xml that resolves
// element and attribute local names against syms, so events carry the same
// NameIDs the custom scanner would produce (keeps the UseStdParser ablation
// on the same dispatch path).
func NewStdDriverWith(r io.Reader, syms *Symbols) *StdDriver {
	return &StdDriver{r: r, syms: syms, interned: make(map[string]int32)}
}

// nameID resolves a local name through the per-driver cache.
func (d *StdDriver) nameID(local string) int32 {
	if d.syms == nil {
		return SymNone
	}
	if id, ok := d.interned[local]; ok {
		return id
	}
	id := d.syms.ID(local)
	d.interned[local] = id
	return id
}

// resolve reconstructs the lexical QName of an encoding/xml name. For
// attributes the default namespace never applies, so only prefixed bindings
// are consulted.
func (d *StdDriver) resolve(n xml.Name, attr bool) qname {
	prefix := ""
	if n.Space != "" {
		prefix = n.Space // undeclared prefixes pass through verbatim
		for i := len(d.bindings) - 1; i >= 0; i-- {
			b := d.bindings[i]
			if b.uri != n.Space || (attr && b.prefix == "") {
				continue
			}
			prefix = b.prefix
			break
		}
	}
	return d.makeName(prefix, n.Local)
}

// makeName builds (and caches) the joined lexical name for a prefix/local
// pair together with its local-name symbol ID.
func (d *StdDriver) makeName(prefix, local string) qname {
	key := qnameKey{prefix, local}
	if q, ok := d.qnames[key]; ok {
		return q
	}
	q := qname{name: local, prefix: prefix, local: local}
	if prefix != "" {
		q.name = prefix + ":" + local
	}
	if IsNamespaceDecl(q.name) {
		q.id = SymUnknown
		if d.syms == nil {
			q.id = SymNone
		}
	} else {
		q.id = d.nameID(local)
	}
	if d.qnames == nil {
		d.qnames = make(map[qnameKey]qname)
	}
	d.qnames[key] = q
	return q
}

// skipBOM consumes a leading byte-order mark: the UTF-8 BOM is skipped (its
// length is returned so event offsets keep counting raw input bytes, aligned
// with the custom scanner), and UTF-16/32 BOMs are rejected with a clear
// unsupported-encoding error instead of a tag-soup syntax error.
func skipBOM(r io.Reader) (io.Reader, int64, error) {
	var head [4]byte
	n, err := io.ReadFull(r, head[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, 0, err
	}
	skip, unsupported := ClassifyBOM(head[:n])
	if unsupported != "" {
		return nil, 0, fmt.Errorf("sax: unsupported encoding: %s byte order mark (only UTF-8 input is supported)", unsupported)
	}
	return io.MultiReader(bytes.NewReader(head[skip:n]), r), int64(skip), nil
}

// Run implements Driver. Adjacent CharData tokens (encoding/xml splits
// around CDATA boundaries and entity expansions in some cases) are coalesced
// so that, like xmlscan, one Text event corresponds to one XPath text node.
func (d *StdDriver) Run(h Handler) error {
	r, base, err := skipBOM(d.r)
	if err != nil {
		return err
	}
	dec := xml.NewDecoder(r)
	// Match xmlscan: no external entities; strictness left at default.
	dec.Entity = map[string]string{}

	depth := 0
	seenRoot := false
	var text strings.Builder
	var textOff int64
	ev := &Event{}

	emit := func(e Event) error {
		*ev = e
		return h.HandleEvent(ev)
	}
	flushText := func() error {
		if text.Len() == 0 {
			return nil
		}
		t := text.String()
		text.Reset()
		if depth == 0 {
			if strings.TrimLeft(t, " \t\r\n") != "" {
				return fmt.Errorf("sax: character data outside root element at byte %d", textOff)
			}
			return nil
		}
		return emit(Event{Kind: Text, Depth: depth + 1, Text: t, Offset: textOff})
	}

	if err := emit(Event{Kind: StartDocument}); err != nil {
		return err
	}
	for {
		off := base + dec.InputOffset()
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := flushText(); err != nil {
				return err
			}
			if seenRoot && depth == 0 {
				return fmt.Errorf("sax: multiple root elements at byte %d", off)
			}
			depth++
			// Register this element's xmlns declarations before
			// resolving any name: they are in scope for the element
			// itself.
			decls := 0
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" {
					d.bindings = append(d.bindings, nsBinding{prefix: a.Name.Local, uri: a.Value})
					decls++
				} else if a.Name.Space == "" && a.Name.Local == "xmlns" {
					d.bindings = append(d.bindings, nsBinding{prefix: "", uri: a.Value})
					decls++
				}
			}
			d.declCounts = append(d.declCounts, decls)
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				var an qname
				switch {
				case a.Name.Space == "xmlns":
					an = d.makeName("xmlns", a.Name.Local)
				case a.Name.Space == "" && a.Name.Local == "xmlns":
					an = d.makeName("", "xmlns")
				default:
					an = d.resolve(a.Name, true)
				}
				attrs = append(attrs, Attr{
					Name: an.name, Value: a.Value,
					Prefix: an.prefix, Local: an.local, NameID: an.id,
				})
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			name := d.resolve(t.Name, false)
			if err := emit(Event{
				Kind: StartElement, Name: name.name, Prefix: name.prefix, Local: name.local,
				NameID: name.id, Depth: depth, Attrs: attrs, Offset: off,
			}); err != nil {
				return err
			}
		case xml.EndElement:
			if err := flushText(); err != nil {
				return err
			}
			// Resolve before popping: the element's own declarations
			// are in scope for its end tag.
			name := d.resolve(t.Name, false)
			if err := emit(Event{
				Kind: EndElement, Name: name.name, Prefix: name.prefix, Local: name.local,
				NameID: name.id, Depth: depth, Offset: off,
			}); err != nil {
				return err
			}
			if n := len(d.declCounts); n > 0 {
				d.bindings = d.bindings[:len(d.bindings)-d.declCounts[n-1]]
				d.declCounts = d.declCounts[:n-1]
			}
			depth--
			if depth == 0 {
				seenRoot = true
			}
		case xml.CharData:
			if text.Len() == 0 {
				textOff = off
			}
			text.Write(t)
		case xml.Comment, xml.ProcInst, xml.Directive:
			// xmlscan flushes text before every markup token, so
			// comments and PIs split text runs there. Mirror that here.
			if err := flushText(); err != nil {
				return err
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("sax: unexpected EOF with %d element(s) open", depth)
	}
	if err := flushText(); err != nil {
		return err
	}
	if !seenRoot {
		return fmt.Errorf("sax: document has no root element")
	}
	return emit(Event{Kind: EndDocument, Offset: base + dec.InputOffset()})
}
