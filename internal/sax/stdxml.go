package sax

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// StdDriver adapts encoding/xml's token stream to the sax event model. It is
// the reference front-end: internal/xmlscan is cross-checked against it in
// tests, and benchmarks compare their throughput (the parse-time share of
// experiment E1 depends on which front-end is used).
type StdDriver struct {
	r        io.Reader
	syms     *Symbols
	interned map[string]int32
}

// NewStdDriver returns a Driver backed by encoding/xml.
func NewStdDriver(r io.Reader) *StdDriver { return &StdDriver{r: r} }

// NewStdDriverWith returns a Driver backed by encoding/xml that resolves
// element and attribute names against syms, so events carry the same NameIDs
// the custom scanner would produce (keeps the UseStdParser ablation on the
// same dispatch path).
func NewStdDriverWith(r io.Reader, syms *Symbols) *StdDriver {
	return &StdDriver{r: r, syms: syms, interned: make(map[string]int32)}
}

// nameID resolves a name through the per-driver cache.
func (d *StdDriver) nameID(name string) int32 {
	if d.syms == nil {
		return SymNone
	}
	if id, ok := d.interned[name]; ok {
		return id
	}
	id := d.syms.ID(name)
	d.interned[name] = id
	return id
}

// Run implements Driver. Adjacent CharData tokens (encoding/xml splits
// around CDATA boundaries and entity expansions in some cases) are coalesced
// so that, like xmlscan, one Text event corresponds to one XPath text node.
func (d *StdDriver) Run(h Handler) error {
	dec := xml.NewDecoder(d.r)
	// Match xmlscan: no external entities; strictness left at default.
	dec.Entity = map[string]string{}

	depth := 0
	seenRoot := false
	var text strings.Builder
	var textOff int64
	ev := &Event{}

	emit := func(e Event) error {
		*ev = e
		return h.HandleEvent(ev)
	}
	flushText := func() error {
		if text.Len() == 0 {
			return nil
		}
		t := text.String()
		text.Reset()
		if depth == 0 {
			if strings.TrimLeft(t, " \t\r\n") != "" {
				return fmt.Errorf("sax: character data outside root element at byte %d", textOff)
			}
			return nil
		}
		return emit(Event{Kind: Text, Depth: depth + 1, Text: t, Offset: textOff})
	}

	if err := emit(Event{Kind: StartDocument}); err != nil {
		return err
	}
	for {
		off := dec.InputOffset()
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := flushText(); err != nil {
				return err
			}
			if seenRoot && depth == 0 {
				return fmt.Errorf("sax: multiple root elements at byte %d", off)
			}
			depth++
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				an := qname(a.Name)
				attrs = append(attrs, Attr{Name: an, Value: a.Value, NameID: d.nameID(an)})
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			name := qname(t.Name)
			if err := emit(Event{Kind: StartElement, Name: name, NameID: d.nameID(name), Depth: depth, Attrs: attrs, Offset: off}); err != nil {
				return err
			}
		case xml.EndElement:
			if err := flushText(); err != nil {
				return err
			}
			name := qname(t.Name)
			if err := emit(Event{Kind: EndElement, Name: name, NameID: d.nameID(name), Depth: depth, Offset: off}); err != nil {
				return err
			}
			depth--
			if depth == 0 {
				seenRoot = true
			}
		case xml.CharData:
			if text.Len() == 0 {
				textOff = off
			}
			text.Write(t)
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Markup boundaries do not split XPath text nodes in our
			// model only when they are comments/PIs; to stay aligned
			// with xmlscan (which coalesces across comments too,
			// because flushText happens only before element tags)...
			// xmlscan flushes text before *every* markup token, so
			// comments DO split text runs there. Mirror that here.
			if err := flushText(); err != nil {
				return err
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("sax: unexpected EOF with %d element(s) open", depth)
	}
	if err := flushText(); err != nil {
		return err
	}
	if !seenRoot {
		return fmt.Errorf("sax: document has no root element")
	}
	return emit(Event{Kind: EndDocument, Offset: dec.InputOffset()})
}

func qname(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	// encoding/xml resolves prefixes to URIs; ViteX matches lexical names.
	// Keep the local name, which matches xmlscan for non-namespaced input
	// (the test corpora are namespace-free).
	return n.Local
}
