package sax

import "sync"

// Symbol-ID sentinels carried in Event.NameID and Attr.NameID.
const (
	// SymNone is the zero value: the producer did not intern this name
	// (hand-built events, adapters without a table). Consumers that
	// dispatch on IDs must fall back to the string name.
	SymNone int32 = 0
	// SymUnknown marks a name the producer looked up in its Symbols table
	// and did not find. Because every name a compiled query can match is
	// interned at compile time, consumers may skip named dispatch entirely
	// for SymUnknown events (wildcards still apply).
	SymUnknown int32 = -1
)

// Symbols is a shared name-interning table: it assigns each distinct
// element/attribute name a small dense integer ID (starting at 1; 0 and -1
// are the sentinels above). Queries intern their names at compile time, and
// scanners resolve document names against the same table, so the per-event
// "which machine nodes care about this tag" question becomes a slice index
// instead of a map lookup.
//
// Interning is serialized by a mutex; lookups take a read lock. Scanners
// keep a per-stream cache and consult the table once per distinct name per
// document, so the lock is far off the hot path.
type Symbols struct {
	mu    sync.RWMutex
	ids   map[string]int32
	names []string // names[id-1] = name
}

// NewSymbols returns an empty table.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[string]int32)}
}

// Intern returns the ID for name, assigning the next free ID if the name is
// new. IDs are dense and start at 1.
func (s *Symbols) Intern(name string) int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id
	}
	s.names = append(s.names, name)
	id := int32(len(s.names))
	s.ids[name] = id
	return id
}

// ID returns the ID of name, or SymUnknown if it was never interned.
func (s *Symbols) ID(name string) int32 {
	s.mu.RLock()
	id, ok := s.ids[name]
	s.mu.RUnlock()
	if !ok {
		return SymUnknown
	}
	return id
}

// Name returns the name bound to id, or "" for sentinels and unknown IDs.
func (s *Symbols) Name(id int32) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 1 || int(id) > len(s.names) {
		return ""
	}
	return s.names[id-1]
}

// Len returns the number of interned names. Valid IDs are 1..Len().
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}
