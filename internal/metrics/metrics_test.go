package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sax"
	"repro/internal/xmlscan"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(xs, ys)
	if math.Abs(f.A-1) > 1e-9 || math.Abs(f.B-2) > 1e-9 || math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitNoise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	f := LinearFit(xs, ys)
	if f.B < 1.8 || f.B > 2.2 || f.R2 < 0.99 {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit(nil, nil); f.B != 0 {
		t.Fatalf("empty fit = %+v", f)
	}
	if f := LinearFit([]float64{1, 1}, []float64{2, 3}); f.B != 0 {
		t.Fatalf("vertical fit = %+v", f)
	}
}

// Property (testing/quick): a perfect line is always recovered exactly.
func TestLinearFitRecoversLineQuick(t *testing.T) {
	prop := func(a, b float64, n uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Bound magnitudes to keep float error proportional.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		pts := int(n%20) + 2
		xs := make([]float64, pts)
		ys := make([]float64, pts)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = a + b*float64(i)
		}
		f := LinearFit(xs, ys)
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(f.A-a) < 1e-6*scale && math.Abs(f.B-b) < 1e-6*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapSampler(t *testing.T) {
	doc := "<r>" + strings.Repeat("<a>some text content here</a>", 5000) + "</r>"
	var sink int64
	inner := sax.HandlerFunc(func(ev *sax.Event) error {
		sink += int64(len(ev.Text))
		return nil
	})
	hs := &HeapSampler{Every: 1000}
	h := hs.Wrap(inner)
	if err := xmlscan.NewScanner(strings.NewReader(doc)).Run(h); err != nil {
		t.Fatal(err)
	}
	if len(hs.Samples) == 0 {
		t.Fatal("no samples taken")
	}
	last := hs.Samples[len(hs.Samples)-1]
	if last.Events < 15000 {
		t.Fatalf("sampler saw only %d events", last.Events)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"col", "value"}}
	tbl.AddRow("a", "1")
	tbl.AddRow("longer", "2")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "col") || !strings.Contains(lines[2], "---") {
		t.Fatalf("bad header/sep:\n%s", out)
	}
	// Columns align.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestBytesUnits(t *testing.T) {
	cases := map[uint64]string{
		12:        "12B",
		2048:      "2.0KiB",
		3 << 20:   "3.00MiB",
		5 << 30:   "5.00GiB",
		1<<20 - 1: "1024.0KiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(10_000_000, time.Second); got != "10.0MB/s" {
		t.Fatalf("got %q", got)
	}
	if got := Throughput(1, 0); got != "inf" {
		t.Fatalf("got %q", got)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	if tm.Elapsed() < time.Millisecond {
		t.Fatal("timer went backwards")
	}
}
