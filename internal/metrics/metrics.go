// Package metrics provides the measurement harness for the experiments in
// EXPERIMENTS.md: live-heap sampling during a stream evaluation (the
// paper's "memory stable at 1MB" claim, E2), wall-time accounting with
// parse-share breakdown (E1), least-squares fits for the scaling
// experiments (E3/E4/E7), and fixed-width table rendering for the
// cmd/vitexbench reports.
package metrics

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/sax"
)

// HeapSample is one observation of live heap during a run.
type HeapSample struct {
	Events    int64
	HeapAlloc uint64
}

// HeapSampler wraps a sax.Handler and samples runtime heap usage every
// Every events. Sampling reads runtime.MemStats without forcing GC, so the
// numbers include garbage awaiting collection; the Baseline (captured at
// Wrap time, after a forced GC) is subtracted to approximate
// engine-attributable memory.
type HeapSampler struct {
	// Every controls sampling frequency in events (default 10000).
	Every int64

	Baseline uint64
	Samples  []HeapSample
	Peak     uint64

	events int64
	inner  sax.Handler
}

// Wrap forces a GC, records the baseline, and returns a handler that
// samples around inner.
func (h *HeapSampler) Wrap(inner sax.Handler) sax.Handler {
	if h.Every <= 0 {
		h.Every = 10000
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.Baseline = ms.HeapAlloc
	h.inner = inner
	return sax.HandlerFunc(h.handle)
}

func (h *HeapSampler) handle(ev *sax.Event) error {
	h.events++
	if h.events%h.Every == 0 || ev.Kind == sax.EndDocument {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		live := uint64(0)
		if ms.HeapAlloc > h.Baseline {
			live = ms.HeapAlloc - h.Baseline
		}
		h.Samples = append(h.Samples, HeapSample{Events: h.events, HeapAlloc: live})
		if live > h.Peak {
			h.Peak = live
		}
	}
	return h.inner.HandleEvent(ev)
}

// Timer measures wall time of a phase.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the wall time since start.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Fit is a least-squares linear fit y = A + B*x with goodness R2.
type Fit struct {
	A, B, R2 float64
}

// LinearFit fits y against x. It panics if the slices differ in length and
// returns a zero fit for fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("metrics: LinearFit length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R² from explained variance.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{A: a, B: b, R2: r2}
}

// Table renders fixed-width experiment tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bytes formats a byte count in human units.
func Bytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Throughput formats bytes/duration as MB/s.
func Throughput(bytes int64, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fMB/s", float64(bytes)/d.Seconds()/1e6)
}
