// Package dom is the non-streaming baseline of the ViteX paper's motivation
// ("these challenges are not present in a non-streaming XML query evaluation
// algorithm since predicates can be checked immediately by randomly
// accessing XML nodes", §1) and the correctness oracle for the streaming
// engines: it materializes the whole document in memory and evaluates XPath
// by recursive descent with random access. Its results define the expected
// output of every integration and property test in the repository.
package dom

import (
	"sort"
	"strings"

	"repro/internal/sax"
	"repro/internal/xmlout"
)

// NodeKind discriminates DOM node variants.
type NodeKind uint8

const (
	// ElementNode is an element; Name and Attrs are set.
	ElementNode NodeKind = iota
	// TextNode is a maximal character-data run; Text is set.
	TextNode
	// AttrNode is a virtual node materialized for attribute query
	// results; Name and Text (the value) are set. Attribute nodes are
	// not stored in Children — they are reached through Attrs and
	// materialized lazily by the evaluator.
	AttrNode
)

// Node is a DOM node. Seq is the document-order sequence number used for
// sorting and deduplicating result sets (attribute nodes order directly
// after their owner element, in attribute document order).
type Node struct {
	Kind     NodeKind
	Name     string
	Text     string
	Attrs    []sax.Attr
	Parent   *Node
	Children []*Node
	Depth    int
	Seq      int

	// attrNodes caches materialized AttrNode children, index-aligned
	// with Attrs.
	attrNodes []*Node
}

// Document is a parsed XML document.
type Document struct {
	Root *Node
	// NumNodes counts elements and text nodes (the |D| of complexity
	// discussions, up to a constant).
	NumNodes int
}

// Build materializes the document produced by a sax.Driver.
func Build(d sax.Driver) (*Document, error) {
	b := &builder{}
	if err := d.Run(b); err != nil {
		return nil, err
	}
	return b.doc, nil
}

type builder struct {
	doc   *Document
	stack []*Node
	seq   int
}

func (b *builder) HandleEvent(ev *sax.Event) error {
	switch ev.Kind {
	case sax.StartDocument:
		b.doc = &Document{}
	case sax.StartElement:
		n := &Node{Kind: ElementNode, Name: ev.Name, Depth: ev.Depth, Seq: b.seq}
		b.seq++
		if len(ev.Attrs) > 0 {
			n.Attrs = append([]sax.Attr(nil), ev.Attrs...)
			// Reserve sequence numbers so attribute nodes sort right
			// after their owner, in document order.
			b.seq += len(ev.Attrs)
		}
		if len(b.stack) == 0 {
			b.doc.Root = n
		} else {
			p := b.stack[len(b.stack)-1]
			n.Parent = p
			p.Children = append(p.Children, n)
		}
		b.stack = append(b.stack, n)
		b.doc.NumNodes++
	case sax.EndElement:
		b.stack = b.stack[:len(b.stack)-1]
	case sax.Text:
		p := b.stack[len(b.stack)-1]
		n := &Node{Kind: TextNode, Text: ev.Text, Depth: ev.Depth, Seq: b.seq, Parent: p}
		b.seq++
		p.Children = append(p.Children, n)
		b.doc.NumNodes++
	}
	return nil
}

// MustBuildString parses a document from a string using the std front-end;
// it panics on error. Test and example helper.
func MustBuildString(doc string) *Document {
	d, err := Build(sax.NewStdDriver(strings.NewReader(doc)))
	if err != nil {
		panic(err)
	}
	return d
}

// AttrNode materializes (and caches) the virtual attribute node for
// attribute i of element n.
func (n *Node) AttrNode(i int) *Node {
	if n.attrNodes == nil {
		n.attrNodes = make([]*Node, len(n.Attrs))
	}
	if n.attrNodes[i] == nil {
		n.attrNodes[i] = &Node{
			Kind:   AttrNode,
			Name:   n.Attrs[i].Name,
			Text:   n.Attrs[i].Value,
			Parent: n,
			Depth:  n.Depth, // attributes live at their owner's level
			Seq:    n.Seq + 1 + i,
		}
	}
	return n.attrNodes[i]
}

// StringValue returns the XPath string-value: an element's is the
// concatenation of all descendant text; a text node's is its content; an
// attribute node's is its value.
func (n *Node) StringValue() string {
	switch n.Kind {
	case TextNode, AttrNode:
		return n.Text
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			b.WriteString(c.Text)
		case ElementNode:
			c.appendText(b)
		}
	}
}

// Serialize renders the node with the repository's canonical serialization
// (see package xmlout). Attribute nodes render as their value; text nodes as
// escaped text.
func (n *Node) Serialize() string {
	var b strings.Builder
	n.serialize(&b)
	return b.String()
}

func (n *Node) serialize(b *strings.Builder) {
	switch n.Kind {
	case AttrNode:
		b.WriteString(n.Text)
	case TextNode:
		xmlout.EscapeText(b, n.Text)
	case ElementNode:
		var attrs []xmlout.Attr
		for _, a := range n.Attrs {
			attrs = append(attrs, xmlout.Attr{Name: a.Name, Value: a.Value})
		}
		if len(n.Children) == 0 {
			xmlout.OpenTag(b, n.Name, attrs, true)
			return
		}
		xmlout.OpenTag(b, n.Name, attrs, false)
		for _, c := range n.Children {
			c.serialize(b)
		}
		xmlout.CloseTag(b, n.Name)
	}
}

// SortNodes orders nodes by document order and removes duplicates in place.
func SortNodes(nodes []*Node) []*Node {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Seq < nodes[j].Seq })
	out := nodes[:0]
	var prev *Node
	for _, n := range nodes {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}
