package dom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/xpath"
)

func evalCount(t *testing.T, doc, query string) int {
	t.Helper()
	return len(EvalString(MustBuildString(doc), query))
}

func TestEvalFromDocumentNode(t *testing.T) {
	doc := `<a id="1"><b id="2">t</b></a>`
	// /a: child of document; //a: any element; //@id: any attribute;
	// //text(): any text node.
	if n := evalCount(t, doc, "/a"); n != 1 {
		t.Fatalf("/a = %d", n)
	}
	if n := evalCount(t, doc, "//*"); n != 2 {
		t.Fatalf("//* = %d", n)
	}
	if n := evalCount(t, doc, "//@id"); n != 2 {
		t.Fatalf("//@id = %d", n)
	}
	if n := evalCount(t, doc, "//text()"); n != 1 {
		t.Fatalf("//text() = %d", n)
	}
}

func TestEvalNilDocument(t *testing.T) {
	if got := Eval(nil, xpath.MustParse("//a")); got != nil {
		t.Fatalf("nil doc: %v", got)
	}
	if got := Eval(&Document{}, xpath.MustParse("//a")); got != nil {
		t.Fatalf("empty doc: %v", got)
	}
}

func TestAxisSetFromNonElements(t *testing.T) {
	// Predicates evaluated on text/attr contexts yield nothing for path
	// leaves (text nodes have no children).
	doc := "<r><a>x</a></r>"
	if n := evalCount(t, doc, "//a[b]"); n != 0 {
		t.Fatalf("text node grew children: %d", n)
	}
}

// Property (testing/quick): SortNodes is idempotent and produces strictly
// increasing Seq.
func TestSortNodesQuick(t *testing.T) {
	d := MustBuildString(datagen.PaperFigure1)
	var all []*Node
	var collect func(n *Node)
	collect = func(n *Node) {
		all = append(all, n)
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(d.Root)
	prop := func(seed int64, dups uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random multiset of nodes with duplicates.
		var in []*Node
		for i := 0; i < 20+int(dups); i++ {
			in = append(in, all[rng.Intn(len(all))])
		}
		out := SortNodes(in)
		for i := 1; i < len(out); i++ {
			if out[i-1].Seq >= out[i].Seq {
				return false
			}
		}
		again := SortNodes(append([]*Node(nil), out...))
		if len(again) != len(out) {
			return false
		}
		for i := range out {
			if again[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): for random documents, StringValue equals the
// concatenation of text-node descendants in document order.
func TestStringValueQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		doc := datagen.DefaultRandomTree.Generate(rng)
		d := MustBuildString(doc)
		var expect func(n *Node) string
		expect = func(n *Node) string {
			var b strings.Builder
			for _, c := range n.Children {
				switch c.Kind {
				case TextNode:
					b.WriteString(c.Text)
				case ElementNode:
					b.WriteString(expect(c))
				}
			}
			return b.String()
		}
		var check func(n *Node)
		check = func(n *Node) {
			if n.Kind == ElementNode {
				if n.StringValue() != expect(n) {
					t.Fatalf("string-value mismatch on %s", doc)
				}
				for _, c := range n.Children {
					check(c)
				}
			}
		}
		check(d.Root)
	}
}

func TestAttrNodeCaching(t *testing.T) {
	d := MustBuildString(`<a x="1" y="2"/>`)
	n1 := d.Root.AttrNode(0)
	n2 := d.Root.AttrNode(0)
	if n1 != n2 {
		t.Fatal("attr nodes must be cached")
	}
	if n1.Kind != AttrNode || n1.Name != "x" || n1.Text != "1" || n1.Parent != d.Root {
		t.Fatalf("attr node: %+v", n1)
	}
}

func TestPredicateOnSpineWithMixedKinds(t *testing.T) {
	doc := `<r><a id="k">x<b/>y</a></r>`
	for q, want := range map[string]int{
		"//a[@id and text()='x']": 1,
		"//a[@id]/text()":         2,
		"//a[text()='y']/@id":     1,
		"//a[@id='k']//text()":    2,
	} {
		if n := evalCount(t, doc, q); n != want {
			t.Errorf("%s = %d, want %d", q, n, want)
		}
	}
}

func TestDocumentOrderAcrossKinds(t *testing.T) {
	doc := `<r><a id="1">t1</a><b id="2">t2</b></r>`
	d := MustBuildString(doc)
	nodes := EvalString(d, "//@id")
	if len(nodes) != 2 || nodes[0].Text != "1" || nodes[1].Text != "2" {
		t.Fatalf("attr order: %+v", nodes)
	}
	texts := EvalString(d, "//text()")
	if len(texts) != 2 || texts[0].Text != "t1" || texts[1].Text != "t2" {
		t.Fatalf("text order: %+v", texts)
	}
}
