package dom

import (
	"repro/internal/sax"
	"repro/internal/xpath"
)

// Eval evaluates a parsed query against the document and returns the result
// nodes in document order without duplicates. This is the oracle semantics
// every streaming engine is tested against.
func Eval(doc *Document, q *xpath.Query) []*Node {
	if doc == nil || doc.Root == nil {
		return nil
	}
	// The context set starts as the document node, represented by nil:
	// step axes from the document node reach the root element (child) or
	// every element (descendant).
	cur := []*Node{}
	first := q.Root
	for _, m := range axisSet(doc, nil, first) {
		if nodeSatisfies(m, first) {
			cur = append(cur, m)
		}
	}
	cur = SortNodes(cur)
	for step := first.Next; step != nil; step = step.Next {
		var next []*Node
		for _, n := range cur {
			for _, m := range axisSet(doc, n, step) {
				if nodeSatisfies(m, step) {
					next = append(next, m)
				}
			}
		}
		cur = SortNodes(next)
	}
	return cur
}

// EvalString parses and evaluates a query given as text, including unions;
// it panics on parse errors (test helper).
func EvalString(doc *Document, query string) []*Node {
	qs, err := xpath.ParseUnion(query)
	if err != nil {
		panic(err)
	}
	return EvalUnion(doc, qs)
}

// EvalUnion evaluates each branch and merges the result sets: set union,
// deduplicated by node, in document order — XPath's '|' semantics.
func EvalUnion(doc *Document, qs []*xpath.Query) []*Node {
	var all []*Node
	for _, q := range qs {
		all = append(all, Eval(doc, q)...)
	}
	return SortNodes(all)
}

// axisSet returns the nodes reachable from context n (nil = document node)
// via step's axis that pass the step's node test (kind and name), in
// document order.
func axisSet(doc *Document, n *Node, step *xpath.Node) []*Node {
	var out []*Node
	add := func(m *Node) {
		if nodeTest(m, step) {
			out = append(out, m)
		}
	}
	if n == nil {
		// From the document node.
		switch step.Axis {
		case xpath.Child:
			if step.Kind == xpath.Element {
				add(doc.Root)
			}
			// The document node has no attributes or text children.
		case xpath.Descendant:
			switch step.Kind {
			case xpath.Attribute:
				// //@id from the document: attributes of any element.
				walkAttrs(doc.Root, add)
			default:
				add(doc.Root)
				walkDescendants(doc.Root, add)
			}
		}
		return out
	}
	return axisSetLocal(n, step)
}

// walkDescendants calls add for every proper descendant (elements and text)
// of n in document order.
func walkDescendants(n *Node, add func(*Node)) {
	for _, c := range n.Children {
		add(c)
		if c.Kind == ElementNode {
			walkDescendants(c, add)
		}
	}
}

// walkAttrs calls add for every attribute node of n and its element
// descendants (the self-or-descendant attribute set), in document order.
func walkAttrs(n *Node, add func(*Node)) {
	for i := range n.Attrs {
		add(n.AttrNode(i))
	}
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			walkAttrs(c, add)
		}
	}
}

// nodeTest checks kind and name only. Name tests match local names (prefixed
// tests also require the prefix); namespace-declaration attributes never
// match.
func nodeTest(m *Node, step *xpath.Node) bool {
	switch step.Kind {
	case xpath.Element:
		return m.Kind == ElementNode && step.Matches(m.Name)
	case xpath.Attribute:
		return m.Kind == AttrNode && !sax.IsNamespaceDecl(m.Name) && step.Matches(m.Name)
	default:
		return m.Kind == TextNode
	}
}

// nodeSatisfies checks the step's predicate expression and value comparison
// against m (structure tests already done by axisSet).
func nodeSatisfies(m *Node, step *xpath.Node) bool {
	if step.Cmp != nil && !step.Cmp.Eval(m.StringValue()) {
		return false
	}
	return evalPred(m, step.Pred)
}

func evalPred(m *Node, p *xpath.PredExpr) bool {
	if p == nil {
		return true
	}
	switch p.Op {
	case xpath.PredTrue:
		return true
	case xpath.PredSelf:
		return p.Self.Eval(m.StringValue())
	case xpath.PredLeaf:
		return existsMatch(m, p.Leaf)
	case xpath.PredAnd:
		for _, k := range p.Kids {
			if !evalPred(m, k) {
				return false
			}
		}
		return true
	default: // PredOr
		for _, k := range p.Kids {
			if evalPred(m, k) {
				return true
			}
		}
		return false
	}
}

// existsMatch reports whether some node reachable from context n via chain's
// axis matches the whole chain (node test, comparison, predicates, and the
// chain continuation).
func existsMatch(n *Node, chain *xpath.Node) bool {
	for _, m := range axisSetLocal(n, chain) {
		if matchesSubtree(m, chain) {
			return true
		}
	}
	return false
}

func matchesSubtree(m *Node, chain *xpath.Node) bool {
	if !nodeSatisfies(m, chain) {
		return false
	}
	if chain.Next == nil {
		return true
	}
	return existsMatch(m, chain.Next)
}

// axisSetLocal is axisSet for non-document contexts (text and attribute
// nodes have no children, so only elements yield matches).
func axisSetLocal(n *Node, step *xpath.Node) []*Node {
	if n.Kind != ElementNode {
		return nil
	}
	var out []*Node
	add := func(m *Node) {
		if nodeTest(m, step) {
			out = append(out, m)
		}
	}
	switch step.Kind {
	case xpath.Attribute:
		if step.Axis == xpath.Child {
			for i := range n.Attrs {
				add(n.AttrNode(i))
			}
		} else {
			// '//@a' expands through descendant-or-self: attributes
			// of n itself or of any descendant element.
			walkAttrs(n, add)
		}
	default:
		if step.Axis == xpath.Child {
			for _, c := range n.Children {
				add(c)
			}
		} else {
			walkDescendants(n, add)
		}
	}
	return out
}
