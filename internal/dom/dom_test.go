package dom

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sax"
	"repro/internal/xmlscan"
)

func results(t *testing.T, doc, query string) []string {
	t.Helper()
	d := MustBuildString(doc)
	nodes := EvalString(d, query)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Serialize())
	}
	return out
}

func assertResults(t *testing.T, doc, query string, want ...string) {
	t.Helper()
	got := results(t, doc, query)
	if len(got) != len(want) {
		t.Fatalf("%s over %q:\n got %q\nwant %q", query, doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s over %q: result %d = %q, want %q", query, doc, i, got[i], want[i])
		}
	}
}

func TestChildAxis(t *testing.T) {
	assertResults(t, "<a><b>1</b><c/><b>2</b></a>", "/a/b", "<b>1</b>", "<b>2</b>")
}

func TestRootNameMustMatch(t *testing.T) {
	assertResults(t, "<a><b/></a>", "/x/b")
	assertResults(t, "<a><b/></a>", "/a/b", "<b/>")
}

func TestDescendantAxis(t *testing.T) {
	assertResults(t, "<a><x><b>1</b></x><b>2</b></a>", "//b", "<b>1</b>", "<b>2</b>")
}

func TestDescendantIsProper(t *testing.T) {
	// //a//a must not return a node as a descendant of itself.
	assertResults(t, "<a><a><a/></a></a>", "//a//a", "<a><a/></a>", "<a/>")
}

func TestWildcard(t *testing.T) {
	assertResults(t, "<a><b/><c/></a>", "/a/*", "<b/>", "<c/>")
}

func TestAttributeOutput(t *testing.T) {
	assertResults(t, `<a><b id="1"/><b/><b id="2"/></a>`, "//b/@id", "1", "2")
}

func TestAttributeDescendantIncludesSelf(t *testing.T) {
	// '//' + @: attribute of self or any descendant.
	assertResults(t, `<a id="root"><b id="inner"/></a>`, "/a//@id", "root", "inner")
}

func TestTextOutput(t *testing.T) {
	assertResults(t, "<a>x<b>y</b>z</a>", "/a/text()", "x", "z")
	assertResults(t, "<a>x<b>y</b>z</a>", "/a//text()", "x", "y", "z")
}

func TestExistencePredicate(t *testing.T) {
	assertResults(t, "<r><a><b/></a><a/><a><b/></a></r>", "//a[b]",
		"<a><b/></a>", "<a><b/></a>")
}

func TestPredicatePath(t *testing.T) {
	assertResults(t, "<r><a><b><c/></b></a><a><b/></a></r>", "//a[b/c]", "<a><b><c/></b></a>")
	assertResults(t, "<r><a><x><c/></x></a><a><c/></a><a/></r>", "//a[.//c]",
		"<a><x><c/></x></a>", "<a><c/></a>")
}

func TestValueComparisons(t *testing.T) {
	doc := "<r><p><price>10</price></p><p><price>30</price></p></r>"
	assertResults(t, doc, "//p[price<20]", "<p><price>10</price></p>")
	assertResults(t, doc, "//p[price=30]", "<p><price>30</price></p>")
	assertResults(t, doc, "//p[price!=30]", "<p><price>10</price></p>")
	assertResults(t, doc, "//p[price>=10]", "<p><price>10</price></p>", "<p><price>30</price></p>")
}

func TestStringComparison(t *testing.T) {
	doc := `<r><u n="bob"/><u n="eve"/></r>`
	assertResults(t, doc, "//u[@n='eve']", `<u n="eve"/>`)
	assertResults(t, doc, "//u[@n!='eve']", `<u n="bob"/>`)
}

func TestSelfComparison(t *testing.T) {
	assertResults(t, "<r><a>x</a><a>y</a></r>", "//a[.='x']", "<a>x</a>")
}

func TestStringValueConcatenatesDescendants(t *testing.T) {
	d := MustBuildString("<a>x<b>y<c>z</c></b>w</a>")
	if sv := d.Root.StringValue(); sv != "xyzw" {
		t.Fatalf("string-value = %q, want xyzw", sv)
	}
	// [.='xyzw'] sees the concatenated value.
	assertResults(t, "<r><a>x<b>y<c>z</c></b>w</a></r>", "//a[.='xyzw']", "<a>x<b>y<c>z</c></b>w</a>")
}

func TestTextNodePredicateSeesRuns(t *testing.T) {
	// text() compares individual text nodes, not the string-value.
	assertResults(t, "<r><a>x<b/>y</a></r>", "//a[text()='x']", "<a>x<b/>y</a>")
	assertResults(t, "<r><a>x<b/>y</a></r>", "//a[text()='y']", "<a>x<b/>y</a>")
	assertResults(t, "<r><a>x<b/>y</a></r>", "//a[text()='xy']")
	assertResults(t, "<r><a>x<b>q</b>y</a></r>", "//a[text()='q']")
}

func TestAndOr(t *testing.T) {
	doc := "<r><a><x/><y/></a><a><x/></a><a><y/></a><a/></r>"
	assertResults(t, doc, "//a[x and y]", "<a><x/><y/></a>")
	assertResults(t, doc, "//a[x or y]", "<a><x/><y/></a>", "<a><x/></a>", "<a><y/></a>")
	assertResults(t, doc, "//a[x and (y or x)]", "<a><x/><y/></a>", "<a><x/></a>")
}

func TestNestedPredicates(t *testing.T) {
	doc := "<r><a><b><c/></b></a><a><b/></a></r>"
	assertResults(t, doc, "//a[b[c]]", "<a><b><c/></b></a>")
}

func TestResultsInDocumentOrderNoDuplicates(t *testing.T) {
	// c is a descendant of both a-nodes; it must be returned once.
	doc := "<a><a><c/></a></a>"
	assertResults(t, doc, "//a//c", "<c/>")
}

func TestPaperExample(t *testing.T) {
	// Figure 1 + figure 3: exactly cell₈ survives.
	assertResults(t, datagen.PaperFigure1, datagen.PaperQuery, "<cell> A </cell>")
	// Without the author predicate, the cell also matches.
	assertResults(t, datagen.PaperFigure1, "//section//table[position]//cell", "<cell> A </cell>")
	// The inner tables (table₆, table₇) are descendants of table₅, so a
	// nested //table still reaches the cell…
	assertResults(t, datagen.PaperFigure1, "//section//table[position]//table//cell", "<cell> A </cell>")
	// …but demanding position on the inner table too kills the match.
	assertResults(t, datagen.PaperFigure1, "//section//table[position]//table[position]//cell")
}

func TestDeepRecursionCounts(t *testing.T) {
	// <a><a>...<a><b/></a>...</a></a> with n a's: //a//b matches b once per
	// outer a except the innermost is its parent... all n a's are ancestors.
	n := 10
	doc := strings.Repeat("<a>", n) + "<b/>" + strings.Repeat("</a>", n)
	got := results(t, doc, "//a//b")
	if len(got) != 1 {
		t.Fatalf("//a//b: %d results, want 1 (dedup)", len(got))
	}
	got = results(t, doc, "//a/a")
	if len(got) != n-1 {
		t.Fatalf("//a/a: %d results, want %d", len(got), n-1)
	}
}

func TestSerializeEscapes(t *testing.T) {
	d := MustBuildString(`<a x="q&quot;&lt;">a&amp;b<c/></a>`)
	want := `<a x="q&quot;&lt;">a&amp;b<c/></a>`
	if got := d.Root.Serialize(); got != want {
		t.Fatalf("serialize = %q, want %q", got, want)
	}
}

func TestBuildFromCustomScanner(t *testing.T) {
	doc := `<r><a id="1">t</a></r>`
	d1, err := Build(xmlscan.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(sax.NewStdDriver(strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Root.Serialize() != d2.Root.Serialize() {
		t.Fatalf("front-ends disagree: %q vs %q", d1.Root.Serialize(), d2.Root.Serialize())
	}
}

func TestNumNodes(t *testing.T) {
	d := MustBuildString("<a>x<b/>y</a>")
	if d.NumNodes != 4 { // a, x, b, y
		t.Fatalf("NumNodes = %d, want 4", d.NumNodes)
	}
}

func TestAttrSeqOrdering(t *testing.T) {
	d := MustBuildString(`<a x="1" y="2"><b/></a>`)
	ax := d.Root.AttrNode(0)
	ay := d.Root.AttrNode(1)
	b := d.Root.Children[0]
	if !(d.Root.Seq < ax.Seq && ax.Seq < ay.Seq && ay.Seq < b.Seq) {
		t.Fatalf("seq order wrong: a=%d @x=%d @y=%d b=%d", d.Root.Seq, ax.Seq, ay.Seq, b.Seq)
	}
}

func TestEmptyResultOnKindMismatch(t *testing.T) {
	assertResults(t, "<a><b/></a>", "//b/text()")
	assertResults(t, "<a><b/></a>", "//b/@id")
	assertResults(t, "<a><b/></a>", "//c")
}
