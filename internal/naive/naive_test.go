package naive

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

func run(t *testing.T, doc, query string, opts Options) ([]Result, Stats) {
	t.Helper()
	eng := MustCompile(query)
	results, stats, err := Collect(eng, xmlscan.NewScanner(strings.NewReader(doc)), opts)
	if err != nil {
		t.Fatalf("%s over %q: %v", query, doc, err)
	}
	return results, stats
}

func values(results []Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out
}

func assertOracle(t *testing.T, doc, query string) {
	t.Helper()
	d := dom.MustBuildString(doc)
	nodes := dom.EvalString(d, query)
	want := make([]string, 0, len(nodes))
	for _, n := range nodes {
		want = append(want, n.Serialize())
	}
	results, _ := run(t, doc, query, Options{})
	got := values(results)
	if len(got) != len(want) {
		t.Fatalf("%s over %q:\n got %q\nwant %q", query, doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s over %q: result %d = %q, want %q", query, doc, i, got[i], want[i])
		}
	}
}

func TestPaperExample(t *testing.T) {
	assertOracle(t, datagen.PaperFigure1, datagen.PaperQuery)
}

func TestBasicPaths(t *testing.T) {
	doc := "<a><b><c/></b><c/><a><c/></a></a>"
	for _, q := range []string{"/a", "//c", "/a/c", "//a/c", "//a//c", "//b/c", "/a/a/c"} {
		assertOracle(t, doc, q)
	}
}

func TestPredicates(t *testing.T) {
	doc := `<r><a id="1"><b/><p>5</p></a><a><b/></a><a><p>9</p></a></r>`
	for _, q := range []string{
		"//a[b]", "//a[p]", "//a[b and p]", "//a[@id]", "//a[@id='1']",
		"//a[p=5]", "//a[p>6]", "//a[p<6]/b", "//a[b]/p",
	} {
		assertOracle(t, doc, q)
	}
}

func TestSelfAndTextPredicates(t *testing.T) {
	doc := "<r><a>x</a><a>y</a><a>x<b/>z</a></r>"
	for _, q := range []string{"//a[.='x']", "//a[text()='x']", "//a[.='xz']", "//a/text()"} {
		assertOracle(t, doc, q)
	}
}

func TestAttributeOutputs(t *testing.T) {
	doc := `<r><a id="1"/><a/><b id="2"><a id="3"/></b></r>`
	for _, q := range []string{"//a/@id", "//@id", "//b//@id", "//b/a/@id"} {
		assertOracle(t, doc, q)
	}
}

func TestWildcard(t *testing.T) {
	doc := "<r><a><x/></a><b><x/></b></r>"
	for _, q := range []string{"//*[x]", "/r/*", "//*"} {
		assertOracle(t, doc, q)
	}
}

// The paper's figure-1 walkthrough: 9 pattern matches of the spine exist for
// cell₈ when line 8 is processed; the naive engine materializes them all.
func TestExplicitMatchEnumeration(t *testing.T) {
	_, stats := run(t, datagen.PaperFigure1, "//section//table//cell", Options{})
	// Spine embeddings: 3 sections × 3 tables nested below... table₅,₆,₇
	// under each of section₂,₃,₄ plus partial prefixes; at minimum the 9
	// full embeddings of the paper must have been created.
	if stats.MatchesCreated < 9 {
		t.Fatalf("MatchesCreated = %d, want >= 9", stats.MatchesCreated)
	}
}

// Exponential growth in query size on recursive data — the motivation's
// blowup, kept tiny here.
func TestExponentialGrowth(t *testing.T) {
	depth := 8
	doc := strings.Repeat("<a>", depth) + "<b/>" + strings.Repeat("</a>", depth)
	grow := func(q string) int {
		_, stats := run(t, doc, q, Options{})
		return stats.PeakMatches
	}
	p1 := grow("//a//b")
	p2 := grow("//a//a//b")
	p3 := grow("//a//a//a//b")
	if !(p1 < p2 && p2 < p3) {
		t.Fatalf("peaks not growing: %d %d %d", p1, p2, p3)
	}
	// //a//a//a on depth-8 recursion: C(8,3)=56 spine embeddings at
	// least; peak must reflect the combinatorics, not linear growth.
	if p3 < 56 {
		t.Fatalf("p3 = %d, want >= 56 (C(8,3) embeddings)", p3)
	}
}

func TestMatchLimit(t *testing.T) {
	depth := 16
	doc := strings.Repeat("<a>", depth) + "<b/>" + strings.Repeat("</a>", depth)
	eng := MustCompile("//a//a//a//a//b")
	_, _, err := Collect(eng, xmlscan.NewScanner(strings.NewReader(doc)), Options{MaxMatches: 500})
	if !errors.Is(err, ErrMatchLimit) {
		t.Fatalf("err = %v, want ErrMatchLimit", err)
	}
}

func TestOrRejected(t *testing.T) {
	q := xpath.MustParse("//a[b or c]")
	if _, err := Compile(q); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestNoDuplicateSolutions(t *testing.T) {
	doc := "<a><a><a><b/></a></a></a>"
	results, _ := run(t, doc, "//a//b", Options{})
	if len(results) != 1 {
		t.Fatalf("results = %v, want 1", values(results))
	}
}

func TestLatePredicateConfirms(t *testing.T) {
	doc := "<r><a><c>hit</c><p/></a><a><c>miss</c></a></r>"
	assertOracle(t, doc, "//a[p]/c")
}

func TestFragmentSerialization(t *testing.T) {
	doc := `<r><a x="1"><b>t&amp;u</b><c/></a></r>`
	assertOracle(t, doc, "//a")
}

func TestStatsAccounting(t *testing.T) {
	_, stats := run(t, datagen.PaperFigure1, datagen.PaperQuery, Options{})
	if stats.Solutions != 1 {
		t.Fatalf("solutions = %d", stats.Solutions)
	}
	if stats.MatchesCreated == 0 || stats.PeakMatches == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
}
