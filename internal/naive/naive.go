// Package naive is the baseline the ViteX paper argues against (§1): a
// streaming XPath engine that explicitly stores pattern matches and
// enumerates them to test predicates. It is correct — its results are
// cross-checked against the DOM oracle and TwigM in tests — but its state is
// the set of all partial embeddings of the query twig, which is exponential
// in the query size on recursive data ("the number of pattern matches can be
// exponential, and therefore the approach has a worst case complexity which
// is exponential in the query size"). Experiment E5 measures exactly this
// blowup against TwigM's polynomial encoding.
//
// The engine covers the paper's fragment XP{/,//,*,[]} with conjunctive
// predicates (including value comparisons and self-comparisons). The 'or'
// connective — an extension of this repository's TwigM engine, not part of
// the paper's fragment — is rejected with ErrUnsupported.
package naive

import (
	"errors"
	"sort"
	"strings"

	"repro/internal/sax"
	"repro/internal/xpath"
)

// ErrMatchLimit is returned when the number of live pattern matches exceeds
// Options.MaxMatches — the guard that lets benchmarks probe the blowup
// without exhausting memory.
var ErrMatchLimit = errors.New("naive: pattern match limit exceeded")

// ErrUnsupported is returned for queries outside the conjunctive fragment.
var ErrUnsupported = errors.New("naive: 'or' predicates are outside the conjunctive XP{/,//,*,[]} fragment")

// Result mirrors twigm.Result for cross-engine comparison.
type Result struct {
	Seq   int64
	Value string
}

// Options configures a run.
type Options struct {
	// MaxMatches caps live partial pattern matches (0 = no cap).
	MaxMatches int
	// Emit receives solutions in confirmation order; nil collects only.
	Emit func(Result) error
}

// Stats counts the work that makes this engine the exponential baseline.
type Stats struct {
	Events         int64
	MatchesCreated int64 // partial pattern matches materialized
	MatchesKilled  int64
	PeakMatches    int // high-water mark of live matches
	Solutions      int64
}

// Engine is the compiled form of a query for the naive evaluator.
type Engine struct {
	query *xpath.Query
	nodes []*qnode
	out   int // output node index
	// needsText: some element node carries a comparison, so open
	// elements accumulate string-values.
	needsText bool
}

// qnode is a flattened query node.
type qnode struct {
	idx  int
	kind xpath.Kind
	name string
	// prefix/local split of the name test: matching is on the local name,
	// with the prefix as an extra requirement when non-empty.
	prefix   string
	local    string
	axis     xpath.Axis
	parent   int // -1 for the query root
	children []int
	// cmp is the inline value test for attribute/text nodes (final at
	// binding time).
	cmp *xpath.Comparison
	// cmps are the element-node comparisons (trailing path comparison
	// plus any [.=...] self-predicates), evaluated at the element's end
	// tag against its complete string-value.
	cmps []*xpath.Comparison
}

// matchesElem reports whether the event's element name satisfies q's name
// test (wildcard, or equal local names plus an equal prefix when the test is
// prefixed) — the same semantics as TwigM and the DOM oracle.
func (q *qnode) matchesElem(ev *sax.Event) bool {
	if q.name == "*" {
		return true
	}
	if q.local != ev.LocalName() {
		return false
	}
	return q.prefix == "" || q.prefix == ev.PrefixName()
}

// matchesAttr is matchesElem for attributes; namespace declarations never
// match.
func (q *qnode) matchesAttr(a *sax.Attr) bool {
	if a.IsNamespaceDecl() {
		return false
	}
	if q.local != a.LocalName() {
		return false
	}
	return q.prefix == "" || q.prefix == a.PrefixName()
}

// Compile flattens the query tree in pre-order. It returns ErrUnsupported
// for queries with 'or' predicates.
func Compile(q *xpath.Query) (*Engine, error) {
	e := &Engine{query: q, out: -1}
	if err := e.addChain(q.Root, -1); err != nil {
		return nil, err
	}
	if e.out < 0 {
		return nil, errors.New("naive: internal: output node not found")
	}
	return e, nil
}

// addChain adds the nodes of a path chain, the first hanging off parentIdx.
func (e *Engine) addChain(n *xpath.Node, parentIdx int) error {
	prev := parentIdx
	for ; n != nil; n = n.Next {
		qi := &qnode{
			idx:    len(e.nodes),
			kind:   n.Kind,
			name:   n.Name,
			prefix: n.Prefix,
			local:  n.Local,
			axis:   n.Axis,
			parent: prev,
		}
		if qi.kind != xpath.Text && qi.local == "" && qi.name != "" {
			qi.prefix, qi.local = sax.SplitName(qi.name)
		}
		e.nodes = append(e.nodes, qi)
		if prev >= 0 {
			e.nodes[prev].children = append(e.nodes[prev].children, qi.idx)
		}
		if n == e.query.Output {
			e.out = qi.idx
		}
		if n.Cmp != nil {
			if n.Kind == xpath.Element {
				qi.cmps = append(qi.cmps, n.Cmp)
				e.needsText = true
			} else {
				qi.cmp = n.Cmp
			}
		}
		if err := e.addPred(n.Pred, qi); err != nil {
			return err
		}
		prev = qi.idx
	}
	return nil
}

// addPred flattens a conjunctive predicate expression onto owner.
func (e *Engine) addPred(p *xpath.PredExpr, owner *qnode) error {
	if p == nil {
		return nil
	}
	switch p.Op {
	case xpath.PredTrue:
		return nil
	case xpath.PredSelf:
		owner.cmps = append(owner.cmps, p.Self)
		e.needsText = true
		return nil
	case xpath.PredLeaf:
		return e.addChain(p.Leaf, owner.idx)
	case xpath.PredAnd:
		for _, k := range p.Kids {
			if err := e.addPred(k, owner); err != nil {
				return err
			}
		}
		return nil
	default: // PredOr
		return ErrUnsupported
	}
}

// MustCompile compiles a query string (test/bench helper).
func MustCompile(query string) *Engine {
	e, err := Compile(xpath.MustParse(query))
	if err != nil {
		panic(err)
	}
	return e
}

// match is one explicitly stored partial pattern match: a partial embedding
// of the query twig. binds[i] is the XML node id bound to query node i (-1
// unbound); levels[i] its depth.
type match struct {
	binds      []int32
	levels     []int32
	bound      int
	pendingCmp int
	dead       bool
}

// openElem is one element on the document stack.
type openElem struct {
	id   int32
	text *strings.Builder
}

// cand is a potential solution (a binding of the output node).
type cand struct {
	id        int32
	seq       int64
	refs      int
	confirmed bool
	emitted   bool
	closed    bool
	value     string
	frag      *fragRec
}

// Run is one streaming evaluation; it implements sax.Handler.
type Run struct {
	eng    *Engine
	opts   Options
	nextID int32
	open   []openElem
	ms     []*match
	cands  map[int32]*cand
	seq    int64
	stats  Stats
	failed error
}

// Start begins a run.
func (e *Engine) Start(opts Options) *Run {
	r := &Run{eng: e, opts: opts, cands: map[int32]*cand{}}
	seed := &match{binds: make([]int32, len(e.nodes)), levels: make([]int32, len(e.nodes))}
	for i := range seed.binds {
		seed.binds[i] = -1
	}
	r.ms = append(r.ms, seed)
	return r
}

// Count returns solutions so far.
func (r *Run) Count() int64 { return r.stats.Solutions }

// Stats returns a snapshot.
func (r *Run) Stats() Stats { return r.stats }

// HandleEvent implements sax.Handler.
func (r *Run) HandleEvent(ev *sax.Event) error {
	if r.failed != nil {
		return r.failed
	}
	r.stats.Events++
	switch ev.Kind {
	case sax.StartElement:
		r.startElement(ev)
	case sax.EndElement:
		r.endElement(ev)
	case sax.Text:
		r.text(ev)
	}
	return r.failed
}

func (r *Run) fail(err error) {
	if r.failed == nil {
		r.failed = err
	}
}

// compat reports whether match m's binding of q's parent is axis-compatible
// with a new node at depth d (d = owner depth for attributes, text depth for
// text nodes).
func (r *Run) compat(m *match, q *qnode, d int) bool {
	if q.parent < 0 {
		// Axis from the document node.
		switch q.kind {
		case xpath.Element:
			return q.axis == xpath.Descendant || d == 1
		default:
			// //@a and //text() reach everything; /@a and /text()
			// reach nothing (the document node has neither).
			return q.axis == xpath.Descendant
		}
	}
	pid := m.binds[q.parent]
	if pid < 0 {
		return false
	}
	pl := int(m.levels[q.parent])
	// The bound parent must still be open (an ancestor of the parse
	// point): open[pl-1] is the unique open element at its level.
	if pl > len(r.open) || r.open[pl-1].id != pid {
		return false
	}
	switch {
	case q.kind == xpath.Attribute && q.axis == xpath.Child:
		return pl == d
	case q.kind == xpath.Attribute:
		return pl <= d
	case q.axis == xpath.Child:
		return pl == d-1
	default:
		return pl < d
	}
}

// extend clones m with q bound to (id, level), explicitly materializing one
// more partial pattern match.
func (r *Run) extend(m *match, q *qnode, id int32, level int) {
	nm := &match{
		binds:      append([]int32(nil), m.binds...),
		levels:     append([]int32(nil), m.levels...),
		bound:      m.bound + 1,
		pendingCmp: m.pendingCmp + len(q.cmps),
	}
	nm.binds[q.idx] = id
	nm.levels[q.idx] = int32(level)
	r.ms = append(r.ms, nm)
	r.stats.MatchesCreated++
	if len(r.ms) > r.stats.PeakMatches {
		r.stats.PeakMatches = len(r.ms)
	}
	if r.opts.MaxMatches > 0 && len(r.ms) > r.opts.MaxMatches {
		r.fail(ErrMatchLimit)
	}
	// Every live match whose output node is bound references the
	// candidate — including clones that inherit the binding.
	if out := nm.binds[r.eng.out]; out >= 0 {
		if c := r.cands[out]; c != nil {
			c.refs++
		}
	}
	r.maybeComplete(nm)
}

// maybeComplete confirms the candidate of a fully-bound match with no
// pending comparisons — enumeration's way of discovering a solution.
func (r *Run) maybeComplete(m *match) {
	if m.dead || m.bound != len(r.eng.nodes) || m.pendingCmp != 0 {
		return
	}
	if c := r.cands[m.binds[r.eng.out]]; c != nil && !c.confirmed {
		c.confirmed = true
		r.emitIfReady(c)
	}
	// The match has served its purpose.
	r.killMatch(m)
}

func (r *Run) killMatch(m *match) {
	if m.dead {
		return
	}
	m.dead = true
	r.stats.MatchesKilled++
	if out := m.binds[r.eng.out]; out >= 0 {
		if c := r.cands[out]; c != nil {
			c.refs--
			r.maybeDiscard(c)
		}
	}
}

func (r *Run) maybeDiscard(c *cand) {
	if c.confirmed || !c.closed || c.refs > 0 {
		return
	}
	delete(r.cands, c.id)
}

func (r *Run) emitIfReady(c *cand) {
	if !c.confirmed || c.emitted {
		return
	}
	if c.frag != nil && !c.closed {
		return // fragment still recording
	}
	c.emitted = true
	r.stats.Solutions++
	delete(r.cands, c.id)
	if r.opts.Emit != nil {
		if err := r.opts.Emit(Result{Seq: c.seq, Value: c.value}); err != nil {
			r.fail(err)
		}
	}
}

func (r *Run) startElement(ev *sax.Event) {
	id := r.nextID
	r.nextID++
	oe := openElem{id: id}
	if r.eng.needsText {
		oe.text = &strings.Builder{}
	}
	if len(ev.Attrs) > 0 {
		r.nextID += int32(len(ev.Attrs)) // reserve ids: attr i = id+1+i
	}
	r.open = append(r.open, oe)
	d := ev.Depth

	// Element bindings: for each element query node, extend every
	// compatible match. New matches become visible to later query nodes
	// (attribute children need that) but not to the same node (only the
	// pre-extension prefix is scanned).
	for _, q := range r.eng.nodes {
		if q.kind != xpath.Element || !q.matchesElem(ev) {
			continue
		}
		if q.idx == r.eng.out {
			r.ensureFragCand(id, d)
		}
		n := len(r.ms)
		for i := 0; i < n; i++ {
			m := r.ms[i]
			if m.dead || m.binds[q.idx] >= 0 || !r.compat(m, q, d) {
				continue
			}
			r.extend(m, q, id, d)
		}
	}
	// Attribute bindings.
	for ai := range ev.Attrs {
		a := &ev.Attrs[ai]
		attrID := id + 1 + int32(ai)
		for _, q := range r.eng.nodes {
			if q.kind != xpath.Attribute || !q.matchesAttr(a) {
				continue
			}
			if q.cmp != nil && !q.cmp.Eval(a.Value) {
				continue
			}
			if q.idx == r.eng.out {
				r.ensureValueCand(attrID, a.Value)
			}
			n := len(r.ms)
			for i := 0; i < n; i++ {
				m := r.ms[i]
				if m.dead || m.binds[q.idx] >= 0 || !r.compat(m, q, d) {
					continue
				}
				r.extend(m, q, attrID, d)
			}
		}
	}
	// Fragment recording (the candidate's own start tag included).
	for _, c := range r.cands {
		if c.frag != nil && !c.closed {
			c.frag.start(ev)
		}
	}
}

// ensureFragCand creates the element candidate for an output binding.
func (r *Run) ensureFragCand(id int32, level int) {
	if _, ok := r.cands[id]; ok {
		return
	}
	c := &cand{id: id, seq: r.seq, frag: &fragRec{level: level}}
	r.seq++
	r.cands[id] = c
}

func (r *Run) ensureValueCand(id int32, value string) {
	if _, ok := r.cands[id]; ok {
		return
	}
	c := &cand{id: id, seq: r.seq, value: value, closed: true}
	r.seq++
	r.cands[id] = c
}

func (r *Run) text(ev *sax.Event) {
	if r.eng.needsText {
		for i := range r.open {
			r.open[i].text.WriteString(ev.Text)
		}
	}
	d := ev.Depth
	textID := r.nextID
	r.nextID++
	for _, q := range r.eng.nodes {
		if q.kind != xpath.Text {
			continue
		}
		if q.cmp != nil && !q.cmp.Eval(ev.Text) {
			continue
		}
		if q.idx == r.eng.out {
			r.ensureValueCand(textID, ev.Text)
		}
		n := len(r.ms)
		for i := 0; i < n; i++ {
			m := r.ms[i]
			if m.dead || m.binds[q.idx] >= 0 || !r.compat(m, q, d) {
				continue
			}
			r.extend(m, q, textID, d)
		}
	}
	for _, c := range r.cands {
		if c.frag != nil && !c.closed {
			c.frag.text(ev)
		}
	}
}

func (r *Run) endElement(ev *sax.Event) {
	oe := r.open[len(r.open)-1]
	// Close fragments first so confirmed candidates can emit.
	for _, c := range r.cands {
		if c.frag != nil && !c.closed {
			c.frag.end(ev)
			if c.id == oe.id {
				c.closed = true
				c.value = string(c.frag.buf)
				r.emitIfReady(c)
			}
		}
	}
	// Enumerate matches: evaluate comparisons bound to this element and
	// kill matches that can no longer complete (a bound node with an
	// unbound child loses its subtree forever when the element closes).
	// This per-event sweep over explicitly stored matches is the
	// exponential behaviour the paper's motivation describes.
	sv := ""
	if oe.text != nil {
		sv = oe.text.String()
	}
	for _, m := range r.ms {
		if m.dead {
			continue
		}
		for _, q := range r.eng.nodes {
			if m.binds[q.idx] != oe.id || q.kind != xpath.Element {
				continue
			}
			if len(q.cmps) > 0 {
				ok := true
				for _, cmp := range q.cmps {
					if !cmp.Eval(sv) {
						ok = false
						break
					}
				}
				if !ok {
					r.killMatch(m)
					break
				}
				m.pendingCmp -= len(q.cmps)
			}
			incomplete := false
			for _, ci := range q.children {
				if m.binds[ci] < 0 {
					incomplete = true
					break
				}
			}
			if incomplete {
				r.killMatch(m)
				break
			}
			r.maybeComplete(m)
			if m.dead {
				break
			}
		}
	}
	// Compact the dead.
	live := r.ms[:0]
	for _, m := range r.ms {
		if !m.dead {
			live = append(live, m)
		}
	}
	r.ms = live
	// Candidate cleanup: the element is closed; a candidate with no
	// remaining references can never be confirmed.
	if c, ok := r.cands[oe.id]; ok {
		c.closed = true
		r.maybeDiscard(c)
	}
	r.open = r.open[:len(r.open)-1]
}

// Collect runs the engine over a document and returns all solutions sorted
// into document order.
func Collect(e *Engine, d sax.Driver, opts Options) ([]Result, Stats, error) {
	var results []Result
	userEmit := opts.Emit
	opts.Emit = func(res Result) error {
		results = append(results, res)
		if userEmit != nil {
			return userEmit(res)
		}
		return nil
	}
	run := e.Start(opts)
	if err := d.Run(run); err != nil {
		return nil, run.Stats(), err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Seq < results[j].Seq })
	return results, run.Stats(), nil
}
