package naive

import (
	"repro/internal/sax"
	"repro/internal/xmlout"
)

// fragRec serializes one candidate's fragment from the event stream using
// the repository's canonical rules (package xmlout). Unlike TwigM's shared
// recorder buffer, each naive candidate owns a private buffer — one more
// place where the baseline spends memory that ViteX avoids.
type fragRec struct {
	buf     []byte
	level   int // depth of the fragment root
	pending bool
	pendLvl int
}

func (f *fragRec) flush() {
	if f.pending {
		f.buf = append(f.buf, '>')
		f.pending = false
	}
}

func (f *fragRec) start(ev *sax.Event) {
	f.flush()
	f.buf = append(f.buf, '<')
	f.buf = append(f.buf, ev.Name...)
	for _, a := range ev.Attrs {
		f.buf = append(f.buf, ' ')
		f.buf = append(f.buf, a.Name...)
		f.buf = append(f.buf, '=', '"')
		f.buf = xmlout.AppendAttr(f.buf, a.Value)
		f.buf = append(f.buf, '"')
	}
	f.pending = true
	f.pendLvl = ev.Depth
}

func (f *fragRec) text(ev *sax.Event) {
	f.flush()
	f.buf = xmlout.AppendText(f.buf, ev.Text)
}

func (f *fragRec) end(ev *sax.Event) {
	if f.pending && f.pendLvl == ev.Depth {
		f.buf = append(f.buf, '/', '>')
		f.pending = false
		return
	}
	f.flush()
	f.buf = append(f.buf, '<', '/')
	f.buf = append(f.buf, ev.Name...)
	f.buf = append(f.buf, '>')
}
