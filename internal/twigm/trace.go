package twigm

import (
	"fmt"
	"io"

	"repro/internal/xpath"
)

// tracer renders machine transitions in a human-readable log — the
// demonstration view of the system (ViteX was presented as an ICDE demo;
// this is the textual equivalent of watching the stacks change state). It
// is enabled by Options.Trace and costs nothing when disabled (all call
// sites are nil-guarded).
type tracer struct {
	w io.Writer
}

func (tr *tracer) on() bool { return tr != nil && tr.w != nil }

func nodeLabel(m *node) string {
	switch m.kind {
	case xpath.Attribute:
		return "@" + m.name
	case xpath.Text:
		return "text()"
	default:
		return m.name
	}
}

func (tr *tracer) push(m *node, level int) {
	fmt.Fprintf(tr.w, "push   %-12s level=%d\n", nodeLabel(m), level)
}

func (tr *tracer) prune(m *node, level int) {
	fmt.Fprintf(tr.w, "prune  %-12s level=%d (attribute predicate already false)\n", nodeLabel(m), level)
}

func (tr *tracer) pop(m *node, e *entry) {
	state := "unsatisfied"
	if e.satisfied {
		state = "satisfied"
	}
	fmt.Fprintf(tr.w, "pop    %-12s level=%d %s flags=%b\n", nodeLabel(m), e.level, state, e.flags)
}

func (tr *tracer) satisfied(m *node, e *entry) {
	fmt.Fprintf(tr.w, "match  %-12s level=%d subquery satisfied\n", nodeLabel(m), e.level)
}

func (tr *tracer) flag(parent, child *node, level int) {
	fmt.Fprintf(tr.w, "flag   %-12s level=%d gains child %s\n", nodeLabel(parent), level, nodeLabel(child))
}

func (tr *tracer) candidate(c *candidate) {
	fmt.Fprintf(tr.w, "cand   #%d created (buffered until predicates resolve)\n", c.seq)
}

func (tr *tracer) confirm(c *candidate) {
	fmt.Fprintf(tr.w, "proven #%d is a query solution\n", c.seq)
}

func (tr *tracer) drop(c *candidate) {
	fmt.Fprintf(tr.w, "drop   #%d discarded (no pattern match can qualify it)\n", c.seq)
}

func (tr *tracer) emit(res *Result) {
	fmt.Fprintf(tr.w, "emit   #%d at event %d: %s\n", res.Seq, res.DeliveredAt, res.Value)
}
