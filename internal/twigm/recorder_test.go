package twigm

import (
	"strings"
	"testing"

	"repro/internal/xmlscan"
)

// fragments runs query over doc and returns emitted values (unordered
// mode), asserting no error.
func fragments(t *testing.T, doc, query string) []string {
	t.Helper()
	prog := MustCompile(query)
	results, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Values(results)
}

func TestRecorderSelfClose(t *testing.T) {
	got := fragments(t, "<r><a/></r>", "//a")
	if len(got) != 1 || got[0] != "<a/>" {
		t.Fatalf("got %q", got)
	}
}

func TestRecorderAttrsPreserved(t *testing.T) {
	got := fragments(t, `<r><a b="1" c="x &amp; y"/></r>`, "//a")
	if got[0] != `<a b="1" c="x &amp; y"/>` {
		t.Fatalf("got %q", got[0])
	}
}

func TestRecorderNestedFragments(t *testing.T) {
	// //a on nested a's: outer fragment contains inner, both correct.
	got := fragments(t, "<r><a>x<a>y</a>z</a></r>", "//a")
	if len(got) != 2 {
		t.Fatalf("got %q", got)
	}
	if got[0] != "<a>x<a>y</a>z</a>" || got[1] != "<a>y</a>" {
		t.Fatalf("got %q", got)
	}
}

func TestRecorderTextEscaping(t *testing.T) {
	got := fragments(t, "<r><a>1 &lt; 2 &amp; 3 &gt; 2</a></r>", "//a")
	if got[0] != "<a>1 &lt; 2 &amp; 3 &gt; 2</a>" {
		t.Fatalf("got %q", got[0])
	}
}

func TestRecorderCDATAContent(t *testing.T) {
	// CDATA content is plain text in the data model: it re-escapes on
	// serialization.
	got := fragments(t, "<r><a><![CDATA[<raw>&stuff;]]></a></r>", "//a")
	if got[0] != "<a>&lt;raw&gt;&amp;stuff;</a>" {
		t.Fatalf("got %q", got[0])
	}
}

func TestRecorderBufferResetsBetweenFragments(t *testing.T) {
	prog := MustCompile("//a")
	var doc strings.Builder
	doc.WriteString("<r>")
	for i := 0; i < 50; i++ {
		doc.WriteString("<a>payload</a>")
	}
	doc.WriteString("</r>")
	_, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc.String())), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// High-water must be one fragment (~16 bytes), not 50 fragments.
	if stats.PeakBufferedBytes > 32 {
		t.Fatalf("peak buffered %d bytes", stats.PeakBufferedBytes)
	}
}

func TestRecorderSharedBufferOverlap(t *testing.T) {
	// Overlapping recordings share one buffer; peak is the outer
	// fragment's length, not the sum of both.
	doc := "<r><a><a>abcdefghij</a></a></r>"
	prog := MustCompile("//a")
	results, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	outer := len(Values(results)[0])
	if stats.PeakBufferedBytes > outer {
		t.Fatalf("peak %d > outer fragment %d: buffer not shared", stats.PeakBufferedBytes, outer)
	}
}

func TestRecorderDiscardedCandidateFreesSlot(t *testing.T) {
	// Candidates under a's without p are discarded; the recorder must
	// reset its buffer once nothing is recording.
	doc := "<r>" + strings.Repeat("<a><big>xxxxxxxxxxxxxxxxxxxxxxxx</big></a>", 20) + "<a><big>y</big><p/></a></r>"
	prog := MustCompile("//a[p]/big")
	results, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || Values(results)[0] != "<big>y</big>" {
		t.Fatalf("results %q", Values(results))
	}
	if stats.CandidatesDropped != 20 {
		t.Fatalf("dropped = %d", stats.CandidatesDropped)
	}
	if stats.PeakBufferedBytes > 64 {
		t.Fatalf("peak buffered %d", stats.PeakBufferedBytes)
	}
}

func TestRecorderDeepFragment(t *testing.T) {
	const n = 100
	doc := "<r>" + strings.Repeat("<x>", n) + strings.Repeat("</x>", n) + "</r>"
	got := fragments(t, doc, "/r/x")
	want := strings.Repeat("<x>", n-1) + "<x/>" + strings.Repeat("</x>", n-1)
	if got[0] != want {
		t.Fatalf("deep fragment mangled: %d bytes vs %d", len(got[0]), len(want))
	}
}

func TestValueCandidatesSkipRecorder(t *testing.T) {
	prog := MustCompile("//a/@id")
	_, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(`<r><a id="7"><huge>payload</huge></a></r>`)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakBufferedBytes != 0 {
		t.Fatalf("attribute results must not buffer fragments: %d", stats.PeakBufferedBytes)
	}
}

func TestOrderedBufFlushesPrefix(t *testing.T) {
	// White-box: resolve out of order; delivery must follow seq order.
	r := &Run{opts: Options{Ordered: true, Emit: nil}}
	var delivered []int64
	r.opts.Emit = func(res Result) error {
		delivered = append(delivered, res.Seq)
		return nil
	}
	o := &r.ordered
	for seq := int64(0); seq < 4; seq++ {
		o.expect(seq)
	}
	o.resolve(r, 2, &Result{Seq: 2})
	o.resolve(r, 1, nil) // discarded
	if len(delivered) != 0 {
		t.Fatalf("premature delivery: %v", delivered)
	}
	o.resolve(r, 0, &Result{Seq: 0})
	// 0,1,2 now resolved: 0 and 2 deliver, 1 was dropped.
	if len(delivered) != 2 || delivered[0] != 0 || delivered[1] != 2 {
		t.Fatalf("delivered %v", delivered)
	}
	if err := o.checkDrained(); err == nil {
		t.Fatal("seq 3 outstanding; drain check must fail")
	}
	o.resolve(r, 3, &Result{Seq: 3})
	if err := o.checkDrained(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 3 {
		t.Fatalf("delivered %v", delivered)
	}
}
