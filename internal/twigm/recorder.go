package twigm

import (
	"repro/internal/sax"
	"repro/internal/xmlout"
)

// recording tracks one element candidate's fragment while the element is
// open. All simultaneously-open recordings are nested (they are
// ancestor-or-self of the parse point), so they share a single append-only
// byte buffer: a recording's fragment is the buffer suffix from its start
// offset. The buffer resets whenever no recording is active, bounding
// memory by the largest overlapping fragment span — this is what keeps the
// paper's "stable at 1MB" memory claim reachable (E2).
type recording struct {
	cand       *candidate
	startLevel int
	start      int // offset into recorder.buf
}

// recorder serializes the event stream into the shared buffer and manages
// candidate fragment lifecycles. Serialization follows the canonical rules
// of package xmlout exactly, so TwigM fragments compare byte-for-byte with
// the DOM oracle's. Embedded in the pooled Run, so reset must restore every
// per-stream field.
//
//vitex:pooled
type recorder struct {
	countOnly bool //vitex:keep set per stream by Run.applyOptions before events flow
	active    []recording
	buf       []byte
	// pendingTag: the last open tag's '>' is deferred so empty elements
	// self-close (<x/>), matching the canonical serialization.
	pendingTag   bool
	pendingLevel int
}

// reset clears per-stream state, retaining the shared buffer's capacity.
func (rc *recorder) reset() {
	rc.active = rc.active[:0]
	rc.buf = rc.buf[:0]
	rc.pendingTag = false
	rc.pendingLevel = 0
}

// register starts recording a fragment for an element output candidate;
// its start-element event has not been serialized yet. In CountOnly mode
// the candidate is left closed (no buffering) and delivers on confirmation.
//
//vitex:hotpath
func (rc *recorder) register(r *Run, c *candidate, level int) {
	if rc.countOnly {
		return
	}
	// A pending parent open-tag must close before this fragment begins,
	// or its '>' would land inside the new fragment.
	rc.flushPending()
	c.open = true
	rc.active = append(rc.active, recording{cand: c, startLevel: level, start: len(rc.buf)})
}

// drop stops recording a discarded candidate. The shared buffer cannot be
// trimmed until all recordings finish; only the active slot is released
// (swap-remove — no scan of active ever depends on its order).
//
//vitex:hotpath
func (rc *recorder) drop(c *candidate) {
	if !c.open {
		return
	}
	for i := range rc.active {
		if rc.active[i].cand == c {
			last := len(rc.active) - 1
			rc.active[i] = rc.active[last]
			rc.active = rc.active[:last]
			break
		}
	}
	c.open = false
	rc.maybeReset()
}

//vitex:hotpath
func (rc *recorder) maybeReset() {
	if len(rc.active) == 0 {
		rc.buf = rc.buf[:0]
		rc.pendingTag = false
	}
}

//vitex:hotpath
func (rc *recorder) flushPending() {
	if rc.pendingTag {
		rc.buf = append(rc.buf, '>')
		rc.pendingTag = false
	}
}

//vitex:hotpath
func (rc *recorder) startElement(r *Run, ev *sax.Event) {
	if len(rc.active) == 0 {
		return
	}
	rc.flushPending()
	rc.buf = append(rc.buf, '<')
	rc.buf = append(rc.buf, ev.Name...)
	for _, a := range ev.Attrs {
		rc.buf = append(rc.buf, ' ')
		rc.buf = append(rc.buf, a.Name...)
		rc.buf = append(rc.buf, '=', '"')
		rc.buf = xmlout.AppendAttr(rc.buf, a.Value)
		rc.buf = append(rc.buf, '"')
	}
	rc.pendingTag = true
	rc.pendingLevel = ev.Depth
	rc.note(r)
}

//vitex:hotpath
func (rc *recorder) text(r *Run, ev *sax.Event) {
	if len(rc.active) == 0 {
		return
	}
	rc.flushPending()
	rc.buf = xmlout.AppendText(rc.buf, ev.Text)
	rc.note(r)
}

// endElement closes the element in the serialization and finalizes
// recordings rooted at this level: their fragment is complete, so confirmed
// candidates deliver now.
func (rc *recorder) endElement(r *Run, ev *sax.Event) {
	if len(rc.active) == 0 {
		return
	}
	if rc.pendingTag && rc.pendingLevel == ev.Depth {
		rc.buf = append(rc.buf, '/', '>')
		rc.pendingTag = false
	} else {
		rc.flushPending()
		rc.buf = append(rc.buf, '<', '/')
		rc.buf = append(rc.buf, ev.Name...)
		rc.buf = append(rc.buf, '>')
	}
	rc.note(r)
	// Finalize recordings rooted here (there is at most one: a single
	// output node yields one candidate per element). Swap-remove: active's
	// order is never significant.
	for i := len(rc.active) - 1; i >= 0; i-- {
		rec := &rc.active[i]
		if rec.startLevel != ev.Depth {
			continue
		}
		c := rec.cand
		c.value = string(rc.buf[rec.start:])
		c.open = false
		last := len(rc.active) - 1
		rc.active[i] = rc.active[last]
		rc.active = rc.active[:last]
		if c.state == candConfirmed {
			r.deliver(c)
		}
	}
	rc.maybeReset()
}

//vitex:hotpath
func (rc *recorder) note(r *Run) {
	if len(rc.buf) > r.stats.PeakBufferedBytes {
		r.stats.PeakBufferedBytes = len(rc.buf)
	}
}
