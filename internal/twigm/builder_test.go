package twigm

import (
	"strings"
	"testing"

	"repro/internal/xpath"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	q, err := xpath.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderNodeIndexes(t *testing.T) {
	p := compile(t, "//a[@id and text()]//b[c]/@href")
	if len(p.elemIndex["a"]) != 1 || len(p.elemIndex["b"]) != 1 || len(p.elemIndex["c"]) != 1 {
		t.Fatalf("element index: %v", p.elemIndex)
	}
	if len(p.attrIndex["id"]) != 1 || len(p.attrIndex["href"]) != 1 {
		t.Fatalf("attr index: %v", p.attrIndex)
	}
	if len(p.textNodes) != 1 {
		t.Fatalf("text nodes: %d", len(p.textNodes))
	}
	if len(p.wildElems) != 0 {
		t.Fatalf("wild: %d", len(p.wildElems))
	}
}

func TestBuilderWildcardIndex(t *testing.T) {
	p := compile(t, "//*[a]/*")
	if len(p.wildElems) != 2 {
		t.Fatalf("wildcards: %d", len(p.wildElems))
	}
}

func TestBuilderChildBits(t *testing.T) {
	p := compile(t, "//a[x][y]//z")
	root := p.root
	if len(root.children) != 3 { // x, y, z
		t.Fatalf("children: %d", len(root.children))
	}
	seen := map[int]bool{}
	for _, c := range root.children {
		if seen[c.childIdx] {
			t.Fatalf("duplicate childIdx %d", c.childIdx)
		}
		seen[c.childIdx] = true
		if c.parent != root {
			t.Fatal("parent link broken")
		}
	}
}

func TestBuilderOutputAndSpine(t *testing.T) {
	p := compile(t, "//a[x]//b/c")
	var out, spineCount int
	for _, m := range p.nodes {
		if m.isOutput {
			out++
			if m.name != "c" {
				t.Fatalf("output node is %q", m.name)
			}
		}
		if m.spine {
			spineCount++
		}
	}
	if out != 1 || spineCount != 3 {
		t.Fatalf("out=%d spine=%d", out, spineCount)
	}
}

func TestCondEvalAndOr(t *testing.T) {
	// //a[(x or y) and z]: flag bits x=0, y=1, z=2.
	p := compile(t, "//a[(x or y) and z]")
	c := p.root.cond
	noText := &entry{}
	cases := []struct {
		flags uint64
		want  bool
	}{
		{0b000, false},
		{0b001, false}, // x only
		{0b100, false}, // z only
		{0b101, true},  // x,z
		{0b110, true},  // y,z
		{0b111, true},
		{0b011, false}, // x,y no z
	}
	for _, tc := range cases {
		if got := c.eval(tc.flags, noText, false); got != tc.want {
			t.Errorf("eval(%03b) = %v, want %v", tc.flags, got, tc.want)
		}
	}
}

func TestCondSelfDeferred(t *testing.T) {
	p := compile(t, "//a[.='v']")
	c := p.root.cond
	val := &entry{textBuf: []byte("v")}
	if c.eval(0, val, false) {
		t.Fatal("self comparison must be unknown before finalization")
	}
	if !c.eval(0, val, true) {
		t.Fatal("self comparison must hold at pop")
	}
	bad := &entry{textBuf: []byte("w")}
	if c.eval(0, bad, true) {
		t.Fatal("self comparison must fail on mismatch")
	}
}

func TestDeadAtPushAttrOnly(t *testing.T) {
	// [@id='1'] is final at push; [b] is not.
	p := compile(t, "//a[@id='1']")
	if !p.root.prunable {
		t.Fatal("attr-only predicate should be prunable")
	}
	if !p.root.cond.deadAtPush(0) {
		t.Fatal("missing attr flag should be dead at push")
	}
	if p.root.cond.deadAtPush(1) {
		t.Fatal("present attr flag should survive")
	}

	p2 := compile(t, "//a[b]")
	if p2.root.prunable {
		t.Fatal("element predicate is not decidable at push")
	}
	if p2.root.cond.deadAtPush(0) {
		t.Fatal("element predicate may still arrive")
	}
}

func TestDeadAtPushOrRescues(t *testing.T) {
	// [@id or b]: even with the attr missing, b may arrive later.
	p := compile(t, "//a[@id or b]")
	if p.root.cond.deadAtPush(0) {
		t.Fatal("or-branch must keep the entry alive")
	}
	// [@id and b]: missing attr is fatal regardless of b.
	p2 := compile(t, "//a[@id and b]")
	if !p2.root.cond.deadAtPush(0) {
		t.Fatal("and-branch with dead attr leaf must prune")
	}
}

func TestDescendantAttrNotFinalAtPush(t *testing.T) {
	// [.//@id]: a descendant may bring the attribute later.
	p := compile(t, "//a[.//@id]")
	if p.root.prunable {
		t.Fatal("descendant-axis attribute is not final at push")
	}
	if p.root.cond.deadAtPush(0) {
		t.Fatal("must not prune")
	}
}

func TestCompatRanges(t *testing.T) {
	p := compile(t, "//a/b")   // child element
	pd := compile(t, "//a//b") // descendant element
	pa := compile(t, "//a/@x") // child attr
	pda := compile(t, "//a//@x")
	pt := compile(t, "//a/text()")

	check := func(m *node, level, wantLo, wantHi int) {
		t.Helper()
		lo, hi := compatRange(m, level)
		if lo != wantLo || hi != wantHi {
			t.Fatalf("compatRange(%s kind=%v axis=%v, %d) = [%d,%d], want [%d,%d]",
				m.name, m.kind, m.axis, level, lo, hi, wantLo, wantHi)
		}
	}
	check(p.root.children[0], 5, 4, 4)   // /b at level 5: parent exactly 4
	check(pd.root.children[0], 5, 0, 4)  // //b: any proper ancestor
	check(pa.root.children[0], 5, 5, 5)  // /@x: the owner itself
	check(pda.root.children[0], 5, 0, 5) // //@x: self-or-ancestor
	check(pt.root.children[0], 5, 4, 4)  // /text() at depth 5: parent 4
}

func TestMachineSizesAcrossFragment(t *testing.T) {
	for _, tc := range []struct {
		src  string
		size int
	}{
		{"//a", 1},
		{"/a/b/c/d", 4},
		{"//a[b][c][d]", 4},
		{"//a[b/c/d]", 4},
		{"//a[.='x']", 1}, // self comparisons are conditions, not nodes
		{"//a[text()='x']", 2},
		{"//a/@id", 2},
	} {
		p := compile(t, tc.src)
		if p.NumNodes() != tc.size {
			t.Errorf("%s: %d nodes, want %d", tc.src, p.NumNodes(), tc.size)
		}
	}
}

func TestDescribeEdges(t *testing.T) {
	p := compile(t, "/a/b//c")
	d := p.Describe()
	lines := strings.Split(strings.TrimSpace(d), "\n")
	if len(lines) != 3 {
		t.Fatalf("describe:\n%s", d)
	}
	if !strings.HasPrefix(lines[0], "-a") || !strings.Contains(lines[1], "-b") || !strings.Contains(lines[2], "=c *") {
		t.Fatalf("describe:\n%s", d)
	}
}

func TestTrailingComparisonOnPredicatePath(t *testing.T) {
	// [b/c='x']: c carries the comparison, so c needs text and is a
	// value node.
	p := compile(t, "//a[b/c='x']")
	var cNode *node
	for _, m := range p.nodes {
		if m.name == "c" {
			cNode = m
		}
	}
	if cNode == nil || !cNode.needsText {
		t.Fatalf("c node: %+v", cNode)
	}
	if len(p.valueNodes) != 1 || p.valueNodes[0] != cNode {
		t.Fatalf("valueNodes: %v", p.valueNodes)
	}
}

func TestAttrCmpInline(t *testing.T) {
	p := compile(t, "//a[@id='7']")
	attr := p.attrIndex["id"][0]
	if attr.cmp == nil || !attr.cmp.Eval("7") || attr.cmp.Eval("8") {
		t.Fatalf("attr cmp: %+v", attr.cmp)
	}
}
