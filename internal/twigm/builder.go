// Package twigm implements the heart of ViteX (ICDE 2005): the TwigM
// builder (§3.1) and the TwigM machine (§3.2), a streaming XPath processor
// for the fragment XP{/,//,*,[]} with polynomial time and space complexity.
//
// The machine keeps one stack per query node. A stack entry corresponds to
// one open XML element that path-matches the query node, and compactly
// encodes every pattern match that element participates in: instead of
// enumerating the (worst-case exponential) matches, each entry carries a
// bitset recording which query children have been matched, and a list of
// candidate solutions whose fate depends on this entry's predicates. Flags
// propagate to all axis-compatible parent entries when an entry's predicate
// expression becomes satisfied; candidate solutions travel up the spine the
// same way and are emitted exactly once when they reach a satisfied root
// entry, or discarded when their last reference dies. This is the paper's
// O(|D|·|Q|·(|Q|+B)) lazy evaluation.
package twigm

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/sax"
	"repro/internal/xpath"
)

// compileCount counts every machine built by this process. Incremental
// query-set updates are specified as "compile only the changed query"; tests
// assert that property by differencing this counter around a mutation.
var compileCount atomic.Int64

// CompileCount returns the number of TwigM machines compiled by this process
// so far.
func CompileCount() int64 { return compileCount.Load() }

// maxChildren bounds the number of machine children per query node (flag
// bits live in one uint64 per stack entry).
const maxChildren = 64

// Program is a compiled TwigM machine: the immutable result of the TwigM
// builder. A Program can drive any number of concurrent Runs.
type Program struct {
	query *xpath.Query
	root  *node
	nodes []*node // all nodes, ids dense, topological (parent before child)

	// syms is the symbol table the program's names were interned into.
	// Events produced against the same table dispatch through the ID
	// slices below (one bounds check + slice index on the hot path);
	// events without IDs fall back to the name maps.
	syms     *sax.Symbols
	elemByID [][]*node // element nodes by NameID (no wildcards)
	attrByID [][]*node // attribute nodes by NameID

	// Event-dispatch indexes (string fallback for producers that do not
	// intern, e.g. hand-built events).
	elemIndex map[string][]*node // element nodes by name (no wildcards)
	wildElems []*node            // element nodes with name "*"
	attrIndex map[string][]*node // attribute nodes by name
	textNodes []*node            // text() nodes
	// valueNodes are element nodes that must accumulate their string-value
	// (they carry a chain comparison or a self-comparison predicate).
	valueNodes []*node

	// anchored marks a residual machine built by CompileShared: its root
	// node's axis checks consult a shared prefix AnchorStack (bound per
	// stream via Run.BindAnchor) instead of the document node; profile is
	// the factored-out prefix (see shared.go).
	anchored bool
	profile  []TrieStep

	// outputElem is the output node when it is an element (nil for
	// attribute and text() outputs): the only node whose push can start a
	// fragment recording — the engine's attribute-value routing reads it.
	outputElem *node
}

// node is one machine node: a query node plus its compiled condition.
type node struct {
	id   int
	kind xpath.Kind
	name string // name test as written ("p:a" for prefixed tests)
	// prefix/local split of the name test: matching is on the local name,
	// with the prefix as an extra requirement when non-empty.
	prefix   string
	local    string
	nameID   int32 // symbol ID of the LOCAL name (elements/attributes; 0 for "*")
	axis     xpath.Axis
	parent   *node
	childIdx int // flag bit position in parent entries
	children []*node
	cond     *cond
	// cmp is the inline value test of attribute and text() nodes,
	// evaluated the moment the node's value is seen (attribute values
	// and text runs are final immediately).
	cmp      *xpath.Comparison
	isOutput bool
	spine    bool
	// needsText: entries of this node accumulate their string-value.
	needsText bool
	// hasSelfClosePrune: the condition can be decided false at push time
	// from child-axis attribute leaves alone.
	prunable bool
}

// condOp enumerates condition-tree operators.
type condOp uint8

const (
	condTrue condOp = iota
	condAnd
	condOr
	condFlag // child subquery matched: flag bit flagIdx
	condSelf // comparison on this entry's own string-value (final at pop)
)

// cond is a compiled boolean condition over a stack entry's state. An entry
// is satisfied when its node's cond evaluates true; condSelf leaves are
// unknown (treated false) until the entry pops and its string-value is
// complete.
type cond struct {
	op      condOp
	kids    []*cond
	flagIdx int
	// finalAtPush marks condFlag leaves whose truth is fully known by the
	// end of the entry's start-element event: child-axis attribute
	// children (attributes cannot appear later).
	finalAtPush bool
	cmp         *xpath.Comparison
}

// CompileError reports a query that parses but cannot be compiled to a
// machine (out-of-range widths).
type CompileError struct{ Msg string }

func (e *CompileError) Error() string { return "twigm: " + e.Msg }

// Compile builds a TwigM machine from a parsed query with a private symbol
// table. Build time is linear in the query size (paper §2, claim 2;
// benchmarked by E7).
func Compile(q *xpath.Query) (*Program, error) {
	return CompileWith(q, sax.NewSymbols())
}

// CompileWith builds a TwigM machine whose names are interned into the
// shared table syms, so several programs can dispatch events from one
// symbol-aware scanner. Pass the same table to the scanner (or to
// engine-level routing) that feeds the machine; a nil syms gets a private
// table.
func CompileWith(q *xpath.Query, syms *sax.Symbols) (*Program, error) {
	compileCount.Add(1)
	if syms == nil {
		syms = sax.NewSymbols()
	}
	p := &Program{
		query:     q,
		syms:      syms,
		elemIndex: make(map[string][]*node),
		attrIndex: make(map[string][]*node),
	}
	root, err := p.build(q.Root, nil)
	if err != nil {
		return nil, err
	}
	p.root = root
	p.freezeDispatch()
	return p, nil
}

// freezeDispatch builds the ID-keyed dispatch views from the name maps. The
// table may keep growing as later programs intern their names; IDs past the
// end of these slices simply belong to no node of this program.
func (p *Program) freezeDispatch() {
	p.elemByID = make([][]*node, p.syms.Len()+1)
	for name, nodes := range p.elemIndex {
		p.elemByID[p.syms.Intern(name)] = nodes
	}
	p.attrByID = make([][]*node, p.syms.Len()+1)
	for name, nodes := range p.attrIndex {
		p.attrByID[p.syms.Intern(name)] = nodes
	}
}

// Symbols returns the table the program's names are interned in.
func (p *Program) Symbols() *sax.Symbols { return p.syms }

// MustCompile compiles a query string, panicking on error (tests/examples).
func MustCompile(query string) *Program {
	q, err := xpath.Parse(query)
	if err != nil {
		panic(err)
	}
	p, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return p
}

// build creates the machine node for qn (and recursively its children) and
// registers it in the dispatch indexes.
func (p *Program) build(qn *xpath.Node, parent *node) (*node, error) {
	m := &node{
		id:       len(p.nodes),
		kind:     qn.Kind,
		name:     qn.Name,
		prefix:   qn.Prefix,
		local:    qn.Local,
		axis:     qn.Axis,
		parent:   parent,
		spine:    qn.Spine,
		isOutput: qn == p.query.Output,
	}
	if m.kind != xpath.Text && m.local == "" && m.name != "" {
		// Queries built without the parser (tests): split here.
		m.prefix, m.local = sax.SplitName(m.name)
	}
	// Dispatch indexes are keyed by LOCAL name: name tests match the local
	// part, and prefixed tests re-check the prefix at push time.
	switch qn.Kind {
	case xpath.Element:
		if qn.Name == "*" {
			p.wildElems = append(p.wildElems, m)
		} else {
			m.nameID = p.syms.Intern(m.local)
			p.elemIndex[m.local] = append(p.elemIndex[m.local], m)
		}
	case xpath.Attribute:
		m.nameID = p.syms.Intern(m.local)
		p.attrIndex[m.local] = append(p.attrIndex[m.local], m)
	case xpath.Text:
		p.textNodes = append(p.textNodes, m)
	}
	p.nodes = append(p.nodes, m)

	// Children: predicate-leaf heads first, then the chain continuation.
	// Each child occupies one flag bit in this node's entries.
	addChild := func(cqn *xpath.Node) (*node, error) {
		cm, err := p.build(cqn, m)
		if err != nil {
			return nil, err
		}
		cm.childIdx = len(m.children)
		m.children = append(m.children, cm)
		if len(m.children) > maxChildren {
			return nil, &CompileError{Msg: fmt.Sprintf(
				"query node %q has more than %d predicate branches", qn.Name, maxChildren)}
		}
		return cm, nil
	}

	var conds []*cond
	if qn.Pred != nil {
		pc, err := p.buildPred(qn.Pred, addChild)
		if err != nil {
			return nil, err
		}
		conds = append(conds, pc)
	}
	if qn.Next != nil {
		cm, err := addChild(qn.Next)
		if err != nil {
			return nil, err
		}
		conds = append(conds, flagLeaf(cm))
	}
	if qn.Cmp != nil {
		// A trailing comparison on the path ending at this node.
		switch qn.Kind {
		case xpath.Element:
			conds = append(conds, &cond{op: condSelf, cmp: qn.Cmp})
			m.needsText = true
		default:
			// Attribute and text() comparisons are evaluated inline
			// at the event; they gate the node's satisfaction there,
			// not through the cond tree.
			m.cmp = qn.Cmp
		}
	}
	m.cond = andConds(conds)
	if m.kind == xpath.Element && hasSelf(m.cond) {
		m.needsText = true
	}
	if m.needsText {
		p.valueNodes = append(p.valueNodes, m)
	}
	m.prunable = hasFinalLeaf(m.cond)
	if m.isOutput && m.kind == xpath.Element {
		p.outputElem = m
	}
	return m, nil
}

// buildPred compiles a predicate expression, materializing machine nodes for
// its path leaves via addChild.
func (p *Program) buildPred(pe *xpath.PredExpr, addChild func(*xpath.Node) (*node, error)) (*cond, error) {
	switch pe.Op {
	case xpath.PredTrue:
		return &cond{op: condTrue}, nil
	case xpath.PredSelf:
		return &cond{op: condSelf, cmp: pe.Self}, nil
	case xpath.PredLeaf:
		cm, err := addChild(pe.Leaf)
		if err != nil {
			return nil, err
		}
		return flagLeaf(cm), nil
	case xpath.PredAnd, xpath.PredOr:
		op := condAnd
		if pe.Op == xpath.PredOr {
			op = condOr
		}
		c := &cond{op: op}
		for _, k := range pe.Kids {
			kc, err := p.buildPred(k, addChild)
			if err != nil {
				return nil, err
			}
			c.kids = append(c.kids, kc)
		}
		return c, nil
	default:
		return nil, &CompileError{Msg: "unknown predicate operator"}
	}
}

// flagLeaf builds the condFlag leaf for machine child cm.
func flagLeaf(cm *node) *cond {
	return &cond{
		op:          condFlag,
		flagIdx:     cm.childIdx,
		finalAtPush: cm.kind == xpath.Attribute && cm.axis == xpath.Child,
	}
}

func andConds(conds []*cond) *cond {
	switch len(conds) {
	case 0:
		return &cond{op: condTrue}
	case 1:
		return conds[0]
	default:
		return &cond{op: condAnd, kids: conds}
	}
}

func hasSelf(c *cond) bool {
	if c.op == condSelf {
		return true
	}
	for _, k := range c.kids {
		if hasSelf(k) {
			return true
		}
	}
	return false
}

func hasFinalLeaf(c *cond) bool {
	if c.op == condFlag && c.finalAtPush {
		return true
	}
	for _, k := range c.kids {
		if hasFinalLeaf(k) {
			return true
		}
	}
	return false
}

// eval evaluates the condition against an entry's state. Unknown leaves
// (condSelf before finalization) count as false; because the expression is
// monotone (no negation in the fragment) a true result is final. The entry
// is passed directly (instead of a string-value closure) to keep the hot
// path allocation-free.
func (c *cond) eval(flags uint64, e *entry, final bool) bool {
	switch c.op {
	case condTrue:
		return true
	case condFlag:
		return flags&(1<<uint(c.flagIdx)) != 0
	case condSelf:
		if !final {
			return false
		}
		return c.cmp.Eval(e.textValue())
	case condAnd:
		for _, k := range c.kids {
			if !k.eval(flags, e, final) {
				return false
			}
		}
		return true
	default: // condOr
		for _, k := range c.kids {
			if k.eval(flags, e, final) {
				return true
			}
		}
		return false
	}
}

// deadAtPush reports whether the condition can already be ruled out at push
// time: evaluating optimistically (every leaf that could still become true
// counts as true) it is still false. Only child-axis attribute leaves are
// final at push.
func (c *cond) deadAtPush(flags uint64) bool {
	return !c.optimistic(flags)
}

func (c *cond) optimistic(flags uint64) bool {
	switch c.op {
	case condTrue, condSelf:
		return true
	case condFlag:
		if c.finalAtPush {
			return flags&(1<<uint(c.flagIdx)) != 0
		}
		return true
	case condAnd:
		for _, k := range c.kids {
			if !k.optimistic(flags) {
				return false
			}
		}
		return true
	default: // condOr
		for _, k := range c.kids {
			if k.optimistic(flags) {
				return true
			}
		}
		return false
	}
}

// Query returns the query this program was compiled from.
func (p *Program) Query() *xpath.Query { return p.query }

// ---- routing metadata (consumed by internal/engine) ----

// ElemNameIDs returns the symbol IDs of the element names this machine can
// push on — the static element-name subscriptions of routed dispatch.
func (p *Program) ElemNameIDs() []int32 {
	ids := make([]int32, 0, len(p.elemByID))
	for id, nodes := range p.elemByID {
		if len(nodes) > 0 {
			ids = append(ids, int32(id))
		}
	}
	return ids
}

// AttrNameIDs returns the symbol IDs of the attribute names this machine
// matches: a start-element event carrying one of them is relevant even when
// the element name is not.
func (p *Program) AttrNameIDs() []int32 {
	ids := make([]int32, 0, len(p.attrByID))
	for id, nodes := range p.attrByID {
		if len(nodes) > 0 {
			ids = append(ids, int32(id))
		}
	}
	return ids
}

// HasWildcardElem reports whether the machine has a '*' element node and
// therefore must see every start-element event.
func (p *Program) HasWildcardElem() bool { return len(p.wildElems) > 0 }

// OutputElemNameID returns the symbol ID of the output node's element name
// when the output is a named element, -1 for attribute/text() outputs, and
// 0 (with wildcard true) for a '*' output. A fragment recording can only
// start when this node pushes, which is what the engine's attribute-value
// interest routing keys on.
func (p *Program) OutputElemNameID() (id int32, wildcard bool) {
	if p.outputElem == nil {
		return -1, false
	}
	if p.outputElem.name == "*" {
		return 0, true
	}
	return p.outputElem.nameID, false
}

// HasTextInterest reports whether any event routing of text is ever needed:
// the machine has text() nodes or accumulates string-values.
func (p *Program) HasTextInterest() bool {
	return len(p.textNodes) > 0 || len(p.valueNodes) > 0
}

// NumNodes returns the number of machine nodes (equals the query size; the
// builder is linear, paper claim 2).
func (p *Program) NumNodes() int { return len(p.nodes) }

// Describe renders the machine tree in the style of figure 3 of the paper:
// one line per machine node, child-axis edges drawn with '-', descendant
// edges with '='; the output node is marked with '*'. Prefix-shared
// (anchored) machines lead with the factored-out shared prefix.
func (p *Program) Describe() string {
	var b strings.Builder
	if p.anchored {
		b.WriteString("(shared prefix ")
		b.WriteString(ProfileString(p.profile))
		b.WriteString(")\n")
	}
	p.describe(&b, p.root, 0)
	return b.String()
}

func (p *Program) describe(b *strings.Builder, m *node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	edge := "-"
	if m.axis == xpath.Descendant {
		edge = "="
	}
	b.WriteString(edge)
	switch m.kind {
	case xpath.Attribute:
		b.WriteString("@" + m.name)
	case xpath.Text:
		b.WriteString("text()")
	default:
		b.WriteString(m.name)
	}
	if m.isOutput {
		b.WriteString(" *")
	}
	b.WriteString("\n")
	for _, c := range m.children {
		p.describe(b, c, depth+1)
	}
}
