package twigm

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmlscan"
)

func TestTracePaperExample(t *testing.T) {
	var log strings.Builder
	prog := MustCompile(datagen.PaperQuery)
	_, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(datagen.PaperFigure1)),
		Options{Trace: &log})
	if err != nil {
		t.Fatal(err)
	}
	out := log.String()
	// The trace must narrate the paper's walkthrough: pushes for the
	// three sections and tables, the candidate for cell₈, the position
	// and author matches, and exactly one proven emission.
	for _, want := range []string{
		"push   section",
		"push   table",
		"push   cell",
		"cand   #0 created",
		"match  position",
		"match  author",
		"proven #0",
		"emit   #0",
		"<cell> A </cell>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "emit") != 1 {
		t.Fatalf("expected exactly one emission:\n%s", out)
	}
	// Tables 6 and 7 pop unsatisfied (no position child).
	if strings.Count(out, "pop    table        level=6 unsatisfied") != 1 ||
		strings.Count(out, "pop    table        level=7 unsatisfied") != 1 {
		t.Fatalf("inner tables should pop unsatisfied:\n%s", out)
	}
}

func TestTraceDropAndPrune(t *testing.T) {
	var log strings.Builder
	prog := MustCompile("//a[@k='1']/b")
	doc := `<r><a k="2"><b/></a><a><b/></a><a k="1"><b/></a></r>`
	results, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{Trace: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results: %v", Values(results))
	}
	out := log.String()
	if strings.Count(out, "prune  a") != 2 {
		t.Fatalf("expected 2 prunes:\n%s", out)
	}
	// The b's under pruned a's never become candidates (their parent has
	// no entry), so no drops occur — pruning preempted them.
	if strings.Contains(out, "drop") {
		t.Fatalf("unexpected drop:\n%s", out)
	}
}

func TestTraceDroppedCandidate(t *testing.T) {
	var log strings.Builder
	prog := MustCompile("//a[p]/b")
	doc := `<r><a><b/></a></r>` // no p: the b candidate must drop
	_, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{Trace: &log})
	if err != nil {
		t.Fatal(err)
	}
	out := log.String()
	if !strings.Contains(out, "cand   #0 created") || !strings.Contains(out, "drop   #0") {
		t.Fatalf("trace:\n%s", out)
	}
}

func TestNoTraceNoOutput(t *testing.T) {
	// Nil trace must be silent and cost nothing (smoke: just run).
	prog := MustCompile("//a")
	if _, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader("<a/>")), Options{}); err != nil {
		t.Fatal(err)
	}
}
