package twigm

import "fmt"

// orderedBuf re-sequences deliveries into document order. Candidates are
// created in document order of their result nodes (seq); each seq resolves
// exactly once — either with a Result (emitted) or nil (discarded) — and the
// buffer releases the longest resolved prefix. This implements the Ordered
// option: it trades result latency (a solution waits for every
// earlier-created candidate to resolve) for strict document order, which is
// what the DOM oracle produces and what the equivalence tests compare.
type orderedBuf struct {
	resolved map[int64]*Result
	next     int64 // lowest unresolved seq
	expected int64 // number of candidates created
}

func (o *orderedBuf) expect(seq int64) {
	if o.resolved == nil {
		o.resolved = make(map[int64]*Result)
	}
	o.expected = seq + 1
}

// resolve records the fate of seq and flushes the released prefix.
func (o *orderedBuf) resolve(r *Run, seq int64, res *Result) {
	o.resolved[seq] = res
	for {
		out, ok := o.resolved[o.next]
		if !ok {
			return
		}
		delete(o.resolved, o.next)
		o.next++
		if out != nil {
			out.DeliveredAt = r.stats.Events
			r.emit(*out)
		}
	}
}

// checkDrained verifies every candidate resolved by end of document — an
// internal invariant of the machine (all stacks are empty then, so no
// reference can remain).
func (o *orderedBuf) checkDrained() error {
	if len(o.resolved) != 0 || o.next != o.expected {
		return fmt.Errorf("twigm: internal: %d ordered results undelivered at end of document (next=%d expected=%d)",
			len(o.resolved), o.next, o.expected)
	}
	return nil
}
