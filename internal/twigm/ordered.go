package twigm

import "fmt"

// orderedSlot is one window position of the re-sequencer.
type orderedSlot struct {
	res      Result
	resolved bool
	emit     bool
}

// orderedBuf re-sequences deliveries into document order. Candidates are
// created in document order of their result nodes (seq); each seq resolves
// exactly once — either with a Result (emitted) or dropped — and the buffer
// releases the longest resolved prefix. This implements the Ordered option:
// it trades result latency (a solution waits for every earlier-created
// candidate to resolve) for strict document order, which is what the DOM
// oracle produces and what the equivalence tests compare.
//
// The window [next, expected) lives in a growable ring so steady-state
// resolution allocates nothing; capacity is retained across Reset.
type orderedBuf struct {
	slots    []orderedSlot // ring; slot of seq s is (head + s - next) % len
	head     int           // ring index of seq == next
	next     int64         // lowest unresolved seq
	expected int64         // number of candidates created
}

func (o *orderedBuf) reset() {
	for i := range o.slots {
		o.slots[i] = orderedSlot{}
	}
	o.head = 0
	o.next = 0
	o.expected = 0
}

// expect widens the window to include seq. Seqs arrive in creation order,
// so the window grows one slot at a time.
func (o *orderedBuf) expect(seq int64) {
	o.expected = seq + 1
	if need := int(o.expected - o.next); need > len(o.slots) {
		o.grow(need)
	}
}

// grow re-lays the ring into a larger array, keeping the window in place.
func (o *orderedBuf) grow(need int) {
	newCap := len(o.slots) * 2
	if newCap < 16 {
		newCap = 16
	}
	for newCap < need {
		newCap *= 2
	}
	ns := make([]orderedSlot, newCap)
	n := int(o.expected - o.next - 1) // live slots before the one being added
	for i := 0; i < n; i++ {
		ns[i] = o.slots[(o.head+i)%len(o.slots)]
	}
	o.slots = ns
	o.head = 0
}

// resolve records the fate of seq and flushes the released prefix.
func (o *orderedBuf) resolve(r *Run, seq int64, res *Result) {
	i := (o.head + int(seq-o.next)) % len(o.slots)
	o.slots[i].resolved = true
	if res != nil {
		o.slots[i].res = *res
		o.slots[i].emit = true
	}
	for o.next < o.expected {
		s := &o.slots[o.head]
		if !s.resolved {
			return
		}
		out := *s
		*s = orderedSlot{}
		o.head = (o.head + 1) % len(o.slots)
		o.next++
		if out.emit {
			out.res.DeliveredAt = r.stats.Events
			r.emit(out.res)
		}
	}
}

// checkDrained verifies every candidate resolved by end of document — an
// internal invariant of the machine (all stacks are empty then, so no
// reference can remain).
func (o *orderedBuf) checkDrained() error {
	if o.next != o.expected {
		return fmt.Errorf("twigm: internal: %d ordered results undelivered at end of document (next=%d expected=%d)",
			o.expected-o.next, o.next, o.expected)
	}
	return nil
}
