package twigm

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dom"
	"repro/internal/sax"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

// runQuery evaluates query over doc with the given options and returns the
// result values in document order.
func runQuery(t *testing.T, doc, query string, opts Options) []string {
	t.Helper()
	prog := MustCompile(query)
	results, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), opts)
	if err != nil {
		t.Fatalf("%s over %q: %v", query, doc, err)
	}
	return Values(results)
}

// oracle evaluates via the DOM evaluator.
func oracle(t *testing.T, doc, query string) []string {
	t.Helper()
	d := dom.MustBuildString(doc)
	nodes := dom.EvalString(d, query)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Serialize())
	}
	return out
}

// assertAgainstOracle checks TwigM output (all option combinations) equals
// the DOM oracle's.
func assertAgainstOracle(t *testing.T, doc, query string) {
	t.Helper()
	want := oracle(t, doc, query)
	for _, opts := range []Options{
		{},
		{Ordered: true},
		{DisablePrune: true},
		{DisableEagerPropagation: true},
		{DisablePrune: true, DisableEagerPropagation: true, Ordered: true},
	} {
		got := runQuery(t, doc, query, opts)
		if !equalStrings(got, want) {
			t.Fatalf("%s over %q (opts %+v):\n got %q\nwant %q", query, doc, opts, got, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperWorkedExample(t *testing.T) {
	// Figure 1 document, figure 3 machine: the nine pattern matches of
	// cell₈ collapse to one solution through ⟨section₂, table₅, cell₈⟩.
	got := runQuery(t, datagen.PaperFigure1, datagen.PaperQuery, Options{})
	if len(got) != 1 || got[0] != "<cell> A </cell>" {
		t.Fatalf("paper example: got %q", got)
	}
	assertAgainstOracle(t, datagen.PaperFigure1, datagen.PaperQuery)
}

func TestPaperExamplePredicateVariants(t *testing.T) {
	for _, q := range []string{
		"//section//table//cell",
		"//section[author]//table//cell",
		"//section//table[position]//cell",
		"//section[author]//table[position]//cell",
		"//section[author]//table[position]//table[position]//cell",
		"//section[author and position]//table//cell", // no section has both
		"//table[position]",
		"//table[cell]",
		"//section[table]",
		"//book//position",
	} {
		assertAgainstOracle(t, datagen.PaperFigure1, q)
	}
}

func TestChildVsDescendant(t *testing.T) {
	doc := "<a><b><a><c/></a></b><c/></a>"
	for _, q := range []string{"/a/c", "//a/c", "//a//c", "/a//c", "//b//c", "//b/c"} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestRecursiveSelfNesting(t *testing.T) {
	doc := "<a><a><a><b/></a></a></a>"
	for _, q := range []string{"//a//a", "//a/a", "//a//b", "//a/a/a", "//a[b]", "//a//a[b]", "//a[a]"} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestWildcards(t *testing.T) {
	doc := `<r><a><x/></a><b><x/><y/></b></r>`
	for _, q := range []string{"//*", "/r/*", "//*[x]", "//*/x", "/*/*", "//*[x and y]"} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestAttributes(t *testing.T) {
	doc := `<r><a id="1" x="p"><b id="2"/></a><a/><a id="3"/></r>`
	for _, q := range []string{
		"//a/@id", "//a//@id", "//a[@id]", "//a[@id='1']", "//a[@id='1']/b/@id",
		"//a[@id and @x]", "//a[@id or @x]", "//@id", "//a[@id!='1']",
		"//a[@id>1]", "//a[@id>=1]", "//a[@id<3]",
	} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestTextNodes(t *testing.T) {
	doc := "<r><a>x<b>inner</b>y</a><a>z</a><a/></r>"
	for _, q := range []string{
		"//a/text()", "//a//text()", "//a[text()]", "//a[text()='x']",
		"//a[text()='z']", "//r//text()", "//b/text()",
	} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestValuePredicates(t *testing.T) {
	doc := "<r><p><price>10</price><name>ape</name></p><p><price>30</price><name>bee</name></p></r>"
	for _, q := range []string{
		"//p[price=10]", "//p[price<20]", "//p[price>20]", "//p[price>=10]",
		"//p[price<=10]", "//p[price!=10]", "//p[name='ape']", "//p[name!='ape']",
		"//p[price<20 and name='ape']", "//p[price<20 or name='bee']",
		"//p[price<20]/name", "//p[name='bee']/price",
	} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestSelfComparison(t *testing.T) {
	doc := "<r><a>x</a><a>y<b>q</b>z</a></r>"
	for _, q := range []string{"//a[.='x']", "//a[.='yqz']", "//a[. = 'nope']", "//b[.='q']"} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestNestedPredicates(t *testing.T) {
	doc := "<r><a><b><c/></b></a><a><b/></a><a><d><b><c/></b></d></a></r>"
	for _, q := range []string{
		"//a[b/c]", "//a[b[c]]", "//a[.//c]", "//a[.//b/c]", "//a[d/b[c]]",
		"//a[b/c or d]", "//a[(b or d) and .//c]",
	} {
		assertAgainstOracle(t, doc, q)
	}
}

// The predicate arrives after the candidate in document order: predicates
// resolving late must still confirm earlier candidates (the paper's central
// challenge).
func TestLateArrivingPredicate(t *testing.T) {
	doc := "<r><a><c>hit</c><p/></a><a><c>miss</c></a></r>"
	assertAgainstOracle(t, doc, "//a[p]/c")
	// Late predicate two levels up.
	doc2 := "<r><s><t><c>x</c></t><auth/></s></r>"
	assertAgainstOracle(t, doc2, "//s[auth]//t//c")
}

// A candidate must survive the failure of an inner pattern match when an
// outer one still qualifies (paper example: table₆/table₇ fail, table₅
// wins). Exercises the all-compatible-entries fan-out.
func TestInnerMatchFailsOuterWins(t *testing.T) {
	doc := "<r><t><t><t><c/></t></t><p/></t></r>"
	assertAgainstOracle(t, doc, "//t[p]//c")
	// And the reverse: inner wins while outer fails.
	doc2 := "<r><t><t><c/><p/></t></t></r>"
	assertAgainstOracle(t, doc2, "//t[p]//c")
}

// Child-axis spine with predicate: a candidate confirmed via one chain must
// not leak through an unrelated chain (the relay-unsoundness regression —
// see DESIGN.md §5).
func TestChildAxisNoCrossChainLeak(t *testing.T) {
	// a1 has p and a real chain b1/c1. a2 (no p) has chain b2/c2.
	// Solutions: only c1.
	doc := "<a><p/><b><c/></b><a><b><c><z/></c></b></a></a>"
	want := oracle(t, doc, "//a[p]/b/c")
	if len(want) != 1 || want[0] != "<c/>" {
		t.Fatalf("oracle sanity: %q", want)
	}
	assertAgainstOracle(t, doc, "//a[p]/b/c")
}

func TestMixedAxesDeep(t *testing.T) {
	doc := "<r><a><x><b><y><c/></y></b></x></a><a><b><c/></b></a></r>"
	for _, q := range []string{
		"//a//b//c", "//a/b/c", "//a//b/c", "//a/b//c",
		"//a[.//c]//b", "//a//b[y]//c", "//a//b[y/c]",
	} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestRootEdgeCases(t *testing.T) {
	doc := `<a id="r">x<b id="i">y</b></a>`
	for _, q := range []string{
		"/a", "/b", "//a", "/a/@id", "//@id", "//text()", "/a/text()",
		"/*", "//*",
	} {
		assertAgainstOracle(t, doc, q)
	}
}

func TestCountOnlyMode(t *testing.T) {
	prog := MustCompile("//a")
	doc := "<r><a/><a><a/></a></r>"
	results, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("count-only results = %d, want 3", len(results))
	}
	for _, res := range results {
		if res.Value != "" {
			t.Fatalf("count-only result has value %q", res.Value)
		}
	}
	if stats.PeakBufferedBytes != 0 {
		t.Fatalf("count-only buffered %d bytes", stats.PeakBufferedBytes)
	}
}

func TestOrderedDelivery(t *testing.T) {
	// First candidate (outer a) confirms later than the second (inner b
	// closes first)... construct: //a[p]/b where outer's p arrives last.
	doc := "<r><a><b>one</b><b>two</b><p/></a></r>"
	prog := MustCompile("//a[p]/b")
	var seqs []int64
	_, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)),
		Options{Ordered: true, Emit: func(res Result) error {
			seqs = append(seqs, res.Seq)
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Fatalf("ordered seqs = %v", seqs)
	}
}

func TestIncrementalConfirmation(t *testing.T) {
	// With predicates satisfied before the candidate opens, confirmation
	// happens at the candidate's start event, long before end of stream
	// (§1 requirement 2).
	doc := "<r><a><p/><b>x</b></a>" + strings.Repeat("<pad/>", 100) + "</r>"
	prog := MustCompile("//a[p]/b")
	results, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	if results[0].ConfirmedAt >= stats.Events/2 {
		t.Fatalf("confirmation not incremental: at event %d of %d", results[0].ConfirmedAt, stats.Events)
	}
	if results[0].DeliveredAt >= stats.Events/2 {
		t.Fatalf("delivery not incremental: at event %d of %d", results[0].DeliveredAt, stats.Events)
	}
}

func TestEagerAblationDelaysButPreserves(t *testing.T) {
	doc := "<r><a><p/><b>x</b></a></r>"
	prog := MustCompile("//a[p]/b")
	run := func(opts Options) Result {
		results, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), opts)
		if err != nil || len(results) != 1 {
			t.Fatalf("results=%v err=%v", results, err)
		}
		return results[0]
	}
	eager := run(Options{})
	lazy := run(Options{DisableEagerPropagation: true})
	if eager.Value != lazy.Value {
		t.Fatalf("ablation changed result: %q vs %q", eager.Value, lazy.Value)
	}
	if lazy.ConfirmedAt <= eager.ConfirmedAt {
		t.Fatalf("lazy confirmation (%d) should be later than eager (%d)", lazy.ConfirmedAt, eager.ConfirmedAt)
	}
}

func TestPruneStats(t *testing.T) {
	doc := `<r><a id="no"/><a id="yes"/><a/></r>`
	prog := MustCompile("//a[@id='yes']")
	_, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedPushes != 2 { // id="no" and missing id
		t.Fatalf("pruned = %d, want 2", stats.PrunedPushes)
	}
	_, stats2, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{DisablePrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.PrunedPushes != 0 || stats2.Pushes <= stats.Pushes {
		t.Fatalf("prune-disabled pushes = %d (pruned run %d)", stats2.Pushes, stats.Pushes)
	}
}

func TestEmitErrorAborts(t *testing.T) {
	prog := MustCompile("//a")
	doc := "<r><a/><a/></r>"
	n := 0
	_, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)),
		Options{Emit: func(Result) error {
			n++
			return &CompileError{Msg: "stop now"}
		}})
	if err == nil || !strings.Contains(err.Error(), "stop now") {
		t.Fatalf("err = %v", err)
	}
	if n != 1 {
		t.Fatalf("emit called %d times after error", n)
	}
}

func TestExactlyOnceOnFanOut(t *testing.T) {
	// b is a descendant of three nested a's; all three root entries are
	// satisfied — b must be emitted once.
	doc := "<a><a><a><b/></a></a></a>"
	got := runQuery(t, doc, "//a//b", Options{})
	if len(got) != 1 {
		t.Fatalf("fan-out duplicated result: %v", got)
	}
	// And with predicates on all levels.
	doc2 := "<a><p/><a><p/><a><p/><b/></a></a></a>"
	got2 := runQuery(t, doc2, "//a[p]//b", Options{})
	if len(got2) != 1 {
		t.Fatalf("predicated fan-out duplicated result: %v", got2)
	}
}

func TestFragmentSerializationMatchesOracle(t *testing.T) {
	doc := `<r><a x="1 &amp; 2"><b>t&lt;u</b><c/>tail</a></r>`
	assertAgainstOracle(t, doc, "//a")
	assertAgainstOracle(t, doc, "//a/b")
	assertAgainstOracle(t, doc, "//a/c")
}

func TestStatsSanity(t *testing.T) {
	prog := MustCompile(datagen.PaperQuery)
	_, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(datagen.PaperFigure1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushes != stats.Pops {
		t.Fatalf("pushes %d != pops %d", stats.Pushes, stats.Pops)
	}
	if stats.CandidatesCreated != stats.CandidatesEmitted+stats.CandidatesDropped {
		t.Fatalf("candidate accounting: created %d, emitted %d, dropped %d",
			stats.CandidatesCreated, stats.CandidatesEmitted, stats.CandidatesDropped)
	}
	if stats.MaxDepth != 8 {
		t.Fatalf("max depth = %d, want 8", stats.MaxDepth)
	}
	if stats.CandidatesCreated != 1 { // only cell₈
		t.Fatalf("candidates created = %d, want 1", stats.CandidatesCreated)
	}
}

func TestBuilderLinear(t *testing.T) {
	// NumNodes equals query size for a spectrum of queries.
	for _, q := range []string{"//a", "//a/b/c", "//a[b][c]//d[e/f]", datagen.PaperQuery} {
		parsed := xpath.MustParse(q)
		prog, err := Compile(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if prog.NumNodes() != parsed.Size() {
			t.Fatalf("%s: machine nodes %d != query size %d", q, prog.NumNodes(), parsed.Size())
		}
	}
}

func TestDescribe(t *testing.T) {
	prog := MustCompile(datagen.PaperQuery)
	desc := prog.Describe()
	for _, want := range []string{"=section", "-author", "=table", "-position", "=cell *"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, desc)
		}
	}
}

func TestTooManyPredicateBranches(t *testing.T) {
	var b strings.Builder
	b.WriteString("//a")
	for i := 0; i < 70; i++ {
		b.WriteString("[x]")
	}
	q, err := xpath.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q); err == nil {
		t.Fatal("expected CompileError for >64 branches")
	}
}

func TestReusableProgram(t *testing.T) {
	prog := MustCompile("//a")
	for i := 0; i < 3; i++ {
		results, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader("<r><a/></r>")), Options{})
		if err != nil || len(results) != 1 {
			t.Fatalf("iteration %d: results=%v err=%v", i, results, err)
		}
	}
}

func TestStdDriverFrontEnd(t *testing.T) {
	prog := MustCompile("//a[b]/c")
	doc := "<r><a><b/><c>k</c></a></r>"
	r1, _, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Collect(prog, sax.NewStdDriver(strings.NewReader(doc)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(Values(r1), Values(r2)) {
		t.Fatalf("front-ends disagree: %v vs %v", Values(r1), Values(r2))
	}
}

func TestDeepRecursionStability(t *testing.T) {
	// 500 nested a's: quadratic flag propagation but no blowup, no
	// duplicate results.
	const n = 500
	doc := strings.Repeat("<a>", n) + "<b/>" + strings.Repeat("</a>", n)
	got := runQuery(t, doc, "//a//a//b", Options{})
	if len(got) != 1 {
		t.Fatalf("results = %d, want 1", len(got))
	}
}

func TestMemoryBoundedOnWideDocument(t *testing.T) {
	// Many sequential elements: the recorder buffer must reset between
	// results, keeping the high-water mark at a single fragment.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 1000; i++ {
		b.WriteString("<a><x>payload</x></a>")
	}
	b.WriteString("</r>")
	prog := MustCompile("//a")
	_, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(b.String())), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakBufferedBytes > 100 {
		t.Fatalf("recorder high-water %d bytes; buffer is not resetting", stats.PeakBufferedBytes)
	}
}
