package twigm

import (
	"sort"

	"repro/internal/sax"
)

// Collect runs the machine over a full document and returns every solution.
// It is the batch convenience API; streaming consumers should wire their
// own Options.Emit and drive the Run as a sax.Handler.
func Collect(p *Program, d sax.Driver, opts Options) ([]Result, Stats, error) {
	var results []Result
	userEmit := opts.Emit
	opts.Emit = func(res Result) error {
		results = append(results, res)
		if userEmit != nil {
			return userEmit(res)
		}
		return nil
	}
	run := p.Start(opts)
	if err := d.Run(run); err != nil {
		return nil, run.Stats(), err
	}
	return results, run.Stats(), nil
}

// Values extracts result values, sorted into document order (by Seq) — a
// convenience for comparing engines regardless of delivery order.
func Values(results []Result) []string {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	out := make([]string, len(sorted))
	for i, res := range sorted {
		out[i] = res.Value
	}
	return out
}
