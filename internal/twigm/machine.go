package twigm

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sax"
	"repro/internal/xpath"
)

// retained returns v, copied when the producer's event strings are transient
// (Options.CopyValues): a candidate's value outlives the delivery that
// produced it, and Result.Value carries it out of the machine entirely.
// Outlined so the hot handlers stay allocation-free on the stable-string
// configurations the allocation discipline is proven on.
func (r *Run) retained(v string) string {
	if !r.opts.CopyValues {
		return v
	}
	return strings.Clone(v)
}

// Result is one query solution, delivered through Options.Emit.
type Result struct {
	// Seq is the creation order of the candidate, which equals the
	// document order of the result node.
	Seq int64
	// NodeOffset is a document-order identity for the result node,
	// derived from the byte offset of the token that produced it
	// (attributes use their owner's offset plus the attribute index, a
	// position inside the owner's tag, so offsets stay unique and
	// document-ordered across result kinds). Two results from different
	// machines over the same stream refer to the same node iff their
	// NodeOffsets are equal — the identity that union evaluation
	// deduplicates on.
	NodeOffset int64
	// Value is the serialized result: the XML fragment for element
	// results, the attribute value for attribute results, the text
	// content for text() results. Empty in CountOnly mode.
	Value string
	// ConfirmedAt and DeliveredAt are the indices of the SAX events at
	// which the solution was proven (all predicates satisfied up to the
	// query root) and at which it was handed to Emit. Their difference,
	// and their distance from the end of the stream, quantify the
	// incremental-delivery behaviour of §1 requirement 2 (experiment E8).
	ConfirmedAt int64
	DeliveredAt int64
}

// Options configures a Run.
type Options struct {
	// Emit receives each query solution. A nil Emit just counts results.
	// Returning an error aborts the stream.
	Emit func(Result) error
	// CountOnly disables fragment recording: results are detected and
	// counted, but Value stays empty. This is the configuration for the
	// paper's memory experiment (E2), where only @id values are emitted.
	CountOnly bool
	// Ordered delivers results in document order. Without it, results
	// are delivered the moment they are proven (confirmation order),
	// which may run ahead of document order when an early candidate's
	// predicates resolve late.
	Ordered bool
	// CopyValues makes the run copy event-derived strings (text content,
	// attribute values) the moment a candidate retains one: candidates
	// outlive the delivery that produced them, and Result.Value carries
	// the string out of the machine entirely. Required when the producer
	// recycles the buffers backing event strings between deliveries (the
	// sax.BatchHandler contract); with stable producer strings it only
	// costs harmless extra copies. Comparisons and recorded fragments are
	// unaffected either way — they never retain the event's string.
	CopyValues bool
	// DisablePrune turns off the push-time pruning of entries whose
	// attribute predicates already failed (ablation benchmark).
	DisablePrune bool
	// DisableEagerPropagation delays satisfaction propagation to
	// end-element time even when an entry's predicates are already
	// satisfied while it is open (ablation benchmark; increases result
	// latency but must not change results).
	DisableEagerPropagation bool
	// Trace, when non-nil, receives a human-readable log of every
	// machine transition (pushes, pops, flag propagations, candidate
	// lifecycle) — the demonstration view of the system. Evaluation with
	// tracing is substantially slower; leave nil in production.
	Trace io.Writer
}

// Stats are live counters of a Run, exposing the quantities the paper's
// claims are stated in terms of.
type Stats struct {
	Events   int64 // SAX events processed
	Elements int64 // start-element events
	Pushes   int64 // stack entries created
	Pops     int64 // stack entries removed
	// FlagProps counts flag propagations to parent entries: the unit of
	// work of the compact encoding (bounded by |D|·|Q|·depth).
	FlagProps int64
	// CandMoves counts candidate hand-offs between entries.
	CandMoves          int64
	CandidatesCreated  int64
	CandidatesEmitted  int64
	CandidatesDropped  int64
	PrunedPushes       int64
	PeakStackEntries   int // high-water mark of live entries across all stacks
	PeakLiveCandidates int
	PeakBufferedBytes  int // high-water mark of recorder memory
	MaxDepth           int
}

// candState tracks a candidate's lifecycle.
type candState uint8

const (
	candPending candState = iota
	candConfirmed
	candDropped
)

// candidate is a potential query solution: an XML node that matched the
// whole spine structurally, buffered until its ancestors' predicates are
// decided (§1: "we need to record them"). One candidate exists per result
// node regardless of how many pattern matches involve it; entries hold
// references, and the confirmed latch makes emission exactly-once.
// Candidates are allocated from the Run's block arena and reclaimed
// wholesale by Reset — by end of document every candidate has resolved.
type candidate struct {
	seq         int64
	offset      int64 // document-order node identity (Result.NodeOffset)
	refs        int
	state       candState
	open        bool // element still being recorded (a recorder.active slot exists)
	value       string
	confirmedAt int64
}

// entry is one stack entry: an open XML element that path-matches the
// machine node, with the paper's triplet (level, match-status bitset,
// candidate solutions). Popped entries keep their slice capacity inside the
// stack's backing array, so steady-state pushes allocate nothing.
type entry struct {
	level     int
	flags     uint64
	satisfied bool
	cands     []*candidate
	textBuf   []byte // string-value accumulator (valueNodes only)
}

// candBlockSize is the arena granularity for candidate allocation. Blocks
// are retained across Reset, so a long-lived Run reaches a steady state
// where no candidate allocation happens at all.
const candBlockSize = 64

// Run is a TwigM machine instance processing one XML stream. It implements
// sax.Handler. Create with Program.Start; Reset prepares the same Run (with
// all of its warmed-up stacks, arenas and buffers) for another stream.
//
//vitex:pooled
type Run struct {
	prog *Program //vitex:keep compiled program identity, immutable
	opts Options

	stacks  [][]entry // indexed by node id; nil for attr/text nodes
	nextSeq int64
	count   int64
	stats   Stats

	liveEntries int
	liveCands   int

	// candidate arena: blocks[blockIdx][blockUsed] is the next free slot.
	candBlocks [][]candidate //vitex:keep warmed arena blocks, reclaimed wholesale by the index reset
	blockIdx   int
	blockUsed  int

	rec     recorder
	ordered orderedBuf
	trace   *tracer
	done    bool
	failed  error

	// anchor is the shared prefix stack an anchored run's root node checks
	// against (see shared.go); nil for unanchored programs. Bound per
	// stream via BindAnchor, it survives Reset.
	anchor *AnchorStack //vitex:keep rebound per stream via BindAnchor, survives Reset by contract
}

// Start instantiates the machine for a new stream.
func (p *Program) Start(opts Options) *Run {
	r := &Run{prog: p}
	r.stacks = make([][]entry, len(p.nodes))
	r.applyOptions(opts)
	return r
}

// Reset prepares the Run for another stream with fresh options, keeping
// every warmed-up allocation: stack backing arrays, per-entry candidate and
// string-value buffers, the candidate arena, the recorder buffer and the
// ordered-delivery window.
func (r *Run) Reset(opts Options) {
	for i := range r.stacks {
		r.stacks[i] = r.stacks[i][:0]
	}
	r.nextSeq = 0
	r.count = 0
	r.stats = Stats{}
	r.liveEntries = 0
	r.liveCands = 0
	r.blockIdx = 0
	r.blockUsed = 0
	r.rec.reset()
	r.ordered.reset()
	r.done = false
	r.failed = nil
	r.applyOptions(opts)
}

func (r *Run) applyOptions(opts Options) {
	r.opts = opts
	r.rec.countOnly = opts.CountOnly
	r.trace = nil
	if opts.Trace != nil {
		r.trace = &tracer{w: opts.Trace}
	}
}

// Count returns the number of solutions delivered so far.
func (r *Run) Count() int64 { return r.count }

// Stats returns a snapshot of the run's counters.
func (r *Run) Stats() Stats { return r.stats }

// ---- routing hooks (consumed by internal/engine) ----

// SetClock overrides the run's event counter. Routed dispatch skips events
// a machine is not subscribed to; syncing the clock to the shared scan's
// event index before each delivery keeps ConfirmedAt/DeliveredAt identical
// to a run that saw every event.
func (r *Run) SetClock(events int64) { r.stats.Events = events }

// HandleRouted is the batch-feed entry point of routed dispatch (serial and
// sharded): it delivers ev with the run's event clock pinned to the shared
// scan's 1-based index for this event, so ConfirmedAt/DeliveredAt — and the
// DeliveredAt stamped on results flushed by the ordered re-sequencer during
// this delivery — are identical to a run that saw every event.
//
//vitex:hotpath
func (r *Run) HandleRouted(ev *sax.Event, eventIndex int64) error {
	r.stats.Events = eventIndex - 1
	return r.HandleEvent(ev)
}

// LiveEntries reports the number of open stack entries. A machine with none
// (and no active recording) has nothing to pop, so end-element events need
// not be routed to it.
func (r *Run) LiveEntries() int { return r.liveEntries }

// Recording reports whether a result fragment is being serialized, in which
// case the machine must see every event regardless of name subscriptions —
// fragments contain arbitrary descendant markup.
func (r *Run) Recording() bool { return len(r.rec.active) > 0 }

// WantsText reports whether the next text event could matter to this
// machine: a fragment is recording, a string-value accumulator is open, or
// a text() node's parent (or the document root, for absolute text queries)
// has a live entry. It only changes state inside HandleEvent, so a router
// may cache it between deliveries.
//
//vitex:hotpath
func (r *Run) WantsText() bool {
	if len(r.rec.active) > 0 {
		return true
	}
	for _, m := range r.prog.valueNodes {
		if len(r.stacks[m.id]) > 0 {
			return true
		}
	}
	for _, m := range r.prog.textNodes {
		if m.parent == nil {
			return true
		}
		if len(r.stacks[m.parent.id]) > 0 {
			return true
		}
	}
	return false
}

// HandleEvent implements sax.Handler.
//
//vitex:hotpath
func (r *Run) HandleEvent(ev *sax.Event) error {
	if r.failed != nil {
		return r.failed
	}
	r.stats.Events++
	switch ev.Kind {
	case sax.StartElement:
		r.startElement(ev)
	case sax.EndElement:
		r.endElement(ev)
	case sax.Text:
		r.text(ev)
	case sax.EndDocument:
		r.endDocument()
	}
	return r.failed
}

// fail records a terminal error (emit callback failure or internal
// invariant violation).
func (r *Run) fail(err error) {
	if r.failed == nil {
		r.failed = err
	}
}

// ---- event dispatch ----

// elemNodes resolves the element machine nodes whose LOCAL name matches the
// event: a slice index when the event carries a symbol ID, the name map
// otherwise. Prefixed name tests re-check their prefix in tryPush.
//
//vitex:hotpath
func (r *Run) elemNodes(ev *sax.Event) []*node {
	if id := ev.NameID; id != sax.SymNone {
		if id > 0 && int(id) < len(r.prog.elemByID) {
			return r.prog.elemByID[id]
		}
		return nil
	}
	return r.prog.elemIndex[ev.LocalName()]
}

// nameMatches reports whether the event's element name satisfies m's name
// test: wildcard, or equal local names (by symbol ID when both sides carry
// one) plus an equal prefix when the test is prefixed.
//
//vitex:hotpath
func nameMatches(m *node, ev *sax.Event) bool {
	if m.name == "*" {
		return true
	}
	if m.nameID != sax.SymNone && ev.NameID != sax.SymNone {
		if m.nameID != ev.NameID {
			return false
		}
	} else if m.local != ev.LocalName() {
		return false
	}
	return m.prefix == "" || m.prefix == ev.PrefixName()
}

// attrNodes resolves the attribute machine nodes whose LOCAL name matches
// the attribute. Callers must still filter with attrMatches (prefix tests,
// namespace declarations).
//
//vitex:hotpath
func (r *Run) attrNodes(a *sax.Attr) []*node {
	if id := a.NameID; id != sax.SymNone {
		if id > 0 && int(id) < len(r.prog.attrByID) {
			return r.prog.attrByID[id]
		}
		return nil
	}
	return r.prog.attrIndex[a.LocalName()]
}

// attrMatches reports whether attribute a is one machine node m names.
// Namespace declarations (xmlns, xmlns:p) never match: they are namespace
// machinery, not data.
//
//vitex:hotpath
func attrMatches(a *sax.Attr, m *node) bool {
	if a.IsNamespaceDecl() {
		return false
	}
	if a.NameID != sax.SymNone && m.nameID != sax.SymNone {
		if a.NameID != m.nameID {
			return false
		}
	} else if a.LocalName() != m.local {
		return false
	}
	return m.prefix == "" || m.prefix == a.PrefixName()
}

// ---- event processing ----

//vitex:hotpath
func (r *Run) startElement(ev *sax.Event) {
	r.stats.Elements++
	if ev.Depth > r.stats.MaxDepth {
		r.stats.MaxDepth = ev.Depth
	}
	named := r.elemNodes(ev)
	// Phase 1: push entries, parents never depend on same-event pushes
	// (axis checks use strict level inequalities), so list order is fine.
	for _, m := range named {
		r.tryPush(m, ev)
	}
	for _, m := range r.prog.wildElems {
		r.tryPush(m, ev)
	}
	// Phase 2: attribute machine nodes. Attributes of this element can
	// satisfy attribute query nodes whose parent has a compatible entry
	// — including the entries just pushed (child axis: the owner
	// element itself; descendant axis: self-or-ancestor owners).
	for ai := range ev.Attrs {
		a := &ev.Attrs[ai]
		for _, m := range r.attrNodes(a) {
			if !attrMatches(a, m) {
				continue
			}
			r.attrEvent(m, a.Value, ai, ev)
		}
	}
	// Phase 3: initial satisfaction checks for entries pushed this event
	// (their flags may already be complete: leaf nodes, attribute-only
	// predicates).
	for _, m := range named {
		r.checkTop(m, ev.Depth)
	}
	for _, m := range r.prog.wildElems {
		r.checkTop(m, ev.Depth)
	}
	// Phase 4: recording.
	r.rec.startElement(r, ev)
}

// tryPush pushes an entry for element machine node m if the event satisfies
// m's name test and axis.
//
//vitex:hotpath
func (r *Run) tryPush(m *node, ev *sax.Event) {
	if !nameMatches(m, ev) {
		return
	}
	d := ev.Depth
	if m.parent == nil {
		if r.prog.anchored {
			// Axis from the shared prefix: an axis-compatible open trie
			// entry must exist (the trie pushed this event's entries
			// before any machine delivery).
			if !r.anchor.CompatElem(m.axis, d) {
				return
			}
		} else if m.axis == xpath.Child && d != 1 {
			// Axis from the document node.
			return
		}
	} else {
		if !r.parentCompatExists(m, d) {
			return
		}
	}
	if m.prunable && !r.opts.DisablePrune {
		// Child-axis attribute predicates are decidable now; skip the
		// push when the condition is already dead (the entry could
		// never be satisfied, and descendants lose nothing: any
		// lower compatible entries remain available to them).
		flags := r.attrFlagsAtPush(m, ev)
		if m.cond.deadAtPush(flags) {
			r.stats.PrunedPushes++
			if r.trace.on() {
				r.trace.prune(m, d)
			}
			return
		}
	}
	s := r.stacks[m.id]
	if len(s) < cap(s) {
		// Reuse the popped slot in place, keeping its cands and textBuf
		// backing arrays.
		s = s[:len(s)+1]
		e := &s[len(s)-1]
		e.level = d
		e.flags = 0
		e.satisfied = false
		e.cands = e.cands[:0]
		e.textBuf = e.textBuf[:0]
	} else {
		s = append(s, entry{level: d})
	}
	r.stacks[m.id] = s
	r.stats.Pushes++
	if r.trace.on() {
		r.trace.push(m, d)
	}
	r.liveEntries++
	if r.liveEntries > r.stats.PeakStackEntries {
		r.stats.PeakStackEntries = r.liveEntries
	}
	if m.isOutput {
		// Every structural match of the output path becomes a
		// candidate solution, parked on its own entry until this
		// node's predicates resolve.
		c := r.newCandidate(ev.Offset)
		r.rec.register(r, c, d)
		top := &r.stacks[m.id][len(r.stacks[m.id])-1]
		top.cands = append(top.cands, c)
		c.refs++
	}
}

// attrFlagsAtPush computes the flag bits of child-axis attribute children
// given this event's attributes (used for pruning; the attrEvent phase sets
// the same bits on the pushed entry).
//
//vitex:hotpath
func (r *Run) attrFlagsAtPush(m *node, ev *sax.Event) uint64 {
	var flags uint64
	for _, c := range m.children {
		if c.kind != xpath.Attribute || c.axis != xpath.Child {
			continue
		}
		for ai := range ev.Attrs {
			a := &ev.Attrs[ai]
			if attrMatches(a, c) {
				if cmpOK(c, a.Value) {
					flags |= 1 << uint(c.childIdx)
				}
				break
			}
		}
	}
	return flags
}

// cmpOK evaluates an attribute or text machine node's inline comparison.
//
//vitex:hotpath
func cmpOK(m *node, value string) bool {
	return m.cmp == nil || m.cmp.Eval(value)
}

// parentCompatExists reports whether the parent stack holds an entry
// axis-compatible with an element at depth d. Open entries in a stack have
// strictly increasing levels and are all ancestors of the current parse
// point, so level arithmetic is sound.
//
//vitex:hotpath
func (r *Run) parentCompatExists(m *node, d int) bool {
	s := r.stacks[m.parent.id]
	if len(s) == 0 {
		return false
	}
	if m.axis == xpath.Descendant {
		return s[0].level < d
	}
	// Child axis: an entry at exactly d-1 is the top entry or the one
	// just below a same-event top.
	for i := len(s) - 1; i >= 0 && s[i].level >= d-1; i-- {
		if s[i].level == d-1 {
			return true
		}
	}
	return false
}

// attrEvent handles one attribute of the current start-element against one
// attribute machine node: the attribute node is instantaneously satisfied
// (its comparison is final), so it immediately propagates its flag — and its
// candidate, if it is the output node — to all compatible parent entries.
//
//vitex:hotpath
func (r *Run) attrEvent(m *node, value string, attrIdx int, ev *sax.Event) {
	if !cmpOK(m, value) {
		return
	}
	d := ev.Depth
	if m.parent == nil {
		if r.prog.anchored {
			// Residual '@a' anchored at the shared prefix. Seq parity with
			// the unshared machine requires creating the candidate for
			// every matching attribute — the unshared machine allocates
			// one and only then discovers no axis-compatible prefix entry
			// exists (propagate finds nothing, the candidate drops,
			// consuming a Seq number). Confirmation needs an open trie
			// entry for the owner element (child axis) or a
			// self-or-ancestor owner (descendant); a residual root
			// attribute is always the output node (attributes end paths).
			if m.isOutput {
				c := r.newCandidate(ev.Offset + 1 + int64(attrIdx))
				c.value = r.retained(value)
				if r.anchor.CompatAttr(m.axis, d) {
					r.confirm(c)
				}
				r.resolveIfDead(c)
			}
			return
		}
		if m.axis == xpath.Child {
			// Query of the form /@a, which never matches: the document
			// node has no attributes ('//@a' descends).
			return
		}
		if m.isOutput {
			c := r.newCandidate(ev.Offset + 1 + int64(attrIdx))
			c.value = r.retained(value)
			r.confirm(c)
			r.resolveIfDead(c)
		}
		return
	}
	var c *candidate
	if m.isOutput {
		c = r.newCandidate(ev.Offset + 1 + int64(attrIdx))
		c.value = r.retained(value)
	}
	r.propagate(m, d, c)
	if c != nil {
		r.resolveIfDead(c)
	}
}

// text handles a character-data event: it extends the string-values of open
// value-carrying entries, and matches text() machine nodes (each maximal
// run is one text node; comparisons on runs are final immediately).
//
//vitex:hotpath
func (r *Run) text(ev *sax.Event) {
	r.rec.text(r, ev)
	for _, m := range r.prog.valueNodes {
		s := r.stacks[m.id]
		for i := range s {
			s[i].textBuf = append(s[i].textBuf, ev.Text...)
		}
	}
	for _, m := range r.prog.textNodes {
		if !cmpOK(m, ev.Text) {
			continue
		}
		if m.parent == nil {
			if r.prog.anchored {
				// Residual 'text()' anchored at the shared prefix. The
				// unshared machine sees text only while a prefix entry is
				// open (the engine's WantsText gate) and then creates a
				// candidate unconditionally, dropping it when no entry is
				// axis-compatible; Seq parity requires reproducing both
				// steps against the trie stack. A residual root text()
				// is always the output node (text() ends paths).
				if m.isOutput && r.anchor.Open() {
					c := r.newCandidate(ev.Offset)
					c.value = r.retained(ev.Text)
					if r.anchor.CompatElem(m.axis, ev.Depth) {
						r.confirm(c)
					}
					r.resolveIfDead(c)
				}
				continue
			}
			// //text(): every text node is a solution.
			if m.axis == xpath.Descendant && m.isOutput {
				c := r.newCandidate(ev.Offset)
				c.value = r.retained(ev.Text)
				r.confirm(c)
				r.resolveIfDead(c)
			}
			continue
		}
		var c *candidate
		if m.isOutput {
			c = r.newCandidate(ev.Offset)
			c.value = r.retained(ev.Text)
		}
		r.propagate(m, ev.Depth, c)
		if c != nil {
			r.resolveIfDead(c)
		}
	}
}

//vitex:hotpath
func (r *Run) endElement(ev *sax.Event) {
	// Recording first: fragments of candidates rooted at this element
	// must be complete before pop-time satisfaction can deliver them.
	r.rec.endElement(r, ev)
	d := ev.Depth
	// Process children before parents (reverse topological id order) so
	// pop-time satisfactions propagate to parent entries that pop in
	// this same event... parent entries popping now are at level d and
	// are never axis-compatible targets of a level-d child anyway; the
	// order is for clarity.
	for i := len(r.prog.nodes) - 1; i >= 0; i-- {
		m := r.prog.nodes[i]
		if m.kind != xpath.Element {
			continue
		}
		s := r.stacks[m.id]
		if len(s) == 0 || s[len(s)-1].level != d {
			continue
		}
		e := &s[len(s)-1]
		if !e.satisfied {
			// Finalize: self-comparisons now have the complete
			// string-value.
			if m.cond.eval(e.flags, e, true) {
				r.onSatisfied(m, e)
			}
		}
		if !e.satisfied {
			// The entry dies unsatisfied: drop its candidate refs.
			for _, c := range e.cands {
				c.refs--
				r.stats.CandMoves++
				r.resolveIfDead(c)
			}
		}
		if r.trace.on() {
			r.trace.pop(m, e)
		}
		r.stacks[m.id] = s[:len(s)-1]
		r.stats.Pops++
		r.liveEntries--
	}
}

func (r *Run) endDocument() {
	r.done = true
	if r.liveEntries != 0 {
		r.fail(fmt.Errorf("twigm: internal: %d entries live at end of document", r.liveEntries))
		return
	}
	if err := r.ordered.checkDrained(); err != nil {
		r.fail(err)
	}
}

// textValue returns the accumulated string-value of an entry.
func (e *entry) textValue() string {
	return string(e.textBuf)
}

// checkTop runs the initial satisfaction check on an entry pushed this
// event (top of stack at level d).
//
//vitex:hotpath
func (r *Run) checkTop(m *node, d int) {
	s := r.stacks[m.id]
	if len(s) == 0 {
		return
	}
	e := &s[len(s)-1]
	if e.level != d || e.satisfied {
		return
	}
	if m.cond.eval(e.flags, e, false) {
		if r.opts.DisableEagerPropagation {
			// Ablation mode: defer to pop time. Mark nothing; the
			// pop-time final eval will satisfy the entry.
			return
		}
		r.onSatisfied(m, e)
	}
}

// onSatisfied fires exactly once per entry, when its condition becomes
// true: the entry's subtree pattern is matched with this element as the
// image of m. It propagates m's flag to all axis-compatible parent entries
// and moves the entry's candidates up the spine (or confirms them at the
// root).
//
//vitex:hotpath
func (r *Run) onSatisfied(m *node, e *entry) {
	e.satisfied = true
	if r.trace.on() {
		r.trace.satisfied(m, e)
	}
	if m.parent == nil {
		for _, c := range e.cands {
			c.refs--
			r.confirm(c)
			r.resolveIfDead(c)
		}
		e.cands = e.cands[:0]
		return
	}
	cands := e.cands
	e.cands = e.cands[:0]
	// Once satisfied, deliverCand never parks on this entry again, so the
	// truncated slice cannot grow under this iteration.
	for _, c := range cands {
		r.stats.CandMoves++
		r.propagate(m, e.level, c)
		c.refs--
		r.resolveIfDead(c)
	}
	if len(cands) == 0 {
		r.propagate(m, e.level, nil)
	}
}

// propagate sets m's flag bit in every parent entry axis-compatible with a
// satisfied m-match at the given level, and (when c is non-nil) hands the
// candidate to each of them. Flags go to every compatible entry — this is
// the compact encoding of the exponentially many pattern matches; the
// candidate's confirmed latch keeps emission exactly-once despite the
// fan-out.
//
//vitex:hotpath
func (r *Run) propagate(m *node, level int, c *candidate) {
	parent := m.parent
	s := r.stacks[parent.id]
	lo, hi := compatRange(m, level)
	for i := len(s) - 1; i >= 0; i-- {
		e := &s[i]
		if e.level > hi {
			continue
		}
		if e.level < lo {
			break
		}
		r.deliverFlag(parent, e, m.childIdx)
		if c != nil {
			r.deliverCand(parent, e, c)
		}
	}
}

// compatRange returns the inclusive [lo, hi] parent-entry level range that
// is axis-compatible with a match of m at the given level. Elements and
// text nodes sit strictly below their parents; attributes belong to their
// owner element (child axis) or to any self-or-ancestor owner (descendant,
// per the descendant-or-self expansion of '//@a').
//
//vitex:hotpath
func compatRange(m *node, level int) (lo, hi int) {
	switch {
	case m.kind == xpath.Attribute && m.axis == xpath.Child:
		return level, level
	case m.kind == xpath.Attribute:
		return 0, level
	case m.axis == xpath.Child:
		return level - 1, level - 1
	default:
		return 0, level - 1
	}
}

// deliverFlag sets a flag bit on a parent entry and re-checks its
// condition.
//
//vitex:hotpath
func (r *Run) deliverFlag(parent *node, e *entry, idx int) {
	bit := uint64(1) << uint(idx)
	if e.flags&bit != 0 {
		return
	}
	e.flags |= bit
	r.stats.FlagProps++
	if r.trace.on() {
		r.trace.flag(parent, parent.children[idx], e.level)
	}
	if e.satisfied || r.opts.DisableEagerPropagation {
		return
	}
	if parent.cond.eval(e.flags, e, false) {
		r.onSatisfied(parent, e)
	}
}

// deliverCand parks a candidate on a parent entry, or passes it straight
// through when the entry is already satisfied.
//
//vitex:hotpath
func (r *Run) deliverCand(parent *node, e *entry, c *candidate) {
	if c.state != candPending {
		return
	}
	if e.satisfied {
		if parent.parent == nil {
			r.confirm(c)
			return
		}
		r.stats.CandMoves++
		r.propagate(parent, e.level, c)
		return
	}
	e.cands = append(e.cands, c)
	c.refs++
}

// ---- candidate lifecycle ----

// newCandidate allocates a candidate from the Run's block arena. Blocks are
// retained and reused across Reset (all candidates have resolved by end of
// document, so wholesale reclamation is safe).
func (r *Run) newCandidate(offset int64) *candidate {
	if r.blockIdx == len(r.candBlocks) {
		r.candBlocks = append(r.candBlocks, make([]candidate, candBlockSize))
	}
	c := &r.candBlocks[r.blockIdx][r.blockUsed]
	r.blockUsed++
	if r.blockUsed == candBlockSize {
		r.blockIdx++
		r.blockUsed = 0
	}
	*c = candidate{seq: r.nextSeq, offset: offset}
	r.nextSeq++
	r.stats.CandidatesCreated++
	if r.trace.on() {
		r.trace.candidate(c)
	}
	r.liveCands++
	if r.liveCands > r.stats.PeakLiveCandidates {
		r.stats.PeakLiveCandidates = r.liveCands
	}
	if r.opts.Ordered {
		r.ordered.expect(c.seq)
	}
	return c
}

// confirm marks a candidate as a proven solution; it delivers immediately
// unless the fragment is still being recorded.
//
//vitex:hotpath
func (r *Run) confirm(c *candidate) {
	if c.state != candPending {
		return
	}
	c.state = candConfirmed
	c.confirmedAt = r.stats.Events
	if r.trace.on() {
		r.trace.confirm(c)
	}
	if !c.open {
		r.deliver(c)
	}
}

// resolveIfDead drops a pending candidate whose last reference died: no
// remaining entry can ever confirm it.
//
//vitex:hotpath
func (r *Run) resolveIfDead(c *candidate) {
	if c.state != candPending || c.refs > 0 {
		return
	}
	c.state = candDropped
	r.stats.CandidatesDropped++
	if r.trace.on() {
		r.trace.drop(c)
	}
	r.liveCands--
	r.rec.drop(c)
	if r.opts.Ordered {
		r.ordered.resolve(r, c.seq, nil)
	}
}

// deliver hands a confirmed, fully recorded candidate to the output.
//
//vitex:hotpath
func (r *Run) deliver(c *candidate) {
	res := Result{
		Seq:         c.seq,
		NodeOffset:  c.offset,
		Value:       c.value,
		ConfirmedAt: c.confirmedAt,
		DeliveredAt: r.stats.Events,
	}
	r.liveCands--
	r.stats.CandidatesEmitted++
	if r.opts.Ordered {
		r.ordered.resolve(r, c.seq, &res)
		return
	}
	r.emit(res)
}

//vitex:hotpath
func (r *Run) emit(res Result) {
	r.count++
	if r.trace.on() {
		r.trace.emit(&res)
	}
	if r.opts.Emit != nil {
		if err := r.opts.Emit(res); err != nil {
			r.fail(err)
		}
	}
}
