package twigm

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sax"
	"repro/internal/xmlscan"
	"repro/internal/xpath"
)

func mustParse(t *testing.T, src string) *xpath.Query {
	t.Helper()
	q, err := xpath.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestPrefixProfile(t *testing.T) {
	cases := []struct {
		src     string
		profile string // ProfileString of the expected shareable prefix
	}{
		{"//a/b/c", "//a/b"},
		{"//a//b//c", "//a//b"},
		{"/a/b", "/a"},
		{"//a", ""},                    // single step: output stays residual
		{"//a[x]/b", ""},               // predicate on the first step
		{"//a/b[x]/c", "//a"},          // sharing stops at the predicate
		{"//a/b/@id", "//a/b"},         // attribute output
		{"//a/text()", "//a"},          // text output
		{"//*/b/c", "//*/b"},           // wildcards are structural
		{"//a/b[.='v']", "//a"},        // self-comparison is per-query
		{"//p:a/b/c", "//p:a/b"},       // prefixed tests share
		{"//a/b/c[@k='1']/d", "//a/b"}, // nested predicate stops sharing
		{"//section//table//cell", "//section//table"},
	}
	for _, tc := range cases {
		syms := sax.NewSymbols()
		got := ProfileString(PrefixProfile(mustParse(t, tc.src), syms))
		if got != tc.profile {
			t.Errorf("PrefixProfile(%q) = %q, want %q", tc.src, got, tc.profile)
		}
	}
}

func TestTrieGraftPrune(t *testing.T) {
	syms := sax.NewSymbols()
	profile := func(src string) []TrieStep {
		return PrefixProfile(mustParse(t, src), syms)
	}
	t0 := NewTrie()
	t1, a1 := t0.Graft(profile("//a/b/c"), syms.Len())
	if a1 < 0 || t1.Live() != 2 {
		t.Fatalf("graft 1: anchor %d live %d", a1, t1.Live())
	}
	// Overlapping prefix: only the divergent step is new.
	t2, a2 := t1.Graft(profile("//a/b/d"), syms.Len())
	if t2.Live() != 2 || a2 != a1 {
		t.Fatalf("graft 2: live %d anchors %d vs %d (prefix //a/b should be shared)", t2.Live(), a2, a1)
	}
	// '//a//x/y' shares the '//a' root with '//a/b/...' and adds one node.
	t3, a3 := t2.Graft(profile("//a//x/y"), syms.Len())
	if t3.Live() != 3 || a3 == a1 {
		t.Fatalf("graft 3: live %d anchor %d", t3.Live(), a3)
	}
	// Older tries are unchanged (copy-on-write).
	if t1.Live() != 2 || t0.Live() != 0 {
		t.Fatalf("older tries mutated: t0 %d t1 %d", t0.Live(), t1.Live())
	}
	// Prune one of the two //a/b users: nodes survive on the other's refs.
	t4 := t3.Prune(a2)
	if t4.Live() != 3 || t4.Garbage() != 0 {
		t.Fatalf("prune shared: live %d garbage %d", t4.Live(), t4.Garbage())
	}
	// Prune the last '//a/b' user: b dies, the root survives on //a//x.
	t5 := t4.Prune(a1)
	if t5.Live() != 2 || t5.Garbage() != 1 {
		t.Fatalf("prune last: live %d garbage %d", t5.Live(), t5.Garbage())
	}
	t6 := t5.Prune(a3)
	if t6.Live() != 0 || t6.Garbage() != 3 {
		t.Fatalf("prune all: live %d garbage %d", t6.Live(), t6.Garbage())
	}
	// Empty profile: no-op graft.
	t7, a7 := t6.Graft(nil, syms.Len())
	if t7 != t6 || a7 != -1 {
		t.Fatalf("empty graft: %p vs %p anchor %d", t7, t6, a7)
	}
}

// runEngineStyle evaluates one program over doc the way the engine's
// routed session would: the event clock pinned per event via HandleRouted,
// text events delivered only while the machine wants them (the engine's
// WantsText gate — part of the observable Seq trajectory, because delivered
// text can create candidates that drop), and — for anchored programs — a
// Trie + PrefixRun evaluated around the machine, the twigm-level harness
// for what the engine does per session.
func runEngineStyle(t *testing.T, p *Program, syms *sax.Symbols, doc string, opts Options) []Result {
	t.Helper()
	var pr PrefixRun
	anchor := int32(-1)
	if p.Anchored() {
		var trie *Trie
		trie, anchor = NewTrie().Graft(p.Profile(), syms.Len())
		pr.Rebind(trie, nil)
	}
	var results []Result
	opts.Emit = func(res Result) error {
		results = append(results, res)
		return nil
	}
	run := p.Start(opts)
	if anchor >= 0 {
		run.BindAnchor(pr.Stack(anchor))
	}
	idx := int64(0)
	scan := xmlscan.NewScannerWith(strings.NewReader(doc), syms)
	err := scan.Run(sax.HandlerFunc(func(ev *sax.Event) error {
		idx++
		if ev.Kind == sax.StartElement {
			pr.StartElement(ev)
		}
		var herr error
		if ev.Kind != sax.Text || run.WantsText() {
			herr = run.HandleRouted(ev, idx)
		}
		if ev.Kind == sax.EndElement {
			pr.EndElement(ev.Depth)
		}
		return herr
	}))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if pr.HasOpen() {
		t.Fatal("trie entries still open at end of document")
	}
	return results
}

// TestAnchoredEquivalence pins the tentpole invariant at the machine level:
// prefix-shared evaluation is byte-identical — Value, Seq, NodeOffset,
// ConfirmedAt, DeliveredAt and emission order — to the unshared machine.
func TestAnchoredEquivalence(t *testing.T) {
	docs := map[string]string{
		"nested": `<r><a><b p="1"><c>x</c><d k="7">y</d></b><b><c>z</c></b></a>` +
			`<a><a><b><c>deep</c></b></a></a></r>`,
		"recursive": `<a><a><b><c>1</c><b><c>2</c></b></b></a><b><c>3</c></b></a>`,
		"attrs":     `<r><a><b id="i1"><c/></b><b id="i2">t</b></a></r>`,
		"text":      `<r><a><b>hello</b><b>world<c>!</c></b></a></r>`,
		"prefixes":  `<r xmlns:p="u"><p:a><b><c>pc</c></b></p:a><a><b><c>uc</c></b></a></r>`,
	}
	queries := []string{
		"//a/b/c", "//a//b//c", "/r/a/b", "//a/b/@id", "//a/b/text()",
		"//a/b[c]/d", "//a/b[@p='1']/c", "//a/b/c[.='x']", "//*/b/c",
		"//a//b", "//a/a/b", "//p:a/b/c", "//a/b[@id]",
		"//a/b[c and @p]/d", "//r//a//a/b",
	}
	for docName, doc := range docs {
		for _, src := range queries {
			for _, ordered := range []bool{false, true} {
				for _, countOnly := range []bool{false, true} {
					opts := Options{Ordered: ordered, CountOnly: countOnly}
					ssyms := sax.NewSymbols()
					sp, err := CompileShared(mustParse(t, src), ssyms)
					if err != nil {
						t.Fatalf("CompileShared(%q): %v", src, err)
					}
					shared := runEngineStyle(t, sp, ssyms, doc, opts)
					usyms := sax.NewSymbols()
					up, err := CompileWith(mustParse(t, src), usyms)
					if err != nil {
						t.Fatalf("Compile(%q): %v", src, err)
					}
					want := runEngineStyle(t, up, usyms, doc, opts)
					if !reflect.DeepEqual(shared, want) {
						t.Errorf("%s %q (ordered=%v count=%v, anchored=%v):\nshared %+v\nsolo   %+v",
							docName, src, ordered, countOnly, sp.Anchored(), shared, want)
					}
				}
			}
		}
	}
}

// TestAnchoredNilAnchorMatchesNothing: an anchored run without a bound
// anchor stack (the engine always binds; this is the documented fallback)
// must not match or crash.
func TestAnchoredNilAnchorMatchesNothing(t *testing.T) {
	syms := sax.NewSymbols()
	p, err := CompileShared(mustParse(t, "//a/b"), syms)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Anchored() {
		t.Fatal("expected an anchored program")
	}
	run := p.Start(Options{Emit: func(Result) error {
		t.Fatal("unexpected result")
		return nil
	}})
	scan := xmlscan.NewScannerWith(strings.NewReader("<a><b/></a>"), syms)
	if err := scan.Run(run); err != nil {
		t.Fatal(err)
	}
}
