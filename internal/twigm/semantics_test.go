package twigm

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/xmlscan"
)

// checkOracle is the single-document equivalence helper for this file.
func checkOracle(t *testing.T, doc string, queries ...string) {
	t.Helper()
	d, err := dom.Build(xmlscan.NewScanner(strings.NewReader(doc)))
	if err != nil {
		t.Fatalf("doc %q: %v", doc, err)
	}
	for _, query := range queries {
		nodes := dom.EvalString(d, query)
		want := make([]string, 0, len(nodes))
		for _, n := range nodes {
			want = append(want, n.Serialize())
		}
		for _, opts := range []Options{{}, {Ordered: true}, {DisablePrune: true}} {
			got := runQuery(t, doc, query, opts)
			if !equalStrings(got, want) {
				t.Fatalf("%s over %q (opts=%+v):\n got %q\nwant %q", query, doc, opts, got, want)
			}
		}
	}
}

// One element matching several machine nodes in the same event.
func TestSameElementMultipleMachineNodes(t *testing.T) {
	checkOracle(t, "<a><a><a/></a></a>",
		"//a/a", "//a//a", "//a/a/a", "//a[a]/a", "//a[a/a]",
		"//*[a]//a", "//*/*")
}

// Descendant-axis attributes: '//@a' means self-or-descendant.
func TestDescendantAttributeSelfOrBelow(t *testing.T) {
	doc := `<r><a id="top"><b><c id="deep"/></b></a><a/></r>`
	checkOracle(t, doc,
		"//a//@id", "//a/@id", "//a[.//@id]", "//r//@id", "//b//@id",
		"//a[@id]//@id")
}

// Wildcards with attribute predicates and outputs.
func TestWildcardAttributes(t *testing.T) {
	doc := `<r><x k="1"/><y k="2"/><z/></r>`
	checkOracle(t, doc,
		"//*[@k]", "//*[@k='2']", "//*/@k", "//*[@k>1]")
}

// text() inside predicates with each comparison operator.
func TestTextPredicateOperators(t *testing.T) {
	doc := "<r><a>5</a><a>10</a><a>x</a><a>5<b/>10</a></r>"
	checkOracle(t, doc,
		"//a[text()=5]", "//a[text()!=5]", "//a[text()<6]", "//a[text()>=10]",
		"//a[text()='x']", "//a[text()]")
}

// String-value semantics vs text-node semantics must diverge correctly.
func TestStringValueVsTextNode(t *testing.T) {
	doc := "<r><a>5<b/>1</a></r>"
	// string-value of a = "51"; text nodes are "5" and "1".
	checkOracle(t, doc,
		"//a[.=51]", "//a[.='51']", "//a[text()='51']", "//a[text()='5']",
		"//a[.>50]", "//a[text()<2]")
}

// Deferred element comparisons interacting with structure flags.
func TestElementComparisonWithStructure(t *testing.T) {
	doc := "<r><p><price>10</price><tag/></p><p><price>99</price><tag/></p><p><price>10</price></p></r>"
	checkOracle(t, doc,
		"//p[price=10 and tag]", "//p[price=10][tag]", "//p[tag]/price",
		"//p[price=10]/tag", "//p[price<50 and tag]")
}

// Nested predicates three levels deep.
func TestDeeplyNestedPredicates(t *testing.T) {
	doc := "<r><a><b><c><d/></c></b></a><a><b><c/></b></a></r>"
	checkOracle(t, doc,
		"//a[b[c[d]]]", "//a[b/c/d]", "//a[b[c]/c]", "//a[.//d]")
}

// Multiple entries in the output node's own stack (nested output matches)
// with pending predicates resolving in different orders.
func TestNestedOutputCandidates(t *testing.T) {
	doc := "<r><a><x/><a><a><x/></a></a></a></r>"
	checkOracle(t, doc, "//a[x]", "//a[a]", "//a[x or a]")
	doc2 := "<t><s><s><s><q/></s></s><m/></s></t>"
	checkOracle(t, doc2, "//s[m]//q", "//s[m]//s", "//s//s[q]")
}

// Predicate arriving between nested candidates: the outer candidate
// confirms while the inner is still pending.
func TestInterleavedConfirmation(t *testing.T) {
	doc := "<r><a><b>outer</b><p/><a><b>inner</b></a></a></r>"
	checkOracle(t, doc, "//a[p]/b", "//a[p]//b")
}

// 64-branch predicate: the widest supported machine node.
func TestMaxWidthPredicate(t *testing.T) {
	var q strings.Builder
	q.WriteString("//a")
	var doc strings.Builder
	doc.WriteString("<r><a>")
	// 63 predicate children + implicit next = at the 64 limit when an
	// output chain is added; keep to 63 total here.
	for i := 0; i < 63; i++ {
		q.WriteString("[c")
		q.WriteString(strings.Repeat("x", i%3)) // c, cx, cxx cycling
		q.WriteString("]")
	}
	// Build matching children: names c, cx, cxx.
	for _, name := range []string{"c", "cx", "cxx"} {
		doc.WriteString("<" + name + "/>")
	}
	doc.WriteString("</a></r>")
	checkOracle(t, doc.String(), q.String())
}

// The empty-ish documents and smallest queries.
func TestMinimalDocuments(t *testing.T) {
	checkOracle(t, "<a/>", "/a", "//a", "/b", "//*", "/a/text()", "/a/@x")
	checkOracle(t, "<a></a>", "/a")
	checkOracle(t, "<a>  </a>", "/a/text()", "//a[text()]")
}

// Whitespace is significant in text nodes and string-values.
func TestWhitespaceSignificance(t *testing.T) {
	doc := "<r><a> x </a><a>x</a></r>"
	checkOracle(t, doc, "//a[.='x']", "//a[.=' x ']", "//a[text()=' x ']")
}

// Numeric comparisons with whitespace-padded values (TrimSpace coercion).
func TestNumericWhitespaceCoercion(t *testing.T) {
	doc := "<r><a> 5 </a><a>5.0</a><a>05</a></r>"
	checkOracle(t, doc, "//a[.=5]", "//a[.<6]", "//a[.>4]")
}

// CountOnly + Ordered composition.
func TestCountOnlyOrdered(t *testing.T) {
	prog := MustCompile("//a[p]/b")
	doc := "<r><a><b/><b/><p/></a></r>"
	results, stats, err := Collect(prog, xmlscan.NewScanner(strings.NewReader(doc)),
		Options{CountOnly: true, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Seq != 0 || results[1].Seq != 1 {
		t.Fatalf("results: %+v", results)
	}
	if stats.PeakBufferedBytes != 0 {
		t.Fatal("count-only must not buffer")
	}
}

// Attributes and text on the same elements as predicates and outputs.
func TestMixedAttrTextOutputs(t *testing.T) {
	doc := `<r><u id="1">alice</u><u id="2">bob</u><u>carol</u></r>`
	checkOracle(t, doc,
		"//u[@id]/text()", "//u[text()='bob']/@id", "//u[@id='1' and text()='alice']",
		"//u[@id or text()='carol']")
}

// Deep chains where only a prefix of the query can ever match.
func TestUnmatchablePrefixes(t *testing.T) {
	doc := "<r><a><b/></a></r>"
	checkOracle(t, doc, "//a/b/c/d/e", "//z//a//b", "//a[z]/b", "/z/a")
}

// Self-comparison on the output node (confirmation at pop).
func TestSelfComparisonOnOutput(t *testing.T) {
	doc := "<r><a>yes</a><a>no</a></r>"
	checkOracle(t, doc, "//a[.='yes']", "//r/a[.='no']")
}

// Value predicates on ancestors of the output, resolving after the
// candidate closed (recorder finalized before confirmation).
func TestLateAncestorComparison(t *testing.T) {
	doc := "<r><g><item>keep</item><score>9</score></g><g><item>drop</item><score>2</score></g></r>"
	checkOracle(t, doc, "//g[score>5]/item", "//g[score>5]/item/text()")
}
